//! The ProjectQ program of Fig. 4, written against the Rust engine: hidden
//! shift for `f(x) = x0 x1 ⊕ x2 x3` with `g(x) = f(x + 1)`, i.e. `s = 1`.
//!
//! Run with `cargo run -p qdaflow --example hidden_shift_inner_product`.

use qdaflow::prelude::*;
use qdaflow::quantum::drawer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // phase function (line 7-8 of Fig. 4)
    let f = Expr::parse("(a & b) ^ (c & d)")?;

    // engine and qubits (lines 10-11)
    let mut engine = MainEngine::with_simulator();
    let qubits = engine.allocate_qureg(4);

    // circuit (lines 14-22): Compute block prepares H^n and the shift X|x1,
    // the PhaseOracle is the action, Uncompute restores the preparation.
    let section = engine.begin_compute();
    engine.all_h(&qubits)?;
    engine.x(qubits[0])?;
    let section = engine.end_compute(section);
    engine.phase_oracle_expr(&f, &qubits)?;
    engine.uncompute(&section)?;

    engine.phase_oracle_expr(&f, &qubits)?; // f is self-dual: U_f~ = U_f
    engine.all_h(&qubits)?;

    println!("{}", drawer::draw(&engine.circuit()));

    // flush and measure (lines 24-27)
    let result = engine.flush(1024)?;
    let (shift, probability) = result.most_likely().expect("shots were taken");
    println!("Shift is {shift} (probability {probability:.3})");
    assert_eq!(shift, 1);
    Ok(())
}
