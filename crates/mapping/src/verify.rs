//! Verification of mapped quantum circuits against reversible
//! specifications.
//!
//! This is the one implementation behind the shell's `simulate` command and
//! the pipeline test-suites: it checks, by exhaustive basis-state
//! simulation, that a Clifford+T circuit produced by the mapping realizes
//! the same permutation as the reversible circuit it was mapped from.

use crate::MappingError;
use qdaflow_quantum::fusion::{ExecConfig, FusedProgram};
use qdaflow_quantum::statevector::Statevector;
use qdaflow_quantum::QuantumCircuit;
use qdaflow_reversible::ReversibleCircuit;

/// Verifies (by exhaustive basis-state simulation) that `quantum` realizes
/// the same permutation as `reversible` on the original lines, with
/// ancillas returned to zero. Uses the default execution configuration.
///
/// # Errors
///
/// Returns [`MappingError::Quantum`] if the quantum circuit is too large to
/// simulate.
pub fn quantum_matches_reversible(
    quantum: &QuantumCircuit,
    reversible: &ReversibleCircuit,
) -> Result<bool, MappingError> {
    quantum_matches_reversible_with(quantum, reversible, &ExecConfig::default())
}

/// [`quantum_matches_reversible`] with an explicit execution configuration.
/// The quantum circuit is compiled once to a fused program and replayed on
/// every basis state.
///
/// # Errors
///
/// Returns [`MappingError::Quantum`] if the quantum circuit is too large to
/// simulate.
pub fn quantum_matches_reversible_with(
    quantum: &QuantumCircuit,
    reversible: &ReversibleCircuit,
    config: &ExecConfig,
) -> Result<bool, MappingError> {
    let program = FusedProgram::compile(quantum, config);
    let lines = reversible.num_lines();
    for basis in 0..(1usize << lines) {
        let mut state = Statevector::basis_state(quantum.num_qubits(), basis)?;
        program.apply(state.amplitudes_mut(), config);
        let expected = reversible.apply(basis);
        if state.probability_of(expected) < 1.0 - 1e-9 {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map;
    use qdaflow_boolfn::Permutation;
    use qdaflow_reversible::synthesis;

    #[test]
    fn mapped_circuits_verify_against_their_source() {
        let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
        let reversible = synthesis::transformation_based(&pi).unwrap();
        let quantum = map::to_clifford_t(&reversible, &map::MappingOptions::default()).unwrap();
        assert!(quantum_matches_reversible(&quantum, &reversible).unwrap());
    }

    #[test]
    fn a_wrong_circuit_is_rejected() {
        let pi = Permutation::new(vec![0, 2, 1, 3]).unwrap();
        let reversible = synthesis::transformation_based(&pi).unwrap();
        // Map the *inverse* circuit: realizes pi^-1 == pi here (swap), so
        // instead compare against a different permutation's circuit.
        let other = Permutation::new(vec![1, 0, 2, 3]).unwrap();
        let wrong = synthesis::transformation_based(&other).unwrap();
        let quantum = map::to_clifford_t(&wrong, &map::MappingOptions::default()).unwrap();
        assert!(!quantum_matches_reversible(&quantum, &reversible).unwrap());
    }
}
