//! The compiled-oracle cache: compilation results keyed by the canonical
//! hash of their specification.
//!
//! Oracle compilation (reversible synthesis, simplification, Clifford+T
//! mapping) is by far the most expensive step of the engine's flow, and a
//! production deployment sees the *same* oracles over and over — the same
//! permutation compiled for every incoming job, the same phase function
//! re-submitted by many users. [`OracleCache`] memoizes
//! [`CompiledProgram`]s under the [`SpecKey`] of their [`OracleSpec`] (the
//! canonical digest of the specification plus the pass list, see
//! [`qdaflow_pipeline::spec`]), so a repeated compilation is a hash lookup
//! instead of a synthesis run. The cache is `Sync`: concurrent
//! `get_or_compile` calls for distinct specs compile in parallel outside the
//! lock, and a race on the same key keeps the first inserted program.

use crate::oracle::{compile_permutation_oracle, compile_phase_oracle, SynthesisChoice};
use crate::store::disk::{DiskCache, DiskCacheStats};
use crate::EngineError;
use qdaflow_boolfn::{Permutation, TruthTable};
use qdaflow_pipeline::spec::{self, CanonicalHasher, SpecKey};
use qdaflow_quantum::resource::ResourceCounts;
use qdaflow_quantum::QuantumCircuit;
use qdaflow_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Handles into the process-wide metrics registry for the cache layers and
/// the compile-time histogram, registered once on first use.
struct CacheTelemetry {
    mem_hits: telemetry::Counter,
    mem_misses: telemetry::Counter,
    disk_hits: telemetry::Counter,
    disk_misses: telemetry::Counter,
    compile_seconds: telemetry::Histogram,
}

fn cache_telemetry() -> &'static CacheTelemetry {
    static HANDLES: std::sync::OnceLock<CacheTelemetry> = std::sync::OnceLock::new();
    HANDLES.get_or_init(|| {
        let registry = telemetry::global_metrics();
        let hits = |layer: &str| {
            registry.counter(
                "qdaflow_cache_hits_total",
                "Oracle-cache lookups answered by a layer.",
                &[("layer", layer)],
            )
        };
        let misses = |layer: &str| {
            registry.counter(
                "qdaflow_cache_misses_total",
                "Oracle-cache lookups a layer could not answer.",
                &[("layer", layer)],
            )
        };
        CacheTelemetry {
            mem_hits: hits("mem"),
            mem_misses: misses("mem"),
            disk_hits: hits("disk"),
            disk_misses: misses("disk"),
            compile_seconds: registry.histogram(
                "qdaflow_compile_duration_seconds",
                "Wall-clock oracle compilation time (cache misses only).",
                &telemetry::DURATION_BUCKETS,
                &[],
            ),
        }
    })
}

/// A cacheable oracle specification: what to compile and through which
/// passes.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleSpec {
    /// A permutation oracle `|x⟩ → |π(x)⟩`, compiled through the paper's
    /// synthesis → `revsimp` → `rptm` prefix of equation (5).
    Permutation {
        /// The permutation to realize.
        permutation: Permutation,
        /// Which reversible synthesis algorithm to use.
        synthesis: SynthesisChoice,
    },
    /// A diagonal phase oracle `U_f`, compiled through the `po` pass.
    PhaseFunction {
        /// The Boolean function whose phase oracle is compiled.
        function: TruthTable,
    },
    /// A circuit imported from OpenQASM 2.0 source through the `qasmin`
    /// pass — the front door for workloads not born from our spec types.
    Qasm {
        /// The OpenQASM source text.
        source: String,
    },
    /// A fault-injection oracle whose compilation deliberately fails: it
    /// panics (`panic: true`) or returns a typed error (`panic: false`).
    /// This is the crash-safety smoke test of the job service — submit one
    /// to a deployment to verify that retry, dead-lettering and per-job
    /// panic isolation are wired correctly without crafting a genuinely
    /// broken workload. Keyed like any other spec (`tag` distinguishes
    /// independent injections), and never cached: compilation never
    /// succeeds.
    FaultInjection {
        /// Panic during compilation when `true`; fail with a typed,
        /// deterministic [`EngineError`] when `false`.
        panic: bool,
        /// Distinguishes independent injections in cache keys and journals.
        tag: u64,
    },
}

impl OracleSpec {
    /// A permutation-oracle spec.
    pub fn permutation(permutation: Permutation, synthesis: SynthesisChoice) -> Self {
        Self::Permutation {
            permutation,
            synthesis,
        }
    }

    /// A phase-oracle spec.
    pub fn phase_function(function: TruthTable) -> Self {
        Self::PhaseFunction { function }
    }

    /// An OpenQASM-import spec.
    pub fn qasm(source: impl Into<String>) -> Self {
        Self::Qasm {
            source: source.into(),
        }
    }

    /// A fault-injection spec (see [`OracleSpec::FaultInjection`]).
    pub fn fault_injection(panic: bool, tag: u64) -> Self {
        Self::FaultInjection { panic, tag }
    }

    /// Number of specification variables (the oracle's data qubits; the
    /// compiled circuit may add ancillas). For a QASM spec this is unknown
    /// before parsing and reported as 0.
    pub fn num_vars(&self) -> usize {
        match self {
            Self::Permutation { permutation, .. } => permutation.num_vars(),
            Self::PhaseFunction { function } => function.num_vars(),
            Self::Qasm { .. } | Self::FaultInjection { .. } => 0,
        }
    }

    /// The ordered pass descriptions this spec compiles through — the pass
    /// list half of the cache key.
    pub fn pass_list(&self) -> Vec<String> {
        match self {
            Self::Permutation { synthesis, .. } => {
                let synthesis = match synthesis {
                    SynthesisChoice::TransformationBased => "tbs",
                    SynthesisChoice::DecompositionBased => "dbs",
                };
                vec![
                    synthesis.to_owned(),
                    "revsimp".to_owned(),
                    "rptm".to_owned(),
                ]
            }
            Self::PhaseFunction { .. } => vec!["po".to_owned()],
            Self::Qasm { .. } => vec!["qasmin".to_owned()],
            Self::FaultInjection { .. } => vec!["fault".to_owned()],
        }
    }

    /// The canonical cache key: the digest of the specification contents and
    /// the pass list. Equal for any two specs describing the same oracle
    /// through the same passes, regardless of how they were constructed.
    /// Hashes by reference, and produces the same key as
    /// [`spec::spec_key`]`(Some(&ir), &self.pass_list())` over the
    /// corresponding `Ir` value (enforced by `tests/integration_batch.rs`).
    pub fn cache_key(&self) -> SpecKey {
        let mut hasher = CanonicalHasher::new();
        match self {
            Self::Permutation { permutation, .. } => {
                spec::write_permutation(&mut hasher, permutation)
            }
            Self::PhaseFunction { function } => spec::write_function(&mut hasher, function),
            Self::Qasm { source } => spec::write_qasm_source(&mut hasher, source),
            Self::FaultInjection { panic, tag } => {
                hasher.write_str("fault-injection");
                hasher.write_u64(u64::from(*panic));
                hasher.write_u64(*tag);
            }
        }
        spec::write_passes(&mut hasher, &self.pass_list());
        hasher.finish()
    }

    /// Compiles the spec to a Clifford+T circuit (uncached; see
    /// [`OracleCache::get_or_compile`] for the cached path).
    ///
    /// # Errors
    ///
    /// Propagates synthesis and mapping failures.
    pub fn compile(&self) -> Result<QuantumCircuit, EngineError> {
        match self {
            Self::Permutation {
                permutation,
                synthesis,
            } => compile_permutation_oracle(permutation, *synthesis),
            Self::PhaseFunction { function } => compile_phase_oracle(function),
            Self::Qasm { source } => Ok(qdaflow_quantum::qasm::from_qasm(source)?),
            Self::FaultInjection { panic, tag } => {
                if *panic {
                    panic!("injected compilation panic (tag {tag})");
                }
                Err(EngineError::Flow {
                    message: format!("injected deterministic compilation failure (tag {tag})"),
                })
            }
        }
    }
}

/// A compiled, immutable oracle: the circuit plus the metadata the batch
/// layer reports. Shared via `Arc` between the cache and all jobs using it.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    key: SpecKey,
    circuit: QuantumCircuit,
    resources: ResourceCounts,
    compile_time: Duration,
}

impl CompiledProgram {
    /// Rebuilds a program from its persisted parts (the disk-cache load
    /// path); resource counts are recomputed — they are cheap and derived.
    pub(crate) fn from_parts(
        key: SpecKey,
        circuit: QuantumCircuit,
        compile_time: Duration,
    ) -> Self {
        Self {
            key,
            resources: ResourceCounts::of(&circuit),
            circuit,
            compile_time,
        }
    }

    /// The cache key the program is stored under.
    pub fn key(&self) -> SpecKey {
        self.key
    }

    /// The compiled Clifford+T circuit.
    pub fn circuit(&self) -> &QuantumCircuit {
        &self.circuit
    }

    /// Resource counts of the compiled circuit.
    pub fn resources(&self) -> &ResourceCounts {
        &self.resources
    }

    /// Wall-clock time the (cold) compilation took.
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }
}

/// Hit/miss/occupancy statistics of an [`OracleCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of `get_or_compile` calls answered from the in-memory table.
    pub hits: u64,
    /// Number of `get_or_compile` calls that compiled.
    pub misses: u64,
    /// Number of `get_or_compile` calls answered from the disk layer
    /// (always `0` for a cache without one).
    pub disk_hits: u64,
    /// Number of programs currently cached in memory.
    pub entries: usize,
}

/// A thread-safe memo table of [`CompiledProgram`]s keyed by [`SpecKey`],
/// optionally layered over a persistent [`DiskCache`]
/// ([`OracleCache::with_disk`]): memory miss → disk load → compile, with
/// every fresh compilation written back to disk so it survives restarts
/// and is shared across processes.
#[derive(Debug, Default)]
pub struct OracleCache {
    programs: Mutex<HashMap<SpecKey, Arc<CompiledProgram>>>,
    disk: Option<DiskCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
}

impl OracleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty in-memory cache layered over `disk`: lookups fall
    /// through to the disk entry before compiling, and compilations are
    /// persisted (atomically, best-effort) as they happen.
    pub fn with_disk(disk: DiskCache) -> Self {
        Self {
            disk: Some(disk),
            ..Self::default()
        }
    }

    /// The disk layer, if the cache has one.
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Counters of the disk layer (zeros without one).
    pub fn disk_stats(&self) -> DiskCacheStats {
        self.disk.as_ref().map(DiskCache::stats).unwrap_or_default()
    }

    /// Returns the compiled program for `spec`, compiling (and caching) it
    /// on a miss. Compilation happens outside the cache lock, so concurrent
    /// misses on *distinct* specs compile in parallel; concurrent misses on
    /// the *same* spec may compile redundantly, and the first insertion
    /// wins.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures; nothing is cached on error.
    pub fn get_or_compile(&self, spec: &OracleSpec) -> Result<Arc<CompiledProgram>, EngineError> {
        self.get_or_compile_keyed(spec.cache_key(), spec)
    }

    /// [`OracleCache::get_or_compile`] for callers that already computed
    /// `spec.cache_key()` (the batch engine keys every job up front for
    /// deduplication); `key` must be that spec's key.
    pub(crate) fn get_or_compile_keyed(
        &self,
        key: SpecKey,
        spec: &OracleSpec,
    ) -> Result<Arc<CompiledProgram>, EngineError> {
        let stats = cache_telemetry();
        if let Some(program) = self.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            stats.mem_hits.inc();
            return Ok(program);
        }
        stats.mem_misses.inc();
        if let Some(disk) = &self.disk {
            if let Some((circuit, compile_time)) = disk.load(key) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                stats.disk_hits.inc();
                telemetry::event("cache", "disk hit", vec![("key", format!("{key:?}"))]);
                let program = Arc::new(CompiledProgram::from_parts(key, circuit, compile_time));
                return Ok(self.lock().entry(key).or_insert(program).clone());
            }
            stats.disk_misses.inc();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let circuit = {
            let _span = telemetry::span!("cache", "compile {key:?}");
            spec.compile()?
        };
        let program = Arc::new(CompiledProgram {
            key,
            resources: ResourceCounts::of(&circuit),
            circuit,
            compile_time: start.elapsed(),
        });
        // The compile wall time used to be recorded on the program and then
        // forgotten; feed it into the unified histogram so `batch --stats`
        // can report compilation latency.
        stats.compile_seconds.observe_duration(program.compile_time);
        if let Some(disk) = &self.disk {
            disk.store(key, &program.circuit, program.compile_time);
        }
        Ok(self.lock().entry(key).or_insert(program).clone())
    }

    /// Re-inserts an already-compiled program under a second cache key,
    /// returning the entry now stored there (the existing program if the
    /// slot was already occupied). The batch engine uses this to share one
    /// compilation between the raw spec slot (where automatic-backend
    /// resolution compiles) and the backend-tagged slot (where execution
    /// looks up) — an alias is bookkeeping, not a compilation, so the
    /// hit/miss counters are untouched.
    pub(crate) fn alias_keyed(
        &self,
        key: SpecKey,
        program: &Arc<CompiledProgram>,
    ) -> Arc<CompiledProgram> {
        let mut entries = self.lock();
        if let Some(existing) = entries.get(&key) {
            return existing.clone();
        }
        let aliased = Arc::new(CompiledProgram {
            key,
            circuit: program.circuit.clone(),
            resources: program.resources.clone(),
            compile_time: program.compile_time,
        });
        entries.insert(key, aliased.clone());
        aliased
    }

    /// Looks a program up without compiling (does not touch the hit/miss
    /// counters).
    pub fn peek(&self, key: SpecKey) -> Option<Arc<CompiledProgram>> {
        self.lock().get(&key).cloned()
    }

    /// Current hit/miss/occupancy statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            entries: self.lock().len(),
        }
    }

    /// Evicts every cached in-memory program and resets the counters. Disk
    /// entries are kept — they belong to every process sharing the
    /// directory, not to this instance.
    pub fn clear(&self) {
        self.lock().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.disk_hits.store(0, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<SpecKey, Arc<CompiledProgram>>> {
        self.programs.lock().expect("oracle cache lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdaflow_quantum::Statevector;

    fn example_permutation() -> Permutation {
        Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap()
    }

    #[test]
    fn repeated_compilations_hit_the_cache() {
        let cache = OracleCache::new();
        let spec = OracleSpec::permutation(example_permutation(), SynthesisChoice::default());
        let first = cache.get_or_compile(&spec).unwrap();
        let second = cache.get_or_compile(&spec).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // An equal spec constructed independently also hits.
        let rebuilt = OracleSpec::permutation(example_permutation(), SynthesisChoice::default());
        assert!(Arc::ptr_eq(
            &cache.get_or_compile(&rebuilt).unwrap(),
            &first
        ));
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn synthesis_choice_and_spec_kind_separate_keys() {
        let pi = example_permutation();
        let tbs = OracleSpec::permutation(pi.clone(), SynthesisChoice::TransformationBased);
        let dbs = OracleSpec::permutation(pi, SynthesisChoice::DecompositionBased);
        assert_ne!(tbs.cache_key(), dbs.cache_key());
        let f = TruthTable::from_bits(3, (0..8).map(|x| x == 7)).unwrap();
        let po = OracleSpec::phase_function(f);
        assert_ne!(po.cache_key(), tbs.cache_key());
        let cache = OracleCache::new();
        cache.get_or_compile(&tbs).unwrap();
        cache.get_or_compile(&dbs).unwrap();
        cache.get_or_compile(&po).unwrap();
        assert_eq!(cache.stats().entries, 3);
        assert_eq!(cache.stats().misses, 3);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn cached_programs_realize_their_specification() {
        let cache = OracleCache::new();
        let pi = example_permutation();
        let spec = OracleSpec::permutation(pi.clone(), SynthesisChoice::default());
        let program = cache.get_or_compile(&spec).unwrap();
        assert_eq!(program.key(), spec.cache_key());
        assert!(program.resources().total_gates > 0);
        for basis in 0..8usize {
            let mut state =
                Statevector::basis_state(program.circuit().num_qubits(), basis).unwrap();
            state.apply_circuit(program.circuit());
            assert!(
                state.probability_of(pi.apply(basis)) > 1.0 - 1e-9,
                "{basis}"
            );
        }
    }

    #[test]
    fn qasm_specs_compile_and_key_like_qasmin_pipelines() {
        let source = "qreg d[1];\nqreg e[1];\nh d;\nrz(3.141592653589793/4) d[0];\ncx d[0],e[0];";
        let spec = OracleSpec::qasm(source);
        assert_eq!(spec.pass_list(), vec!["qasmin".to_owned()]);
        assert_eq!(spec.num_vars(), 0);
        // The key agrees with the pipeline-layer digest over Ir::QasmSource.
        let ir = qdaflow_pipeline::Ir::QasmSource(source.to_owned());
        assert_eq!(
            spec.cache_key(),
            qdaflow_pipeline::spec::spec_key(Some(&ir), &spec.pass_list())
        );
        let cache = OracleCache::new();
        let program = cache.get_or_compile(&spec).unwrap();
        assert_eq!(program.circuit().num_qubits(), 2);
        assert_eq!(program.circuit().num_gates(), 3);
        assert!(Arc::ptr_eq(
            &cache.get_or_compile(&OracleSpec::qasm(source)).unwrap(),
            &program
        ));
        // Parse failures are typed errors, nothing is cached.
        let entries = cache.stats().entries;
        assert!(cache
            .get_or_compile(&OracleSpec::qasm("qreg q[1];\nbad"))
            .is_err());
        assert_eq!(cache.stats().entries, entries);
    }

    #[test]
    fn peek_does_not_compile_or_count() {
        let cache = OracleCache::new();
        let spec = OracleSpec::permutation(example_permutation(), SynthesisChoice::default());
        assert!(cache.peek(spec.cache_key()).is_none());
        cache.get_or_compile(&spec).unwrap();
        assert!(cache.peek(spec.cache_key()).is_some());
        assert_eq!(cache.stats().hits, 0);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qdaflow-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disk_backed_caches_warm_restarted_processes() {
        let dir = scratch_dir("warm");
        let spec = OracleSpec::permutation(example_permutation(), SynthesisChoice::default());
        let first = OracleCache::with_disk(DiskCache::open(&dir).unwrap());
        let program = first.get_or_compile(&spec).unwrap();
        assert_eq!(first.stats().misses, 1);
        assert_eq!(first.disk_stats().writes, 1);
        // A brand-new cache over the same directory — a restarted process —
        // loads from disk instead of compiling.
        let second = OracleCache::with_disk(DiskCache::open(&dir).unwrap());
        let warmed = second.get_or_compile(&spec).unwrap();
        let stats = second.stats();
        assert_eq!(
            (stats.misses, stats.disk_hits),
            (0, 1),
            "restart must not recompile"
        );
        assert_eq!(warmed.circuit(), program.circuit());
        // And the loaded entry now also sits in memory.
        second.get_or_compile(&spec).unwrap();
        assert_eq!(second.stats().hits, 1);
    }

    #[test]
    fn truncated_disk_entries_degrade_to_counted_misses() {
        let dir = scratch_dir("truncated");
        let spec = OracleSpec::permutation(example_permutation(), SynthesisChoice::default());
        let writer = OracleCache::with_disk(DiskCache::open(&dir).unwrap());
        writer.get_or_compile(&spec).unwrap();
        let path = dir.join(format!("{:032x}.qdc", spec.cache_key().0));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let reader = OracleCache::with_disk(DiskCache::open(&dir).unwrap());
        reader.get_or_compile(&spec).unwrap();
        let stats = reader.stats();
        assert_eq!((stats.misses, stats.disk_hits), (1, 0));
        assert_eq!(reader.disk_stats().corrupt, 1);
        // The recompile rewrote a valid entry.
        let healed = OracleCache::with_disk(DiskCache::open(&dir).unwrap());
        healed.get_or_compile(&spec).unwrap();
        assert_eq!(healed.stats().disk_hits, 1);
    }

    #[test]
    fn wrong_version_disk_entries_degrade_to_counted_misses() {
        let dir = scratch_dir("version");
        let spec = OracleSpec::permutation(example_permutation(), SynthesisChoice::default());
        let writer = OracleCache::with_disk(DiskCache::open(&dir).unwrap());
        writer.get_or_compile(&spec).unwrap();
        let path = dir.join(format!("{:032x}.qdc", spec.cache_key().0));
        let mut bytes = std::fs::read(&path).unwrap();
        // Bump the little-endian version word just past the 4-byte magic.
        bytes[4] = bytes[4].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        let reader = OracleCache::with_disk(DiskCache::open(&dir).unwrap());
        reader.get_or_compile(&spec).unwrap();
        assert_eq!(reader.stats().misses, 1);
        assert_eq!(reader.disk_stats().corrupt, 1);
    }

    #[test]
    fn concurrent_instances_race_to_one_valid_entry() {
        // Two cache instances over the same directory — two processes —
        // compile the same spec concurrently. Both miss (no coordination is
        // promised across processes), but the atomic write-rename leaves
        // exactly one valid entry behind.
        let dir = scratch_dir("race");
        let spec = OracleSpec::permutation(example_permutation(), SynthesisChoice::default());
        let a = OracleCache::with_disk(DiskCache::open(&dir).unwrap());
        let b = OracleCache::with_disk(DiskCache::open(&dir).unwrap());
        std::thread::scope(|scope| {
            let ta = scope.spawn(|| a.get_or_compile(&spec).unwrap());
            let tb = scope.spawn(|| b.get_or_compile(&spec).unwrap());
            let pa = ta.join().unwrap();
            let pb = tb.join().unwrap();
            assert_eq!(pa.circuit(), pb.circuit());
        });
        let compiles = a.stats().misses + b.stats().misses;
        let loads = a.stats().disk_hits + b.stats().disk_hits;
        assert_eq!(compiles + loads, 2);
        assert!(compiles >= 1);
        // Exactly one durable file, no leftover temp files, and it decodes.
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|entry| entry.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries, vec![format!("{:032x}.qdc", spec.cache_key().0)]);
        let fresh = OracleCache::with_disk(DiskCache::open(&dir).unwrap());
        fresh.get_or_compile(&spec).unwrap();
        assert_eq!(fresh.stats().disk_hits, 1);
    }
}
