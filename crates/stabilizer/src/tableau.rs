//! The Aaronson–Gottesman stabilizer tableau: packed bit-columns, CHP
//! conjugation updates, deterministic/random measurement, and affine-support
//! extraction for shot sampling.
//!
//! # Representation
//!
//! The tableau tracks `2n + 1` Pauli rows — destabilizers `0..n`,
//! stabilizers `n..2n`, and one scratch row used by deterministic
//! measurement — in **column-major** packed form: for each qubit `q` there
//! is one `Vec<u64>` bitvector over rows for the X-part and one for the
//! Z-part, plus a shared phase bitvector `r` (bit set ⇔ the row's sign is
//! `-1`). Single- and two-qubit Clifford conjugations then touch only the
//! affected qubit columns and run as whole-word boolean operations over all
//! rows at once — `O(n/64)` words per gate instead of `O(n)` bit updates.
//!
//! # Update rules
//!
//! Writing `x`, `z`, `r` for a row's bits on the gate's qubit, the
//! conjugation rules (standard CHP, with S† and the Pauli gates derived by
//! composition) are:
//!
//! | gate     | update                                                     |
//! |----------|------------------------------------------------------------|
//! | H(q)     | `r ^= x·z`; swap `x` and `z`                                |
//! | S(q)     | `r ^= x·z`; `z ^= x`                                        |
//! | S†(q)    | `r ^= x·¬z`; `z ^= x`                                       |
//! | X(q)     | `r ^= z`                                                    |
//! | Y(q)     | `r ^= x ^ z`                                                |
//! | Z(q)     | `r ^= x`                                                    |
//! | CX(c,t)  | `r ^= x_c·z_t·¬(x_t ^ z_c)`; `x_t ^= x_c`; `z_c ^= z_t`     |
//! | CZ(a,b)  | composed as `H(b)·CX(a,b)·H(b)`                             |
//! | SWAP(a,b)| swap the two qubit columns                                  |
//!
//! `Rz` at an exact multiple of π/2 (the same `1e-9` quarter-turn tolerance
//! as [`QuantumGate::is_clifford`]) snaps to identity/S/Z/S†, and `MCZ`
//! over one or two qubits lowers to Z/CZ; everything else is rejected with
//! the typed [`StabilizerError::NonClifford`].

use crate::{MAX_SAMPLING_RANK, MAX_STABILIZER_QUBITS};
use qdaflow_quantum::fusion::ExecConfig;
use qdaflow_quantum::sampling::CumulativeDistribution;
use qdaflow_quantum::{QuantumCircuit, QuantumError, QuantumGate};
use rand::Rng;
use std::collections::BTreeMap;
use std::error::Error;
use std::f64::consts::FRAC_PI_2;
use std::fmt;

/// Errors produced by the stabilizer tableau layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StabilizerError {
    /// A gate outside the tableau-supported Clifford group was applied.
    NonClifford {
        /// The gate's mnemonic (see [`QuantumGate::name`]).
        gate: &'static str,
    },
    /// A gate references a qubit outside the tableau's register.
    QubitOutOfRange {
        /// The referenced qubit.
        qubit: usize,
        /// Number of qubits in the tableau.
        num_qubits: usize,
    },
    /// The register exceeds [`MAX_STABILIZER_QUBITS`].
    TooManyQubits {
        /// Requested number of qubits.
        requested: usize,
        /// Maximum supported by the tableau.
        maximum: usize,
    },
    /// The final state's support is too large to enumerate for sampling
    /// (more than `2^`[`MAX_SAMPLING_RANK`] outcomes).
    SupportTooLarge {
        /// The support's GF(2) rank (log₂ of the outcome count).
        rank: usize,
        /// The enumeration cap.
        maximum: usize,
    },
    /// A support element sets a basis bit beyond what a `usize` outcome can
    /// carry, so the histogram representation of
    /// [`ExecutionResult`](qdaflow_quantum::backend::ExecutionResult) cannot
    /// hold it.
    OutcomeOverflow {
        /// The offending (0-based) qubit index.
        qubit: usize,
    },
}

impl fmt::Display for StabilizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonClifford { gate } => {
                write!(f, "gate '{gate}' is not Clifford; the stabilizer tableau only simulates the Clifford group")
            }
            Self::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} is out of range for a tableau on {num_qubits} qubits"
                )
            }
            Self::TooManyQubits { requested, maximum } => write!(
                f,
                "a tableau on {requested} qubits exceeds the supported maximum of {maximum}"
            ),
            Self::SupportTooLarge { rank, maximum } => write!(
                f,
                "the state's support has rank {rank} (2^{rank} outcomes), beyond the sampling cap of rank {maximum}"
            ),
            Self::OutcomeOverflow { qubit } => write!(
                f,
                "a support element sets qubit {qubit}, beyond the usize outcome width"
            ),
        }
    }
}

impl Error for StabilizerError {}

impl From<StabilizerError> for QuantumError {
    /// Degrades stabilizer errors onto the shared quantum error vocabulary
    /// (what [`Backend`](qdaflow_quantum::backend::Backend) implementations
    /// must speak): `NonClifford` becomes [`QuantumError::UnsupportedGate`],
    /// the capacity errors become [`QuantumError::TooManyQubits`] over the
    /// relevant bound (register size, support rank, or outcome bit width).
    fn from(inner: StabilizerError) -> Self {
        match inner {
            StabilizerError::NonClifford { gate } => QuantumError::UnsupportedGate {
                gate,
                operation: "the stabilizer tableau",
            },
            StabilizerError::QubitOutOfRange { qubit, num_qubits } => {
                QuantumError::QubitOutOfRange { qubit, num_qubits }
            }
            StabilizerError::TooManyQubits { requested, maximum } => {
                QuantumError::TooManyQubits { requested, maximum }
            }
            StabilizerError::SupportTooLarge { rank, maximum } => QuantumError::TooManyQubits {
                requested: rank,
                maximum,
            },
            StabilizerError::OutcomeOverflow { qubit } => QuantumError::TooManyQubits {
                requested: qubit + 1,
                maximum: usize::BITS as usize,
            },
        }
    }
}

/// Reads bit `row` of a packed column.
fn bit(column: &[u64], row: usize) -> bool {
    (column[row >> 6] >> (row & 63)) & 1 == 1
}

/// Writes bit `row` of a packed column.
fn set_bit(column: &mut [u64], row: usize, value: bool) {
    let mask = 1u64 << (row & 63);
    if value {
        column[row >> 6] |= mask;
    } else {
        column[row >> 6] &= !mask;
    }
}

/// The Aaronson–Gottesman tableau of a stabilizer state on `n` qubits.
///
/// Created in the `|0…0⟩` state by [`StabilizerTableau::new`] (destabilizer
/// `i` = `X_i`, stabilizer `i` = `Z_i`), evolved by Clifford conjugation
/// through [`StabilizerTableau::apply`], measured qubit-by-qubit through
/// [`StabilizerTableau::measure`], and sampled wholesale through
/// [`StabilizerTableau::sampler`]. See the [module docs](self) for the
/// packed representation and the exact update rules.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilizerTableau {
    num_qubits: usize,
    /// Words per row-indexed column: `ceil((2n + 1) / 64)`.
    words: usize,
    /// X-part column of each qubit, bit `j` = row `j`'s X bit on the qubit.
    x: Vec<Vec<u64>>,
    /// Z-part column of each qubit.
    z: Vec<Vec<u64>>,
    /// Phase column: bit `j` set ⇔ row `j` carries sign `-1`.
    r: Vec<u64>,
}

impl StabilizerTableau {
    /// Creates the tableau of `|0…0⟩` on `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`StabilizerError::TooManyQubits`] beyond
    /// [`MAX_STABILIZER_QUBITS`].
    pub fn new(num_qubits: usize) -> Result<Self, StabilizerError> {
        if num_qubits > MAX_STABILIZER_QUBITS {
            return Err(StabilizerError::TooManyQubits {
                requested: num_qubits,
                maximum: MAX_STABILIZER_QUBITS,
            });
        }
        let rows = 2 * num_qubits + 1;
        let words = rows.div_ceil(64);
        let mut tableau = Self {
            num_qubits,
            words,
            x: vec![vec![0; words]; num_qubits],
            z: vec![vec![0; words]; num_qubits],
            r: vec![0; words],
        };
        for q in 0..num_qubits {
            set_bit(&mut tableau.x[q], q, true);
            set_bit(&mut tableau.z[q], num_qubits + q, true);
        }
        Ok(tableau)
    }

    /// Runs a whole circuit from `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`StabilizerError::TooManyQubits`] for oversized registers
    /// and [`StabilizerError::NonClifford`] at the first unsupported gate.
    pub fn from_circuit(circuit: &QuantumCircuit) -> Result<Self, StabilizerError> {
        let mut tableau = Self::new(circuit.num_qubits())?;
        for gate in circuit.gates() {
            tableau.apply(gate)?;
        }
        Ok(tableau)
    }

    /// Number of qubits tracked by the tableau.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    fn check(&self, qubit: usize) -> Result<usize, StabilizerError> {
        if qubit >= self.num_qubits {
            return Err(StabilizerError::QubitOutOfRange {
                qubit,
                num_qubits: self.num_qubits,
            });
        }
        Ok(qubit)
    }

    /// Conjugates the tableau by one gate.
    ///
    /// # Errors
    ///
    /// Returns [`StabilizerError::NonClifford`] for T, T†, CCX, MCX, MCZ
    /// beyond two qubits and Rz angles that are not multiples of π/2 (the
    /// same `1e-9` tolerance as [`QuantumGate::is_clifford`]), and
    /// [`StabilizerError::QubitOutOfRange`] for out-of-register qubits.
    pub fn apply(&mut self, gate: &QuantumGate) -> Result<(), StabilizerError> {
        match gate {
            QuantumGate::H(q) => self.apply_h(self.check(*q)?),
            QuantumGate::S(q) => self.apply_s(self.check(*q)?),
            QuantumGate::Sdg(q) => self.apply_sdg(self.check(*q)?),
            QuantumGate::X(q) => self.apply_x(self.check(*q)?),
            QuantumGate::Y(q) => self.apply_y(self.check(*q)?),
            QuantumGate::Z(q) => self.apply_z(self.check(*q)?),
            QuantumGate::Rz { qubit, angle } => {
                let q = self.check(*qubit)?;
                self.apply_clifford_rz(q, *angle)?;
            }
            QuantumGate::Cx { control, target } => {
                let (c, t) = (self.check(*control)?, self.check(*target)?);
                self.apply_cx(c, t);
            }
            QuantumGate::Cz { a, b } => {
                let (a, b) = (self.check(*a)?, self.check(*b)?);
                self.apply_cz(a, b);
            }
            QuantumGate::Swap { a, b } => {
                let (a, b) = (self.check(*a)?, self.check(*b)?);
                self.x.swap(a, b);
                self.z.swap(a, b);
            }
            QuantumGate::Mcz { qubits } => match qubits.as_slice() {
                // Degenerate multi-controlled Z gates are still Clifford.
                [] => {}
                [q] => self.apply_z(self.check(*q)?),
                [a, b] => {
                    let (a, b) = (self.check(*a)?, self.check(*b)?);
                    self.apply_cz(a, b);
                }
                _ => return Err(StabilizerError::NonClifford { gate: gate.name() }),
            },
            QuantumGate::T(_)
            | QuantumGate::Tdg(_)
            | QuantumGate::Ccx { .. }
            | QuantumGate::Mcx { .. } => {
                return Err(StabilizerError::NonClifford { gate: gate.name() })
            }
        }
        Ok(())
    }

    fn apply_h(&mut self, q: usize) {
        for w in 0..self.words {
            self.r[w] ^= self.x[q][w] & self.z[q][w];
        }
        let (x, z) = (&mut self.x[q], &mut self.z[q]);
        std::mem::swap(x, z);
    }

    fn apply_s(&mut self, q: usize) {
        for w in 0..self.words {
            self.r[w] ^= self.x[q][w] & self.z[q][w];
            self.z[q][w] ^= self.x[q][w];
        }
    }

    fn apply_sdg(&mut self, q: usize) {
        // S† = Z · S: the phase picks up `x & ¬z` instead of `x & z`.
        for w in 0..self.words {
            self.r[w] ^= self.x[q][w] & !self.z[q][w];
            self.z[q][w] ^= self.x[q][w];
        }
    }

    fn apply_x(&mut self, q: usize) {
        for w in 0..self.words {
            self.r[w] ^= self.z[q][w];
        }
    }

    fn apply_y(&mut self, q: usize) {
        // Y anticommutes with both X and Z, so rows carrying exactly one of
        // the two flip sign.
        for w in 0..self.words {
            self.r[w] ^= self.x[q][w] ^ self.z[q][w];
        }
    }

    fn apply_z(&mut self, q: usize) {
        for w in 0..self.words {
            self.r[w] ^= self.x[q][w];
        }
    }

    fn apply_cx(&mut self, c: usize, t: usize) {
        for w in 0..self.words {
            let (xc, zc) = (self.x[c][w], self.z[c][w]);
            let (xt, zt) = (self.x[t][w], self.z[t][w]);
            self.r[w] ^= xc & zt & !(xt ^ zc);
            self.x[t][w] = xt ^ xc;
            self.z[c][w] = zc ^ zt;
        }
    }

    fn apply_cz(&mut self, a: usize, b: usize) {
        // CZ = H(b) · CX(a, b) · H(b); composing the verified primitives is
        // three word sweeps, which keeps one set of sign rules to maintain.
        self.apply_h(b);
        self.apply_cx(a, b);
        self.apply_h(b);
    }

    fn apply_clifford_rz(&mut self, q: usize, angle: f64) -> Result<(), StabilizerError> {
        let quarter_turns = angle / FRAC_PI_2;
        if (quarter_turns - quarter_turns.round()).abs() >= 1e-9 {
            return Err(StabilizerError::NonClifford { gate: "rz" });
        }
        match (quarter_turns.round() as i64).rem_euclid(4) {
            1 => self.apply_s(q),
            2 => self.apply_z(q),
            3 => self.apply_sdg(q),
            _ => {}
        }
        Ok(())
    }

    fn r_bit(&self, row: usize) -> bool {
        bit(&self.r, row)
    }

    /// Left-multiplies row `h` by row `i` (`row_h ← row_i · row_h`), the
    /// `rowsum` of the CHP paper: XOR of the Pauli parts plus the mod-4
    /// phase bookkeeping (the exponent of `i` accumulated per qubit is
    /// always `0` or `2` for commuting stabilizer products).
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut exponent: i64 = 2 * (i64::from(self.r_bit(h)) + i64::from(self.r_bit(i)));
        for q in 0..self.num_qubits {
            let (x1, z1) = (bit(&self.x[q], i), bit(&self.z[q], i));
            let (x2, z2) = (bit(&self.x[q], h), bit(&self.z[q], h));
            exponent += phase_exponent(x1, z1, x2, z2);
            set_bit(&mut self.x[q], h, x1 ^ x2);
            set_bit(&mut self.z[q], h, z1 ^ z2);
        }
        let exponent = exponent.rem_euclid(4);
        debug_assert!(exponent == 0 || exponent == 2, "non-real stabilizer phase");
        set_bit(&mut self.r, h, exponent == 2);
    }

    fn copy_row(&mut self, dst: usize, src: usize) {
        for q in 0..self.num_qubits {
            let x = bit(&self.x[q], src);
            set_bit(&mut self.x[q], dst, x);
            let z = bit(&self.z[q], src);
            set_bit(&mut self.z[q], dst, z);
        }
        let r = self.r_bit(src);
        set_bit(&mut self.r, dst, r);
    }

    fn clear_row(&mut self, row: usize) {
        for q in 0..self.num_qubits {
            set_bit(&mut self.x[q], row, false);
            set_bit(&mut self.z[q], row, false);
        }
        set_bit(&mut self.r, row, false);
    }

    /// The first stabilizer row anticommuting with `Z_q`, if any — its
    /// existence means a `Z_q` measurement is random.
    fn anticommuting_stabilizer(&self, q: usize) -> Option<usize> {
        (self.num_qubits..2 * self.num_qubits).find(|&row| bit(&self.x[q], row))
    }

    /// Whether measuring `qubit` in the computational basis has a
    /// predetermined outcome (no stabilizer anticommutes with `Z_qubit`).
    ///
    /// # Errors
    ///
    /// Returns [`StabilizerError::QubitOutOfRange`] for out-of-register
    /// qubits.
    pub fn is_deterministic(&self, qubit: usize) -> Result<bool, StabilizerError> {
        let q = self.check(qubit)?;
        Ok(self.anticommuting_stabilizer(q).is_none())
    }

    /// Measures `qubit` in the computational basis, collapsing the state.
    ///
    /// Deterministic outcomes are read off the tableau without consuming
    /// randomness; random outcomes consume exactly one `f64` draw from
    /// `rng` (the workspace-wide one-draw-per-outcome RNG discipline) and
    /// update the stabilizers per the CHP measurement rule.
    ///
    /// # Errors
    ///
    /// Returns [`StabilizerError::QubitOutOfRange`] for out-of-register
    /// qubits.
    pub fn measure<R: Rng + ?Sized>(
        &mut self,
        qubit: usize,
        rng: &mut R,
    ) -> Result<bool, StabilizerError> {
        let q = self.check(qubit)?;
        let n = self.num_qubits;
        if let Some(p) = self.anticommuting_stabilizer(q) {
            // Random outcome: make row p the unique anticommuting generator,
            // demote it to the destabilizer side and replace it by ±Z_q.
            for row in 0..2 * n {
                if row != p && bit(&self.x[q], row) {
                    self.rowsum(row, p);
                }
            }
            self.copy_row(p - n, p);
            self.clear_row(p);
            set_bit(&mut self.z[q], p, true);
            let outcome = rng.gen::<f64>() < 0.5;
            set_bit(&mut self.r, p, outcome);
            Ok(outcome)
        } else {
            // Deterministic outcome: accumulate, into the scratch row, the
            // product of the stabilizers matching the destabilizers that
            // anticommute with Z_q; its sign is the outcome.
            let scratch = 2 * n;
            self.clear_row(scratch);
            for i in 0..n {
                if bit(&self.x[q], i) {
                    self.rowsum(scratch, i + n);
                }
            }
            Ok(self.r_bit(scratch))
        }
    }

    /// Extracts the stabilizer generators as row-major Pauli rows
    /// (qubit-indexed bitvecs), the layout Gaussian elimination wants.
    fn stabilizer_rows(&self) -> Vec<PauliRow> {
        let n = self.num_qubits;
        let qwords = qubit_words(n);
        (0..n)
            .map(|g| {
                let row = n + g;
                let mut xs = vec![0u64; qwords];
                let mut zs = vec![0u64; qwords];
                for q in 0..n {
                    if bit(&self.x[q], row) {
                        xs[q >> 6] |= 1 << (q & 63);
                    }
                    if bit(&self.z[q], row) {
                        zs[q >> 6] |= 1 << (q & 63);
                    }
                }
                PauliRow {
                    xs,
                    zs,
                    neg: self.r_bit(row),
                }
            })
            .collect()
    }

    /// Extracts the state's support and packages it for sampling.
    ///
    /// A stabilizer state is uniform (in magnitude) over an affine subspace
    /// of basis states: Gaussian elimination over the generators' X-parts
    /// yields `rank` independent X-carrying generators whose X-parts span
    /// the subspace's direction, and the remaining `n - rank` Z-only
    /// generators pin the offset through their sign constraints
    /// (`(-1)^r Z^v` stabilizes `|x⟩` iff `v·x ≡ r (mod 2)`). The
    /// enumerated support is sorted ascending with exact uniform
    /// probabilities `2^-rank`, matching the dense engine's outcome order.
    ///
    /// # Errors
    ///
    /// Returns [`StabilizerError::SupportTooLarge`] when the rank exceeds
    /// [`MAX_SAMPLING_RANK`] and [`StabilizerError::OutcomeOverflow`] when a
    /// support element needs basis bits beyond the `usize` outcome width.
    pub fn sampler(&self) -> Result<StabilizerSampler, StabilizerError> {
        let n = self.num_qubits;
        let qwords = qubit_words(n);
        let mut gens = self.stabilizer_rows();
        // Full reduction over the X-block: after the sweep the pivot
        // generators' X-parts are an independent (reduced) basis and every
        // non-pivot generator is Z-only.
        let mut pivots: Vec<usize> = Vec::new();
        let mut is_pivot = vec![false; n];
        for q in 0..n {
            let Some(p) = (0..n).find(|&i| !is_pivot[i] && gens[i].x_bit(q)) else {
                continue;
            };
            is_pivot[p] = true;
            let pivot = gens[p].clone();
            for (i, gen) in gens.iter_mut().enumerate() {
                if i != p && gen.x_bit(q) {
                    gen.mul(&pivot, n);
                }
            }
            pivots.push(p);
        }
        let rank = pivots.len();
        if rank > MAX_SAMPLING_RANK {
            return Err(StabilizerError::SupportTooLarge {
                rank,
                maximum: MAX_SAMPLING_RANK,
            });
        }
        // Solve the Z-only sign constraints for the affine offset: RREF over
        // the Z-parts, free variables pinned to zero.
        let mut zrows: Vec<(Vec<u64>, bool)> = (0..n)
            .filter(|&i| !is_pivot[i])
            .map(|i| (gens[i].zs.clone(), gens[i].neg))
            .collect();
        let mut offset = vec![0u64; qwords];
        let mut zpivots: Vec<(usize, usize)> = Vec::new();
        let mut next = 0usize;
        for q in 0..n {
            let Some(i) = (next..zrows.len()).find(|&i| bit_at(&zrows[i].0, q)) else {
                continue;
            };
            zrows.swap(next, i);
            let (pivot_bits, pivot_neg) = zrows[next].clone();
            for (j, (bits, neg)) in zrows.iter_mut().enumerate() {
                if j != next && bit_at(bits, q) {
                    for (word, pivot_word) in bits.iter_mut().zip(&pivot_bits) {
                        *word ^= pivot_word;
                    }
                    *neg ^= pivot_neg;
                }
            }
            zpivots.push((next, q));
            next += 1;
        }
        debug_assert_eq!(next, zrows.len(), "dependent Z-only stabilizers");
        // Signs are read off only after the RREF completes: a pivot row's
        // sign keeps changing while later pivot columns are eliminated from
        // it, and only the fully reduced single-bit row states `x_q = neg`.
        for &(row, q) in &zpivots {
            if zrows[row].1 {
                offset[q >> 6] |= 1 << (q & 63);
            }
        }
        // Outcomes must fit the usize histogram domain.
        let basis_vectors: Vec<&Vec<u64>> = pivots.iter().map(|&p| &gens[p].xs).collect();
        for bits in std::iter::once(&offset).chain(basis_vectors.iter().copied()) {
            if let Some(high) = highest_bit(bits) {
                if high >= usize::BITS as usize {
                    return Err(StabilizerError::OutcomeOverflow { qubit: high });
                }
            }
        }
        let mut outcomes: Vec<usize> = Vec::with_capacity(1usize << rank);
        outcomes.push(low_word(&offset) as usize);
        for bits in &basis_vectors {
            let direction = low_word(bits) as usize;
            for i in 0..outcomes.len() {
                outcomes.push(outcomes[i] ^ direction);
            }
        }
        outcomes.sort_unstable();
        // Uniform 2^-rank probabilities are exactly representable, so the
        // prefix sums the sampler binary-searches carry no rounding at all.
        let probability = 1.0 / outcomes.len() as f64;
        let probabilities = vec![probability; outcomes.len()];
        Ok(StabilizerSampler {
            outcomes,
            distribution: CumulativeDistribution::from_probabilities(&probabilities),
        })
    }
}

/// Words per qubit-indexed bitvec (at least one, so the zero-qubit tableau
/// still has an offset word).
fn qubit_words(num_qubits: usize) -> usize {
    num_qubits.div_ceil(64).max(1)
}

fn bit_at(bits: &[u64], index: usize) -> bool {
    (bits[index >> 6] >> (index & 63)) & 1 == 1
}

fn highest_bit(bits: &[u64]) -> Option<usize> {
    bits.iter()
        .enumerate()
        .rev()
        .find(|(_, word)| **word != 0)
        .map(|(w, word)| (w << 6) + 63 - word.leading_zeros() as usize)
}

fn low_word(bits: &[u64]) -> u64 {
    bits[0]
}

/// The per-qubit contribution to the exponent of `i` when multiplying Pauli
/// row 2 by Pauli row 1 (the `g` function of the CHP paper).
fn phase_exponent(x1: bool, z1: bool, x2: bool, z2: bool) -> i64 {
    match (x1, z1) {
        (false, false) => 0,
        (true, true) => i64::from(z2) - i64::from(x2),
        (true, false) => i64::from(z2) * (2 * i64::from(x2) - 1),
        (false, true) => i64::from(x2) * (1 - 2 * i64::from(z2)),
    }
}

/// One Pauli generator in row-major (qubit-indexed) packed form, used by
/// the support-extraction elimination.
#[derive(Debug, Clone)]
struct PauliRow {
    xs: Vec<u64>,
    zs: Vec<u64>,
    neg: bool,
}

impl PauliRow {
    fn x_bit(&self, q: usize) -> bool {
        bit_at(&self.xs, q)
    }

    /// `self ← other · self`, with the same mod-4 phase bookkeeping as
    /// [`StabilizerTableau::rowsum`].
    fn mul(&mut self, other: &PauliRow, num_qubits: usize) {
        let mut exponent: i64 = 2 * (i64::from(self.neg) + i64::from(other.neg));
        for q in 0..num_qubits {
            exponent += phase_exponent(
                bit_at(&other.xs, q),
                bit_at(&other.zs, q),
                bit_at(&self.xs, q),
                bit_at(&self.zs, q),
            );
        }
        for (word, other_word) in self.xs.iter_mut().zip(&other.xs) {
            *word ^= other_word;
        }
        for (word, other_word) in self.zs.iter_mut().zip(&other.zs) {
            *word ^= other_word;
        }
        let exponent = exponent.rem_euclid(4);
        debug_assert!(exponent == 0 || exponent == 2, "non-real stabilizer phase");
        self.neg = exponent == 2;
    }
}

/// The enumerated support of a stabilizer state, ready for measurement
/// sampling: a sorted outcome list plus the exact uniform
/// [`CumulativeDistribution`] over it.
///
/// Sampling follows the workspace-wide discipline — one `f64` draw per shot
/// through [`StabilizerSampler::sample_counts`], and the shared
/// `(seed, shard)` stream scheme through
/// [`StabilizerSampler::sample_counts_sharded`] — so equal-seed runs agree
/// with the dense engine shot for shot on the shared domain (the
/// differential test contract of this crate).
#[derive(Debug, Clone, PartialEq)]
pub struct StabilizerSampler {
    outcomes: Vec<usize>,
    distribution: CumulativeDistribution,
}

impl StabilizerSampler {
    /// The sorted basis states carrying probability mass (each with
    /// probability `1 / support().len()`).
    pub fn support(&self) -> &[usize] {
        &self.outcomes
    }

    /// Samples `shots` outcomes sequentially from `rng` into a sparse
    /// histogram (zero-count outcomes omitted).
    pub fn sample_counts<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        shots: usize,
    ) -> BTreeMap<usize, usize> {
        self.collect_counts(self.distribution.sample_counts(rng, shots))
    }

    /// Shot-sharded parallel sampling under an explicit seed: identical
    /// histograms at every thread count, fully determined by
    /// `(seed, shots, config.shot_shard_size)` — the execution path the
    /// batch engine uses.
    pub fn sample_counts_sharded(
        &self,
        seed: u64,
        shots: usize,
        config: &ExecConfig,
    ) -> BTreeMap<usize, usize> {
        self.collect_counts(self.distribution.sample_sharded(
            seed,
            shots,
            config.threads,
            config.shot_shard_size,
        ))
    }

    fn collect_counts(&self, histogram: Vec<usize>) -> BTreeMap<usize, usize> {
        self.outcomes
            .iter()
            .zip(histogram)
            .filter(|(_, count)| *count > 0)
            .map(|(&outcome, count)| (outcome, count))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn circuit(num_qubits: usize, gates: &[QuantumGate]) -> QuantumCircuit {
        let mut circuit = QuantumCircuit::new(num_qubits);
        for gate in gates {
            circuit.push(gate.clone()).unwrap();
        }
        circuit
    }

    #[test]
    fn fresh_tableau_is_all_zeros() {
        let tableau = StabilizerTableau::new(3).unwrap();
        let sampler = tableau.sampler().unwrap();
        assert_eq!(sampler.support(), &[0]);
    }

    #[test]
    fn x_layer_flips_the_deterministic_outcome() {
        let mut tableau = StabilizerTableau::new(4).unwrap();
        tableau.apply(&QuantumGate::X(1)).unwrap();
        tableau.apply(&QuantumGate::X(3)).unwrap();
        assert_eq!(tableau.sampler().unwrap().support(), &[0b1010]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(tableau.is_deterministic(1).unwrap());
        assert!(tableau.measure(1, &mut rng).unwrap());
        assert!(!tableau.measure(0, &mut rng).unwrap());
    }

    #[test]
    fn bell_pair_measurements_are_correlated() {
        for seed in 0..32u64 {
            let mut tableau = StabilizerTableau::from_circuit(&circuit(
                2,
                &[
                    QuantumGate::H(0),
                    QuantumGate::Cx {
                        control: 0,
                        target: 1,
                    },
                ],
            ))
            .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            assert!(!tableau.is_deterministic(0).unwrap());
            let first = tableau.measure(0, &mut rng).unwrap();
            assert!(tableau.is_deterministic(1).unwrap());
            assert_eq!(tableau.measure(1, &mut rng).unwrap(), first);
        }
    }

    #[test]
    fn ghz_support_is_the_two_extremes() {
        let tableau = StabilizerTableau::from_circuit(&circuit(
            5,
            &[
                QuantumGate::H(0),
                QuantumGate::Cx {
                    control: 0,
                    target: 1,
                },
                QuantumGate::Cx {
                    control: 1,
                    target: 2,
                },
                QuantumGate::Cx {
                    control: 2,
                    target: 3,
                },
                QuantumGate::Cx {
                    control: 3,
                    target: 4,
                },
            ],
        ))
        .unwrap();
        assert_eq!(tableau.sampler().unwrap().support(), &[0, 0b11111]);
    }

    #[test]
    fn minus_state_keeps_uniform_support_with_phase() {
        // HZH = X: |0⟩ → |1⟩ via phase bookkeeping through the H/Z rules.
        let tableau = StabilizerTableau::from_circuit(&circuit(
            1,
            &[QuantumGate::H(0), QuantumGate::Z(0), QuantumGate::H(0)],
        ))
        .unwrap();
        assert_eq!(tableau.sampler().unwrap().support(), &[1]);
    }

    #[test]
    fn s_gate_composition_matches_pauli_identities() {
        // S·S = Z and S·S† = I, checked through HSSH = HZH = X.
        let x_via_s = StabilizerTableau::from_circuit(&circuit(
            1,
            &[
                QuantumGate::H(0),
                QuantumGate::S(0),
                QuantumGate::S(0),
                QuantumGate::H(0),
            ],
        ))
        .unwrap();
        assert_eq!(x_via_s.sampler().unwrap().support(), &[1]);
        let identity = StabilizerTableau::from_circuit(&circuit(
            1,
            &[
                QuantumGate::H(0),
                QuantumGate::S(0),
                QuantumGate::Sdg(0),
                QuantumGate::H(0),
            ],
        ))
        .unwrap();
        assert_eq!(identity.sampler().unwrap().support(), &[0]);
    }

    #[test]
    fn clifford_rz_snaps_to_quarter_turns() {
        // Rz(π) between Hadamards is X; Rz(π/4) is non-Clifford.
        let tableau = StabilizerTableau::from_circuit(&circuit(
            1,
            &[
                QuantumGate::H(0),
                QuantumGate::Rz {
                    qubit: 0,
                    angle: std::f64::consts::PI,
                },
                QuantumGate::H(0),
            ],
        ))
        .unwrap();
        assert_eq!(tableau.sampler().unwrap().support(), &[1]);
        let mut rejected = StabilizerTableau::new(1).unwrap();
        assert_eq!(
            rejected.apply(&QuantumGate::Rz {
                qubit: 0,
                angle: std::f64::consts::FRAC_PI_4,
            }),
            Err(StabilizerError::NonClifford { gate: "rz" })
        );
    }

    #[test]
    fn non_clifford_gates_are_rejected_with_their_mnemonic() {
        let mut tableau = StabilizerTableau::new(3).unwrap();
        assert_eq!(
            tableau.apply(&QuantumGate::T(0)),
            Err(StabilizerError::NonClifford { gate: "t" })
        );
        assert_eq!(
            tableau.apply(&QuantumGate::Ccx {
                control_a: 0,
                control_b: 1,
                target: 2,
            }),
            Err(StabilizerError::NonClifford { gate: "ccx" })
        );
        assert_eq!(
            tableau.apply(&QuantumGate::Mcz {
                qubits: vec![0, 1, 2],
            }),
            Err(StabilizerError::NonClifford { gate: "mcz" })
        );
        let quantum: QuantumError = StabilizerError::NonClifford { gate: "t" }.into();
        assert!(matches!(
            quantum,
            QuantumError::UnsupportedGate { gate: "t", .. }
        ));
    }

    #[test]
    fn two_qubit_mcz_lowers_to_cz() {
        let via_mcz = StabilizerTableau::from_circuit(&circuit(
            2,
            &[
                QuantumGate::H(0),
                QuantumGate::H(1),
                QuantumGate::Mcz { qubits: vec![0, 1] },
                QuantumGate::H(1),
            ],
        ))
        .unwrap();
        let via_cz = StabilizerTableau::from_circuit(&circuit(
            2,
            &[
                QuantumGate::H(0),
                QuantumGate::H(1),
                QuantumGate::Cz { a: 0, b: 1 },
                QuantumGate::H(1),
            ],
        ))
        .unwrap();
        assert_eq!(via_mcz, via_cz);
    }

    #[test]
    fn swap_exchanges_columns() {
        let tableau = StabilizerTableau::from_circuit(&circuit(
            3,
            &[QuantumGate::X(0), QuantumGate::Swap { a: 0, b: 2 }],
        ))
        .unwrap();
        assert_eq!(tableau.sampler().unwrap().support(), &[0b100]);
    }

    #[test]
    fn support_rank_is_capped() {
        let mut gates = Vec::new();
        for q in 0..(MAX_SAMPLING_RANK + 1) {
            gates.push(QuantumGate::H(q));
        }
        let tableau =
            StabilizerTableau::from_circuit(&circuit(MAX_SAMPLING_RANK + 1, &gates)).unwrap();
        assert_eq!(
            tableau.sampler(),
            Err(StabilizerError::SupportTooLarge {
                rank: MAX_SAMPLING_RANK + 1,
                maximum: MAX_SAMPLING_RANK,
            })
        );
    }

    #[test]
    fn outcomes_beyond_usize_are_a_typed_error() {
        let tableau = StabilizerTableau::from_circuit(&circuit(70, &[QuantumGate::X(69)])).unwrap();
        assert_eq!(
            tableau.sampler(),
            Err(StabilizerError::OutcomeOverflow { qubit: 69 })
        );
    }

    #[test]
    fn register_cap_is_enforced() {
        assert!(StabilizerTableau::new(MAX_STABILIZER_QUBITS).is_ok());
        assert_eq!(
            StabilizerTableau::new(MAX_STABILIZER_QUBITS + 1),
            Err(StabilizerError::TooManyQubits {
                requested: MAX_STABILIZER_QUBITS + 1,
                maximum: MAX_STABILIZER_QUBITS,
            })
        );
    }

    #[test]
    fn out_of_range_qubits_are_a_typed_error() {
        let mut tableau = StabilizerTableau::new(2).unwrap();
        assert_eq!(
            tableau.apply(&QuantumGate::H(5)),
            Err(StabilizerError::QubitOutOfRange {
                qubit: 5,
                num_qubits: 2,
            })
        );
    }

    #[test]
    fn sharded_sampling_is_thread_count_invariant() {
        let tableau = StabilizerTableau::from_circuit(&circuit(
            3,
            &[
                QuantumGate::H(0),
                QuantumGate::H(2),
                QuantumGate::Cx {
                    control: 0,
                    target: 1,
                },
            ],
        ))
        .unwrap();
        let sampler = tableau.sampler().unwrap();
        assert_eq!(sampler.support(), &[0b000, 0b011, 0b100, 0b111]);
        let config = ExecConfig::sequential().with_shot_shard_size(64);
        let reference = sampler.sample_counts_sharded(9, 4000, &config);
        assert_eq!(reference.values().sum::<usize>(), 4000);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                sampler.sample_counts_sharded(9, 4000, &config.with_threads(threads)),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn measurement_collapse_matches_the_sampled_support() {
        // Measuring every qubit of a random-ish Clifford state always lands
        // inside the support the sampler enumerates.
        let gates = [
            QuantumGate::H(0),
            QuantumGate::S(0),
            QuantumGate::Cx {
                control: 0,
                target: 2,
            },
            QuantumGate::H(3),
            QuantumGate::Cz { a: 3, b: 1 },
            QuantumGate::Y(1),
            QuantumGate::Swap { a: 2, b: 3 },
        ];
        let base = StabilizerTableau::from_circuit(&circuit(4, &gates)).unwrap();
        let support = base.sampler().unwrap().support().to_vec();
        for seed in 0..64u64 {
            let mut tableau = base.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut outcome = 0usize;
            for q in 0..4 {
                if tableau.measure(q, &mut rng).unwrap() {
                    outcome |= 1 << q;
                }
            }
            assert!(support.contains(&outcome), "outcome {outcome} off-support");
        }
    }
}
