//! The Boolean hidden shift problem (Sections VI–VIII of the paper).
//!
//! Given oracle access to `g(x) = f(x ⊕ s)` and to the dual bent function
//! `f~`, the quantum algorithm of Fig. 3 recovers the hidden shift `s` with a
//! single query to each oracle:
//!
//! ```text
//! |0^n⟩ ── H^n ── U_g ── H^n ── U_f~ ── H^n ── measure ──▶ |s⟩
//! ```
//!
//! This module builds the complete compiled circuit for an instance, either
//! from plain truth-table phase oracles (the Fig. 4/5 flow) or from the
//! structured Maiorana–McFarland construction with RevKit-synthesized
//! permutation oracles (the Fig. 7/8 flow), and runs it on any backend.

use qdaflow_boolfn::{bent::MaioranaMcFarland, spectrum, BoolfnError, TruthTable};
use qdaflow_engine::{EngineError, MainEngine, Qubit, SynthesisChoice};
use qdaflow_quantum::backend::{Backend, ExecutionResult, StatevectorBackend};
use qdaflow_quantum::noise::NoiseModel;
use qdaflow_quantum::QuantumCircuit;

/// How the oracles of the hidden shift circuit are compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleStyle {
    /// Compile `U_g` and `U_f~` directly from their truth tables through
    /// ESOP-based phase oracles (the flow of Fig. 4/5).
    #[default]
    TruthTable,
    /// Use the structured Maiorana–McFarland construction: the permutation
    /// `π` is synthesized by RevKit-style reversible synthesis into a
    /// permutation oracle which conjugates an inner-product CZ layer
    /// (the flow of Fig. 7/8). Only available for instances constructed from
    /// a [`MaioranaMcFarland`] function.
    MaioranaMcFarland {
        /// Which reversible synthesis algorithm compiles the permutation.
        synthesis: SynthesisChoice,
    },
}

/// A fully specified instance of the hidden shift problem.
#[derive(Debug, Clone)]
pub struct HiddenShiftInstance {
    function: TruthTable,
    dual: TruthTable,
    shift: usize,
    structured: Option<MaioranaMcFarland>,
}

/// The result of executing a hidden shift circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct HiddenShiftOutcome {
    /// The shift that was planted in the instance.
    pub planted_shift: usize,
    /// The most frequently measured outcome, if any shots were taken.
    pub recovered_shift: Option<usize>,
    /// Empirical probability of measuring the planted shift.
    pub success_probability: f64,
    /// The raw execution result (counts, resources).
    pub execution: ExecutionResult,
}

impl HiddenShiftInstance {
    /// Creates an instance from an arbitrary bent function given as a truth
    /// table, planting the shift `s`.
    ///
    /// # Errors
    ///
    /// Returns [`BoolfnError::NotBent`] (or
    /// [`BoolfnError::OddVariableCount`]) if the function is not bent, so no
    /// dual exists.
    ///
    /// # Panics
    ///
    /// Panics if `shift >= 2^{num_vars}`.
    pub fn from_bent_function(function: &TruthTable, shift: usize) -> Result<Self, BoolfnError> {
        assert!(
            shift < function.len(),
            "shift {shift} out of range for {} variables",
            function.num_vars()
        );
        let dual = spectrum::dual_bent(function)?;
        Ok(Self {
            function: function.clone(),
            dual,
            shift,
            structured: None,
        })
    }

    /// Creates an instance from a Maiorana–McFarland bent function, planting
    /// the shift `s`. The structured form enables the
    /// [`OracleStyle::MaioranaMcFarland`] compilation path.
    ///
    /// # Errors
    ///
    /// Returns an error if the function is too large for explicit truth
    /// tables.
    ///
    /// # Panics
    ///
    /// Panics if `shift >= 2^{num_vars}`.
    pub fn from_maiorana_mcfarland(
        function: &MaioranaMcFarland,
        shift: usize,
    ) -> Result<Self, BoolfnError> {
        let table = function.truth_table()?;
        assert!(
            shift < table.len(),
            "shift {shift} out of range for {} variables",
            table.num_vars()
        );
        let dual = function.dual_truth_table()?;
        Ok(Self {
            function: table,
            dual,
            shift,
            structured: Some(function.clone()),
        })
    }

    /// Number of qubits the algorithm needs (not counting mapping ancillas).
    pub fn num_vars(&self) -> usize {
        self.function.num_vars()
    }

    /// The planted shift.
    pub fn shift(&self) -> usize {
        self.shift
    }

    /// The bent function `f`.
    pub fn function(&self) -> &TruthTable {
        &self.function
    }

    /// The dual bent function `f~`.
    pub fn dual(&self) -> &TruthTable {
        &self.dual
    }

    /// The shifted oracle function `g(x) = f(x ⊕ s)`.
    pub fn shifted_function(&self) -> TruthTable {
        self.function.xor_shift(self.shift)
    }

    /// Builds the complete compiled circuit of Fig. 3 for this instance.
    ///
    /// # Errors
    ///
    /// Returns an engine error if compilation fails, and an error when
    /// [`OracleStyle::MaioranaMcFarland`] is requested for an instance that
    /// was not constructed from a structured Maiorana–McFarland function.
    pub fn build_circuit(&self, style: OracleStyle) -> Result<QuantumCircuit, EngineError> {
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(self.num_vars());
        self.emit_algorithm(&mut engine, &qubits, style)?;
        Ok(engine.circuit())
    }

    /// Emits the algorithm onto an existing engine and register (useful when
    /// the caller wants to choose the backend through the engine).
    ///
    /// # Errors
    ///
    /// Same as [`HiddenShiftInstance::build_circuit`].
    pub fn emit_algorithm(
        &self,
        engine: &mut MainEngine,
        qubits: &[Qubit],
        style: OracleStyle,
    ) -> Result<(), EngineError> {
        if qubits.len() != self.num_vars() {
            return Err(EngineError::RegisterSizeMismatch {
                expected: self.num_vars(),
                provided: qubits.len(),
            });
        }
        // Step 1: H^n.
        engine.all_h(qubits)?;
        // Step 2: U_g = X^s · U_f · X^s.
        let shift_section = engine.begin_compute();
        self.apply_shift(engine, qubits)?;
        let shift_section = engine.end_compute(shift_section);
        self.apply_function_oracle(engine, qubits, style)?;
        engine.uncompute(&shift_section)?;
        // Step 3: H^n.
        engine.all_h(qubits)?;
        // Step 4: U_f~.
        self.apply_dual_oracle(engine, qubits, style)?;
        // Step 5: H^n (measurement happens in the backend).
        engine.all_h(qubits)?;
        Ok(())
    }

    fn apply_shift(&self, engine: &mut MainEngine, qubits: &[Qubit]) -> Result<(), EngineError> {
        for (bit, &qubit) in qubits.iter().enumerate() {
            if (self.shift >> bit) & 1 == 1 {
                engine.x(qubit)?;
            }
        }
        Ok(())
    }

    fn apply_function_oracle(
        &self,
        engine: &mut MainEngine,
        qubits: &[Qubit],
        style: OracleStyle,
    ) -> Result<(), EngineError> {
        match (style, &self.structured) {
            (OracleStyle::TruthTable, _) | (OracleStyle::MaioranaMcFarland { .. }, None) => {
                engine.phase_oracle(&self.function, qubits)
            }
            (OracleStyle::MaioranaMcFarland { synthesis }, Some(mm)) => {
                let n_half = mm.n_half();
                let (x_register, y_register) = split_register(qubits, n_half);
                // U_f: conjugate the inner-product CZ layer with π on the y half.
                engine.permutation_oracle(mm.pi(), &y_register, synthesis)?;
                inner_product_layer(engine, &x_register, &y_register)?;
                engine.permutation_oracle_dagger(mm.pi(), &y_register, synthesis)?;
                // The h(y) part is a phase oracle on the y half alone.
                if mm.h().count_ones() > 0 {
                    engine.phase_oracle(mm.h(), &y_register)?;
                }
                Ok(())
            }
        }
    }

    fn apply_dual_oracle(
        &self,
        engine: &mut MainEngine,
        qubits: &[Qubit],
        style: OracleStyle,
    ) -> Result<(), EngineError> {
        match (style, &self.structured) {
            (OracleStyle::TruthTable, _) | (OracleStyle::MaioranaMcFarland { .. }, None) => {
                engine.phase_oracle(&self.dual, qubits)
            }
            (OracleStyle::MaioranaMcFarland { synthesis }, Some(mm)) => {
                let n_half = mm.n_half();
                let (x_register, y_register) = split_register(qubits, n_half);
                // U_f~: f~(x, y) = π⁻¹(x)·y ⊕ h(π⁻¹(x)). Map x → π⁻¹(x) by
                // applying the adjoint of the π oracle (the Dagger construction
                // of Fig. 7), apply the CZ layer and the h phase on the x half,
                // then restore x.
                engine.permutation_oracle_dagger(mm.pi(), &x_register, synthesis)?;
                inner_product_layer(engine, &x_register, &y_register)?;
                if mm.h().count_ones() > 0 {
                    engine.phase_oracle(mm.h(), &x_register)?;
                }
                engine.permutation_oracle(mm.pi(), &x_register, synthesis)?;
                Ok(())
            }
        }
    }

    /// Builds the circuit and runs it on the exact statevector backend.
    ///
    /// # Errors
    ///
    /// Propagates compilation and simulation errors.
    pub fn run_ideal(
        &self,
        circuit: &QuantumCircuit,
        shots: usize,
    ) -> Result<HiddenShiftOutcome, EngineError> {
        let mut backend = StatevectorBackend::seeded(0xDA7E);
        self.run_on(&mut backend, circuit, shots)
    }

    /// Runs a previously built circuit on the noisy hardware model (the
    /// IBM QX substitute used for Fig. 6).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run_noisy(
        &self,
        circuit: &QuantumCircuit,
        model: NoiseModel,
        shots: usize,
        seed: u64,
    ) -> Result<HiddenShiftOutcome, EngineError> {
        let mut backend = qdaflow_quantum::backend::NoisyHardwareBackend::new(model, seed);
        self.run_on(&mut backend, circuit, shots)
    }

    /// Runs a previously built circuit on an arbitrary backend.
    ///
    /// # Errors
    ///
    /// Propagates backend execution errors.
    pub fn run_on(
        &self,
        backend: &mut dyn Backend,
        circuit: &QuantumCircuit,
        shots: usize,
    ) -> Result<HiddenShiftOutcome, EngineError> {
        let execution = backend.run(circuit, shots)?;
        // Only the first `n` measured bits carry the shift; mapping ancillas
        // (if any) are clean and measure to zero, so masking is safe.
        let mask = (1usize << self.num_vars()) - 1;
        let mut masked: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for (&outcome, &count) in &execution.counts {
            *masked.entry(outcome & mask).or_insert(0) += count;
        }
        let recovered = masked
            .iter()
            .max_by_key(|(_, &count)| count)
            .map(|(&outcome, _)| outcome);
        let success = if shots == 0 {
            0.0
        } else {
            *masked.get(&self.shift).unwrap_or(&0) as f64 / shots as f64
        };
        Ok(HiddenShiftOutcome {
            planted_shift: self.shift,
            recovered_shift: recovered,
            success_probability: success,
            execution,
        })
    }
}

/// Splits an interleaved register into the `(x, y)` halves used by the
/// Maiorana–McFarland construction: qubit `i` of the register carries bit `i`
/// of the combined index, so the low `n_half` qubits are `x` and the high
/// ones are `y`.
fn split_register(qubits: &[Qubit], n_half: usize) -> (Vec<Qubit>, Vec<Qubit>) {
    (qubits[..n_half].to_vec(), qubits[n_half..].to_vec())
}

/// Applies the inner-product phase layer `Π_i CZ(x_i, y_i)`.
fn inner_product_layer(
    engine: &mut MainEngine,
    x_register: &[Qubit],
    y_register: &[Qubit],
) -> Result<(), EngineError> {
    for (&x, &y) in x_register.iter().zip(y_register) {
        engine.cz(x, y)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdaflow_boolfn::{Expr, Permutation};

    fn fig4_instance() -> HiddenShiftInstance {
        let f = Expr::parse("(x0 & x1) ^ (x2 & x3)")
            .unwrap()
            .truth_table(4)
            .unwrap();
        HiddenShiftInstance::from_bent_function(&f, 1).unwrap()
    }

    fn fig7_instance() -> HiddenShiftInstance {
        let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
        let mm = MaioranaMcFarland::with_zero_h(pi).unwrap();
        HiddenShiftInstance::from_maiorana_mcfarland(&mm, 5).unwrap()
    }

    #[test]
    fn non_bent_functions_are_rejected() {
        let linear = Expr::parse("x0 ^ x1").unwrap().truth_table(2).unwrap();
        assert!(HiddenShiftInstance::from_bent_function(&linear, 1).is_err());
    }

    #[test]
    fn fig4_instance_recovers_shift_deterministically() {
        let instance = fig4_instance();
        let circuit = instance.build_circuit(OracleStyle::TruthTable).unwrap();
        let outcome = instance.run_ideal(&circuit, 256).unwrap();
        assert_eq!(outcome.recovered_shift, Some(1));
        assert!((outcome.success_probability - 1.0).abs() < 1e-9);
        assert_eq!(outcome.planted_shift, 1);
    }

    #[test]
    fn all_shifts_are_recovered_for_the_inner_product_function() {
        let f = Expr::parse("(x0 & x1) ^ (x2 & x3)")
            .unwrap()
            .truth_table(4)
            .unwrap();
        for shift in 0..16usize {
            let instance = HiddenShiftInstance::from_bent_function(&f, shift).unwrap();
            let circuit = instance.build_circuit(OracleStyle::TruthTable).unwrap();
            let outcome = instance.run_ideal(&circuit, 64).unwrap();
            assert_eq!(outcome.recovered_shift, Some(shift), "shift {shift}");
            assert!((outcome.success_probability - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig7_instance_recovers_shift_with_truth_table_oracles() {
        let instance = fig7_instance();
        let circuit = instance.build_circuit(OracleStyle::TruthTable).unwrap();
        let outcome = instance.run_ideal(&circuit, 64).unwrap();
        assert_eq!(outcome.recovered_shift, Some(5));
    }

    #[test]
    fn fig7_instance_recovers_shift_with_structured_oracles() {
        let instance = fig7_instance();
        for synthesis in [
            SynthesisChoice::TransformationBased,
            SynthesisChoice::DecompositionBased,
        ] {
            let circuit = instance
                .build_circuit(OracleStyle::MaioranaMcFarland { synthesis })
                .unwrap();
            let outcome = instance.run_ideal(&circuit, 64).unwrap();
            assert_eq!(outcome.recovered_shift, Some(5), "{synthesis:?}");
            assert!((outcome.success_probability - 1.0).abs() < 1e-9);
            assert!(circuit.is_clifford_t());
        }
    }

    #[test]
    fn structured_instances_with_nonzero_h_work() {
        let pi = Permutation::random_seeded(2, 11);
        let h = TruthTable::from_fn(2, |y| y == 2).unwrap();
        let mm = MaioranaMcFarland::new(pi, h).unwrap();
        let instance = HiddenShiftInstance::from_maiorana_mcfarland(&mm, 6).unwrap();
        for style in [
            OracleStyle::TruthTable,
            OracleStyle::MaioranaMcFarland {
                synthesis: SynthesisChoice::TransformationBased,
            },
        ] {
            let circuit = instance.build_circuit(style).unwrap();
            let outcome = instance.run_ideal(&circuit, 64).unwrap();
            assert_eq!(outcome.recovered_shift, Some(6), "{style:?}");
        }
    }

    #[test]
    fn structured_style_falls_back_to_truth_tables_for_unstructured_instances() {
        let instance = fig4_instance();
        let circuit = instance
            .build_circuit(OracleStyle::MaioranaMcFarland {
                synthesis: SynthesisChoice::TransformationBased,
            })
            .unwrap();
        let outcome = instance.run_ideal(&circuit, 64).unwrap();
        assert_eq!(outcome.recovered_shift, Some(1));
    }

    #[test]
    fn noisy_execution_degrades_but_still_finds_the_shift() {
        let instance = fig4_instance();
        let circuit = instance.build_circuit(OracleStyle::TruthTable).unwrap();
        let outcome = instance
            .run_noisy(&circuit, NoiseModel::ibm_qx_2017(), 1024, 7)
            .unwrap();
        assert!(outcome.success_probability < 1.0);
        assert!(
            outcome.success_probability > 0.4,
            "success probability {}",
            outcome.success_probability
        );
        assert_eq!(outcome.recovered_shift, Some(1));
    }

    #[test]
    fn accessors_expose_the_specification() {
        let instance = fig4_instance();
        assert_eq!(instance.num_vars(), 4);
        assert_eq!(instance.shift(), 1);
        assert_eq!(
            instance.shifted_function(),
            instance.function().xor_shift(1)
        );
        // f is self-dual for the inner-product function.
        assert_eq!(instance.dual(), instance.function());
    }

    #[test]
    fn emit_algorithm_checks_register_width() {
        let instance = fig4_instance();
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(3);
        assert!(matches!(
            instance.emit_algorithm(&mut engine, &qubits, OracleStyle::TruthTable),
            Err(EngineError::RegisterSizeMismatch { .. })
        ));
    }
}
