//! The single statevector gate-application kernel.
//!
//! Every execution path of the workspace — [`Statevector`] evolution, the
//! Monte-Carlo [`NoisySimulator`] and the sampling [`Backend`] impls — funnels
//! per-gate state updates through [`apply_gate`] in this module. Keeping the
//! per-gate dispatch in one place means an optimization (or a new gate)
//! lands in the ideal simulator, the noise model and every backend at once.
//!
//! The kernel operates on a raw amplitude slice of length `2^n`, with qubit 0
//! as the least significant bit of the basis-state index. Three specialized
//! loops cover the gate classes of the Clifford+T IR:
//!
//! * **diagonal gates** (Z, S, S†, T, T†, Rz, CZ, MCZ) multiply a phase onto
//!   the amplitudes of the matching subspace and never move data,
//! * **classical bit flips** (X via MCX with no controls, CX, CCX, MCX, SWAP)
//!   permute amplitudes without arithmetic,
//! * the remaining **dense single-qubit gates** (H, Y, X when convenient)
//!   apply a full 2×2 unitary to each amplitude pair.
//!
//! [`Statevector`]: crate::statevector::Statevector
//! [`NoisySimulator`]: crate::noise::NoisySimulator
//! [`Backend`]: crate::backend::Backend

use crate::complex::Complex;
use crate::gate::QuantumGate;

/// Number of qubits represented by an amplitude slice.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn num_qubits_of(amplitudes: &[Complex]) -> usize {
    assert!(
        amplitudes.len().is_power_of_two(),
        "amplitude slice length {} is not a power of two",
        amplitudes.len()
    );
    amplitudes.len().trailing_zeros() as usize
}

/// Applies one gate in place to a `2^n` amplitude slice.
///
/// This is the only per-gate dispatch over [`QuantumGate`] that mutates
/// amplitudes anywhere in the workspace.
///
/// # Panics
///
/// Panics if the gate references a qubit outside the register.
pub fn apply_gate(amplitudes: &mut [Complex], gate: &QuantumGate) {
    match gate {
        QuantumGate::Cx { control, target } => apply_mcx(amplitudes, &[*control], *target),
        QuantumGate::Cz { a, b } => apply_mcz(amplitudes, &[*a, *b]),
        QuantumGate::Swap { a, b } => apply_swap(amplitudes, *a, *b),
        QuantumGate::Ccx {
            control_a,
            control_b,
            target,
        } => apply_mcx(amplitudes, &[*control_a, *control_b], *target),
        QuantumGate::Mcx { controls, target } => apply_mcx(amplitudes, controls, *target),
        QuantumGate::Mcz { qubits } => apply_mcz(amplitudes, qubits),
        single => {
            let qubit = single.qubits()[0];
            let matrix = single
                .single_qubit_matrix()
                .expect("all remaining gates are single-qubit");
            if single.is_diagonal() {
                // Diagonal gates have u00 = 1 in this gate set; only the
                // phase on the |1⟩ subspace matters.
                debug_assert!(
                    matrix[0][0].approx_eq(Complex::ONE, 1e-12),
                    "diagonal fast path requires u00 = 1, got {:?} for {gate:?}",
                    matrix[0][0]
                );
                apply_phase(amplitudes, qubit, matrix[1][1]);
            } else {
                apply_single_qubit(amplitudes, qubit, &matrix);
            }
        }
    }
}

/// Applies every gate of `circuit` in order.
///
/// # Panics
///
/// Panics if the circuit references a qubit outside the register.
pub fn apply_circuit(amplitudes: &mut [Complex], circuit: &crate::circuit::QuantumCircuit) {
    for gate in circuit {
        apply_gate(amplitudes, gate);
    }
}

/// Applies an arbitrary 2×2 unitary to one qubit.
///
/// # Panics
///
/// Panics if `qubit` is out of range.
pub fn apply_single_qubit(amplitudes: &mut [Complex], qubit: usize, matrix: &[[Complex; 2]; 2]) {
    let bit = checked_bit(amplitudes, qubit);
    for index in 0..amplitudes.len() {
        if index & bit == 0 {
            let low = amplitudes[index];
            let high = amplitudes[index | bit];
            amplitudes[index] = matrix[0][0] * low + matrix[0][1] * high;
            amplitudes[index | bit] = matrix[1][0] * low + matrix[1][1] * high;
        }
    }
}

/// Multiplies `phase` onto every amplitude whose `qubit` bit is set — the
/// fast path for the diagonal gates Z, S, S†, T, T† and Rz.
///
/// # Panics
///
/// Panics if `qubit` is out of range.
pub fn apply_phase(amplitudes: &mut [Complex], qubit: usize, phase: Complex) {
    let bit = checked_bit(amplitudes, qubit);
    for (index, amplitude) in amplitudes.iter_mut().enumerate() {
        if index & bit != 0 {
            *amplitude = phase * *amplitude;
        }
    }
}

/// Applies a multiple-controlled X (X, CX, CCX and MCX for 0, 1, 2 and more
/// controls respectively).
///
/// # Panics
///
/// Panics if any qubit is out of range.
pub fn apply_mcx(amplitudes: &mut [Complex], controls: &[usize], target: usize) {
    let target_bit = checked_bit(amplitudes, target);
    let control_mask = checked_mask(amplitudes, controls);
    for index in 0..amplitudes.len() {
        if index & control_mask == control_mask && index & target_bit == 0 {
            amplitudes.swap(index, index | target_bit);
        }
    }
}

/// Applies a multiple-controlled Z: flips the sign of the all-ones subspace
/// of `qubits` (Z, CZ and MCZ for 1, 2 and more qubits respectively).
///
/// # Panics
///
/// Panics if any qubit is out of range.
pub fn apply_mcz(amplitudes: &mut [Complex], qubits: &[usize]) {
    let mask = checked_mask(amplitudes, qubits);
    for (index, amplitude) in amplitudes.iter_mut().enumerate() {
        if index & mask == mask {
            *amplitude = -*amplitude;
        }
    }
}

/// Exchanges two qubits.
///
/// # Panics
///
/// Panics if either qubit is out of range.
pub fn apply_swap(amplitudes: &mut [Complex], a: usize, b: usize) {
    let bit_a = checked_bit(amplitudes, a);
    let bit_b = checked_bit(amplitudes, b);
    for index in 0..amplitudes.len() {
        // Swap amplitudes of ...a=1,b=0... and ...a=0,b=1... once.
        if index & bit_a != 0 && index & bit_b == 0 {
            amplitudes.swap(index, (index & !bit_a) | bit_b);
        }
    }
}

fn checked_bit(amplitudes: &[Complex], qubit: usize) -> usize {
    assert!(
        qubit < num_qubits_of(amplitudes),
        "qubit {qubit} out of range for a {}-qubit register",
        num_qubits_of(amplitudes)
    );
    1usize << qubit
}

fn checked_mask(amplitudes: &[Complex], qubits: &[usize]) -> usize {
    qubits
        .iter()
        .map(|&qubit| checked_bit(amplitudes, qubit))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::QuantumCircuit;

    fn zero_state(num_qubits: usize) -> Vec<Complex> {
        let mut amplitudes = vec![Complex::ZERO; 1 << num_qubits];
        amplitudes[0] = Complex::ONE;
        amplitudes
    }

    #[test]
    fn diagonal_fast_path_matches_dense_application() {
        let gates = [
            QuantumGate::Z(1),
            QuantumGate::S(0),
            QuantumGate::Sdg(2),
            QuantumGate::T(1),
            QuantumGate::Tdg(0),
            QuantumGate::Rz {
                qubit: 2,
                angle: 0.83,
            },
        ];
        for gate in gates {
            // Prepare an arbitrary superposition.
            let mut fast = zero_state(3);
            for qubit in 0..3 {
                apply_gate(&mut fast, &QuantumGate::H(qubit));
            }
            let mut dense = fast.clone();
            apply_gate(&mut fast, &gate);
            let matrix = gate.single_qubit_matrix().unwrap();
            apply_single_qubit(&mut dense, gate.qubits()[0], &matrix);
            for (a, b) in fast.iter().zip(&dense) {
                assert!(a.approx_eq(*b, 1e-12), "{gate:?}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn kernel_applies_whole_circuits() {
        let mut circuit = QuantumCircuit::new(2);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 1,
            })
            .unwrap();
        let mut amplitudes = zero_state(2);
        apply_circuit(&mut amplitudes, &circuit);
        assert!((amplitudes[0b00].norm_sqr() - 0.5).abs() < 1e-12);
        assert!((amplitudes[0b11].norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn num_qubits_is_log2_of_length() {
        assert_eq!(num_qubits_of(&zero_state(0)), 0);
        assert_eq!(num_qubits_of(&zero_state(4)), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut amplitudes = zero_state(2);
        apply_gate(&mut amplitudes, &QuantumGate::H(2));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_slice_panics() {
        let _ = num_qubits_of(&[Complex::ONE; 3]);
    }
}
