//! Canonical hashing of pipeline specifications.
//!
//! The batch execution subsystem caches compiled oracles by *what they are*,
//! not by object identity: a [`SpecKey`] is a 128-bit FNV-1a digest of the
//! canonical byte encoding of the input specification (permutation map,
//! truth-table bits, or circuit rendering) together with the ordered pass
//! list. Two jobs that describe the same oracle through the same passes
//! produce the same key — however their specs were constructed — so repeated
//! compilations hit the cache instead of re-running synthesis and mapping.
//!
//! The encoding is deliberately self-delimiting (every variable-length field
//! is length-prefixed and every [`Ir`] variant is tagged), so distinct specs
//! cannot collide by concatenation ambiguity; the remaining collision risk is
//! the generic 2⁻¹²⁸ of the digest width.

use crate::ir::Ir;
use qdaflow_boolfn::{Permutation, TruthTable};
use std::fmt;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// The canonical 128-bit digest of a pipeline specification — the cache key
/// of the batch execution subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecKey(pub u128);

impl fmt::Display for SpecKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a/128 hasher over a canonical, self-delimiting byte
/// encoding. Unlike `std::hash::Hasher` the output is stable across runs,
/// platforms and processes, which is what makes the digest usable as a
/// persistent cache key.
#[derive(Debug, Clone)]
pub struct CanonicalHasher {
    state: u128,
}

impl CanonicalHasher {
    /// Starts a fresh digest.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorbs one byte.
    pub fn write_byte(&mut self, byte: u8) {
        self.state ^= u128::from(byte);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a raw byte slice (not length-prefixed; use
    /// [`CanonicalHasher::write_str`] or a preceding
    /// [`CanonicalHasher::write_u64`] length for variable-length fields).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.write_byte(byte);
        }
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Absorbs a `usize` (widened to `u64` so the encoding is
    /// platform-independent).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Absorbs a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, text: &str) {
        self.write_usize(text.len());
        self.write_bytes(text.as_bytes());
    }

    /// Finishes the digest.
    pub fn finish(&self) -> SpecKey {
        SpecKey(self.state)
    }
}

impl Default for CanonicalHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Absorbs the canonical encoding of a permutation specification (variant
/// tag, variable count, image list). Hashing by reference — no intermediate
/// [`Ir`] needs to be constructed.
pub fn write_permutation(hasher: &mut CanonicalHasher, permutation: &Permutation) {
    hasher.write_byte(1);
    hasher.write_usize(permutation.num_vars());
    for &image in permutation.as_slice() {
        hasher.write_usize(image);
    }
}

/// Absorbs the canonical encoding of a single-output Boolean function
/// specification (variant tag, variable count, truth-table hex).
pub fn write_function(hasher: &mut CanonicalHasher, function: &TruthTable) {
    hasher.write_byte(2);
    hasher.write_usize(function.num_vars());
    hasher.write_str(&function.to_hex());
}

/// Absorbs the canonical encoding of an OpenQASM source specification
/// (variant tag, length-prefixed source text). Shared by
/// [`write_ir`] and the engine's `OracleSpec::Qasm` cache key so that a
/// `qasmin` pipeline and a batch job over the same source agree.
pub fn write_qasm_source(hasher: &mut CanonicalHasher, source: &str) {
    hasher.write_byte(5);
    hasher.write_str(source);
}

/// Absorbs the canonical encoding of an [`Ir`] value: a variant tag followed
/// by the permutation map, the truth-table bits, or the circuit's textual
/// rendering (length-prefixed).
pub fn write_ir(hasher: &mut CanonicalHasher, ir: &Ir) {
    match ir {
        Ir::Permutation(permutation) => write_permutation(hasher, permutation),
        Ir::Function(function) => write_function(hasher, function),
        Ir::Reversible(circuit) => {
            hasher.write_byte(3);
            hasher.write_usize(circuit.num_lines());
            hasher.write_str(&circuit.to_string());
        }
        Ir::Quantum(circuit) => {
            hasher.write_byte(4);
            hasher.write_usize(circuit.num_qubits());
            hasher.write_str(&circuit.to_string());
        }
        Ir::QasmSource(source) => write_qasm_source(hasher, source),
    }
}

/// Absorbs an ordered pass list (length-prefixed, each description
/// length-prefixed). The second half of every spec key.
pub fn write_passes(hasher: &mut CanonicalHasher, passes: &[String]) {
    hasher.write_usize(passes.len());
    for pass in passes {
        hasher.write_str(pass);
    }
}

/// The canonical cache key of running `passes` (ordered pass descriptions,
/// as produced by [`Pipeline::pass_names`](crate::Pipeline::pass_names)) on
/// `input`. Pass `None` for generated pipelines whose first pass produces
/// the specification itself (the generator's arguments are part of its
/// description and therefore of the key).
pub fn spec_key(input: Option<&Ir>, passes: &[String]) -> SpecKey {
    let mut hasher = CanonicalHasher::new();
    match input {
        Some(ir) => write_ir(&mut hasher, ir),
        None => hasher.write_byte(0),
    }
    write_passes(&mut hasher, passes);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdaflow_boolfn::{Permutation, TruthTable};

    fn passes(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn equal_specs_hash_equal_and_distinct_specs_differ() {
        let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
        let same = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
        let other = Permutation::new(vec![0, 2, 3, 5, 7, 1, 6, 4]).unwrap();
        let chain = passes(&["tbs", "revsimp", "rptm"]);
        let key = spec_key(Some(&pi.clone().into()), &chain);
        assert_eq!(key, spec_key(Some(&same.into()), &chain));
        assert_ne!(key, spec_key(Some(&other.into()), &chain));
        // The pass list is part of the key.
        assert_ne!(
            key,
            spec_key(
                Some(&pi.clone().into()),
                &passes(&["dbs", "revsimp", "rptm"])
            )
        );
        assert_ne!(key, spec_key(Some(&pi.into()), &passes(&["tbs", "rptm"])));
    }

    #[test]
    fn variants_and_concatenations_do_not_collide() {
        // A function spec never collides with a permutation spec, and the
        // pass-list boundary is length-delimited.
        let f = TruthTable::from_bits(2, [false, true, true, false]).unwrap();
        let pi = Permutation::identity(2);
        let chain = passes(&["esopbs"]);
        assert_ne!(
            spec_key(Some(&f.into()), &chain),
            spec_key(Some(&pi.into()), &chain)
        );
        assert_ne!(
            spec_key(None, &passes(&["ab", "c"])),
            spec_key(None, &passes(&["a", "bc"]))
        );
        assert_ne!(spec_key(None, &passes(&[])), spec_key(None, &passes(&[""])));
        // QASM source specs are tagged distinctly from every other variant.
        let qasm = Ir::QasmSource("qreg q[1];\nh q[0];".to_owned());
        let chain = passes(&["qasmin"]);
        assert_ne!(
            spec_key(Some(&qasm), &chain),
            spec_key(Some(&Permutation::identity(2).into()), &chain)
        );
        assert_eq!(
            spec_key(Some(&qasm), &chain),
            spec_key(
                Some(&Ir::QasmSource("qreg q[1];\nh q[0];".to_owned())),
                &chain
            )
        );
    }

    #[test]
    fn keys_render_as_32_hex_digits() {
        let rendered = spec_key(None, &passes(&["tbs"])).to_string();
        assert_eq!(rendered.len(), 32);
        assert!(rendered.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn hasher_is_stable_across_calls() {
        let mut a = CanonicalHasher::new();
        a.write_str("tbs");
        a.write_u64(7);
        let mut b = CanonicalHasher::new();
        b.write_str("tbs");
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
