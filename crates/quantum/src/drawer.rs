//! ASCII circuit drawing.
//!
//! Produces a text rendering of a quantum circuit in the style of the circuit
//! figures of the paper: one row per qubit, time flowing left to right,
//! controls drawn as `*`, CNOT targets as `+`, and boxed single-qubit gates.

use crate::{QuantumCircuit, QuantumGate};

/// Renders the circuit as ASCII art, one line per qubit.
///
/// # Example
///
/// ```
/// use qdaflow_quantum::{circuit::QuantumCircuit, drawer, gate::QuantumGate};
///
/// # fn main() -> Result<(), qdaflow_quantum::QuantumError> {
/// let mut circuit = QuantumCircuit::new(2);
/// circuit.push(QuantumGate::H(0))?;
/// circuit.push(QuantumGate::Cx { control: 0, target: 1 })?;
/// let drawing = drawer::draw(&circuit);
/// assert!(drawing.contains("[H]"));
/// # Ok(())
/// # }
/// ```
pub fn draw(circuit: &QuantumCircuit) -> String {
    let num_qubits = circuit.num_qubits();
    if num_qubits == 0 {
        return String::new();
    }
    // Columns of symbols; each gate gets one column.
    let mut columns: Vec<Vec<String>> = Vec::new();
    for gate in circuit {
        let mut column = vec!["---".to_owned(); num_qubits];
        match gate {
            QuantumGate::Cx { control, target } => {
                column[*control] = "-*-".to_owned();
                column[*target] = "-+-".to_owned();
            }
            QuantumGate::Cz { a, b } => {
                column[*a] = "-*-".to_owned();
                column[*b] = "-*-".to_owned();
            }
            QuantumGate::Swap { a, b } => {
                column[*a] = "-x-".to_owned();
                column[*b] = "-x-".to_owned();
            }
            QuantumGate::Ccx {
                control_a,
                control_b,
                target,
            } => {
                column[*control_a] = "-*-".to_owned();
                column[*control_b] = "-*-".to_owned();
                column[*target] = "-+-".to_owned();
            }
            QuantumGate::Mcx { controls, target } => {
                for &control in controls {
                    column[control] = "-*-".to_owned();
                }
                column[*target] = "-+-".to_owned();
            }
            QuantumGate::Mcz { qubits } => {
                for &qubit in qubits {
                    column[qubit] = "-*-".to_owned();
                }
            }
            QuantumGate::Rz { qubit, .. } => {
                column[*qubit] = "[R]".to_owned();
            }
            single => {
                let label = match single {
                    QuantumGate::H(_) => "H",
                    QuantumGate::X(_) => "X",
                    QuantumGate::Y(_) => "Y",
                    QuantumGate::Z(_) => "Z",
                    QuantumGate::S(_) => "S",
                    QuantumGate::Sdg(_) => "s",
                    QuantumGate::T(_) => "T",
                    QuantumGate::Tdg(_) => "t",
                    _ => "?",
                };
                column[single.qubits()[0]] = format!("[{label}]");
            }
        }
        columns.push(column);
    }
    let mut lines = Vec::with_capacity(num_qubits);
    for qubit in 0..num_qubits {
        let mut line = format!("q{qubit}: |0>-");
        for column in &columns {
            line.push_str(&column[qubit]);
            line.push('-');
        }
        lines.push(line);
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_single_and_two_qubit_gates() {
        let mut circuit = QuantumCircuit::new(3);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit.push(QuantumGate::T(1)).unwrap();
        circuit.push(QuantumGate::Tdg(2)).unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 2,
            })
            .unwrap();
        let drawing = draw(&circuit);
        let lines: Vec<&str> = drawing.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("[H]"));
        assert!(lines[1].contains("[T]"));
        assert!(lines[2].contains("[t]"));
        assert!(lines[0].contains("-*-"));
        assert!(lines[2].contains("-+-"));
    }

    #[test]
    fn all_lines_have_equal_length() {
        let mut circuit = QuantumCircuit::new(4);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit
            .push(QuantumGate::Ccx {
                control_a: 0,
                control_b: 1,
                target: 3,
            })
            .unwrap();
        circuit.push(QuantumGate::Swap { a: 1, b: 2 }).unwrap();
        circuit
            .push(QuantumGate::Mcz {
                qubits: vec![0, 2, 3],
            })
            .unwrap();
        let drawing = draw(&circuit);
        let lengths: Vec<usize> = drawing.lines().map(str::len).collect();
        assert!(lengths.windows(2).all(|pair| pair[0] == pair[1]));
    }

    #[test]
    fn empty_circuit_draws_bare_wires() {
        let drawing = draw(&QuantumCircuit::new(2));
        assert_eq!(drawing.lines().count(), 2);
        assert!(drawing.contains("q0: |0>-"));
        assert_eq!(draw(&QuantumCircuit::new(0)), "");
    }

    #[test]
    fn rz_uses_rotation_box() {
        let mut circuit = QuantumCircuit::new(1);
        circuit
            .push(QuantumGate::Rz {
                qubit: 0,
                angle: 1.0,
            })
            .unwrap();
        assert!(draw(&circuit).contains("[R]"));
    }
}
