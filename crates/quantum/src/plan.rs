//! The execution-plan kernel: a GPU-shaped dispatch-record program over a
//! struct-of-arrays amplitude state.
//!
//! This module is the production dense execution layer (enabled by
//! [`ExecConfig::plan`], the default). Where the legacy
//! [`FusedProgram::apply`] path walks `Vec<Complex>` one op at a time —
//! spawning a fresh `thread::scope` per op — the plan interpreter lowers a
//! [`FusedProgram`] into an [`ExecPlan`]:
//!
//! * a **flat array of uniform [`DispatchRecord`]s** (op kind, bit-mask
//!   operands, matrix-pool slot) plus one flat `f64` matrix pool. Every
//!   record has the same fixed shape, so a future GPU backend (wgpu compute
//!   shaders walking the same records) can interpret the plan unchanged;
//! * a **struct-of-arrays state** ([`SoaStatevector`]): amplitudes live in
//!   split `re`/`im` `Vec<f64>` arrays so the dense 2×2/4×4 and phase sweeps
//!   are branch-free loops over contiguous `f64` data that the compiler
//!   autovectorizes;
//! * **4×4 batching**: adjacent dense single-qubit records on two distinct
//!   qubits merge into one two-qubit [`OpKind::Dense2`] record at lowering
//!   time (controlled by [`ExecConfig::pair_fusion`]), halving the number of
//!   passes over the amplitude arrays for dense layers;
//! * **cache blocking**: the state is tiled into cache-block-sized
//!   [`SoaStatevector::block_bits`] chunks, and maximal *runs* of block-local
//!   records (dense ops on low qubits, every diagonal phase, MCX with a low
//!   target) are applied per block while the block is hot in cache — one
//!   memory sweep per run instead of one per op;
//! * a **persistent worker pool**: `ExecPlan::apply` spawns one
//!   `thread::scope` for the whole program. Workers receive owned amplitude
//!   blocks over a channel, apply whole runs (or cross-block pair/quad
//!   records — including the Mcx/Swap permutation sweeps, which the legacy
//!   path hard-codes sequentially) and send the blocks back; no per-op
//!   spawning, and no `unsafe`.
//!
//! Correctness is established differentially (`tests/plan_differential.rs`):
//! amplitudes match the [`DenseReference`](crate::reference::DenseReference)
//! oracle and the legacy fused path at 1e-10 on random circuits over every
//! gate kind, and with `pair_fusion` disabled the interpreter reproduces the
//! legacy path *bit for bit* at every thread count (the per-element
//! arithmetic is association-identical and independent of the block and
//! thread partition).

use crate::circuit::QuantumCircuit;
use crate::complex::Complex;
use crate::fusion::{ExecConfig, FusedOp, FusedProgram};
use crate::kernel;
use qdaflow_telemetry as telemetry;
use std::ops::Range;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::Instant;

/// Default log2 of the amplitudes per cache block when
/// [`ExecConfig::block_bits`] is `0` (auto): `2^13` amplitudes are two
/// 64 KiB `f64` arrays per block, sized to stay resident in a typical L2
/// cache while a run of records sweeps over them. A block-size sweep on
/// the 20-qubit hidden-shift workload is flat from `2^11` through `2^16`
/// and degrades past `2^17`; `13` sits at the low end of the plateau so
/// smaller hosts keep the same behaviour.
pub const DEFAULT_BLOCK_BITS: usize = 13;

/// Sweep statistics of the plan interpreter, registered once in the
/// process-wide [`telemetry::global_metrics`] registry.
struct KernelMetrics {
    amps_touched: telemetry::Counter,
    blocks_swept: telemetry::Counter,
    ns_per_amp: telemetry::Histogram,
    workers: telemetry::Gauge,
    records: [telemetry::Counter; 5],
}

fn kernel_metrics() -> &'static KernelMetrics {
    static METRICS: OnceLock<KernelMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = telemetry::global_metrics();
        let record_counter = |kind: &str| {
            registry.counter(
                "qdaflow_kernel_records_total",
                "Dispatch records interpreted, by record kind.",
                &[("kind", kind)],
            )
        };
        KernelMetrics {
            amps_touched: registry.counter(
                "qdaflow_kernel_amps_touched_total",
                "Amplitudes visited by interpreter sweeps (register size times segment sweeps).",
                &[],
            ),
            blocks_swept: registry.counter(
                "qdaflow_kernel_blocks_swept_total",
                "Cache blocks visited by interpreter sweeps.",
                &[],
            ),
            ns_per_amp: registry.histogram(
                "qdaflow_kernel_ns_per_amp",
                "Nanoseconds of interpreter wall time per amplitude visited, per apply.",
                &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
                &[],
            ),
            workers: registry.gauge(
                "qdaflow_kernel_workers",
                "Threads used by the most recent plan application.",
                &[],
            ),
            records: [
                record_counter("dense1"),
                record_counter("dense2"),
                record_counter("phase"),
                record_counter("mcx"),
                record_counter("swap"),
            ],
        }
    })
}

/// The kind discriminant of a [`DispatchRecord`].
///
/// Gates that act identically on the amplitude arrays lower to the same
/// kind, mirroring [`FusedOp`]; `Dense2` is produced only by the lowering
/// pass (two adjacent dense records batched into one 4×4 application).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum OpKind {
    /// 2×2 unitary on one qubit. `arg0` = target bit value; `slot` points at
    /// 8 pool values (row-major `[re, im]` pairs).
    Dense1,
    /// 4×4 unitary on two qubits. `arg0` = lower bit value, `arg1` = higher
    /// bit value; `slot` points at 32 pool values (row-major over the basis
    /// `2·hi + lo`).
    Dense2,
    /// Phase multiply on the all-ones subspace of a mask. `arg0` = mask
    /// (`0` = global phase); `slot` points at 2 pool values (`re`, `im`).
    Phase,
    /// Multiple-controlled X. `arg0` = control mask, `arg1` = target bit
    /// value; no pool data.
    Mcx,
    /// Qubit exchange. `arg0` = lower bit value, `arg1` = higher bit value;
    /// no pool data.
    Swap,
}

/// One uniform instruction of an [`ExecPlan`].
///
/// Every record is the same fixed-size POD shape — a kind tag, two bit-mask
/// operands and a matrix-pool slot — regardless of the gate it encodes. The
/// per-kind operand meaning is documented on [`OpKind`]. This uniformity is
/// deliberate: the record array and the flat `f64` matrix pool are exactly
/// the two buffers a GPU interpreter would bind, with no pointer chasing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchRecord {
    /// Operation kind (selects the interpreter loop).
    pub kind: OpKind,
    /// First operand: a qubit bit value or subspace mask (see [`OpKind`]).
    pub arg0: u64,
    /// Second operand: a qubit bit value, or `0` when unused.
    pub arg1: u64,
    /// Offset of this record's matrix data in the flat pool returned by
    /// [`ExecPlan::matrix_pool`]; `0` for kinds without matrix data.
    pub slot: u32,
}

/// One cache block of split-component amplitudes. Blocks are owned `Vec`s so
/// the worker pool can move them to a thread and back without `unsafe`
/// aliasing.
#[derive(Debug, Clone, Default, PartialEq)]
struct AmpBlock {
    re: Vec<f64>,
    im: Vec<f64>,
}

/// A statevector in struct-of-arrays layout, tiled into cache blocks.
///
/// The `2^n` amplitudes are split into `2^{n-b}` blocks of `2^b` (`b` =
/// [`SoaStatevector::block_bits`]); within a block the real and imaginary
/// components live in two separate contiguous `f64` arrays. Basis state `k`
/// lives in block `k >> b` at local index `k & (2^b - 1)`, with qubit 0 as
/// the least significant bit — the same indexing contract as the dense
/// [`Statevector`](crate::statevector::Statevector).
#[derive(Debug, Clone, PartialEq)]
pub struct SoaStatevector {
    num_qubits: usize,
    block_bits: usize,
    blocks: Vec<AmpBlock>,
}

impl SoaStatevector {
    /// Creates the all-zeros state `|0...0⟩` with the given block size
    /// (clamped to the register size).
    pub fn zero_state(num_qubits: usize, block_bits: usize) -> Self {
        let block_bits = block_bits.min(num_qubits);
        let block_len = 1usize << block_bits;
        let num_blocks = 1usize << (num_qubits - block_bits);
        let mut blocks: Vec<AmpBlock> = (0..num_blocks)
            .map(|_| AmpBlock {
                re: vec![0.0; block_len],
                im: vec![0.0; block_len],
            })
            .collect();
        blocks[0].re[0] = 1.0;
        Self {
            num_qubits,
            block_bits,
            blocks,
        }
    }

    /// Converts an interleaved amplitude slice into blocked SoA layout.
    ///
    /// # Panics
    ///
    /// Panics if the slice length is not a power of two.
    pub fn from_amplitudes(amplitudes: &[Complex], block_bits: usize) -> Self {
        let num_qubits = kernel::num_qubits_of(amplitudes);
        let block_bits = block_bits.min(num_qubits);
        let block_len = 1usize << block_bits;
        let blocks = amplitudes
            .chunks_exact(block_len)
            .map(|chunk| AmpBlock {
                re: chunk.iter().map(|a| a.re).collect(),
                im: chunk.iter().map(|a| a.im).collect(),
            })
            .collect();
        Self {
            num_qubits,
            block_bits,
            blocks,
        }
    }

    /// Writes the state back into an interleaved amplitude slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from `2^num_qubits`.
    pub fn write_to(&self, amplitudes: &mut [Complex]) {
        assert_eq!(
            amplitudes.len(),
            1usize << self.num_qubits,
            "amplitude slice length mismatch"
        );
        let block_len = 1usize << self.block_bits;
        for (block, chunk) in self
            .blocks
            .iter()
            .zip(amplitudes.chunks_exact_mut(block_len))
        {
            for ((out, &re), &im) in chunk.iter_mut().zip(&block.re).zip(&block.im) {
                *out = Complex::new(re, im);
            }
        }
    }

    /// The state as a freshly allocated interleaved amplitude vector.
    pub fn to_amplitudes(&self) -> Vec<Complex> {
        let mut amplitudes = vec![Complex::ZERO; 1usize << self.num_qubits];
        self.write_to(&mut amplitudes);
        amplitudes
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// log2 of the amplitudes per cache block.
    pub fn block_bits(&self) -> usize {
        self.block_bits
    }

    /// The amplitude of basis state `basis`.
    ///
    /// # Panics
    ///
    /// Panics if `basis` is out of range.
    pub fn amplitude(&self, basis: usize) -> Complex {
        let block = &self.blocks[basis >> self.block_bits];
        let local = basis & ((1usize << self.block_bits) - 1);
        Complex::new(block.re[local], block.im[local])
    }

    /// Sum of all probabilities; 1 up to floating-point error for any state
    /// produced by unitary evolution.
    pub fn norm(&self) -> f64 {
        self.blocks
            .iter()
            .flat_map(|b| b.re.iter().zip(&b.im))
            .map(|(&re, &im)| re * re + im * im)
            .sum()
    }

    /// Resets the state to `|0...0⟩` in place, reusing the allocations.
    pub fn reset(&mut self) {
        for block in &mut self.blocks {
            block.re.fill(0.0);
            block.im.fill(0.0);
        }
        self.blocks[0].re[0] = 1.0;
    }

    /// Samples a measurement of all qubits by the same early-exiting linear
    /// scan (and the same single `f64` draw) as
    /// [`Statevector::sample_linear`](crate::statevector::Statevector::sample_linear),
    /// so a given RNG state maps to the identical outcome on either layout.
    /// The state is not collapsed.
    pub fn sample_linear<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let draw: f64 = rng.gen();
        let mut cumulative = 0.0f64;
        let block_len = 1usize << self.block_bits;
        for (block_index, block) in self.blocks.iter().enumerate() {
            for (local, (&re, &im)) in block.re.iter().zip(&block.im).enumerate() {
                cumulative += re * re + im * im;
                if draw < cumulative {
                    return (block_index << self.block_bits) | local;
                }
            }
        }
        (self.blocks.len() - 1) * block_len + block_len - 1
    }

    /// Applies one kernel op in place, sequentially, with arithmetic
    /// identical to the legacy [`fusion::apply_op`](crate::fusion::apply_op)
    /// path (used by the noisy simulator's stochastic Pauli insertions).
    ///
    /// # Panics
    ///
    /// Panics if the op references a qubit outside the register.
    pub fn apply_fused_op(&mut self, op: &FusedOp) {
        let record = lower_single(op);
        let pool = single_op_pool(op);
        apply_global_sequential(&record, &pool, self);
    }
}

/// Lowers one [`FusedOp`] to a record whose `slot` is `0` (paired with
/// [`single_op_pool`]).
fn lower_single(op: &FusedOp) -> DispatchRecord {
    match op {
        FusedOp::Dense { qubit, .. } => DispatchRecord {
            kind: OpKind::Dense1,
            arg0: 1u64 << qubit,
            arg1: 0,
            slot: 0,
        },
        FusedOp::Phase { mask, phase: _ } => DispatchRecord {
            kind: OpKind::Phase,
            arg0: *mask as u64,
            arg1: 0,
            slot: 0,
        },
        FusedOp::Mcx {
            control_mask,
            target,
        } => DispatchRecord {
            kind: OpKind::Mcx,
            arg0: *control_mask as u64,
            arg1: 1u64 << target,
            slot: 0,
        },
        FusedOp::Swap { a, b } => DispatchRecord {
            kind: OpKind::Swap,
            arg0: 1u64 << a.min(b),
            arg1: 1u64 << a.max(b),
            slot: 0,
        },
    }
}

/// The matrix-pool payload of one ad-hoc op (see [`lower_single`]).
fn single_op_pool(op: &FusedOp) -> Vec<f64> {
    match op {
        FusedOp::Dense { matrix, .. } => flatten_2x2(matrix),
        FusedOp::Phase { phase, .. } => vec![phase.re, phase.im],
        _ => Vec::new(),
    }
}

fn flatten_2x2(matrix: &[[Complex; 2]; 2]) -> Vec<f64> {
    matrix
        .iter()
        .flatten()
        .flat_map(|entry| [entry.re, entry.im])
        .collect()
}

/// Intermediate lowering IR: records with owned matrices, so the batching
/// peephole can compose them before the flat pool is emitted.
#[derive(Debug, Clone)]
enum Lowered {
    D1 {
        bit: usize,
        matrix: [[Complex; 2]; 2],
    },
    D2 {
        /// Lower of the two bit values.
        lo: usize,
        /// Higher of the two bit values.
        hi: usize,
        /// Row-major 4×4 over the basis index `2·(hi bit) + (lo bit)`.
        matrix: [Complex; 16],
    },
    Ph {
        mask: usize,
        phase: Complex,
    },
    Mcx {
        control_mask: usize,
        target_bit: usize,
    },
    Swap {
        bit_a: usize,
        bit_b: usize,
    },
}

/// Expands a 2×2 matrix to the 4×4 acting on the `lo` (when `on_lo`) or `hi`
/// position of the two-qubit basis `2·hi + lo`.
fn expand_2x2(matrix: &[[Complex; 2]; 2], on_lo: bool) -> [Complex; 16] {
    let mut out = [Complex::ZERO; 16];
    for row in 0..4usize {
        for col in 0..4usize {
            let (acted_row, acted_col, spect_row, spect_col) = if on_lo {
                (row & 1, col & 1, row >> 1, col >> 1)
            } else {
                (row >> 1, col >> 1, row & 1, col & 1)
            };
            if spect_row == spect_col {
                out[row * 4 + col] = matrix[acted_row][acted_col];
            }
        }
    }
    out
}

/// 4×4 matrix product `left · right` (`right` applied first).
fn matmul_4x4(left: &[Complex; 16], right: &[Complex; 16]) -> [Complex; 16] {
    let mut out = [Complex::ZERO; 16];
    for row in 0..4usize {
        for col in 0..4usize {
            let mut acc = Complex::ZERO;
            for k in 0..4usize {
                acc += left[row * 4 + k] * right[k * 4 + col];
            }
            out[row * 4 + col] = acc;
        }
    }
    out
}

/// 2×2 matrix product `left · right` (`right` applied first).
fn matmul_2x2(left: &[[Complex; 2]; 2], right: &[[Complex; 2]; 2]) -> [[Complex; 2]; 2] {
    let mut out = [[Complex::ZERO; 2]; 2];
    for (row, out_row) in out.iter_mut().enumerate() {
        for (col, entry) in out_row.iter_mut().enumerate() {
            *entry = left[row][0] * right[0][col] + left[row][1] * right[1][col];
        }
    }
    out
}

/// Attempts to batch `later` into `earlier` (both dense): two adjacent
/// single-qubit denses on distinct qubits become one 4×4, a dense landing on
/// a qubit of an adjacent 4×4 composes into it, and same-qubit denses
/// multiply into one 2×2. Adjacent dense ops on disjoint qubits commute, so
/// the composition is exact (up to one extra rounding in the product).
fn batch_dense(earlier: &Lowered, later: &Lowered) -> Option<Lowered> {
    match (earlier, later) {
        (
            Lowered::D1 {
                bit: bit_a,
                matrix: m_a,
            },
            Lowered::D1 {
                bit: bit_b,
                matrix: m_b,
            },
        ) => {
            if bit_a == bit_b {
                Some(Lowered::D1 {
                    bit: *bit_a,
                    matrix: matmul_2x2(m_b, m_a),
                })
            } else {
                let (lo, hi) = (*bit_a.min(bit_b), *bit_a.max(bit_b));
                let first = expand_2x2(m_a, *bit_a == lo);
                let second = expand_2x2(m_b, *bit_b == lo);
                Some(Lowered::D2 {
                    lo,
                    hi,
                    matrix: matmul_4x4(&second, &first),
                })
            }
        }
        (Lowered::D2 { lo, hi, matrix }, Lowered::D1 { bit, matrix: m })
            if bit == lo || bit == hi =>
        {
            let expanded = expand_2x2(m, bit == lo);
            Some(Lowered::D2 {
                lo: *lo,
                hi: *hi,
                matrix: matmul_4x4(&expanded, matrix),
            })
        }
        _ => None,
    }
}

/// One group of ops built by [`cluster_by_locality`]: a maximal set of
/// same-locality ops that can legally execute back to back.
struct Cluster {
    ops: Vec<Lowered>,
    /// Union of the members' qubit-support masks.
    support: u64,
    /// Whether every member is diagonal (a phase).
    diagonal: bool,
    /// Whether the members are block-local at the clustering block size.
    local: bool,
}

/// The qubit-support mask of a lowered op (bits the op reads or writes).
fn support_of(op: &Lowered) -> u64 {
    match op {
        Lowered::D1 { bit, .. } => *bit as u64,
        Lowered::D2 { lo, hi, .. } => (*lo | *hi) as u64,
        Lowered::Ph { mask, .. } => *mask as u64,
        Lowered::Mcx {
            control_mask,
            target_bit,
        } => (*control_mask | *target_bit) as u64,
        Lowered::Swap { bit_a, bit_b } => (*bit_a | *bit_b) as u64,
    }
}

/// Whether a lowered op is diagonal in the computational basis.
fn is_diagonal(op: &Lowered) -> bool {
    matches!(op, Lowered::Ph { .. })
}

/// Whether a lowered op is block-local for `block_len`-amplitude blocks
/// (same classification as [`locality_of`], one level earlier).
fn is_local(op: &Lowered, block_len: usize) -> bool {
    match op {
        Lowered::Ph { .. } => true,
        Lowered::D1 { bit, .. } => *bit < block_len,
        Lowered::D2 { hi, .. } => *hi < block_len,
        Lowered::Mcx { target_bit, .. } => *target_bit < block_len,
        Lowered::Swap { bit_b, .. } => *bit_b < block_len,
    }
}

/// Regroups the lowered sequence so block-local ops cluster together,
/// hopping each op backwards only past ops it provably commutes with
/// (disjoint qubit support, or both diagonal).
///
/// Circuits interleave low- and high-qubit gates freely, which chops the
/// scheduler's cache-block runs into fragments — every fragment then costs
/// a full memory sweep and the register is re-streamed from DRAM once per
/// op, exactly like the legacy path. Clustering restores long local runs
/// (one sweep applies the whole run per block) and packs the global ops
/// side by side where the 4×4 batcher can merge high-qubit pairs into
/// single cross-block passes. Reordering commuting ops is exact in exact
/// arithmetic but changes floating-point rounding, so it runs only under
/// [`ExecConfig::pair_fusion`] — the knob that already licenses
/// non-bit-identical (but tolerance-exact) optimization.
fn cluster_by_locality(ops: Vec<Lowered>, block_bits: usize) -> Vec<Lowered> {
    let block_len = 1usize << block_bits;
    let mut clusters: Vec<Cluster> = Vec::new();
    for op in ops {
        let support = support_of(&op);
        let diagonal = is_diagonal(&op);
        let local = is_local(&op, block_len);
        // Walk back over the clusters the op commutes with; it may join any
        // same-locality cluster in that commuting suffix (appending keeps it
        // after every op it does not commute with).
        let mut joined = None;
        for index in (0..clusters.len()).rev() {
            let cluster = &clusters[index];
            if cluster.local == local {
                joined = Some(index);
            }
            let commutes = (support & cluster.support) == 0 || (diagonal && cluster.diagonal);
            if !commutes {
                break;
            }
        }
        match joined {
            Some(index) => {
                let cluster = &mut clusters[index];
                cluster.ops.push(op);
                cluster.support |= support;
                cluster.diagonal &= diagonal;
            }
            None => clusters.push(Cluster {
                ops: vec![op],
                support,
                diagonal,
                local,
            }),
        }
    }
    clusters
        .into_iter()
        .flat_map(|cluster| cluster.ops)
        .collect()
}

/// Whether two lowered ops are single-qubit denses on the same qubit (their
/// product is a single 2×2 — always cheaper than two sweeps).
fn same_qubit_denses(a: &Lowered, b: &Lowered) -> bool {
    matches!(
        (a, b),
        (Lowered::D1 { bit: bit_a, .. }, Lowered::D1 { bit: bit_b, .. }) if bit_a == bit_b
    )
}

/// How one record interacts with the block partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Locality {
    /// Applies independently per block (given the block index): dense ops on
    /// low qubits, every phase, MCX with a low target.
    Local,
    /// Couples amplitudes across blocks; executed as a dedicated pair/quad
    /// dispatch over the pool.
    Global,
}

/// A scheduled span of the record array: either a maximal run of block-local
/// records (applied per block, one cache sweep for the whole run) or a
/// single global record.
#[derive(Debug, Clone, PartialEq)]
struct Segment {
    range: Range<usize>,
    locality: Locality,
}

/// A [`FusedProgram`] lowered to flat dispatch records plus a flat matrix
/// pool, pre-scheduled into cache-block segments.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPlan {
    num_qubits: usize,
    block_bits: usize,
    records: Vec<DispatchRecord>,
    pool: Vec<f64>,
    segments: Vec<Segment>,
}

impl ExecPlan {
    /// Compiles a circuit end to end: gate fusion per `config.fusion`, then
    /// lowering (with 4×4 batching per `config.pair_fusion`) and segment
    /// scheduling for the configured cache-block size.
    pub fn compile(circuit: &QuantumCircuit, config: &ExecConfig) -> Self {
        Self::from_program(&FusedProgram::compile(circuit, config), config)
    }

    /// Lowers an already fused program into a plan.
    ///
    /// With `config.pair_fusion` disabled the records correspond 1:1 to the
    /// program's ops (degenerate MCX records whose control set contains the
    /// target are kept as explicit no-ops), which the noisy simulator relies
    /// on to interleave stochastic noise between gates.
    pub fn from_program(program: &FusedProgram, config: &ExecConfig) -> Self {
        let num_qubits = program.num_qubits();
        let block_bits = effective_block_bits(config, num_qubits);
        let mut lowered: Vec<Lowered> = Vec::with_capacity(program.num_ops());
        for op in program.ops() {
            let next = match op {
                FusedOp::Dense { qubit, matrix } => Lowered::D1 {
                    bit: 1usize << qubit,
                    matrix: *matrix,
                },
                FusedOp::Phase { mask, phase } => Lowered::Ph {
                    mask: *mask,
                    phase: *phase,
                },
                FusedOp::Mcx {
                    control_mask,
                    target,
                } => Lowered::Mcx {
                    control_mask: *control_mask,
                    target_bit: 1usize << target,
                },
                FusedOp::Swap { a, b } => Lowered::Swap {
                    bit_a: 1usize << a.min(b),
                    bit_b: 1usize << a.max(b),
                },
            };
            lowered.push(next);
        }
        if config.pair_fusion {
            lowered = cluster_by_locality(lowered, block_bits);
            // Merge only where a 4×4 saves a full memory sweep: same-qubit
            // 2×2 products are always profitable, and two *global* ops fold
            // into one cross-block pass. Block-local ops already share one
            // sweep per run, and a local 4×4's inner runs are as short as
            // the low stride, which defeats vectorization — measured slower
            // than the two factored 2×2 passes despite equal multiplies.
            let block_len = 1usize << block_bits;
            let mut batched: Vec<Lowered> = Vec::with_capacity(lowered.len());
            for next in lowered {
                let profitable = batched.last().is_some_and(|earlier| {
                    same_qubit_denses(earlier, &next)
                        || (!is_local(earlier, block_len) && !is_local(&next, block_len))
                });
                if profitable {
                    if let Some(merged) = batched
                        .last()
                        .and_then(|earlier| batch_dense(earlier, &next))
                    {
                        *batched.last_mut().expect("checked non-empty") = merged;
                        continue;
                    }
                }
                batched.push(next);
            }
            lowered = batched;
        }
        let mut records = Vec::with_capacity(lowered.len());
        let mut pool = Vec::new();
        for op in &lowered {
            records.push(emit(op, &mut pool));
        }
        let segments = schedule(&records, block_bits);
        Self {
            num_qubits,
            block_bits,
            records,
            pool,
            segments,
        }
    }

    /// Number of qubits of the source program.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// log2 of the amplitudes per cache block this plan was scheduled for.
    pub fn block_bits(&self) -> usize {
        self.block_bits
    }

    /// The flat dispatch records in execution order.
    pub fn records(&self) -> &[DispatchRecord] {
        &self.records
    }

    /// The flat matrix pool indexed by [`DispatchRecord::slot`].
    pub fn matrix_pool(&self) -> &[f64] {
        &self.pool
    }

    /// Number of dispatch records (≤ the fused op count).
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// Applies the plan in place to a `2^n` interleaved amplitude slice: the
    /// slice is transposed into blocked SoA layout, interpreted (with the
    /// worker pool when the register clears
    /// [`ExecConfig::parallel_threshold`]), and transposed back.
    ///
    /// # Panics
    ///
    /// Panics if the slice is shorter than the plan's register (extra qubits
    /// are spectators, as in the legacy path).
    pub fn apply(&self, amplitudes: &mut [Complex], config: &ExecConfig) {
        assert!(
            kernel::num_qubits_of(amplitudes) >= self.num_qubits,
            "a {}-qubit plan cannot run on {} amplitudes",
            self.num_qubits,
            amplitudes.len()
        );
        let mut state = SoaStatevector::from_amplitudes(amplitudes, self.block_bits);
        self.apply_soa(&mut state, config);
        state.write_to(amplitudes);
    }

    /// Applies the plan in place to a blocked SoA state.
    ///
    /// # Panics
    ///
    /// Panics if the state is smaller than the plan's register or was built
    /// with a different block size than the plan was scheduled for.
    pub fn apply_soa(&self, state: &mut SoaStatevector, config: &ExecConfig) {
        assert!(
            state.num_qubits >= self.num_qubits,
            "a {}-qubit plan cannot run on a {}-qubit state",
            self.num_qubits,
            state.num_qubits
        );
        assert_eq!(
            state.block_bits,
            self.block_bits.min(state.num_qubits),
            "state block size does not match the plan schedule"
        );
        let threads = config.effective_threads(1usize << state.num_qubits);
        let started = Instant::now();
        let _span = telemetry::span!(
            "kernel",
            "apply_soa {}q: {} records, {} segments, {threads} threads",
            state.num_qubits,
            self.records.len(),
            self.segments.len()
        );
        if threads > 1 && state.blocks.len() > 1 {
            self.apply_pooled(state, threads);
        } else {
            for segment in &self.segments {
                let _sweep = telemetry::span!(
                    "kernel",
                    "sweep {:?} records {}..{}",
                    segment.locality,
                    segment.range.start,
                    segment.range.end
                );
                match segment.locality {
                    Locality::Local => {
                        for (block_index, block) in state.blocks.iter_mut().enumerate() {
                            apply_local_run(
                                &self.records[segment.range.clone()],
                                &self.pool,
                                block_index,
                                block,
                            );
                        }
                    }
                    Locality::Global => {
                        let record = &self.records[segment.range.start];
                        apply_global_sequential(record, &self.pool, state);
                    }
                }
            }
        }
        self.note_sweep_metrics(state, threads, started);
    }

    /// Publishes per-apply sweep statistics into the global metrics
    /// registry: amplitudes and blocks visited, nanoseconds per amplitude,
    /// worker count, and per-kind record tallies. A handful of relaxed
    /// atomic updates plus one pass over the (short) record array —
    /// negligible next to the amplitude sweeps themselves.
    fn note_sweep_metrics(&self, state: &SoaStatevector, threads: usize, started: Instant) {
        let metrics = kernel_metrics();
        let sweeps = self.segments.len() as u64;
        let amps = (1u64 << state.num_qubits).saturating_mul(sweeps);
        metrics.amps_touched.add(amps);
        metrics
            .blocks_swept
            .add((state.blocks.len() as u64).saturating_mul(sweeps));
        if amps > 0 {
            metrics
                .ns_per_amp
                .observe(started.elapsed().as_nanos() as f64 / amps as f64);
        }
        metrics.workers.set(threads as i64);
        for record in &self.records {
            metrics.records[record.kind as usize].inc();
        }
    }

    /// Applies a single record to the state, sequentially. The noisy
    /// simulator replays plans through this entry point so it can interleave
    /// stochastic noise channels between records.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn apply_record(&self, state: &mut SoaStatevector, index: usize) {
        apply_global_sequential(&self.records[index], &self.pool, state);
    }

    /// The persistent-pool interpreter: one `thread::scope` for the entire
    /// program. Workers pull owned blocks from a shared channel, apply a
    /// whole segment's worth of work and return them; the main thread only
    /// routes blocks and performs the free block-permutation fast paths.
    fn apply_pooled(&self, state: &mut SoaStatevector, threads: usize) {
        let block_bits = state.block_bits;
        // Workers run on their own threads: capture the apply span here and
        // open each worker's span under it explicitly so the exported trace
        // keeps the causal link across the pool boundary.
        let parent = telemetry::current_span();
        thread::scope(|scope| {
            let (task_tx, task_rx) = mpsc::channel::<Task>();
            let task_rx = Arc::new(Mutex::new(task_rx));
            let (done_tx, done_rx) = mpsc::channel::<Task>();
            for worker in 0..threads {
                let task_rx = Arc::clone(&task_rx);
                let done_tx = done_tx.clone();
                let plan = &*self;
                scope.spawn(move || {
                    let _span = if telemetry::enabled() {
                        telemetry::span_with_parent(
                            "kernel",
                            format!("pool-worker-{worker}"),
                            parent,
                        )
                    } else {
                        telemetry::SpanGuard::disabled()
                    };
                    loop {
                        let next = { task_rx.lock().expect("pool lock poisoned").recv() };
                        match next {
                            Ok(mut task) => {
                                for item in &mut task.items {
                                    plan.process_item(item, block_bits);
                                }
                                if done_tx.send(task).is_err() {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                });
            }
            drop(done_tx);
            for segment in &self.segments {
                match segment.locality {
                    Locality::Local => {
                        let items: Vec<WorkItem> = state
                            .blocks
                            .iter_mut()
                            .enumerate()
                            .map(|(index, block)| WorkItem::Run {
                                index,
                                block: std::mem::take(block),
                                ops: segment.range.clone(),
                            })
                            .collect();
                        dispatch(&task_tx, &done_rx, items, threads, &mut state.blocks);
                    }
                    Locality::Global => {
                        let record_index = segment.range.start;
                        let record = self.records[record_index];
                        if let Some(items) =
                            global_work_items(&record, record_index, state, block_bits)
                        {
                            dispatch(&task_tx, &done_rx, items, threads, &mut state.blocks);
                        }
                    }
                }
            }
            drop(task_tx);
        });
    }

    /// Applies one pool work item (worker-side).
    fn process_item(&self, item: &mut WorkItem, block_bits: usize) {
        match item {
            WorkItem::Run { index, block, ops } => {
                apply_local_run(&self.records[ops.clone()], &self.pool, *index, block);
            }
            WorkItem::Pair { record, a, b, .. } => {
                apply_pair(&self.records[*record], &self.pool, a, b, block_bits);
            }
            WorkItem::Quad { record, blocks, .. } => {
                let [v0, v1, v2, v3] = blocks;
                dense2_across_quad(
                    matrix4(&self.pool, self.records[*record].slot),
                    v0,
                    v1,
                    v2,
                    v3,
                );
            }
        }
    }
}

/// Resolves [`ExecConfig::block_bits`] (`0` = [`DEFAULT_BLOCK_BITS`]),
/// clamped to the register size.
fn effective_block_bits(config: &ExecConfig, num_qubits: usize) -> usize {
    let requested = if config.block_bits == 0 {
        DEFAULT_BLOCK_BITS
    } else {
        config.block_bits
    };
    requested.min(num_qubits)
}

/// Emits the flat record for one lowered op, appending its matrix data to
/// the pool.
fn emit(op: &Lowered, pool: &mut Vec<f64>) -> DispatchRecord {
    match op {
        Lowered::D1 { bit, matrix } => {
            let slot = pool.len() as u32;
            pool.extend(flatten_2x2(matrix));
            DispatchRecord {
                kind: OpKind::Dense1,
                arg0: *bit as u64,
                arg1: 0,
                slot,
            }
        }
        Lowered::D2 { lo, hi, matrix } => {
            let slot = pool.len() as u32;
            pool.extend(matrix.iter().flat_map(|entry| [entry.re, entry.im]));
            DispatchRecord {
                kind: OpKind::Dense2,
                arg0: *lo as u64,
                arg1: *hi as u64,
                slot,
            }
        }
        Lowered::Ph { mask, phase } => {
            let slot = pool.len() as u32;
            pool.extend([phase.re, phase.im]);
            DispatchRecord {
                kind: OpKind::Phase,
                arg0: *mask as u64,
                arg1: 0,
                slot,
            }
        }
        Lowered::Mcx {
            control_mask,
            target_bit,
        } => DispatchRecord {
            kind: OpKind::Mcx,
            arg0: *control_mask as u64,
            arg1: *target_bit as u64,
            slot: 0,
        },
        Lowered::Swap { bit_a, bit_b } => DispatchRecord {
            kind: OpKind::Swap,
            arg0: *bit_a as u64,
            arg1: *bit_b as u64,
            slot: 0,
        },
    }
}

/// Classifies a record against the block partition.
fn locality_of(record: &DispatchRecord, block_bits: usize) -> Locality {
    let block_len = 1u64 << block_bits;
    let local = match record.kind {
        // Diagonal: the block index fixes the high mask bits, the low bits
        // select within the block — always blockwise independent.
        OpKind::Phase => true,
        OpKind::Dense1 => record.arg0 < block_len,
        OpKind::Dense2 => record.arg1 < block_len,
        // Controls are diagonal; only a high target couples blocks.
        OpKind::Mcx => record.arg1 < block_len,
        OpKind::Swap => record.arg1 < block_len,
    };
    if local {
        Locality::Local
    } else {
        Locality::Global
    }
}

/// Groups the record array into maximal block-local runs separated by
/// singleton global records.
fn schedule(records: &[DispatchRecord], block_bits: usize) -> Vec<Segment> {
    let mut segments = Vec::new();
    let mut run_start = 0usize;
    for (index, record) in records.iter().enumerate() {
        if locality_of(record, block_bits) == Locality::Global {
            if run_start < index {
                segments.push(Segment {
                    range: run_start..index,
                    locality: Locality::Local,
                });
            }
            segments.push(Segment {
                range: index..index + 1,
                locality: Locality::Global,
            });
            run_start = index + 1;
        }
    }
    if run_start < records.len() {
        segments.push(Segment {
            range: run_start..records.len(),
            locality: Locality::Local,
        });
    }
    segments
}

/// One unit of pool work: a whole run applied to one block, or one global
/// record applied to a pair/quad of coupled blocks.
enum WorkItem {
    Run {
        index: usize,
        block: AmpBlock,
        ops: Range<usize>,
    },
    Pair {
        low: usize,
        high: usize,
        a: AmpBlock,
        b: AmpBlock,
        record: usize,
    },
    Quad {
        indices: [usize; 4],
        blocks: [AmpBlock; 4],
        record: usize,
    },
}

/// A batch of work items routed to one worker.
struct Task {
    items: Vec<WorkItem>,
}

/// Sends `items` to the pool as ~`threads` balanced tasks, waits for all of
/// them, and moves the processed blocks back into `blocks`.
fn dispatch(
    task_tx: &mpsc::Sender<Task>,
    done_rx: &mpsc::Receiver<Task>,
    items: Vec<WorkItem>,
    threads: usize,
    blocks: &mut [AmpBlock],
) {
    if items.is_empty() {
        return;
    }
    let per_task = items.len().div_ceil(threads);
    let mut sent = 0usize;
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(per_task));
        task_tx
            .send(Task { items })
            .expect("worker pool hung up early");
        items = rest;
        sent += 1;
    }
    for _ in 0..sent {
        let task = done_rx.recv().expect("worker pool died");
        for item in task.items {
            match item {
                WorkItem::Run { index, block, .. } => blocks[index] = block,
                WorkItem::Pair {
                    low, high, a, b, ..
                } => {
                    blocks[low] = a;
                    blocks[high] = b;
                }
                WorkItem::Quad {
                    indices,
                    blocks: quad,
                    ..
                } => {
                    for (index, block) in indices.into_iter().zip(quad) {
                        blocks[index] = block;
                    }
                }
            }
        }
    }
}

/// Builds the pool work items for one global record, taking the involved
/// blocks out of the state. Returns `None` when the record reduces to a
/// block permutation, which is performed directly (swapping `Vec` handles
/// moves no amplitude data).
fn global_work_items(
    record: &DispatchRecord,
    record_index: usize,
    state: &mut SoaStatevector,
    block_bits: usize,
) -> Option<Vec<WorkItem>> {
    match global_dispatch(record, state.blocks.len(), block_bits) {
        GlobalDispatch::Pairs(pairs) => Some(
            pairs
                .into_iter()
                .map(|(low, high)| {
                    let a = std::mem::take(&mut state.blocks[low]);
                    let b = std::mem::take(&mut state.blocks[high]);
                    WorkItem::Pair {
                        low,
                        high,
                        a,
                        b,
                        record: record_index,
                    }
                })
                .collect(),
        ),
        GlobalDispatch::Quads(quads) => Some(
            quads
                .into_iter()
                .map(|indices| {
                    let blocks = indices.map(|index| std::mem::take(&mut state.blocks[index]));
                    WorkItem::Quad {
                        indices,
                        blocks,
                        record: record_index,
                    }
                })
                .collect(),
        ),
        GlobalDispatch::Permute(swaps) => {
            for (a, b) in swaps {
                state.blocks.swap(a, b);
            }
            None
        }
        GlobalDispatch::Noop => None,
    }
}

/// How a global record decomposes over the block array.
enum GlobalDispatch {
    /// Elementwise work on pairs of blocks.
    Pairs(Vec<(usize, usize)>),
    /// Elementwise work on quads of blocks (both Dense2 qubits high).
    Quads(Vec<[usize; 4]>),
    /// A pure permutation of whole blocks.
    Permute(Vec<(usize, usize)>),
    /// Nothing to do (degenerate MCX).
    Noop,
}

/// Decomposes one global record into block-pair/quad/permutation work.
fn global_dispatch(
    record: &DispatchRecord,
    num_blocks: usize,
    block_bits: usize,
) -> GlobalDispatch {
    let block_len = 1u64 << block_bits;
    match record.kind {
        OpKind::Dense1 => {
            let offset = (record.arg0 >> block_bits) as usize;
            GlobalDispatch::Pairs(pair_indices(num_blocks, offset, 0, 0))
        }
        OpKind::Dense2 => {
            let lo = record.arg0;
            let hi = record.arg1;
            if lo < block_len {
                // Mixed: low qubit inside the block, high qubit across.
                let offset = (hi >> block_bits) as usize;
                GlobalDispatch::Pairs(pair_indices(num_blocks, offset, 0, 0))
            } else {
                let off_lo = (lo >> block_bits) as usize;
                let off_hi = (hi >> block_bits) as usize;
                let quads = (0..num_blocks)
                    .filter(|k| k & (off_lo | off_hi) == 0)
                    .map(|k| [k, k | off_lo, k | off_hi, k | off_lo | off_hi])
                    .collect();
                GlobalDispatch::Quads(quads)
            }
        }
        OpKind::Mcx => {
            if record.arg0 & record.arg1 != 0 {
                return GlobalDispatch::Noop;
            }
            let target_offset = (record.arg1 >> block_bits) as usize;
            let controls_high = (record.arg0 >> block_bits) as usize;
            let controls_low = record.arg0 & (block_len - 1);
            let pairs = pair_indices(num_blocks, target_offset, controls_high, controls_high);
            if controls_low == 0 {
                // Every local amplitude swaps: permuting the blocks is free.
                GlobalDispatch::Permute(pairs)
            } else {
                GlobalDispatch::Pairs(pairs)
            }
        }
        OpKind::Swap => {
            let lo = record.arg0;
            let hi = record.arg1;
            let off_hi = (hi >> block_bits) as usize;
            if lo >= block_len {
                // Both qubits high: exchange whole blocks.
                let off_lo = (lo >> block_bits) as usize;
                let swaps = (0..num_blocks)
                    .filter(|k| k & off_lo != 0 && k & off_hi == 0)
                    .map(|k| (k, k ^ (off_lo | off_hi)))
                    .collect();
                GlobalDispatch::Permute(swaps)
            } else {
                GlobalDispatch::Pairs(pair_indices(num_blocks, off_hi, 0, 0))
            }
        }
        OpKind::Phase => unreachable!("phase records are always block-local"),
    }
}

/// Block-index pairs `(k, k | offset)` over blocks with the pair bit clear
/// and the required high control bits set.
fn pair_indices(
    num_blocks: usize,
    offset: usize,
    required_mask: usize,
    required_value: usize,
) -> Vec<(usize, usize)> {
    (0..num_blocks)
        .filter(|k| k & offset == 0 && k & required_mask == required_value)
        .map(|k| (k, k | offset))
        .collect()
}

/// Applies one global record sequentially over the whole blocked state.
fn apply_global_sequential(record: &DispatchRecord, pool: &[f64], state: &mut SoaStatevector) {
    let block_bits = state.block_bits;
    if locality_of(record, block_bits) == Locality::Local {
        for (block_index, block) in state.blocks.iter_mut().enumerate() {
            apply_local_record(record, pool, block_index, block, block_bits);
        }
        return;
    }
    match global_dispatch(record, state.blocks.len(), block_bits) {
        GlobalDispatch::Pairs(pairs) => {
            for (low, high) in pairs {
                let (a, b) = pair_mut(&mut state.blocks, low, high);
                apply_pair(record, pool, a, b, block_bits);
            }
        }
        GlobalDispatch::Quads(quads) => {
            for indices in quads {
                let mut taken = indices.map(|index| std::mem::take(&mut state.blocks[index]));
                let [v0, v1, v2, v3] = &mut taken;
                dense2_across_quad(matrix4(pool, record.slot), v0, v1, v2, v3);
                for (index, block) in indices.into_iter().zip(taken) {
                    state.blocks[index] = block;
                }
            }
        }
        GlobalDispatch::Permute(swaps) => {
            for (a, b) in swaps {
                state.blocks.swap(a, b);
            }
        }
        GlobalDispatch::Noop => {}
    }
}

/// Two disjoint `&mut` blocks out of the block array.
fn pair_mut(blocks: &mut [AmpBlock], low: usize, high: usize) -> (&mut AmpBlock, &mut AmpBlock) {
    debug_assert!(low < high);
    let (head, tail) = blocks.split_at_mut(high);
    (&mut head[low], &mut tail[0])
}

/// Applies one global record to a coupled block pair (worker-side and
/// sequential fallback).
fn apply_pair(
    record: &DispatchRecord,
    pool: &[f64],
    a: &mut AmpBlock,
    b: &mut AmpBlock,
    block_bits: usize,
) {
    let block_len = 1u64 << block_bits;
    match record.kind {
        // High dense qubit: the pair's blocks are exactly the low/high
        // halves — one fully contiguous, branch-free sweep.
        OpKind::Dense1 => dense1_rows(
            &mut a.re,
            &mut a.im,
            &mut b.re,
            &mut b.im,
            matrix2(pool, record.slot),
        ),
        OpKind::Dense2 => {
            // Mixed 4×4: the low qubit pairs within each block, the high
            // qubit pairs across the two blocks.
            dense2_across_pair(matrix4(pool, record.slot), record.arg0 as usize, a, b);
        }
        OpKind::Mcx => {
            let controls_low = (record.arg0 & (block_len - 1)) as usize;
            let positions = kernel::mask_bit_values(controls_low);
            let count = a.re.len() >> positions.len();
            for compact in 0..count {
                let mut index = compact;
                for &bit in &positions {
                    index = kernel::insert_bit(index, bit, true);
                }
                std::mem::swap(&mut a.re[index], &mut b.re[index]);
                std::mem::swap(&mut a.im[index], &mut b.im[index]);
            }
        }
        OpKind::Swap => {
            // Low qubit inside the block, high qubit across: global
            // (a=1, b_high=0) ↔ (a=0, b_high=1).
            let bit_a = record.arg0 as usize;
            for compact in 0..a.re.len() / 2 {
                let index = kernel::insert_bit(compact, bit_a, true);
                let partner = index ^ bit_a;
                std::mem::swap(&mut a.re[index], &mut b.re[partner]);
                std::mem::swap(&mut a.im[index], &mut b.im[partner]);
            }
        }
        OpKind::Phase => unreachable!("phase records are always block-local"),
    }
}

/// Applies a run of block-local records to one block.
fn apply_local_run(
    records: &[DispatchRecord],
    pool: &[f64],
    block_index: usize,
    block: &mut AmpBlock,
) {
    let block_bits = block.re.len().trailing_zeros() as usize;
    for record in records {
        apply_local_record(record, pool, block_index, block, block_bits);
    }
}

/// Applies one block-local record to one block.
fn apply_local_record(
    record: &DispatchRecord,
    pool: &[f64],
    block_index: usize,
    block: &mut AmpBlock,
    block_bits: usize,
) {
    let block_len = 1usize << block_bits;
    match record.kind {
        OpKind::Dense1 => {
            dense1_block(
                &mut block.re,
                &mut block.im,
                record.arg0 as usize,
                matrix2(pool, record.slot),
            );
        }
        OpKind::Dense2 => dense2_block(
            &mut block.re,
            &mut block.im,
            record.arg0 as usize,
            record.arg1 as usize,
            matrix4(pool, record.slot),
        ),
        OpKind::Phase => {
            let mask = record.arg0 as usize;
            let high = mask >> block_bits;
            if block_index & high != high {
                return;
            }
            let local = mask & (block_len - 1);
            let phase = matrix2(pool, record.slot);
            let (phase_re, phase_im) = (phase[0], phase[1]);
            if local == 0 {
                phase_all(&mut block.re, &mut block.im, phase_re, phase_im);
            } else {
                phase_masked(&mut block.re, &mut block.im, local, phase_re, phase_im);
            }
        }
        OpKind::Mcx => {
            let control_mask = record.arg0 as usize;
            let target_bit = record.arg1 as usize;
            if control_mask & target_bit != 0 {
                // Degenerate: a control on the target can never fire.
                return;
            }
            let high = control_mask >> block_bits;
            if block_index & high != high {
                return;
            }
            mcx_block(
                &mut block.re,
                &mut block.im,
                control_mask & (block_len - 1),
                target_bit,
            );
        }
        OpKind::Swap => swap_block(
            &mut block.re,
            &mut block.im,
            record.arg0 as usize,
            record.arg1 as usize,
        ),
    }
}

/// The 8-value (or 2-value, for phases) matrix slice of a record.
fn matrix2(pool: &[f64], slot: u32) -> &[f64] {
    &pool[slot as usize..]
}

/// The 32-value 4×4 matrix slice of a record.
fn matrix4(pool: &[f64], slot: u32) -> &[f64; 32] {
    (&pool[slot as usize..slot as usize + 32])
        .try_into()
        .expect("dense2 slots are 32 values wide")
}

/// The vectorizable core of every dense 2×2 application: paired low/high
/// component rows of equal length. The multiply-add association matches the
/// legacy `matrix[0][0] * a + matrix[0][1] * b` complex arithmetic exactly,
/// so the SoA path is bit-identical to the legacy path per element.
fn dense1_rows(
    low_re: &mut [f64],
    low_im: &mut [f64],
    high_re: &mut [f64],
    high_im: &mut [f64],
    m: &[f64],
) {
    let (m00r, m00i, m01r, m01i) = (m[0], m[1], m[2], m[3]);
    let (m10r, m10i, m11r, m11i) = (m[4], m[5], m[6], m[7]);
    for (((lr, li), hr), hi) in low_re
        .iter_mut()
        .zip(low_im.iter_mut())
        .zip(high_re.iter_mut())
        .zip(high_im.iter_mut())
    {
        let (ar, ai) = (*lr, *li);
        let (br, bi) = (*hr, *hi);
        *lr = (m00r * ar - m00i * ai) + (m01r * br - m01i * bi);
        *li = (m00r * ai + m00i * ar) + (m01r * bi + m01i * br);
        *hr = (m10r * ar - m10i * ai) + (m11r * br - m11i * bi);
        *hi = (m10r * ai + m10i * ar) + (m11r * bi + m11i * br);
    }
}

/// In-block dense 2×2: splits every `2·bit` chunk into its low/high halves.
fn dense1_block(re: &mut [f64], im: &mut [f64], bit: usize, m: &[f64]) {
    // Small strides pay heavily for a runtime-length inner loop (the
    // vectorizer emits a scalar tail that dominates when runs are 1-8
    // elements long), so dispatch them to const-stride clones where LLVM
    // sees the run length at compile time. Same chunking, same arithmetic,
    // same rounding — only the generated code differs.
    // Copying the matrix to the stack first severs any aliasing question
    // between the coefficient pool and the amplitude slices, so the eight
    // loads hoist out of the sweep.
    let m_local: [f64; 8] = [m[0], m[1], m[2], m[3], m[4], m[5], m[6], m[7]];
    let m = &m_local[..];
    // Strides 1 and 2 are the pathological run lengths; wider runs already
    // vectorize well from the generic loop (and measured slower through the
    // const clones, which trade the loop for heavier straight-line code).
    match bit {
        1 => return dense1_block_fixed::<1>(re, im, m),
        2 => return dense1_block_fixed::<2>(re, im, m),
        _ => {}
    }
    for (re_chunk, im_chunk) in re
        .chunks_exact_mut(bit << 1)
        .zip(im.chunks_exact_mut(bit << 1))
    {
        let (low_re, high_re) = re_chunk.split_at_mut(bit);
        let (low_im, high_im) = im_chunk.split_at_mut(bit);
        dense1_rows(low_re, low_im, high_re, high_im, m);
    }
}

/// `dense1_block` with the stride as a compile-time constant: identical
/// structure and arithmetic, but the fixed run length lets the compiler
/// unroll the inner rows instead of falling into its scalar
/// variable-length tail.
fn dense1_block_fixed<const BIT: usize>(re: &mut [f64], im: &mut [f64], m: &[f64]) {
    for (re_chunk, im_chunk) in re
        .chunks_exact_mut(BIT << 1)
        .zip(im.chunks_exact_mut(BIT << 1))
    {
        let (low_re, high_re) = re_chunk.split_at_mut(BIT);
        let (low_im, high_im) = im_chunk.split_at_mut(BIT);
        dense1_rows(low_re, low_im, high_re, high_im, m);
    }
}

/// The vectorizable core of every dense 4×4 application: four equal-length
/// component-row pairs holding the quad's basis states in `2·hi + lo` order.
/// Strided callers carve the rows out of their blocks with `split_at_mut`,
/// so the sweep is branch-free streaming with no index arithmetic — the
/// accumulation order matches the old per-quad mat-vec exactly.
#[allow(clippy::too_many_arguments)]
fn dense2_rows(
    r0: &mut [f64],
    i0: &mut [f64],
    r1: &mut [f64],
    i1: &mut [f64],
    r2: &mut [f64],
    i2: &mut [f64],
    r3: &mut [f64],
    i3: &mut [f64],
    m: &[f64; 32],
) {
    let n = r0.len();
    assert!(
        i0.len() == n
            && r1.len() == n
            && i1.len() == n
            && r2.len() == n
            && i2.len() == n
            && r3.len() == n
            && i3.len() == n,
        "dense2 rows must have equal lengths"
    );
    for k in 0..n {
        let v = [
            (r0[k], i0[k]),
            (r1[k], i1[k]),
            (r2[k], i2[k]),
            (r3[k], i3[k]),
        ];
        let mut out = [(0.0f64, 0.0f64); 4];
        for (row, entry) in out.iter_mut().enumerate() {
            let mut acc_re = 0.0f64;
            let mut acc_im = 0.0f64;
            for (col, &(vr, vi)) in v.iter().enumerate() {
                let mr = m[(row * 4 + col) * 2];
                let mi = m[(row * 4 + col) * 2 + 1];
                acc_re += mr * vr - mi * vi;
                acc_im += mr * vi + mi * vr;
            }
            *entry = (acc_re, acc_im);
        }
        r0[k] = out[0].0;
        i0[k] = out[0].1;
        r1[k] = out[1].0;
        i1[k] = out[1].1;
        r2[k] = out[2].0;
        i2[k] = out[2].1;
        r3[k] = out[3].0;
        i3[k] = out[3].1;
    }
}

/// In-block dense 4×4 over the quads `(i, i|lo, i|hi, i|lo|hi)`: every
/// `2·hi` chunk splits into its `hi` halves, every `2·lo` sub-chunk into its
/// `lo` halves, leaving four contiguous rows per quad group.
fn dense2_block(re: &mut [f64], im: &mut [f64], lo: usize, hi: usize, m: &[f64; 32]) {
    for (re_outer, im_outer) in re
        .chunks_exact_mut(hi << 1)
        .zip(im.chunks_exact_mut(hi << 1))
    {
        let (re_low, re_high) = re_outer.split_at_mut(hi);
        let (im_low, im_high) = im_outer.split_at_mut(hi);
        for (((rl, il), rh), ih) in re_low
            .chunks_exact_mut(lo << 1)
            .zip(im_low.chunks_exact_mut(lo << 1))
            .zip(re_high.chunks_exact_mut(lo << 1))
            .zip(im_high.chunks_exact_mut(lo << 1))
        {
            let (r0, r1) = rl.split_at_mut(lo);
            let (i0, i1) = il.split_at_mut(lo);
            let (r2, r3) = rh.split_at_mut(lo);
            let (i2, i3) = ih.split_at_mut(lo);
            dense2_rows(r0, i0, r1, i1, r2, i2, r3, i3, m);
        }
    }
}

/// Mixed 4×4 (low qubit in-block, high qubit across a block pair): quads are
/// `(a[i], a[i|lo], b[i], b[i|lo])`.
fn dense2_across_pair(m: &[f64; 32], lo: usize, a: &mut AmpBlock, b: &mut AmpBlock) {
    for (((ar, ai), br), bi) in
        a.re.chunks_exact_mut(lo << 1)
            .zip(a.im.chunks_exact_mut(lo << 1))
            .zip(b.re.chunks_exact_mut(lo << 1))
            .zip(b.im.chunks_exact_mut(lo << 1))
    {
        let (r0, r1) = ar.split_at_mut(lo);
        let (i0, i1) = ai.split_at_mut(lo);
        let (r2, r3) = br.split_at_mut(lo);
        let (i2, i3) = bi.split_at_mut(lo);
        dense2_rows(r0, i0, r1, i1, r2, i2, r3, i3, m);
    }
}

/// Both-high 4×4: the four blocks are the four basis combinations of the two
/// qubits, so the matrix applies elementwise across them — a fully
/// contiguous four-row sweep.
fn dense2_across_quad(
    m: &[f64; 32],
    v0: &mut AmpBlock,
    v1: &mut AmpBlock,
    v2: &mut AmpBlock,
    v3: &mut AmpBlock,
) {
    dense2_rows(
        &mut v0.re, &mut v0.im, &mut v1.re, &mut v1.im, &mut v2.re, &mut v2.im, &mut v3.re,
        &mut v3.im, m,
    );
}

/// Whole-block phase multiply (all mask bits are high, or the mask is 0).
fn phase_all(re: &mut [f64], im: &mut [f64], phase_re: f64, phase_im: f64) {
    for (r, i) in re.iter_mut().zip(im.iter_mut()) {
        let (ar, ai) = (*r, *i);
        *r = phase_re * ar - phase_im * ai;
        *i = phase_re * ai + phase_im * ar;
    }
}

/// Masked phase multiply over the block-local subspace: peels the mask one
/// bit at a time from the top, restricting to the high half of every
/// `2·bit` chunk, so the innermost sweeps are contiguous [`phase_all`] runs
/// of the mask's lowest bit value — strided streaming instead of per-index
/// bit insertion. Each matching amplitude is multiplied exactly once with
/// the same arithmetic as before, so results are bit-identical to the
/// legacy enumeration order.
fn phase_masked(re: &mut [f64], im: &mut [f64], mask: usize, phase_re: f64, phase_im: f64) {
    if mask == 0 {
        phase_all(re, im, phase_re, phase_im);
        return;
    }
    if mask < 4 {
        // A mask of only the two lowest bits leaves contiguous runs of 1-2
        // elements, where the peel degrades to scalar code. A predicated
        // full sweep vectorizes instead: matching lanes get exactly the
        // `phase_all` arithmetic, non-matching lanes are stored back
        // untouched, so results stay bit-identical either way.
        for (index, (r, i)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
            let hit = index & mask == mask;
            let (ar, ai) = (*r, *i);
            let rotated_re = phase_re * ar - phase_im * ai;
            let rotated_im = phase_re * ai + phase_im * ar;
            *r = if hit { rotated_re } else { ar };
            *i = if hit { rotated_im } else { ai };
        }
        return;
    }
    let top = 1usize << (usize::BITS as usize - 1 - mask.leading_zeros() as usize);
    let rest = mask ^ top;
    for (rc, ic) in re
        .chunks_exact_mut(top << 1)
        .zip(im.chunks_exact_mut(top << 1))
    {
        let (_, high_re) = rc.split_at_mut(top);
        let (_, high_im) = ic.split_at_mut(top);
        phase_masked(high_re, high_im, rest, phase_re, phase_im);
    }
}

/// In-block MCX: swaps across the target bit where the (block-local)
/// controls are satisfied (mirrors the legacy `mcx_masked`).
fn mcx_block(re: &mut [f64], im: &mut [f64], control_mask: usize, target_bit: usize) {
    let fixed = control_mask | target_bit;
    let free_bits = re.len().trailing_zeros() as usize - fixed.count_ones() as usize;
    let positions = kernel::mask_bit_values(fixed);
    for compact in 0..1usize << free_bits {
        let mut index = compact;
        for &bit in &positions {
            index = kernel::insert_bit(index, bit, bit != target_bit);
        }
        re.swap(index, index | target_bit);
        im.swap(index, index | target_bit);
    }
}

/// In-block SWAP of two low qubits (mirrors the legacy `swap_masked`).
fn swap_block(re: &mut [f64], im: &mut [f64], bit_a: usize, bit_b: usize) {
    if bit_a == bit_b {
        return;
    }
    let low = bit_a.min(bit_b);
    let high = bit_a.max(bit_b);
    for compact in 0..re.len() / 4 {
        let index =
            kernel::insert_bit(kernel::insert_bit(compact, low, false), high, false) | bit_a;
        re.swap(index, index ^ (bit_a | bit_b));
        im.swap(index, index ^ (bit_a | bit_b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::QuantumGate;
    use crate::kernel;

    fn push_all(circuit: &mut QuantumCircuit, gates: impl IntoIterator<Item = QuantumGate>) {
        for gate in gates {
            circuit.push(gate).unwrap();
        }
    }

    #[test]
    fn records_have_the_documented_shape() {
        // The dispatch-record encoding is a contract (a future GPU backend
        // interprets it unchanged): pin the lowering of one gate per kind.
        let mut circuit = QuantumCircuit::new(4);
        push_all(
            &mut circuit,
            [
                QuantumGate::H(1),
                QuantumGate::Cz { a: 0, b: 2 },
                QuantumGate::Ccx {
                    control_a: 0,
                    control_b: 1,
                    target: 3,
                },
                QuantumGate::Swap { a: 3, b: 1 },
            ],
        );
        let config = ExecConfig::baseline().with_pair_fusion(false);
        let plan = ExecPlan::from_program(&FusedProgram::lower(&circuit), &config);
        let records = plan.records();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].kind, OpKind::Dense1);
        assert_eq!(records[0].arg0, 0b10);
        assert_eq!(records[1].kind, OpKind::Phase);
        assert_eq!(records[1].arg0, 0b101);
        assert_eq!(records[2].kind, OpKind::Mcx);
        assert_eq!((records[2].arg0, records[2].arg1), (0b11, 0b1000));
        assert_eq!(records[3].kind, OpKind::Swap);
        // Swap operands are normalized to (lower bit, higher bit).
        assert_eq!((records[3].arg0, records[3].arg1), (0b10, 0b1000));
        // Dense matrices occupy 8 pool values, phases 2.
        assert_eq!(plan.matrix_pool().len(), 10);
    }

    #[test]
    fn pair_fusion_batches_adjacent_dense_ops() {
        // A layer of H on 4 qubits with 4-amplitude blocks: qubits 0 and 1
        // are block-local (they already share one sweep per run, so they
        // stay as 2×2 records), while the global H's on qubits 2 and 3
        // batch into one cross-block 4×4.
        let mut circuit = QuantumCircuit::new(4);
        push_all(&mut circuit, (0..4).map(QuantumGate::H));
        let config = ExecConfig::sequential().with_block_bits(2);
        let plan = ExecPlan::compile(&circuit, &config);
        assert_eq!(plan.num_records(), 3);
        // The fusion/clustering passes may reorder commuting ops; check the
        // record shapes as a set.
        let mut shapes: Vec<(OpKind, u64, u64)> = plan
            .records()
            .iter()
            .map(|r| (r.kind, r.arg0, r.arg1))
            .collect();
        shapes.sort_unstable();
        assert_eq!(
            shapes,
            vec![
                (OpKind::Dense1, 1, 0),
                (OpKind::Dense1, 2, 0),
                (OpKind::Dense2, 4, 8),
            ]
        );
        // Same-qubit denses always merge: X·H collapses to one 2×2 record.
        let mut same = QuantumCircuit::new(2);
        push_all(&mut same, [QuantumGate::H(0), QuantumGate::X(0)]);
        let merged = ExecPlan::compile(&same, &ExecConfig::sequential().with_fusion(false));
        assert_eq!(merged.num_records(), 1);
        // Without pair fusion the layer stays one record per gate.
        let unbatched =
            ExecPlan::compile(&circuit, &ExecConfig::sequential().with_pair_fusion(false));
        assert_eq!(unbatched.num_records(), 4);
    }

    #[test]
    fn soa_roundtrip_preserves_amplitudes() {
        let amplitudes: Vec<Complex> = (0..16)
            .map(|k| Complex::new(k as f64, -(k as f64) / 2.0))
            .collect();
        let state = SoaStatevector::from_amplitudes(&amplitudes, 2);
        assert_eq!(state.num_qubits(), 4);
        assert_eq!(state.block_bits(), 2);
        assert_eq!(state.amplitude(13), amplitudes[13]);
        assert_eq!(state.to_amplitudes(), amplitudes);
    }

    #[test]
    fn zero_state_resets_in_place() {
        let mut state = SoaStatevector::zero_state(3, 1);
        state.apply_fused_op(&FusedOp::from_gate(&QuantumGate::X(2)));
        assert_eq!(state.amplitude(0b100), Complex::ONE);
        state.reset();
        assert_eq!(state.amplitude(0), Complex::ONE);
        assert!((state.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ad_hoc_ops_match_the_kernel() {
        // apply_fused_op (the noise path's entry point) against the scalar
        // kernel, per gate class, on a non-trivial state and a 2-amp block
        // size that forces the cross-block branches.
        let gates = [
            QuantumGate::X(2),
            QuantumGate::Y(0),
            QuantumGate::Z(1),
            QuantumGate::H(2),
            QuantumGate::S(0),
        ];
        let mut expected: Vec<Complex> = (0..8)
            .map(|k| Complex::new(1.0 / (k as f64 + 1.0), 0.25 * k as f64))
            .collect();
        let mut state = SoaStatevector::from_amplitudes(&expected, 1);
        for gate in gates {
            kernel::apply_gate(&mut expected, &gate);
            state.apply_fused_op(&FusedOp::from_gate(&gate));
        }
        assert_eq!(state.to_amplitudes(), expected);
    }

    #[test]
    fn pooled_interpreter_matches_sequential() {
        // A circuit with high/low/mixed dense pairs, a high-target MCX and a
        // high-high swap, on 4-amplitude blocks: every dispatch shape runs
        // through the worker pool and must agree with the sequential
        // interpreter bit for bit.
        let mut circuit = QuantumCircuit::new(5);
        push_all(
            &mut circuit,
            [
                QuantumGate::H(0),
                QuantumGate::H(4),
                QuantumGate::H(3),
                QuantumGate::T(2),
                QuantumGate::Ccx {
                    control_a: 0,
                    control_b: 2,
                    target: 4,
                },
                QuantumGate::Swap { a: 3, b: 4 },
                QuantumGate::Cz { a: 1, b: 4 },
                QuantumGate::H(2),
            ],
        );
        let sequential_config = ExecConfig::sequential().with_block_bits(2);
        let pooled_config = sequential_config.with_threads(4).with_parallel_threshold(2);
        let plan = ExecPlan::compile(&circuit, &sequential_config);
        let mut sequential = SoaStatevector::zero_state(5, plan.block_bits());
        plan.apply_soa(&mut sequential, &sequential_config);
        let mut pooled = SoaStatevector::zero_state(5, plan.block_bits());
        plan.apply_soa(&mut pooled, &pooled_config);
        assert_eq!(pooled, sequential);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn mismatched_block_size_is_rejected() {
        let circuit = QuantumCircuit::new(3);
        let config = ExecConfig::sequential().with_block_bits(1);
        let plan = ExecPlan::compile(&circuit, &config);
        let mut state = SoaStatevector::zero_state(3, 2);
        plan.apply_soa(&mut state, &config);
    }
}
