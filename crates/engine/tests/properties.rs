//! Property-based tests of the engine's meta-sections and oracles.

use proptest::prelude::*;
use qdaflow_boolfn::{Permutation, TruthTable};
use qdaflow_engine::{MainEngine, SynthesisChoice};

fn permutation(n: usize) -> impl Strategy<Value = Permutation> {
    any::<u64>().prop_map(move |seed| Permutation::random_seeded(n, seed))
}

fn truth_table(n: usize) -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(any::<bool>(), 1 << n)
        .prop_map(move |bits| TruthTable::from_bits(n, bits).expect("n is small"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compute_uncompute_of_random_preparations_is_identity(bits in prop::collection::vec(any::<bool>(), 3)) {
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(3);
        let section = engine.begin_compute();
        for (index, &flip) in bits.iter().enumerate() {
            engine.h(qubits[index]).unwrap();
            if flip {
                engine.x(qubits[index]).unwrap();
            }
        }
        let section = engine.end_compute(section);
        engine.uncompute(&section).unwrap();
        let result = engine.flush(32).unwrap();
        prop_assert_eq!(result.most_likely(), Some((0, 1.0)));
    }

    #[test]
    fn permutation_oracle_acts_as_the_permutation(p in permutation(3), basis in 0usize..8) {
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(3);
        for (bit, &qubit) in qubits.iter().enumerate() {
            if (basis >> bit) & 1 == 1 {
                engine.x(qubit).unwrap();
            }
        }
        engine
            .permutation_oracle(&p, &qubits, SynthesisChoice::TransformationBased)
            .unwrap();
        let result = engine.flush(16).unwrap();
        let measured = result.most_likely().unwrap().0 & 0b111;
        prop_assert_eq!(measured, p.apply(basis));
    }

    #[test]
    fn oracle_followed_by_dagger_restores_every_basis_state(p in permutation(3), basis in 0usize..8) {
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(3);
        for (bit, &qubit) in qubits.iter().enumerate() {
            if (basis >> bit) & 1 == 1 {
                engine.x(qubit).unwrap();
            }
        }
        engine
            .permutation_oracle(&p, &qubits, SynthesisChoice::DecompositionBased)
            .unwrap();
        engine
            .permutation_oracle_dagger(&p, &qubits, SynthesisChoice::DecompositionBased)
            .unwrap();
        let result = engine.flush(16).unwrap();
        prop_assert_eq!(result.most_likely().unwrap().0 & 0b111, basis);
    }

    #[test]
    fn double_phase_oracle_is_identity(f in truth_table(3)) {
        // U_f is an involution, so applying it twice between Hadamard layers
        // leaves the all-zeros state untouched.
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(3);
        engine.all_h(&qubits).unwrap();
        engine.phase_oracle(&f, &qubits).unwrap();
        engine.phase_oracle(&f, &qubits).unwrap();
        engine.all_h(&qubits).unwrap();
        let result = engine.flush(32).unwrap();
        prop_assert_eq!(result.most_likely(), Some((0, 1.0)));
    }
}
