//! Error types for the engine crate.

use qdaflow_boolfn::BoolfnError;
use qdaflow_mapping::MappingError;
use qdaflow_pipeline::FlowError;
use qdaflow_quantum::QuantumError;
use qdaflow_reversible::ReversibleError;
use std::error::Error;
use std::fmt;

/// Errors produced by the ProjectQ-style engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A qubit handle does not belong to this engine.
    ForeignQubit {
        /// The offending qubit index.
        index: usize,
        /// Number of qubits currently allocated.
        allocated: usize,
    },
    /// The oracle specification does not match the provided register size.
    RegisterSizeMismatch {
        /// Number of qubits the oracle needs.
        expected: usize,
        /// Number of qubits that were provided.
        provided: usize,
    },
    /// A compute section was closed twice or belongs to a different engine
    /// state.
    InvalidComputeSection,
    /// An error from the Boolean function substrate.
    Boolfn(BoolfnError),
    /// An error from the reversible layer.
    Reversible(ReversibleError),
    /// An error from the quantum layer.
    Quantum(QuantumError),
    /// An error from the mapping layer.
    Mapping(MappingError),
    /// A pipeline-structural error (an invalid pass order or a stage
    /// mismatch) surfaced while an engine primitive ran a compilation
    /// pipeline.
    Flow {
        /// Rendered pipeline error message.
        message: String,
    },
    /// An unrecognized backend name was passed to
    /// [`BackendChoice::parse`](crate::BackendChoice::parse) (e.g. through
    /// the shell's `backend` command).
    UnknownBackend {
        /// The rejected name.
        name: String,
    },
    /// A job's compilation or execution panicked. The panic is caught at the
    /// job boundary ([`BatchEngine`](crate::BatchEngine) workers and
    /// [`JobService`](crate::JobService) executors run every job under
    /// `catch_unwind`), so one crashing job can never take down its batch
    /// siblings or the service's worker threads.
    JobPanicked {
        /// The panic payload, rendered to text when it was a string.
        message: String,
    },
    /// A batch job requested zero measurement shots — a validation error at
    /// both [`BatchEngine::run_batch`](crate::BatchEngine::run_batch) and
    /// [`JobService::submit`](crate::JobService::submit), rather than an
    /// untested edge through the CDF sampler.
    ZeroShots {
        /// Index of the offending job within its batch (`0` for single-job
        /// submissions).
        index: usize,
    },
    /// Automatic backend resolution yielded
    /// [`BackendChoice::Auto`](crate::BackendChoice) — a routing invariant
    /// violation that previously crashed the process via `unreachable!`.
    AutoUnresolved,
    /// A queued job was cancelled via
    /// [`JobService::cancel`](crate::JobService::cancel) before it ran (or
    /// between retry attempts).
    JobCancelled,
    /// An I/O failure in the persistence layer (journal open/append, disk
    /// cache directory creation). Best-effort paths (disk-cache entry reads
    /// and writes) degrade to misses instead of surfacing this.
    Io {
        /// What was being done (e.g. `"open journal '/tmp/j'"`).
        context: String,
        /// The rendered `std::io::Error`.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ForeignQubit { index, allocated } => write!(
                f,
                "qubit {index} does not belong to this engine ({allocated} qubits allocated)"
            ),
            Self::RegisterSizeMismatch { expected, provided } => write!(
                f,
                "oracle expects a register of {expected} qubits but {provided} were provided"
            ),
            Self::InvalidComputeSection => write!(f, "compute section is not valid for uncompute"),
            Self::Boolfn(inner) => write!(f, "{inner}"),
            Self::Reversible(inner) => write!(f, "{inner}"),
            Self::Quantum(inner) => write!(f, "{inner}"),
            Self::Mapping(inner) => write!(f, "{inner}"),
            Self::Flow { message } => f.write_str(message),
            Self::UnknownBackend { name } => write!(
                f,
                "unknown backend '{name}': expected one of dense, sparse, stabilizer, auto"
            ),
            Self::JobPanicked { message } => write!(f, "job panicked: {message}"),
            Self::ZeroShots { index } => {
                write!(f, "job {index} requests zero measurement shots")
            }
            Self::AutoUnresolved => {
                write!(f, "automatic backend resolution produced 'auto'")
            }
            Self::JobCancelled => write!(f, "job was cancelled before it ran"),
            Self::Io { context, message } => write!(f, "i/o error: {context}: {message}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Boolfn(inner) => Some(inner),
            Self::Reversible(inner) => Some(inner),
            Self::Quantum(inner) => Some(inner),
            Self::Mapping(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<BoolfnError> for EngineError {
    fn from(inner: BoolfnError) -> Self {
        Self::Boolfn(inner)
    }
}

impl From<ReversibleError> for EngineError {
    fn from(inner: ReversibleError) -> Self {
        Self::Reversible(inner)
    }
}

impl From<QuantumError> for EngineError {
    fn from(inner: QuantumError) -> Self {
        Self::Quantum(inner)
    }
}

impl From<MappingError> for EngineError {
    fn from(inner: MappingError) -> Self {
        Self::Mapping(inner)
    }
}

impl From<FlowError> for EngineError {
    fn from(inner: FlowError) -> Self {
        match inner {
            FlowError::Boolfn(e) => Self::Boolfn(e),
            FlowError::Reversible(e) => Self::Reversible(e),
            FlowError::Quantum(e) => Self::Quantum(e),
            FlowError::Mapping(e) => Self::Mapping(e),
            other => Self::Flow {
                message: other.to_string(),
            },
        }
    }
}

impl From<EngineError> for FlowError {
    fn from(inner: EngineError) -> Self {
        match inner {
            EngineError::Boolfn(e) => Self::Boolfn(e),
            EngineError::Reversible(e) => Self::Reversible(e),
            EngineError::Quantum(e) => Self::Quantum(e),
            EngineError::Mapping(e) => Self::Mapping(e),
            other => Self::Engine {
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let err: EngineError = QuantumError::DuplicateQubit { qubit: 1 }.into();
        assert!(matches!(err, EngineError::Quantum(_)));
        assert!(EngineError::InvalidComputeSection
            .to_string()
            .contains("compute"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }

    #[test]
    fn flow_errors_round_trip_through_engine_errors() {
        // Typed lower-layer errors survive both directions.
        let flow: FlowError =
            EngineError::Quantum(QuantumError::DuplicateQubit { qubit: 7 }).into();
        assert!(matches!(flow, FlowError::Quantum(_)));
        let engine: EngineError =
            FlowError::Quantum(QuantumError::DuplicateQubit { qubit: 7 }).into();
        assert!(matches!(engine, EngineError::Quantum(_)));
        // Structural errors degrade to rendered messages.
        let flow: FlowError = EngineError::InvalidComputeSection.into();
        assert!(matches!(flow, FlowError::Engine { .. }));
        let engine: EngineError = FlowError::EmptyPipeline.into();
        assert!(matches!(engine, EngineError::Flow { .. }));
        assert!(engine.to_string().contains("pipeline"));
    }
}
