//! Cross-backend equivalence: every execution backend in the workspace must
//! agree on the paper's hidden shift benchmark.
//!
//! The statevector backend, the noisy-hardware backend with a noiseless
//! model, and the dense reference oracle all sample with the same seeded RNG
//! from the same exact output distribution, so their histograms must be
//! *identical* — not merely statistically close. The resource counter is
//! checked to report the same circuit resources without sampling.

use qdaflow::hidden_shift::{HiddenShiftInstance, OracleStyle};
use qdaflow::prelude::*;

const SEED: u64 = 0x5EED_CAFE;
const SHOTS: usize = 512;

/// The fixed hidden-shift instance of the paper's Fig. 4 benchmark:
/// `f = x0 x1 ⊕ x2 x3` with the planted shift `s = 9`.
fn fig4_instance() -> (HiddenShiftInstance, QuantumCircuit) {
    let f = Expr::parse("(x0 & x1) ^ (x2 & x3)")
        .unwrap()
        .truth_table(4)
        .unwrap();
    let instance = HiddenShiftInstance::from_bent_function(&f, 9).unwrap();
    let circuit = instance.build_circuit(OracleStyle::TruthTable).unwrap();
    (instance, circuit)
}

fn sampling_backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(StatevectorBackend::seeded(SEED)),
        Box::new(NoisyHardwareBackend::new(NoiseModel::noiseless(), SEED)),
        Box::new(DenseReferenceBackend::seeded(SEED)),
        Box::new(SparseBackend::seeded(SEED)),
    ]
}

#[test]
fn all_sampling_backends_produce_identical_histograms() {
    let (instance, circuit) = fig4_instance();
    let mut results = Vec::new();
    for mut backend in sampling_backends() {
        let result = backend.run(&circuit, SHOTS).unwrap();
        assert_eq!(result.shots, SHOTS, "{}", backend.name());
        results.push((backend.name().to_owned(), result));
    }
    let (reference_name, reference) = &results[0];
    for (name, result) in &results[1..] {
        assert_eq!(
            &result.counts, &reference.counts,
            "{name} histogram diverges from {reference_name}"
        );
        assert_eq!(&result.resources, &reference.resources, "{name} resources");
    }
    // The ideal hidden shift run is deterministic: every shot measures the
    // planted shift (ancillas, if any, return to zero).
    let mask = (1usize << instance.num_vars()) - 1;
    let on_shift: usize = reference
        .counts
        .iter()
        .filter(|(&outcome, _)| outcome & mask == instance.shift())
        .map(|(_, &count)| count)
        .sum();
    assert_eq!(on_shift, SHOTS);
}

#[test]
fn exec_config_variants_agree_on_the_benchmark() {
    // Fusion on/off and threading on/off must not change the sampled
    // distribution: same seed, same histogram.
    let (_, circuit) = fig4_instance();
    let configs = [
        ExecConfig::baseline(),
        ExecConfig::sequential(),
        ExecConfig::default()
            .with_threads(4)
            .with_parallel_threshold(2),
    ];
    let mut histograms = Vec::new();
    for config in configs {
        let mut backend = StatevectorBackend::with_config(SEED, config);
        histograms.push(backend.run(&circuit, SHOTS).unwrap().counts);
    }
    assert_eq!(histograms[0], histograms[1]);
    assert_eq!(histograms[1], histograms[2]);
}

#[test]
fn hidden_shift_runner_recovers_the_shift_on_every_backend() {
    let (instance, circuit) = fig4_instance();
    for mut backend in sampling_backends() {
        let outcome = instance.run_on(backend.as_mut(), &circuit, SHOTS).unwrap();
        assert_eq!(
            outcome.recovered_shift,
            Some(instance.shift()),
            "{}",
            backend.name()
        );
        assert!(
            (outcome.success_probability - 1.0).abs() < 1e-12,
            "{}",
            backend.name()
        );
    }
}

#[test]
fn batch_engine_sparse_jobs_match_dense_for_oracle_workloads() {
    // The BatchEngine path with the sparse backend: same compiled oracles,
    // same seeds, same histograms as the dense path. Unfused sequential
    // execution keeps the two engines' sampling prefix sums bit-identical,
    // so the counts must be *equal*, not merely close.
    let config = ExecConfig::baseline().with_shot_shard_size(256);
    let engine = BatchEngine::with_config(config);
    let specs = [
        OracleSpec::permutation(
            qdaflow::boolfn::hwb::hwb_permutation(4),
            SynthesisChoice::default(),
        ),
        OracleSpec::phase_function(
            Expr::parse("(x0 & x1) ^ (x2 & x3)")
                .unwrap()
                .truth_table(4)
                .unwrap(),
        ),
    ];
    let dense_jobs: Vec<BatchJob> = specs
        .iter()
        .enumerate()
        .map(|(index, spec)| BatchJob::new(spec.clone(), 2048, 40 + index as u64))
        .collect();
    let sparse_jobs: Vec<BatchJob> = dense_jobs
        .iter()
        .map(|job| job.clone().with_backend(BackendChoice::Sparse))
        .collect();
    let dense_results = engine.run_batch(&dense_jobs).unwrap();
    let sparse_results = engine.run_batch(&sparse_jobs).unwrap();
    assert_eq!(dense_results, sparse_results);
    // The cache keys distinguish the backend choice: each oracle compiled
    // once per backend, under distinct digests.
    for (dense, sparse) in dense_jobs.iter().zip(&sparse_jobs) {
        assert_ne!(dense.cache_key(), sparse.cache_key());
        assert_eq!(dense.cache_key(), dense.spec.cache_key());
    }
    assert_eq!(engine.cache().stats().entries, 4);
    assert_eq!(engine.cache().stats().misses, 4);
}

#[test]
fn shell_backend_command_routes_batches_through_the_sparse_engine() {
    // The shell path: `backend sparse` switches batch jobs to the sparse
    // engine; the (deterministic) oracle outcome and cache bookkeeping are
    // identical to a dense shell session.
    let script = "batch --shots 256 --seed 3 --spec \"hwb 4\" --spec \"expr (a & b) ^ (c & d)\"";
    let mut dense_shell = Shell::new();
    let dense_log = dense_shell.run_script(script).unwrap();
    let mut sparse_shell = Shell::new();
    sparse_shell.run_script("backend sparse").unwrap();
    let sparse_log = sparse_shell.run_script(script).unwrap();
    // Per-job report lines (qubits, T-count, most-likely outcome) agree.
    let job_lines = |log: &[String]| -> Vec<String> {
        log.iter()
            .filter(|l| l.contains("] job "))
            .cloned()
            .collect()
    };
    assert_eq!(job_lines(&dense_log), job_lines(&sparse_log));
    assert_eq!(job_lines(&dense_log).len(), 2);
    assert!(sparse_log.iter().any(
        |l| l.contains("2 jobs (2 distinct), 2 compiled, 0 cache hits")
            && l.contains("on the sparse backend")
    ));
    // Switching back re-compiles under the dense keys: the cache holds both.
    sparse_shell.run_script("backend dense").unwrap();
    let again = sparse_shell.run_script(script).unwrap();
    assert!(again
        .iter()
        .any(|l| l.contains("2 compiled, 0 cache hits (4 programs cached) on the dense backend")));
}

#[test]
fn resource_counter_matches_the_sampling_backends() {
    let (_, circuit) = fig4_instance();
    let mut counter = qdaflow::quantum::backend::ResourceCounterBackend;
    let counted = counter.run(&circuit, SHOTS).unwrap();
    assert_eq!(counted.shots, 0);
    assert!(counted.counts.is_empty());
    let mut sampler = StatevectorBackend::seeded(SEED);
    let sampled = sampler.run(&circuit, SHOTS).unwrap();
    assert_eq!(counted.resources, sampled.resources);
}
