//! Reversible logic synthesis algorithms.
//!
//! The paper distinguishes (Section V) between algorithms that take a
//! *reversible* specification — a permutation of `B^n` — and algorithms that
//! take an *irreversible* function `f : B^n -> B^m` which first has to be
//! embedded into a reversible one.
//!
//! * [`transformation_based`] (`tbs`) and [`decomposition_based`] (`dbs`)
//!   belong to the first class; they synthesize ancilla-free circuits
//!   directly from a [`Permutation`].
//! * [`esop_based`] belongs to the second class; it realizes the Bennett
//!   embedding `|x⟩|y⟩ → |x⟩|y ⊕ f(x)⟩` with one multiple-controlled Toffoli
//!   gate per ESOP cube.

mod dbs;
mod esop;
mod tbs;

pub use dbs::{decomposition_based, decomposition_based_with, DbsOptions, MAX_DBS_VARS};
pub use esop::{esop_based, esop_based_single, EsopSynthesisOptions, MAX_ESOP_VARS};
pub use tbs::{
    transformation_based, transformation_based_with, TbsDirection, TbsOptions, MAX_TBS_VARS,
};

use crate::{ReversibleCircuit, ReversibleError};
use qdaflow_boolfn::Permutation;

/// The reversible synthesis methods available in the flow, mirroring the
/// RevKit commands used by the paper (`tbs`, `dbs`, `esopbs` for the phase
/// oracles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SynthesisMethod {
    /// Transformation-based synthesis (Miller–Maslov–Dueck).
    #[default]
    TransformationBased,
    /// Decomposition-based synthesis (Young subgroups, De Vos–Van Rentergem).
    DecompositionBased,
}

impl SynthesisMethod {
    /// Runs the selected method on a permutation specification.
    ///
    /// # Errors
    ///
    /// Propagates the errors of the underlying algorithm (e.g. a
    /// specification that is too large for explicit synthesis).
    pub fn synthesize(
        &self,
        permutation: &Permutation,
    ) -> Result<ReversibleCircuit, ReversibleError> {
        match self {
            Self::TransformationBased => transformation_based(permutation),
            Self::DecompositionBased => decomposition_based(permutation),
        }
    }

    /// The RevKit command name of the method.
    pub fn command_name(&self) -> &'static str {
        match self {
            Self::TransformationBased => "tbs",
            Self::DecompositionBased => "dbs",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::realizes_permutation;

    #[test]
    fn method_selector_dispatches_both_algorithms() {
        let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
        for method in [
            SynthesisMethod::TransformationBased,
            SynthesisMethod::DecompositionBased,
        ] {
            let circuit = method.synthesize(&pi).unwrap();
            assert!(realizes_permutation(&circuit, &pi), "{method:?}");
        }
        assert_eq!(SynthesisMethod::TransformationBased.command_name(), "tbs");
        assert_eq!(SynthesisMethod::DecompositionBased.command_name(), "dbs");
        assert_eq!(
            SynthesisMethod::default(),
            SynthesisMethod::TransformationBased
        );
    }
}
