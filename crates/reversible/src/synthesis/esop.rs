//! ESOP-based reversible synthesis of irreversible functions.
//!
//! Given an irreversible multi-output function `f : B^n -> B^m`, the Bennett
//! embedding `|x⟩|y⟩ → |x⟩|y ⊕ f(x)⟩` (equation (3) of the paper) is realized
//! directly: an ESOP expression is extracted for every output and each cube
//! becomes one multiple-controlled Toffoli gate whose controls are the cube's
//! literals on the input lines and whose target is the output line.
//!
//! This is the ancilla-free class of scalable synthesis methods the paper uses
//! for the phase oracles of the hidden shift circuits.

use crate::{Control, MctGate, ReversibleCircuit, ReversibleError};
use qdaflow_boolfn::{truth_table::MultiTruthTable, Esop, TruthTable};

/// Maximum number of input variables accepted by ESOP-based synthesis (the
/// ESOP extraction materializes the full truth table).
pub const MAX_ESOP_VARS: usize = 20;

/// Options for ESOP-based synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EsopSynthesisOptions {
    /// Run the greedy polarity optimization before emitting gates; when
    /// `false` the canonical PPRM is used.
    pub minimize: bool,
}

impl Default for EsopSynthesisOptions {
    fn default() -> Self {
        Self { minimize: true }
    }
}

/// Synthesizes the Bennett embedding of a multi-output function.
///
/// The circuit acts on `f.num_vars() + f.num_outputs()` lines: lines
/// `0..n` carry the inputs `x` (and are left unchanged), lines `n..n+m`
/// carry the outputs and are XOR-ed with `f(x)`.
///
/// # Errors
///
/// Returns [`ReversibleError::SpecificationTooLarge`] if the function has
/// more than [`MAX_ESOP_VARS`] inputs.
///
/// # Example
///
/// ```
/// use qdaflow_boolfn::{truth_table::MultiTruthTable, TruthTable};
/// use qdaflow_reversible::{simulation, synthesis};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let and = TruthTable::from_fn(2, |x| x == 0b11)?;
/// let f = MultiTruthTable::new(vec![and])?;
/// let circuit = synthesis::esop_based(&f, Default::default())?;
/// assert!(simulation::realizes_xor_embedding(&circuit, &f));
/// # Ok(())
/// # }
/// ```
pub fn esop_based(
    function: &MultiTruthTable,
    options: EsopSynthesisOptions,
) -> Result<ReversibleCircuit, ReversibleError> {
    let n = function.num_vars();
    let m = function.num_outputs();
    if n > MAX_ESOP_VARS {
        return Err(ReversibleError::SpecificationTooLarge {
            num_vars: n,
            maximum: MAX_ESOP_VARS,
        });
    }
    let mut circuit = ReversibleCircuit::new(n + m);
    for (output_index, output) in function.outputs().iter().enumerate() {
        append_output(&mut circuit, output, n + output_index, options)?;
    }
    Ok(circuit)
}

/// Synthesizes the Bennett embedding of a single-output function
/// `f : B^n -> B` onto `n + 1` lines (the last line is the target).
///
/// # Errors
///
/// Returns [`ReversibleError::SpecificationTooLarge`] if the function has
/// more than [`MAX_ESOP_VARS`] inputs.
pub fn esop_based_single(
    function: &TruthTable,
    options: EsopSynthesisOptions,
) -> Result<ReversibleCircuit, ReversibleError> {
    let multi = MultiTruthTable::new(vec![function.clone()])
        .expect("a single output can never mismatch itself");
    esop_based(&multi, options)
}

fn append_output(
    circuit: &mut ReversibleCircuit,
    output: &TruthTable,
    target: usize,
    options: EsopSynthesisOptions,
) -> Result<(), ReversibleError> {
    let esop = if options.minimize {
        Esop::minimized(output)
    } else {
        Esop::pprm(output)
    };
    for cube in esop.cubes() {
        let controls: Vec<Control> = cube
            .literals()
            .map(|(line, positive)| {
                if positive {
                    Control::positive(line)
                } else {
                    Control::negative(line)
                }
            })
            .collect();
        circuit.add_gate(MctGate::new(controls, target))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::realizes_xor_embedding;
    use qdaflow_boolfn::Expr;

    fn check(function: &MultiTruthTable) {
        for minimize in [false, true] {
            let circuit = esop_based(function, EsopSynthesisOptions { minimize }).unwrap();
            assert!(
                realizes_xor_embedding(&circuit, function),
                "minimize={minimize}"
            );
            assert_eq!(
                circuit.num_lines(),
                function.num_vars() + function.num_outputs()
            );
        }
    }

    #[test]
    fn single_and_gate() {
        let and = TruthTable::from_fn(2, |x| x == 0b11).unwrap();
        let circuit = esop_based_single(&and, Default::default()).unwrap();
        assert_eq!(circuit.num_gates(), 1);
        assert_eq!(circuit.gates()[0].num_controls(), 2);
        check(&MultiTruthTable::new(vec![and]).unwrap());
    }

    #[test]
    fn paper_bent_function_needs_two_toffolis() {
        let f = Expr::parse("(a & b) ^ (c & d)")
            .unwrap()
            .truth_table(4)
            .unwrap();
        let circuit = esop_based_single(&f, Default::default()).unwrap();
        assert_eq!(circuit.num_gates(), 2);
        assert!(circuit.gates().iter().all(|g| g.num_controls() == 2));
        check(&MultiTruthTable::new(vec![f]).unwrap());
    }

    #[test]
    fn multi_output_adder_slice() {
        // 2-bit adder without carry-in: sum and carry outputs.
        let f = MultiTruthTable::from_fn(4, 3, |x| {
            let a = x & 0b11;
            let b = (x >> 2) & 0b11;
            (a + b) & 0b111
        })
        .unwrap();
        check(&f);
    }

    #[test]
    fn random_functions_round_trip() {
        for seed in 0..6usize {
            let f = MultiTruthTable::from_fn(3, 2, |x| (x.wrapping_mul(seed + 3) + seed) & 0b11)
                .unwrap();
            check(&f);
        }
    }

    #[test]
    fn constant_outputs_use_unconditional_nots() {
        let one = TruthTable::one(2).unwrap();
        let circuit = esop_based_single(&one, Default::default()).unwrap();
        assert_eq!(circuit.num_gates(), 1);
        assert_eq!(circuit.gates()[0].num_controls(), 0);
        let zero = TruthTable::zero(2).unwrap();
        let empty = esop_based_single(&zero, Default::default()).unwrap();
        assert_eq!(empty.num_gates(), 0);
    }

    #[test]
    fn inputs_are_preserved() {
        let f = MultiTruthTable::from_fn(3, 1, |x| usize::from(x.count_ones() % 2 == 1)).unwrap();
        let circuit = esop_based(&f, Default::default()).unwrap();
        for x in 0..8usize {
            let result = circuit.apply(x);
            assert_eq!(result & 0b111, x);
        }
    }

    #[test]
    fn minimized_option_never_increases_gate_count() {
        for seed in 0..8usize {
            let tt = TruthTable::from_fn(4, |x| ((x * 13 + seed * 7) % 11) < 4).unwrap();
            let plain = esop_based_single(&tt, EsopSynthesisOptions { minimize: false }).unwrap();
            let minimized =
                esop_based_single(&tt, EsopSynthesisOptions { minimize: true }).unwrap();
            assert!(minimized.num_gates() <= plain.num_gates());
        }
    }
}
