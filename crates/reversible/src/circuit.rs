//! Reversible circuits as cascades of multiple-controlled Toffoli gates.

use crate::{Control, MctGate, ReversibleError};
use qdaflow_boolfn::Permutation;
use std::fmt;

/// A reversible circuit: an ordered cascade of [`MctGate`]s over a fixed
/// number of lines.
///
/// Gates are applied left to right, i.e. `gates()[0]` acts first on the
/// input.
///
/// # Example
///
/// ```
/// use qdaflow_reversible::{MctGate, ReversibleCircuit};
///
/// # fn main() -> Result<(), qdaflow_reversible::ReversibleError> {
/// let mut circuit = ReversibleCircuit::new(3);
/// circuit.add_gate(MctGate::cnot(0, 1))?;
/// circuit.add_gate(MctGate::toffoli(0, 1, 2))?;
/// assert_eq!(circuit.apply(0b001), 0b111);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReversibleCircuit {
    num_lines: usize,
    gates: Vec<MctGate>,
}

impl ReversibleCircuit {
    /// Creates an empty circuit over `num_lines` lines.
    pub fn new(num_lines: usize) -> Self {
        Self {
            num_lines,
            gates: Vec::new(),
        }
    }

    /// Number of lines (bits) of the circuit.
    pub fn num_lines(&self) -> usize {
        self.num_lines
    }

    /// The gate cascade, first gate first.
    pub fn gates(&self) -> &[MctGate] {
        &self.gates
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate to the end of the cascade.
    ///
    /// # Errors
    ///
    /// Returns [`ReversibleError::LineOutOfRange`] if the gate uses a line
    /// `>= num_lines`.
    pub fn add_gate(&mut self, gate: MctGate) -> Result<(), ReversibleError> {
        if gate.max_line() >= self.num_lines {
            return Err(ReversibleError::LineOutOfRange {
                line: gate.max_line(),
                num_lines: self.num_lines,
            });
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends a NOT gate.
    ///
    /// # Errors
    ///
    /// Returns [`ReversibleError::LineOutOfRange`] for an out-of-range line.
    pub fn add_not(&mut self, target: usize) -> Result<(), ReversibleError> {
        self.add_gate(MctGate::not(target))
    }

    /// Appends a CNOT gate.
    ///
    /// # Errors
    ///
    /// Returns [`ReversibleError::LineOutOfRange`] for out-of-range lines.
    pub fn add_cnot(&mut self, control: usize, target: usize) -> Result<(), ReversibleError> {
        self.add_gate(MctGate::cnot(control, target))
    }

    /// Appends a Toffoli gate.
    ///
    /// # Errors
    ///
    /// Returns [`ReversibleError::LineOutOfRange`] for out-of-range lines.
    pub fn add_toffoli(
        &mut self,
        control_a: usize,
        control_b: usize,
        target: usize,
    ) -> Result<(), ReversibleError> {
        self.add_gate(MctGate::toffoli(control_a, control_b, target))
    }

    /// Appends all gates of `other` to this circuit.
    ///
    /// # Errors
    ///
    /// Returns [`ReversibleError::LineCountMismatch`] if the circuits act on
    /// a different number of lines.
    pub fn append_circuit(&mut self, other: &Self) -> Result<(), ReversibleError> {
        if self.num_lines != other.num_lines {
            return Err(ReversibleError::LineCountMismatch {
                left: self.num_lines,
                right: other.num_lines,
            });
        }
        self.gates.extend(other.gates.iter().cloned());
        Ok(())
    }

    /// Returns the inverse circuit. Because every MCT gate is an involution,
    /// the inverse is simply the reversed cascade.
    pub fn inverse(&self) -> Self {
        Self {
            num_lines: self.num_lines,
            gates: self.gates.iter().rev().cloned().collect(),
        }
    }

    /// Applies the circuit to a classical bit word.
    ///
    /// # Panics
    ///
    /// Panics if `word >= 2^{num_lines}` (the word uses lines the circuit
    /// does not have).
    pub fn apply(&self, word: usize) -> usize {
        assert!(
            self.num_lines >= usize::BITS as usize || word < (1usize << self.num_lines),
            "input word {word} does not fit on {} lines",
            self.num_lines
        );
        self.gates.iter().fold(word, |w, gate| gate.apply(w))
    }

    /// Exhaustively simulates the circuit and returns the permutation of
    /// `B^{num_lines}` it realizes.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit has too many lines for exhaustive
    /// simulation (more than [`qdaflow_boolfn::MAX_TRUTH_TABLE_VARS`]).
    pub fn permutation(&self) -> Result<Permutation, ReversibleError> {
        if self.num_lines > qdaflow_boolfn::MAX_TRUTH_TABLE_VARS {
            return Err(ReversibleError::SpecificationTooLarge {
                num_vars: self.num_lines,
                maximum: qdaflow_boolfn::MAX_TRUTH_TABLE_VARS,
            });
        }
        Ok(Permutation::from_fn(self.num_lines, |x| self.apply(x))
            .expect("a reversible circuit always realizes a bijection"))
    }

    /// Total number of gates, split by control count: `(not, cnot, toffoli,
    /// larger)`.
    pub fn gate_profile(&self) -> GateProfile {
        let mut profile = GateProfile::default();
        for gate in &self.gates {
            match gate.num_controls() {
                0 => profile.not += 1,
                1 => profile.cnot += 1,
                2 => profile.toffoli += 1,
                _ => profile.larger += 1,
            }
        }
        profile
    }

    /// Sum over all gates of the number of controls, a common cost metric
    /// for reversible circuits.
    pub fn control_count(&self) -> usize {
        self.gates.iter().map(MctGate::num_controls).sum()
    }

    /// Naive quantum-cost estimate following the classic table used by
    /// RevKit: a gate with `c` controls costs `2^{c+1} - 3` elementary
    /// operations (1 for NOT/CNOT, 5 for Toffoli, 13, 29, ...).
    pub fn quantum_cost(&self) -> usize {
        self.gates
            .iter()
            .map(|gate| match gate.num_controls() {
                0 | 1 => 1,
                c => (1usize << (c + 1)) - 3,
            })
            .sum()
    }

    /// Returns a copy of the circuit extended to `num_lines` lines (the new
    /// lines are unused).
    ///
    /// # Panics
    ///
    /// Panics if `num_lines` is smaller than the current line count.
    pub fn extended_to(&self, num_lines: usize) -> Self {
        assert!(
            num_lines >= self.num_lines,
            "cannot shrink a circuit from {} to {num_lines} lines",
            self.num_lines
        );
        Self {
            num_lines,
            gates: self.gates.clone(),
        }
    }

    /// Iterates over the gates.
    pub fn iter(&self) -> std::slice::Iter<'_, MctGate> {
        self.gates.iter()
    }
}

impl<'a> IntoIterator for &'a ReversibleCircuit {
    type Item = &'a MctGate;
    type IntoIter = std::slice::Iter<'a, MctGate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl Extend<MctGate> for ReversibleCircuit {
    /// Extends the circuit with the given gates.
    ///
    /// # Panics
    ///
    /// Panics if a gate uses a line outside of the circuit; use
    /// [`ReversibleCircuit::add_gate`] for a fallible interface.
    fn extend<T: IntoIterator<Item = MctGate>>(&mut self, iter: T) {
        for gate in iter {
            self.add_gate(gate).expect("gate must fit the circuit");
        }
    }
}

/// Gate counts by control arity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateProfile {
    /// Number of uncontrolled NOT gates.
    pub not: usize,
    /// Number of singly-controlled NOT (CNOT) gates.
    pub cnot: usize,
    /// Number of doubly-controlled NOT (Toffoli) gates.
    pub toffoli: usize,
    /// Number of gates with three or more controls.
    pub larger: usize,
}

impl GateProfile {
    /// Total number of gates.
    pub fn total(&self) -> usize {
        self.not + self.cnot + self.toffoli + self.larger
    }
}

impl fmt::Display for GateProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NOT: {}, CNOT: {}, Toffoli: {}, MCT(>2): {}",
            self.not, self.cnot, self.toffoli, self.larger
        )
    }
}

impl fmt::Display for ReversibleCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".numvars {}", self.num_lines)?;
        for gate in &self.gates {
            let mut parts: Vec<String> = gate
                .controls()
                .iter()
                .map(|c| {
                    if c.is_positive() {
                        format!("x{}", c.line())
                    } else {
                        format!("-x{}", c.line())
                    }
                })
                .collect();
            parts.push(format!("x{}", gate.target()));
            writeln!(f, "t{} {}", gate.num_controls() + 1, parts.join(" "))?;
        }
        Ok(())
    }
}

/// Builds the circuit consisting of a single swap of two lines, expanded into
/// three CNOT gates.
///
/// # Panics
///
/// Panics if `a == b` or either line is out of range.
pub fn swap_circuit(num_lines: usize, a: usize, b: usize) -> ReversibleCircuit {
    assert!(a != b, "cannot swap a line with itself");
    assert!(a < num_lines && b < num_lines, "swap lines out of range");
    let mut circuit = ReversibleCircuit::new(num_lines);
    circuit.add_cnot(a, b).expect("lines validated above");
    circuit.add_cnot(b, a).expect("lines validated above");
    circuit.add_cnot(a, b).expect("lines validated above");
    circuit
}

/// Convenience helper: the list of positive controls for the set bits of a
/// mask restricted to `num_lines` lines.
pub fn controls_from_mask(mask: usize, num_lines: usize) -> Vec<Control> {
    (0..num_lines)
        .filter(|&line| (mask >> line) & 1 == 1)
        .map(Control::positive)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_circuit_is_identity() {
        let circuit = ReversibleCircuit::new(4);
        for word in 0..16usize {
            assert_eq!(circuit.apply(word), word);
        }
        assert!(circuit.permutation().unwrap().is_identity());
        assert!(circuit.is_empty());
    }

    #[test]
    fn add_gate_checks_line_range() {
        let mut circuit = ReversibleCircuit::new(2);
        assert!(circuit.add_gate(MctGate::toffoli(0, 1, 2)).is_err());
        assert!(circuit.add_cnot(0, 1).is_ok());
        assert_eq!(circuit.num_gates(), 1);
    }

    #[test]
    fn inverse_undoes_the_circuit() {
        let mut circuit = ReversibleCircuit::new(3);
        circuit.add_not(0).unwrap();
        circuit.add_cnot(0, 1).unwrap();
        circuit.add_toffoli(0, 1, 2).unwrap();
        let inverse = circuit.inverse();
        for word in 0..8usize {
            assert_eq!(inverse.apply(circuit.apply(word)), word);
        }
    }

    #[test]
    fn append_circuit_composes() {
        let mut first = ReversibleCircuit::new(3);
        first.add_cnot(0, 1).unwrap();
        let mut second = ReversibleCircuit::new(3);
        second.add_toffoli(0, 1, 2).unwrap();
        let mut combined = first.clone();
        combined.append_circuit(&second).unwrap();
        for word in 0..8usize {
            assert_eq!(combined.apply(word), second.apply(first.apply(word)));
        }
        let mismatched = ReversibleCircuit::new(4);
        assert!(combined.append_circuit(&mismatched).is_err());
    }

    #[test]
    fn permutation_matches_apply() {
        let mut circuit = ReversibleCircuit::new(3);
        circuit.add_toffoli(0, 1, 2).unwrap();
        circuit.add_not(0).unwrap();
        let perm = circuit.permutation().unwrap();
        for word in 0..8usize {
            assert_eq!(perm.apply(word), circuit.apply(word));
        }
    }

    #[test]
    fn gate_profile_and_costs() {
        let mut circuit = ReversibleCircuit::new(5);
        circuit.add_not(0).unwrap();
        circuit.add_cnot(0, 1).unwrap();
        circuit.add_toffoli(0, 1, 2).unwrap();
        circuit
            .add_gate(MctGate::new(
                vec![
                    Control::positive(0),
                    Control::positive(1),
                    Control::positive(2),
                ],
                3,
            ))
            .unwrap();
        let profile = circuit.gate_profile();
        assert_eq!(profile.not, 1);
        assert_eq!(profile.cnot, 1);
        assert_eq!(profile.toffoli, 1);
        assert_eq!(profile.larger, 1);
        assert_eq!(profile.total(), 4);
        assert_eq!(circuit.control_count(), 1 + 2 + 3);
        assert_eq!(circuit.quantum_cost(), 1 + 1 + 5 + 13);
        assert!(profile.to_string().contains("Toffoli: 1"));
    }

    #[test]
    fn swap_circuit_swaps() {
        let swap = swap_circuit(3, 0, 2);
        assert_eq!(swap.apply(0b001), 0b100);
        assert_eq!(swap.apply(0b100), 0b001);
        assert_eq!(swap.apply(0b010), 0b010);
        assert_eq!(swap.apply(0b101), 0b101);
    }

    #[test]
    fn extended_circuit_keeps_behaviour_on_old_lines() {
        let mut circuit = ReversibleCircuit::new(2);
        circuit.add_cnot(0, 1).unwrap();
        let extended = circuit.extended_to(4);
        assert_eq!(extended.num_lines(), 4);
        assert_eq!(extended.apply(0b0001), 0b0011);
        assert_eq!(extended.apply(0b1001), 0b1011);
    }

    #[test]
    fn display_uses_real_like_format() {
        let mut circuit = ReversibleCircuit::new(3);
        circuit
            .add_gate(MctGate::new(
                vec![Control::positive(0), Control::negative(1)],
                2,
            ))
            .unwrap();
        let text = circuit.to_string();
        assert!(text.contains(".numvars 3"));
        assert!(text.contains("t3 x0 -x1 x2"));
    }

    #[test]
    fn controls_from_mask_filters_lines() {
        let controls = controls_from_mask(0b1011, 3);
        assert_eq!(controls.len(), 2);
        assert_eq!(controls[0].line(), 0);
        assert_eq!(controls[1].line(), 1);
    }

    #[test]
    fn extend_trait_appends_gates() {
        let mut circuit = ReversibleCircuit::new(3);
        circuit.extend(vec![MctGate::not(0), MctGate::cnot(0, 2)]);
        assert_eq!(circuit.num_gates(), 2);
        let collected: Vec<_> = (&circuit).into_iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn apply_panics_on_oversized_word() {
        ReversibleCircuit::new(2).apply(0b100);
    }
}
