//! Convenience re-exports of the most commonly used types of the flow.

pub use qdaflow_boolfn::{
    bent::{InnerProduct, MaioranaMcFarland},
    Expr, Permutation, TruthTable,
};
pub use qdaflow_engine::{
    BackendChoice, BatchEngine, BatchJob, DiskCache, JobId, JobService, JobServiceConfig,
    JobStatus, Journal, MainEngine, OracleCache, OracleSpec, Qubit, SynthesisChoice,
};
pub use qdaflow_mapping::map::MappingOptions;
pub use qdaflow_pipeline::{FlowError, Ir, Pass, Pipeline, PipelineReport, Stage, StageSet};
pub use qdaflow_quantum::{
    backend::{Backend, ExecutionResult, NoisyHardwareBackend, StatevectorBackend},
    fusion::{ExecConfig, FusedProgram},
    noise::NoiseModel,
    reference::{DenseReference, DenseReferenceBackend},
    resource::ResourceCounts,
    QuantumCircuit, QuantumGate,
};
pub use qdaflow_reversible::{MctGate, ReversibleCircuit};
pub use qdaflow_revkit::Shell;
pub use qdaflow_sparse::{SparseBackend, SparseStatevector};
pub use qdaflow_stabilizer::{StabilizerBackend, StabilizerTableau};

pub use crate::classical::ClassicalSolver;
pub use crate::flow::{
    compile_permutation, compile_phase_function, equation5_pipeline, CompilationReport,
};
pub use crate::hidden_shift::{HiddenShiftInstance, HiddenShiftOutcome, OracleStyle};

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_are_usable() {
        use super::*;
        let _ = Permutation::identity(2);
        let _ = QuantumCircuit::new(1);
        let _ = NoiseModel::noiseless();
        let _ = MappingOptions::default();
        let _ = SynthesisChoice::default();
        let _ = ExecConfig::default();
        let _ = DenseReference::new(1);
        let _ = SparseStatevector::new(32);
        let _ = SparseBackend::seeded(1);
        let _ = StabilizerTableau::new(4).unwrap();
        let _ = StabilizerBackend::seeded(1);
        let _ = BackendChoice::Sparse;
        let _ = BackendChoice::Auto;
        let _ = BatchEngine::new();
        let _ = OracleSpec::permutation(Permutation::identity(2), SynthesisChoice::default());
        let _ = JobServiceConfig::default();
        let _ = JobStatus::Queued;
        let _ = Pipeline::parse("revgen --hwb 3; tbs; ps").unwrap();
        let _ = equation5_pipeline(Default::default());
    }
}
