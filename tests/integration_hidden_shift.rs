//! End-to-end tests of the hidden shift application — the paper's complete
//! flow from algorithm description to measured shift.

use qdaflow::classical::{ClassicalSolver, QUANTUM_QUERIES};
use qdaflow::hidden_shift::{HiddenShiftInstance, OracleStyle};
use qdaflow::prelude::*;

#[test]
fn fig4_instance_is_deterministic_on_the_ideal_simulator() {
    let f = Expr::parse("(x0 & x1) ^ (x2 & x3)")
        .unwrap()
        .truth_table(4)
        .unwrap();
    let instance = HiddenShiftInstance::from_bent_function(&f, 1).unwrap();
    let circuit = instance.build_circuit(OracleStyle::TruthTable).unwrap();
    let outcome = instance.run_ideal(&circuit, 1024).unwrap();
    assert_eq!(outcome.recovered_shift, Some(1));
    assert!((outcome.success_probability - 1.0).abs() < 1e-12);
}

#[test]
fn random_maiorana_mcfarland_instances_recover_their_shift() {
    for seed in 0..4u64 {
        let pi = Permutation::random_seeded(2, seed + 1);
        let h = TruthTable::from_fn(2, |y| (y * 3 + seed as usize) % 4 == 1).unwrap();
        let mm = MaioranaMcFarland::new(pi, h).unwrap();
        let shift = (seed as usize * 5 + 3) % 16;
        let instance = HiddenShiftInstance::from_maiorana_mcfarland(&mm, shift).unwrap();
        for style in [
            OracleStyle::TruthTable,
            OracleStyle::MaioranaMcFarland {
                synthesis: SynthesisChoice::TransformationBased,
            },
            OracleStyle::MaioranaMcFarland {
                synthesis: SynthesisChoice::DecompositionBased,
            },
        ] {
            let circuit = instance.build_circuit(style).unwrap();
            let outcome = instance.run_ideal(&circuit, 128).unwrap();
            assert_eq!(
                outcome.recovered_shift,
                Some(shift),
                "seed {seed}, style {style:?}"
            );
        }
    }
}

#[test]
fn fig7_instance_recovers_shift_five_with_clifford_t_oracles() {
    let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
    let mm = MaioranaMcFarland::with_zero_h(pi).unwrap();
    let instance = HiddenShiftInstance::from_maiorana_mcfarland(&mm, 5).unwrap();
    let circuit = instance
        .build_circuit(OracleStyle::MaioranaMcFarland {
            synthesis: SynthesisChoice::TransformationBased,
        })
        .unwrap();
    assert!(circuit.is_clifford_t());
    assert!(circuit.t_count() > 0);
    let outcome = instance.run_ideal(&circuit, 1024).unwrap();
    assert_eq!(outcome.recovered_shift, Some(5));
    assert!((outcome.success_probability - 1.0).abs() < 1e-12);
}

#[test]
fn noisy_backend_reproduces_the_fig6_regime() {
    // Three runs of 1024 shots on the noisy model: the correct shift must
    // dominate with probability well below 1 but far above the uniform
    // 1/16 = 0.0625 floor (the paper reports ≈ 0.63 on the IBM QE chip).
    let f = Expr::parse("(x0 & x1) ^ (x2 & x3)")
        .unwrap()
        .truth_table(4)
        .unwrap();
    let instance = HiddenShiftInstance::from_bent_function(&f, 1).unwrap();
    let circuit = instance.build_circuit(OracleStyle::TruthTable).unwrap();
    let mut total = 0.0;
    for run in 0..3u64 {
        let outcome = instance
            .run_noisy(&circuit, NoiseModel::ibm_qx_2017(), 1024, 42 + run)
            .unwrap();
        assert_eq!(outcome.recovered_shift, Some(1), "run {run}");
        total += outcome.success_probability;
    }
    let average = total / 3.0;
    assert!(average > 0.45, "average success probability {average}");
    assert!(average < 0.95, "noise should be visible, got {average}");
}

#[test]
fn quantum_query_advantage_over_classical_solvers() {
    let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
    let mm = MaioranaMcFarland::with_zero_h(pi).unwrap();
    let f = mm.truth_table().unwrap();
    let g = f.xor_shift(5);
    let classical = ClassicalSolver::new().solve_by_elimination(&f, &g);
    assert_eq!(classical.shift, Some(5));
    assert!(classical.queries > 10 * QUANTUM_QUERIES);
}

#[test]
fn resource_counter_backend_reports_oracle_costs() {
    let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
    let mm = MaioranaMcFarland::with_zero_h(pi).unwrap();
    let instance = HiddenShiftInstance::from_maiorana_mcfarland(&mm, 5).unwrap();
    let circuit = instance
        .build_circuit(OracleStyle::MaioranaMcFarland {
            synthesis: SynthesisChoice::TransformationBased,
        })
        .unwrap();
    let mut counter = qdaflow::quantum::backend::ResourceCounterBackend;
    let outcome = instance.run_on(&mut counter, &circuit, 0).unwrap();
    assert_eq!(outcome.recovered_shift, None);
    assert!(outcome.execution.resources.t_count > 0);
    assert!(outcome.execution.resources.h_count >= 3 * 6);
}
