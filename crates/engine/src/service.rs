//! The long-running batch job service: submission, polling, crash-safe
//! workers, retry with exponential backoff, a dead-letter bucket,
//! checkpoint/resume, and Prometheus metrics.
//!
//! [`BatchEngine::run_batch`] is a one-shot synchronous call that lives and
//! dies with its caller. [`JobService`] turns the same execution machinery
//! into a persistent service — the serving layer the paper's
//! compile-once-run-many oracle workloads want:
//!
//! * **Submission API** — [`JobService::submit`] enqueues a [`BatchJob`]
//!   and returns a [`JobId`]; [`JobService::poll`] reports its
//!   [`JobStatus`] (`Queued` → `Running` → `Done` / `Failed` / `Dead`);
//!   [`JobService::wait`] blocks until a terminal state;
//!   [`JobService::cancel`] withdraws a job that has not started.
//! * **Crash-safe workers** — every job runs under `catch_unwind`; a
//!   panicking compilation becomes a typed
//!   [`EngineError::JobPanicked`] for *that job only*. One bad job never
//!   takes down its siblings or a worker thread.
//! * **Retry / dead-letter** — panicked jobs are retried with exponential
//!   backoff up to [`JobServiceConfig::max_attempts`]; deterministic
//!   failures (typed compile/validation errors) and exhausted retries land
//!   in the dead-letter bucket ([`JobStatus::Dead`],
//!   [`JobService::dead_letters`]).
//! * **Durability** — an optional [`DiskCache`] persists compilations
//!   across restarts (shared by every process pointing at the directory),
//!   and an optional [`Journal`] checkpoints each completed job so a killed
//!   batch resumes from its last completed job: resubmitting a journaled
//!   job answers instantly from the checkpoint, recompiling nothing.
//! * **Observability** — [`JobService::metrics_text`] exports counters and
//!   a job-latency histogram in Prometheus text exposition format.
//!
//! Duplicate submissions are **single-flighted**: while one worker
//! compiles a spec, other workers skip past jobs with the same cache key
//! instead of compiling it redundantly; when the first finishes, the
//! duplicates replay from the warm cache. This also makes the cache's
//! compile counters deterministic under any worker count.
//!
//! ```
//! use qdaflow_engine::{JobService, JobServiceConfig, JobStatus, OracleSpec, BatchJob, SynthesisChoice};
//! use qdaflow_boolfn::Permutation;
//!
//! # fn main() -> Result<(), qdaflow_engine::EngineError> {
//! let service = JobService::new(JobServiceConfig::default())?;
//! let spec = OracleSpec::permutation(
//!     Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap(),
//!     SynthesisChoice::default(),
//! );
//! let id = service.submit(BatchJob::new(spec, 256, 7))?;
//! match service.wait(id) {
//!     Some(JobStatus::Done(result)) => assert_eq!(result.shots, 256),
//!     other => panic!("unexpected terminal status {other:?}"),
//! }
//! assert!(service.metrics_text().contains("qdaflow_jobs_completed_total 1"));
//! # Ok(())
//! # }
//! ```

use crate::batch::{catch_job_panic, BatchEngine, BatchJob};
use crate::store::disk::DiskCache;
use crate::store::journal::{Journal, JournalEntry};
use crate::{EngineError, OracleCache};
use qdaflow_pipeline::spec::SpecKey;
use qdaflow_quantum::backend::ExecutionResult;
use qdaflow_quantum::fusion::ExecConfig;
use qdaflow_telemetry as telemetry;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Handle to a submitted job, unique within its [`JobService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Lifecycle state of a submitted job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Waiting for a worker (or for its retry backoff to elapse when it
    /// has already failed — see [`JobStatus::Failed`]).
    Queued,
    /// A worker is executing it right now.
    Running,
    /// Completed; carries the result (possibly replayed from a journal —
    /// see [`JobService::metrics_text`]'s `qdaflow_jobs_resumed_total`).
    Done(ExecutionResult),
    /// Failed at least once and is waiting for its exponential-backoff
    /// retry. Only transient failures (caught panics) are retried.
    Failed {
        /// Attempts made so far.
        attempts: u32,
        /// The most recent failure.
        error: EngineError,
    },
    /// In the dead-letter bucket: failed deterministically (typed
    /// compilation/validation errors are never retried), exhausted its
    /// retry budget, or was cancelled. Terminal.
    Dead {
        /// Attempts made before dead-lettering.
        attempts: u32,
        /// The final failure (or [`EngineError::JobCancelled`]).
        error: EngineError,
    },
}

impl JobStatus {
    /// Short lower-case state name (`queued`/`running`/`done`/`failed`/
    /// `dead`) for logs.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done(_) => "done",
            Self::Failed { .. } => "failed",
            Self::Dead { .. } => "dead",
        }
    }

    /// Whether the status is terminal (`Done` or `Dead`).
    pub fn is_terminal(&self) -> bool {
        matches!(self, Self::Done(_) | Self::Dead { .. })
    }
}

/// Construction-time configuration of a [`JobService`].
#[derive(Debug, Clone)]
pub struct JobServiceConfig {
    /// Worker threads executing jobs (at least 1).
    pub workers: usize,
    /// Maximum execution attempts per job (at least 1). Only transient
    /// failures (caught panics) consume retries; deterministic errors
    /// dead-letter immediately.
    pub max_attempts: u32,
    /// Base delay of the exponential retry backoff: attempt `n` waits
    /// `retry_base_delay * 2^(n-1)` before requeueing.
    pub retry_base_delay: Duration,
    /// Execution configuration for compilation/simulation/sampling (part
    /// of the result-reproducibility contract via `shot_shard_size`).
    pub exec: ExecConfig,
    /// Directory of the persistent compiled-oracle cache; `None` keeps the
    /// cache in memory only. Ignored by [`JobService::with_engine`], which
    /// adopts the provided engine's cache instead.
    pub disk_cache_dir: Option<PathBuf>,
    /// Path of the checkpoint journal; `None` disables checkpoint/resume.
    pub journal_path: Option<PathBuf>,
}

impl Default for JobServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_attempts: 3,
            retry_base_delay: Duration::from_millis(25),
            exec: ExecConfig::default(),
            disk_cache_dir: None,
            journal_path: None,
        }
    }
}

/// One queued execution slot (jobs re-enter the queue on retry).
struct QueueEntry {
    id: JobId,
    /// Single-flight key: the job's compilation cache key. While a worker
    /// holds a key, other entries with the same key stay queued.
    key: SpecKey,
    /// Earliest instant the entry may run (backoff for retries).
    ready_at: Instant,
}

struct JobRecord {
    job: BatchJob,
    attempts: u32,
    status: JobStatus,
    /// Span open on the submitting thread at [`JobService::submit`] time
    /// (0 = none): workers parent their execution spans under it, so a
    /// trace links a job's queued→running→done lifecycle across the pool.
    trace_parent: u64,
}

#[derive(Default)]
struct ServiceState {
    jobs: HashMap<JobId, JobRecord>,
    queue: Vec<QueueEntry>,
    inflight: std::collections::HashSet<SpecKey>,
    next_id: u64,
    /// Journal replay map: job digest → checkpointed completion.
    replay: HashMap<SpecKey, JournalEntry>,
}

/// Per-service metric handles, registered in the service's own
/// [`telemetry::MetricsRegistry`] (in exposition order). The registry
/// replaces the former hand-rolled atomics plus by-hand string assembly:
/// lifecycle counters and the latency histogram (seconds-scale
/// [`telemetry::DURATION_BUCKETS`]) are updated live, while cache/disk
/// totals owned by the engine and the point-in-time queue gauges are
/// mirrored into their handles when [`JobService::metrics_text`] renders.
struct Metrics {
    registry: telemetry::MetricsRegistry,
    submitted: telemetry::Counter,
    completed: telemetry::Counter,
    resumed: telemetry::Counter,
    failed_attempts: telemetry::Counter,
    retried: telemetry::Counter,
    dead: telemetry::Counter,
    cancelled: telemetry::Counter,
    journal_errors: telemetry::Counter,
    cache_hits: telemetry::Counter,
    cache_misses: telemetry::Counter,
    cache_disk_hits: telemetry::Counter,
    cache_disk_corrupt: telemetry::Counter,
    cache_disk_writes: telemetry::Counter,
    cache_disk_write_errors: telemetry::Counter,
    queued: telemetry::Gauge,
    running: telemetry::Gauge,
    cache_entries: telemetry::Gauge,
    duration: telemetry::Histogram,
}

impl Metrics {
    fn new() -> Self {
        let registry = telemetry::MetricsRegistry::new();
        let submitted = registry.counter(
            "qdaflow_jobs_submitted_total",
            "Jobs accepted by the service.",
            &[],
        );
        let completed = registry.counter(
            "qdaflow_jobs_completed_total",
            "Jobs that reached Done (including journal replays).",
            &[],
        );
        let resumed = registry.counter(
            "qdaflow_jobs_resumed_total",
            "Jobs answered from the checkpoint journal without re-execution.",
            &[],
        );
        let failed_attempts = registry.counter(
            "qdaflow_job_attempts_failed_total",
            "Individual execution attempts that failed (before retry accounting).",
            &[],
        );
        let retried = registry.counter(
            "qdaflow_jobs_retried_total",
            "Jobs requeued with backoff after a transient failure.",
            &[],
        );
        let dead = registry.counter(
            "qdaflow_jobs_dead_total",
            "Jobs moved to the dead-letter bucket (deterministic failures, exhausted retries, cancellations).",
            &[],
        );
        let cancelled = registry.counter(
            "qdaflow_jobs_cancelled_total",
            "Jobs cancelled before running.",
            &[],
        );
        let journal_errors = registry.counter(
            "qdaflow_journal_append_errors_total",
            "Checkpoint records that could not be appended (completion still served from memory).",
            &[],
        );
        let cache_hits = registry.counter(
            "qdaflow_oracle_cache_hits_total",
            "Compilations answered from the in-memory oracle cache.",
            &[],
        );
        let cache_misses = registry.counter(
            "qdaflow_oracle_cache_misses_total",
            "Compilations actually performed (in-memory and disk layers both missed).",
            &[],
        );
        let cache_disk_hits = registry.counter(
            "qdaflow_oracle_cache_disk_hits_total",
            "Compilations answered from the disk-backed oracle cache.",
            &[],
        );
        let cache_disk_corrupt = registry.counter(
            "qdaflow_oracle_cache_disk_corrupt_total",
            "Disk cache entries rejected as truncated or corrupt (degraded to misses).",
            &[],
        );
        let cache_disk_writes = registry.counter(
            "qdaflow_oracle_cache_disk_writes_total",
            "Disk cache entries written (atomic temp-file + rename).",
            &[],
        );
        let cache_disk_write_errors = registry.counter(
            "qdaflow_oracle_cache_disk_write_errors_total",
            "Disk cache entry writes that failed (best-effort, swallowed).",
            &[],
        );
        let queued = registry.gauge(
            "qdaflow_jobs_queued",
            "Jobs currently waiting for a worker (including retry backoffs).",
            &[],
        );
        let running = registry.gauge("qdaflow_jobs_running", "Jobs currently executing.", &[]);
        let cache_entries = registry.gauge(
            "qdaflow_oracle_cache_entries",
            "Programs currently held by the in-memory oracle cache.",
            &[],
        );
        let duration = registry.histogram(
            "qdaflow_job_duration_seconds",
            "Wall-clock job execution time (per attempt, successes and failures).",
            &telemetry::DURATION_BUCKETS,
            &[],
        );
        Metrics {
            registry,
            submitted,
            completed,
            resumed,
            failed_attempts,
            retried,
            dead,
            cancelled,
            journal_errors,
            cache_hits,
            cache_misses,
            cache_disk_hits,
            cache_disk_corrupt,
            cache_disk_writes,
            cache_disk_write_errors,
            queued,
            running,
            cache_entries,
            duration,
        }
    }
}

struct ServiceInner {
    engine: Arc<BatchEngine>,
    exec: ExecConfig,
    max_attempts: u32,
    retry_base_delay: Duration,
    state: Mutex<ServiceState>,
    /// Workers wait here for queue activity (new jobs, freed single-flight
    /// keys, elapsed backoffs, shutdown).
    wake: Condvar,
    /// [`JobService::wait`] callers wait here for terminal transitions.
    done: Condvar,
    shutdown: AtomicBool,
    metrics: Metrics,
    journal: Option<Mutex<Journal>>,
}

impl ServiceInner {
    fn lock(&self) -> MutexGuard<'_, ServiceState> {
        self.state.lock().expect("job service state lock poisoned")
    }
}

/// The persistent, fault-tolerant batch job service. See the module docs
/// for the full contract; construction spawns the worker pool, and dropping
/// the last handle shuts it down (in-flight jobs finish, queued jobs are
/// abandoned — resubmit after a restart, the journal and disk cache make
/// that cheap).
pub struct JobService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for JobService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobService")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl JobService {
    /// Creates a service with its own [`BatchEngine`] (a disk-backed cache
    /// when [`JobServiceConfig::disk_cache_dir`] is set) and spawns the
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] when the cache directory cannot be
    /// created or the journal cannot be opened.
    pub fn new(config: JobServiceConfig) -> Result<Self, EngineError> {
        let cache = match &config.disk_cache_dir {
            Some(dir) => OracleCache::with_disk(DiskCache::open(dir)?),
            None => OracleCache::new(),
        };
        let engine = Arc::new(BatchEngine::with_cache(cache, config.exec));
        Self::with_engine(engine, config)
    }

    /// Creates a service over an existing engine (sharing its
    /// compiled-oracle cache with other users of that engine, e.g. the
    /// shell's synchronous paths) and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] when the journal cannot be opened.
    pub fn with_engine(
        engine: Arc<BatchEngine>,
        config: JobServiceConfig,
    ) -> Result<Self, EngineError> {
        let mut state = ServiceState::default();
        let journal = match &config.journal_path {
            Some(path) => {
                let (journal, replay) = Journal::open(path)?;
                state.replay = replay;
                Some(Mutex::new(journal))
            }
            None => None,
        };
        let inner = Arc::new(ServiceInner {
            engine,
            exec: config.exec,
            max_attempts: config.max_attempts.max(1),
            retry_base_delay: config.retry_base_delay,
            state: Mutex::new(state),
            wake: Condvar::new(),
            done: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: Metrics::new(),
            journal,
        });
        let workers = (0..config.workers.max(1))
            .map(|index| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("qdaflow-job-worker-{index}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn job service worker")
            })
            .collect();
        Ok(Self { inner, workers })
    }

    /// The engine executing the jobs (for cache statistics/pre-warming).
    pub fn engine(&self) -> &BatchEngine {
        &self.inner.engine
    }

    /// Submits one job, returning its handle immediately. A job whose
    /// [`BatchJob::digest`] is checkpointed in the journal is answered
    /// instantly from the checkpoint — `Done` without recompiling or
    /// resimulating anything (counted in `qdaflow_jobs_resumed_total`).
    ///
    /// # Errors
    ///
    /// [`EngineError::ZeroShots`] for a job requesting zero shots.
    pub fn submit(&self, job: BatchJob) -> Result<JobId, EngineError> {
        if job.shots == 0 {
            return Err(EngineError::ZeroShots { index: 0 });
        }
        let digest = job.digest();
        let key = job.cache_key();
        let trace_parent = telemetry::current_span();
        let mut state = self.inner.lock();
        let id = JobId(state.next_id);
        state.next_id += 1;
        self.inner.metrics.submitted.inc();
        if let Some(entry) = state.replay.get(&digest) {
            let status = JobStatus::Done(entry.result.clone());
            state.jobs.insert(
                id,
                JobRecord {
                    job,
                    attempts: 0,
                    status,
                    trace_parent,
                },
            );
            self.inner.metrics.resumed.inc();
            self.inner.metrics.completed.inc();
            drop(state);
            telemetry::event(
                "job",
                format!("job {id} resumed from journal"),
                vec![("job", id.to_string())],
            );
            self.inner.done.notify_all();
            return Ok(id);
        }
        state.jobs.insert(
            id,
            JobRecord {
                job,
                attempts: 0,
                status: JobStatus::Queued,
                trace_parent,
            },
        );
        state.queue.push(QueueEntry {
            id,
            key,
            ready_at: Instant::now(),
        });
        drop(state);
        telemetry::event(
            "job",
            format!("job {id} queued"),
            vec![("job", id.to_string())],
        );
        self.inner.wake.notify_one();
        Ok(id)
    }

    /// Submits a whole batch (all jobs validated before any is enqueued).
    ///
    /// # Errors
    ///
    /// [`EngineError::ZeroShots`] naming the first offending job; nothing
    /// is submitted on error.
    pub fn submit_batch(&self, jobs: &[BatchJob]) -> Result<Vec<JobId>, EngineError> {
        if let Some(index) = jobs.iter().position(|job| job.shots == 0) {
            return Err(EngineError::ZeroShots { index });
        }
        jobs.iter().map(|job| self.submit(job.clone())).collect()
    }

    /// The current status of a job (`None` for an unknown id).
    pub fn poll(&self, id: JobId) -> Option<JobStatus> {
        self.inner
            .lock()
            .jobs
            .get(&id)
            .map(|record| record.status.clone())
    }

    /// Blocks until the job reaches a terminal status (`Done`/`Dead`) and
    /// returns it (`None` for an unknown id). Retries are bounded, so every
    /// job terminates.
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut state = self.inner.lock();
        loop {
            match state.jobs.get(&id) {
                None => return None,
                Some(record) if record.status.is_terminal() => return Some(record.status.clone()),
                Some(_) => {
                    state = self
                        .inner
                        .done
                        .wait(state)
                        .expect("job service state lock poisoned");
                }
            }
        }
    }

    /// Like [`JobService::wait`], bounded by `timeout`: `None` when the job
    /// is unknown or still running when the timeout elapses.
    pub fn wait_timeout(&self, id: JobId, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            match state.jobs.get(&id) {
                None => return None,
                Some(record) if record.status.is_terminal() => return Some(record.status.clone()),
                Some(_) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (next, _) = self
                        .inner
                        .done
                        .wait_timeout(state, deadline - now)
                        .expect("job service state lock poisoned");
                    state = next;
                }
            }
        }
    }

    /// Cancels a job that is not currently running: `Queued` jobs and
    /// `Failed` jobs awaiting retry move to the dead-letter bucket with
    /// [`EngineError::JobCancelled`]. Returns `false` for unknown, running
    /// or already-terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = self.inner.lock();
        let Some(record) = state.jobs.get_mut(&id) else {
            return false;
        };
        if !matches!(record.status, JobStatus::Queued | JobStatus::Failed { .. }) {
            return false;
        }
        record.status = JobStatus::Dead {
            attempts: record.attempts,
            error: EngineError::JobCancelled,
        };
        state.queue.retain(|entry| entry.id != id);
        self.inner.metrics.cancelled.inc();
        self.inner.metrics.dead.inc();
        drop(state);
        self.inner.done.notify_all();
        true
    }

    /// The dead-letter bucket: every job in [`JobStatus::Dead`], with its
    /// attempt count and final error, in submission order.
    pub fn dead_letters(&self) -> Vec<(JobId, u32, EngineError)> {
        let state = self.inner.lock();
        let mut dead: Vec<(JobId, u32, EngineError)> = state
            .jobs
            .iter()
            .filter_map(|(&id, record)| match &record.status {
                JobStatus::Dead { attempts, error } => Some((id, *attempts, error.clone())),
                _ => None,
            })
            .collect();
        dead.sort_by_key(|(id, _, _)| *id);
        dead
    }

    /// Counters and the job-latency histogram in Prometheus text
    /// exposition format (`text/plain; version=0.0.4`) — ready to serve
    /// from a `/metrics` endpoint or scrape off a file.
    pub fn metrics_text(&self) -> String {
        let m = &self.inner.metrics;
        let cache = self.inner.engine.cache().stats();
        let disk = self.inner.engine.cache().disk_stats();
        let (queued, running) = {
            let state = self.inner.lock();
            let queued = state.queue.len();
            let running = state
                .jobs
                .values()
                .filter(|record| matches!(record.status, JobStatus::Running))
                .count();
            (queued, running)
        };
        // Mirror the engine-owned cache totals and the point-in-time queue
        // depths into their registry handles, then render the registry.
        m.cache_hits.store(cache.hits);
        m.cache_misses.store(cache.misses);
        m.cache_disk_hits.store(cache.disk_hits);
        m.cache_disk_corrupt.store(disk.corrupt);
        m.cache_disk_writes.store(disk.writes);
        m.cache_disk_write_errors.store(disk.write_errors);
        m.queued.set(queued as i64);
        m.running.set(running as i64);
        m.cache_entries.set(cache.entries as i64);
        m.registry.render()
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.wake.notify_all();
        self.inner.done.notify_all();
        for worker in self.workers.drain(..) {
            // Workers never panic (jobs are unwind-caught), but a join
            // failure must not abort the drop.
            let _ = worker.join();
        }
    }
}

/// What a worker found when scanning the queue.
enum Candidate {
    /// A runnable entry at this queue position.
    Ready(usize),
    /// Nothing runnable before this instant (earliest backoff expiry).
    Backoff(Instant),
    /// Queue empty, or every entry blocked behind an in-flight key.
    Blocked,
}

fn next_candidate(state: &ServiceState, now: Instant) -> Candidate {
    let mut earliest: Option<Instant> = None;
    let mut best: Option<(usize, Instant)> = None;
    for (position, entry) in state.queue.iter().enumerate() {
        if state.inflight.contains(&entry.key) {
            continue;
        }
        if entry.ready_at <= now {
            // Oldest ready entry wins (stable within a scan: earliest
            // ready_at, then queue order).
            if best.map(|(_, at)| entry.ready_at < at).unwrap_or(true) {
                best = Some((position, entry.ready_at));
            }
        } else if earliest.map(|at| entry.ready_at < at).unwrap_or(true) {
            earliest = Some(entry.ready_at);
        }
    }
    match (best, earliest) {
        (Some((position, _)), _) => Candidate::Ready(position),
        (None, Some(at)) => Candidate::Backoff(at),
        (None, None) => Candidate::Blocked,
    }
}

fn worker_loop(inner: &ServiceInner) {
    loop {
        // Take the next runnable job under the lock.
        let (id, key, job, trace_parent) = {
            let mut state = inner.lock();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match next_candidate(&state, Instant::now()) {
                    Candidate::Ready(position) => {
                        let entry = state.queue.remove(position);
                        state.inflight.insert(entry.key);
                        let record = state
                            .jobs
                            .get_mut(&entry.id)
                            .expect("queued job has a record");
                        record.status = JobStatus::Running;
                        break (entry.id, entry.key, record.job.clone(), record.trace_parent);
                    }
                    Candidate::Backoff(at) => {
                        let timeout = at.saturating_duration_since(Instant::now());
                        let (next, _) = inner
                            .wake
                            .wait_timeout(state, timeout)
                            .expect("job service state lock poisoned");
                        state = next;
                    }
                    Candidate::Blocked => {
                        state = inner
                            .wake
                            .wait(state)
                            .expect("job service state lock poisoned");
                    }
                }
            }
        };
        // Execute outside the lock, under the per-job panic boundary (the
        // engine catches its own panics too — this is the outer net for
        // anything around it). The span is parented under the span that was
        // open when the job was submitted — possibly on another thread.
        let started = Instant::now();
        let span = if telemetry::enabled() {
            telemetry::span_with_parent("job", format!("job {id} running"), trace_parent)
        } else {
            telemetry::SpanGuard::disabled()
        };
        let outcome = catch_job_panic(|| inner.engine.run_job(&job, &inner.exec));
        drop(span);
        let wall = started.elapsed();
        inner.metrics.duration.observe_duration(wall);
        let mut state = inner.lock();
        state.inflight.remove(&key);
        let record = state.jobs.get_mut(&id).expect("running job has a record");
        record.attempts += 1;
        let attempts = record.attempts;
        match outcome {
            Ok(result) => {
                if let Some(journal) = &inner.journal {
                    let appended = journal.lock().expect("journal lock poisoned").append(
                        job.digest(),
                        &result,
                        wall,
                    );
                    if appended.is_err() {
                        inner.metrics.journal_errors.inc();
                    }
                }
                record.status = JobStatus::Done(result);
                inner.metrics.completed.inc();
                drop(state);
                if telemetry::enabled() {
                    telemetry::event(
                        "job",
                        format!("job {id} done"),
                        vec![
                            ("job", id.to_string()),
                            ("attempts", attempts.to_string()),
                            ("wall_us", wall.as_micros().to_string()),
                        ],
                    );
                }
                inner.done.notify_all();
            }
            Err(error) => {
                inner.metrics.failed_attempts.inc();
                let transient = matches!(error, EngineError::JobPanicked { .. });
                if transient && attempts < inner.max_attempts {
                    let exponent = attempts.saturating_sub(1).min(16);
                    let delay = inner.retry_base_delay * 2u32.pow(exponent);
                    record.status = JobStatus::Failed { attempts, error };
                    state.queue.push(QueueEntry {
                        id,
                        key,
                        ready_at: Instant::now() + delay,
                    });
                    inner.metrics.retried.inc();
                    drop(state);
                    if telemetry::enabled() {
                        telemetry::event(
                            "job",
                            format!("job {id} retrying"),
                            vec![
                                ("job", id.to_string()),
                                ("attempts", attempts.to_string()),
                                ("delay_ms", delay.as_millis().to_string()),
                            ],
                        );
                    }
                } else {
                    record.status = JobStatus::Dead { attempts, error };
                    inner.metrics.dead.inc();
                    drop(state);
                    if telemetry::enabled() {
                        telemetry::event(
                            "job",
                            format!("job {id} dead"),
                            vec![("job", id.to_string()), ("attempts", attempts.to_string())],
                        );
                    }
                    inner.done.notify_all();
                }
            }
        }
        // Finishing may unblock a duplicate-key entry or a retry timer.
        inner.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SynthesisChoice;
    use crate::OracleSpec;
    use qdaflow_boolfn::Permutation;

    fn perm_job(shots: usize, seed: u64) -> BatchJob {
        BatchJob::new(
            OracleSpec::permutation(
                Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap(),
                SynthesisChoice::default(),
            ),
            shots,
            seed,
        )
    }

    fn fast_config() -> JobServiceConfig {
        JobServiceConfig {
            workers: 2,
            max_attempts: 3,
            retry_base_delay: Duration::from_millis(1),
            ..JobServiceConfig::default()
        }
    }

    #[test]
    fn submit_wait_done_matches_the_synchronous_engine() {
        let service = JobService::new(fast_config()).unwrap();
        let job = perm_job(500, 42);
        let id = service.submit(job.clone()).unwrap();
        let Some(JobStatus::Done(result)) = service.wait(id) else {
            panic!("job did not complete");
        };
        let direct = BatchEngine::new().run_batch(&[job]).unwrap();
        assert_eq!(result, direct[0]);
        assert_eq!(service.poll(id), Some(JobStatus::Done(direct[0].clone())));
    }

    #[test]
    fn one_panicking_job_fails_alone_while_siblings_complete() {
        let service = JobService::new(fast_config()).unwrap();
        let ids = service
            .submit_batch(&[
                perm_job(100, 1),
                BatchJob::new(OracleSpec::fault_injection(true, 7), 100, 2),
                perm_job(100, 3),
            ])
            .unwrap();
        assert!(matches!(service.wait(ids[0]), Some(JobStatus::Done(_))));
        assert!(matches!(service.wait(ids[2]), Some(JobStatus::Done(_))));
        let Some(JobStatus::Dead { attempts, error }) = service.wait(ids[1]) else {
            panic!("fault-injected job did not dead-letter");
        };
        assert_eq!(attempts, 3, "panics are retried to the attempt cap");
        assert!(matches!(error, EngineError::JobPanicked { ref message }
            if message.contains("injected compilation panic")));
        let dead = service.dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].0, ids[1]);
    }

    #[test]
    fn deterministic_failures_dead_letter_without_retries() {
        let service = JobService::new(fast_config()).unwrap();
        let id = service
            .submit(BatchJob::new(OracleSpec::fault_injection(false, 1), 64, 1))
            .unwrap();
        let Some(JobStatus::Dead { attempts, error }) = service.wait(id) else {
            panic!("deterministic failure did not dead-letter");
        };
        assert_eq!(attempts, 1, "typed errors are not retried");
        assert!(matches!(error, EngineError::Flow { .. }));
        let text = service.metrics_text();
        assert!(text.contains("qdaflow_jobs_retried_total 0"));
        assert!(text.contains("qdaflow_jobs_dead_total 1"));
    }

    #[test]
    fn zero_shot_jobs_are_rejected_at_submission() {
        let service = JobService::new(fast_config()).unwrap();
        assert!(matches!(
            service.submit(perm_job(0, 1)),
            Err(EngineError::ZeroShots { index: 0 })
        ));
        assert!(matches!(
            service.submit_batch(&[perm_job(10, 1), perm_job(0, 2)]),
            Err(EngineError::ZeroShots { index: 1 })
        ));
        // Nothing was enqueued.
        assert!(service
            .metrics_text()
            .contains("qdaflow_jobs_submitted_total 0"));
    }

    #[test]
    fn duplicate_submissions_single_flight_the_compilation() {
        let service = JobService::new(JobServiceConfig {
            workers: 4,
            ..fast_config()
        })
        .unwrap();
        let ids = service
            .submit_batch(&[perm_job(64, 1), perm_job(64, 2), perm_job(64, 3)])
            .unwrap();
        for id in ids {
            assert!(matches!(service.wait(id), Some(JobStatus::Done(_))));
        }
        let stats = service.engine().cache().stats();
        assert_eq!(stats.misses, 1, "one compile under any worker count");
        assert_eq!(stats.hits, 2, "duplicates replay from the warm cache");
    }

    #[test]
    fn cancel_withdraws_queued_jobs() {
        // One worker, and the first job is a panicking one that retries
        // with a long backoff — the second job can be cancelled while the
        // worker is busy elsewhere. Deterministic alternative: cancel
        // before any worker can take the job by submitting a large backlog.
        let service = JobService::new(JobServiceConfig {
            workers: 1,
            retry_base_delay: Duration::from_secs(60),
            ..fast_config()
        })
        .unwrap();
        // Occupy the single worker with a slow-ish real job first.
        let busy = service.submit(perm_job(50_000, 9)).unwrap();
        let victim = service.submit(perm_job(64, 10)).unwrap();
        // The victim is queued behind the busy job on the only worker; if
        // the race is lost and it already runs/finished, cancel reports
        // false — accept both, but the status must stay coherent.
        let cancelled = service.cancel(victim);
        let status = service.wait(victim).unwrap();
        if cancelled {
            assert!(matches!(
                status,
                JobStatus::Dead {
                    error: EngineError::JobCancelled,
                    ..
                }
            ));
        } else {
            assert!(matches!(status, JobStatus::Done(_)));
        }
        assert!(matches!(service.wait(busy), Some(JobStatus::Done(_))));
        assert!(!service.cancel(busy), "terminal jobs cannot be cancelled");
    }

    #[test]
    fn journal_checkpoints_replay_on_resume() {
        let dir =
            std::env::temp_dir().join(format!("qdaflow-service-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("journal.log");
        let config = JobServiceConfig {
            journal_path: Some(journal_path.clone()),
            ..fast_config()
        };
        let job = perm_job(300, 5);
        let first_result = {
            let service = JobService::new(config.clone()).unwrap();
            let id = service.submit(job.clone()).unwrap();
            let Some(JobStatus::Done(result)) = service.wait(id) else {
                panic!("first run did not complete");
            };
            result
        };
        // A fresh service over the same journal: the identical job replays
        // without compiling; a different job (other seed) does not.
        let service = JobService::new(config).unwrap();
        let id = service.submit(job).unwrap();
        let Some(JobStatus::Done(result)) = service.wait(id) else {
            panic!("resumed job did not complete");
        };
        assert_eq!(result, first_result);
        let stats = service.engine().cache().stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 0),
            "journal replay touches no compiler at all"
        );
        let text = service.metrics_text();
        assert!(text.contains("qdaflow_jobs_resumed_total 1"));
        let other = service.submit(perm_job(300, 6)).unwrap();
        assert!(matches!(service.wait(other), Some(JobStatus::Done(_))));
        assert_eq!(service.engine().cache().stats().misses, 1);
    }

    #[test]
    fn metrics_text_counts_queue_and_cache_activity() {
        let service = JobService::new(fast_config()).unwrap();
        let id = service.submit(perm_job(128, 1)).unwrap();
        service.wait(id);
        let text = service.metrics_text();
        for needle in [
            "qdaflow_jobs_submitted_total 1",
            "qdaflow_jobs_completed_total 1",
            "qdaflow_oracle_cache_misses_total 1",
            "qdaflow_job_duration_seconds_count 1",
            "qdaflow_job_duration_seconds_bucket{le=\"+Inf\"} 1",
            "# TYPE qdaflow_job_duration_seconds histogram",
            "# TYPE qdaflow_jobs_queued gauge",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
