//! Clifford+T circuit optimization.
//!
//! Two passes are provided:
//!
//! * [`cancel_adjacent`] — removes adjacent gate/inverse pairs
//!   (`H H`, `T T†`, `CNOT CNOT`, ...),
//! * [`phase_folding`] — a simplified version of the T-par optimization \[69\]
//!   used as the `tpar` step of the RevKit pipeline: within the phase
//!   polynomial picture, π/4-phase gates applied to the same parity of path
//!   variables are merged, and the merged exponent is re-emitted with the
//!   cheapest equivalent gate sequence.
//!
//! Both passes preserve the circuit's unitary (up to the global phase), which
//! the tests check by statevector comparison.

use qdaflow_quantum::{QuantumCircuit, QuantumGate};
use std::collections::HashMap;

/// Removes adjacent inverse pairs until a fixed point is reached.
pub fn cancel_adjacent(circuit: &QuantumCircuit) -> QuantumCircuit {
    let mut gates: Vec<QuantumGate> = circuit.gates().to_vec();
    loop {
        let mut changed = false;
        let mut index = 0;
        while index + 1 < gates.len() {
            if is_inverse_pair(&gates[index], &gates[index + 1]) {
                gates.drain(index..index + 2);
                changed = true;
                index = index.saturating_sub(1);
            } else {
                index += 1;
            }
        }
        if !changed {
            break;
        }
    }
    rebuild(circuit.num_qubits(), gates)
}

fn is_inverse_pair(left: &QuantumGate, right: &QuantumGate) -> bool {
    left.dagger() == *right
}

fn rebuild(num_qubits: usize, gates: Vec<QuantumGate>) -> QuantumCircuit {
    let mut circuit = QuantumCircuit::new(num_qubits);
    for gate in gates {
        circuit
            .push(gate)
            .expect("optimization passes never introduce new qubits");
    }
    circuit
}

/// Phase-polynomial key: the parity of path variables carried by a wire plus
/// the affine constant introduced by X gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ParityKey {
    parity: u128,
    constant: bool,
}

/// Simplified T-par: merges π/4-phase gates applied to equal parities of path
/// variables. Non-phase gates are left untouched; the merged phase is emitted
/// at the position of its first contributing gate.
pub fn phase_folding(circuit: &QuantumCircuit) -> QuantumCircuit {
    let num_qubits = circuit.num_qubits();
    // Each wire carries a parity over "path variables"; fresh variables are
    // allocated at the start and whenever a non-linear gate (H, Y, Toffoli
    // target, ...) acts on a wire. With u128 masks we support up to 128 path
    // variables; if more are needed the optimization degrades gracefully by
    // flushing the phase table.
    let mut next_variable: usize = 0;
    let mut parity: Vec<u128> = Vec::with_capacity(num_qubits);
    let mut constant: Vec<bool> = vec![false; num_qubits];
    for _ in 0..num_qubits {
        parity.push(fresh_variable(&mut next_variable));
    }

    // First pass: compute, for every phase gate, its parity key; accumulate
    // exponents (in units of π/4 mod 8) per key and remember the first gate
    // index of each key.
    #[derive(Default)]
    struct PhaseTerm {
        exponent: i64,
        first_gate: usize,
    }
    let mut terms: HashMap<ParityKey, PhaseTerm> = HashMap::new();
    let mut gate_keys: Vec<Option<ParityKey>> = vec![None; circuit.num_gates()];

    for (index, gate) in circuit.iter().enumerate() {
        match phase_exponent(gate) {
            Some((qubit, exponent)) => {
                let key = ParityKey {
                    parity: parity[qubit],
                    constant: constant[qubit],
                };
                let term = terms.entry(key).or_insert_with(|| PhaseTerm {
                    exponent: 0,
                    first_gate: index,
                });
                term.exponent = (term.exponent + exponent).rem_euclid(8);
                gate_keys[index] = Some(key);
            }
            None => {
                apply_linear_update(gate, &mut parity, &mut constant, &mut next_variable);
            }
        }
    }

    // Second pass: rebuild the circuit, emitting each merged phase at its
    // first contributing position and dropping the other contributors.
    let mut emitted: HashMap<ParityKey, bool> = HashMap::new();
    let mut output: Vec<QuantumGate> = Vec::with_capacity(circuit.num_gates());
    for (index, gate) in circuit.iter().enumerate() {
        match gate_keys[index] {
            Some(key) => {
                let term = &terms[&key];
                if term.first_gate == index && !*emitted.get(&key).unwrap_or(&false) {
                    let qubit = gate.qubits()[0];
                    output.extend(phase_gates_for_exponent(term.exponent, qubit));
                    emitted.insert(key, true);
                }
            }
            None => output.push(gate.clone()),
        }
    }
    rebuild(num_qubits, output)
}

/// Runs adjacent-gate cancellation, phase folding, and a final cancellation
/// pass — the combination used as the `tpar` command of the shell.
pub fn optimize_clifford_t(circuit: &QuantumCircuit) -> QuantumCircuit {
    let cancelled = cancel_adjacent(circuit);
    let folded = phase_folding(&cancelled);
    cancel_adjacent(&folded)
}

fn fresh_variable(next_variable: &mut usize) -> u128 {
    let variable = *next_variable;
    *next_variable += 1;
    if variable < 128 {
        1u128 << variable
    } else {
        // Path-variable budget exhausted: reuse the highest bit. This only
        // affects optimization quality, not correctness, because the caller
        // flushes the phase table when it happens.
        1u128 << 127
    }
}

/// Returns `Some((qubit, exponent))` when the gate is a pure π/4-multiple
/// phase on a single qubit.
fn phase_exponent(gate: &QuantumGate) -> Option<(usize, i64)> {
    match gate {
        QuantumGate::Z(q) => Some((*q, 4)),
        QuantumGate::S(q) => Some((*q, 2)),
        QuantumGate::Sdg(q) => Some((*q, 6)),
        QuantumGate::T(q) => Some((*q, 1)),
        QuantumGate::Tdg(q) => Some((*q, 7)),
        QuantumGate::Rz { qubit, angle } => {
            let eighth_turns = angle / std::f64::consts::FRAC_PI_4;
            if (eighth_turns - eighth_turns.round()).abs() < 1e-9 {
                Some((*qubit, (eighth_turns.round() as i64).rem_euclid(8)))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Applies the effect of a non-phase gate on the tracked parities; gates that
/// are not linear over GF(2) allocate fresh path variables for their targets.
fn apply_linear_update(
    gate: &QuantumGate,
    parity: &mut [u128],
    constant: &mut [bool],
    next_variable: &mut usize,
) {
    match gate {
        QuantumGate::Cx { control, target } => {
            parity[*target] ^= parity[*control];
            constant[*target] ^= constant[*control];
        }
        QuantumGate::X(q) => {
            constant[*q] ^= true;
        }
        QuantumGate::Swap { a, b } => {
            parity.swap(*a, *b);
            constant.swap(*a, *b);
        }
        QuantumGate::Cz { .. } | QuantumGate::Mcz { .. } => {
            // Diagonal gates do not change the carried values.
        }
        QuantumGate::Ccx { target, .. } => {
            parity[*target] = fresh_variable(next_variable);
            constant[*target] = false;
        }
        QuantumGate::Mcx { target, .. } => {
            parity[*target] = fresh_variable(next_variable);
            constant[*target] = false;
        }
        other => {
            // H, Y, Z-like already handled as phases; any remaining
            // single-qubit gate invalidates the carried parity.
            for qubit in other.qubits() {
                parity[qubit] = fresh_variable(next_variable);
                constant[qubit] = false;
            }
        }
    }
}

/// Emits the cheapest gate sequence for a phase of `exponent · π/4` on
/// `qubit` (exponent taken modulo 8).
fn phase_gates_for_exponent(exponent: i64, qubit: usize) -> Vec<QuantumGate> {
    match exponent.rem_euclid(8) {
        0 => vec![],
        1 => vec![QuantumGate::T(qubit)],
        2 => vec![QuantumGate::S(qubit)],
        3 => vec![QuantumGate::S(qubit), QuantumGate::T(qubit)],
        4 => vec![QuantumGate::Z(qubit)],
        5 => vec![QuantumGate::Z(qubit), QuantumGate::T(qubit)],
        6 => vec![QuantumGate::Sdg(qubit)],
        7 => vec![QuantumGate::Tdg(qubit)],
        _ => unreachable!("rem_euclid(8) is always in 0..8"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdaflow_quantum::statevector::Statevector;

    /// Checks unitary equivalence up to global phase by comparing the states
    /// produced from a register prepared in a superposition that is sensitive
    /// to all relative phases.
    fn assert_equivalent(original: &QuantumCircuit, optimized: &QuantumCircuit) {
        assert_eq!(original.num_qubits(), optimized.num_qubits());
        let n = original.num_qubits();
        let mut preparation = QuantumCircuit::new(n);
        for qubit in 0..n {
            preparation.push(QuantumGate::H(qubit)).unwrap();
            preparation
                .push(QuantumGate::Rz {
                    qubit,
                    angle: 0.1 + 0.2 * qubit as f64,
                })
                .unwrap();
        }
        let mut lhs = preparation.clone();
        lhs.append(original).unwrap();
        let mut rhs = preparation;
        rhs.append(optimized).unwrap();
        let a = Statevector::from_circuit(&lhs).unwrap();
        let b = Statevector::from_circuit(&rhs).unwrap();
        assert!(
            a.fidelity(&b) > 1.0 - 1e-9,
            "optimization changed the circuit semantics (fidelity {})",
            a.fidelity(&b)
        );
    }

    fn circuit_of(n: usize, gates: &[QuantumGate]) -> QuantumCircuit {
        let mut circuit = QuantumCircuit::new(n);
        for gate in gates {
            circuit.push(gate.clone()).unwrap();
        }
        circuit
    }

    #[test]
    fn adjacent_inverse_pairs_cancel() {
        let circuit = circuit_of(
            2,
            &[
                QuantumGate::H(0),
                QuantumGate::H(0),
                QuantumGate::T(1),
                QuantumGate::Tdg(1),
                QuantumGate::Cx {
                    control: 0,
                    target: 1,
                },
                QuantumGate::Cx {
                    control: 0,
                    target: 1,
                },
            ],
        );
        let optimized = cancel_adjacent(&circuit);
        assert!(optimized.is_empty());
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn cancellation_cascades() {
        // T H H Tdg collapses completely once the inner pair is removed.
        let circuit = circuit_of(
            1,
            &[
                QuantumGate::T(0),
                QuantumGate::H(0),
                QuantumGate::H(0),
                QuantumGate::Tdg(0),
            ],
        );
        let optimized = cancel_adjacent(&circuit);
        assert!(optimized.is_empty());
    }

    #[test]
    fn phase_folding_merges_t_pairs_on_the_same_wire() {
        let circuit = circuit_of(1, &[QuantumGate::T(0), QuantumGate::T(0)]);
        let optimized = phase_folding(&circuit);
        assert_eq!(optimized.num_gates(), 1);
        assert_eq!(optimized.gates()[0], QuantumGate::S(0));
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn phase_folding_merges_across_cnot_conjugation() {
        // T(1); CX(0,1); CX(0,1); T(1) — the parities match, so the two T
        // gates merge into an S even though CNOTs sit between them.
        let circuit = circuit_of(
            2,
            &[
                QuantumGate::T(1),
                QuantumGate::Cx {
                    control: 0,
                    target: 1,
                },
                QuantumGate::Cx {
                    control: 0,
                    target: 1,
                },
                QuantumGate::T(1),
            ],
        );
        let optimized = phase_folding(&circuit);
        assert_eq!(optimized.t_count(), 0);
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn phase_folding_cancels_t_tdg_on_equal_parity() {
        // Compute/uncompute pattern: T on x0⊕x1 followed later by Tdg on the
        // same parity cancels to nothing.
        let circuit = circuit_of(
            2,
            &[
                QuantumGate::Cx {
                    control: 0,
                    target: 1,
                },
                QuantumGate::T(1),
                QuantumGate::Cx {
                    control: 0,
                    target: 1,
                },
                QuantumGate::Cx {
                    control: 0,
                    target: 1,
                },
                QuantumGate::Tdg(1),
                QuantumGate::Cx {
                    control: 0,
                    target: 1,
                },
            ],
        );
        let optimized = optimize_clifford_t(&circuit);
        assert_eq!(optimized.t_count(), 0);
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn hadamard_blocks_incorrect_merging() {
        // T; H; T on the same wire must NOT merge (the H changes the basis).
        let circuit = circuit_of(
            1,
            &[QuantumGate::T(0), QuantumGate::H(0), QuantumGate::T(0)],
        );
        let optimized = phase_folding(&circuit);
        assert_eq!(optimized.t_count(), 2);
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn x_conjugation_is_tracked_in_the_constant() {
        // X; T; X and a bare T act on different affine functions and must not
        // merge into S.
        let circuit = circuit_of(
            1,
            &[
                QuantumGate::X(0),
                QuantumGate::T(0),
                QuantumGate::X(0),
                QuantumGate::T(0),
            ],
        );
        let optimized = phase_folding(&circuit);
        assert_eq!(optimized.t_count(), 2);
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn toffoli_decomposition_t_count_is_preserved_without_merges() {
        let gates = crate::toffoli::ccx_clifford_t(0, 1, 2);
        let circuit = circuit_of(3, &gates);
        let optimized = optimize_clifford_t(&circuit);
        // The 7 T gates of a single Toffoli act on 7 distinct parities; no
        // reduction is possible.
        assert_eq!(optimized.t_count(), 7);
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn compute_uncompute_toffoli_pair_loses_all_t_gates() {
        // CCX followed by its own decomposition reversed (i.e. CCX†=CCX)
        // gives the identity; phase folding plus cancellation should remove
        // every T gate.
        let mut gates = crate::toffoli::ccx_clifford_t(0, 1, 2);
        let reversed: Vec<QuantumGate> = crate::toffoli::ccx_clifford_t(0, 1, 2)
            .into_iter()
            .rev()
            .map(|g| g.dagger())
            .collect();
        gates.extend(reversed);
        let circuit = circuit_of(3, &gates);
        let optimized = optimize_clifford_t(&circuit);
        assert_eq!(optimized.t_count(), 0, "optimized:\n{optimized}");
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn rz_multiples_of_pi_over_four_participate_in_folding() {
        let circuit = circuit_of(
            1,
            &[
                QuantumGate::Rz {
                    qubit: 0,
                    angle: std::f64::consts::FRAC_PI_4,
                },
                QuantumGate::T(0),
            ],
        );
        let optimized = phase_folding(&circuit);
        assert_eq!(optimized.num_gates(), 1);
        assert_eq!(optimized.gates()[0], QuantumGate::S(0));
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn non_clifford_rz_is_left_alone() {
        let circuit = circuit_of(
            1,
            &[
                QuantumGate::Rz {
                    qubit: 0,
                    angle: 0.3,
                },
                QuantumGate::T(0),
            ],
        );
        let optimized = phase_folding(&circuit);
        assert_eq!(optimized.num_gates(), 2);
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn full_phase_exponent_table() {
        for exponent in 0..8i64 {
            let gates = phase_gates_for_exponent(exponent, 0);
            let circuit = circuit_of(1, &gates);
            // Compare against a bare sequence of `exponent` T gates.
            let reference = circuit_of(1, &vec![QuantumGate::T(0); exponent as usize]);
            assert_equivalent(&reference, &circuit);
        }
    }
}
