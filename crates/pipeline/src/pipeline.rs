//! The [`Pipeline`]: an ordered, build-time-validated sequence of passes.

use crate::ir::{Ir, Stage, StageSet};
use crate::pass::Pass;
use crate::passes::pass_from_tokens;
use crate::script::{split_statements, tokenize};
use crate::FlowError;
use qdaflow_boolfn::{Permutation, TruthTable};
use qdaflow_quantum::resource::ResourceCounts;
use qdaflow_quantum::{GateCensus, QuantumCircuit};
use qdaflow_reversible::ReversibleCircuit;
use qdaflow_telemetry as telemetry;
use std::fmt;
use std::time::{Duration, Instant};

/// A compiled, validated pass sequence — the paper's equation (5) as data.
///
/// A pipeline is built either programmatically through [`Pipeline::builder`]
/// or by parsing the paper's semicolon-separated shell syntax with
/// [`Pipeline::parse`]. Building validates every stage transition, so a
/// sequence like `tpar` before `rptm` is rejected with a typed
/// [`FlowError::InvalidStageOrder`] before anything runs. Running produces a
/// [`PipelineReport`] with per-pass metrics and the final circuit.
///
/// # Example
///
/// The pipeline of equation (5), run on the paper's example permutation:
///
/// ```
/// use qdaflow_boolfn::Permutation;
/// use qdaflow_pipeline::Pipeline;
///
/// # fn main() -> Result<(), qdaflow_pipeline::FlowError> {
/// let pipeline = Pipeline::parse("revgen; tbs; revsimp; rptm; tpar; ps")?;
/// let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
/// let report = pipeline.run(pi.into())?;
/// let circuit = report.final_quantum().expect("pipeline ends at a quantum circuit");
/// assert!(circuit.is_clifford_t());
/// // Invalid pass orders fail at *build* time:
/// assert!(Pipeline::parse("revgen --hwb 4; tpar").is_err());
/// # Ok(())
/// # }
/// ```
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
    input_stages: StageSet,
}

impl Pipeline {
    /// Starts building a pipeline programmatically.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder { passes: Vec::new() }
    }

    /// Parses the paper's shell syntax (`revgen --hwb 4; tbs; revsimp;
    /// rptm; tpar; ps -c`) into a validated pipeline.
    ///
    /// Statements are separated by `;` or newlines; `#` starts a comment
    /// line; double quotes group arguments containing spaces.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Script`] for lexing failures (an unterminated
    /// double quote), [`FlowError::UnknownPass`] for unregistered pass
    /// names, [`FlowError::InvalidPassArguments`] for malformed arguments,
    /// and the build-time validation errors of [`PipelineBuilder::build`].
    pub fn parse(script: &str) -> Result<Self, FlowError> {
        let mut builder = Self::builder();
        for statement in split_statements(script)? {
            let tokens = tokenize(&statement)?;
            let Some((name, args)) = tokens.split_first() else {
                continue;
            };
            builder = builder.then_boxed(pass_from_tokens(name, args)?);
        }
        builder.build()
    }

    /// The stages the pipeline accepts as external input (what its first
    /// pass accepts).
    pub fn input_stages(&self) -> StageSet {
        self.input_stages
    }

    /// Whether the pipeline can run without an external input (its first
    /// pass is a generator such as `revgen --hwb 4`).
    pub fn is_generated(&self) -> bool {
        self.passes.first().is_some_and(|p| p.is_generator())
    }

    /// The descriptions of the passes, in order.
    pub fn pass_names(&self) -> Vec<String> {
        self.passes.iter().map(|p| p.describe()).collect()
    }

    /// The canonical cache key of running this pipeline on `input` (`None`
    /// for generated pipelines); see [`crate::spec`].
    pub fn spec_key(&self, input: Option<&Ir>) -> crate::spec::SpecKey {
        crate::spec::spec_key(input, &self.pass_names())
    }

    /// Number of passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline has no passes (never true for a built pipeline).
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs the pipeline on an external input value.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::StageMismatch`] if `input` has a stage the first
    /// pass does not accept, and propagates pass failures.
    pub fn run(&self, input: Ir) -> Result<PipelineReport, FlowError> {
        self.execute(Some(input))
    }

    /// Runs a generated pipeline (one whose first pass is a generator, such
    /// as `revgen --hwb 4; …`) without an external input.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::MissingPipelineInput`] if the first pass is not
    /// a generator, and propagates pass failures.
    pub fn run_generated(&self) -> Result<PipelineReport, FlowError> {
        self.execute(None)
    }

    fn execute(&self, input: Option<Ir>) -> Result<PipelineReport, FlowError> {
        let mut records = Vec::with_capacity(self.passes.len());
        let mut artifacts = Artifacts::default();
        let mut remaining = self.passes.as_slice();
        let _flow_span = telemetry::span!("pipeline", "flow: {} passes", self.passes.len());

        let mut current = match input {
            Some(ir) => ir,
            None => {
                let (first, rest) = remaining
                    .split_first()
                    .expect("built pipelines are never empty");
                let start = Instant::now();
                let generated = {
                    let _span = telemetry::span!("pipeline", "pass {}", first.describe());
                    first
                        .generate()
                        .ok_or_else(|| FlowError::MissingPipelineInput {
                            pass: first.describe(),
                            expected: first.accepts(),
                        })??
                };
                records.push(PassRecord::of(first.as_ref(), &generated, start.elapsed()));
                note_pass(records.last().expect("just pushed"));
                remaining = rest;
                generated
            }
        };
        if remaining.len() == self.passes.len() && !self.input_stages.contains(current.stage()) {
            // External input: reject stages that cannot flow through the
            // whole chain (input_stages is narrowed at build time).
            return Err(FlowError::StageMismatch {
                pass: self.passes[0].describe(),
                expected: self.input_stages,
                found: current.stage(),
            });
        }
        artifacts.absorb(&current);

        for pass in remaining {
            if !pass.accepts().contains(current.stage()) {
                return Err(FlowError::StageMismatch {
                    pass: pass.describe(),
                    expected: pass.accepts(),
                    found: current.stage(),
                });
            }
            let start = Instant::now();
            let output = {
                let _span = telemetry::span!("pipeline", "pass {}", pass.describe());
                pass.apply(current)?
            };
            records.push(PassRecord::of(pass.as_ref(), &output, start.elapsed()));
            note_pass(records.last().expect("just pushed"));
            artifacts.absorb(&output);
            current = output;
        }

        Ok(PipelineReport {
            passes: records,
            output: current,
            artifacts,
        })
    }
}

/// Publishes one executed pass into telemetry: a sample in the global
/// `qdaflow_pass_duration_seconds{pass=...}` histogram (always on) and,
/// when tracing is enabled, a key/value event mirroring the record.
fn note_pass(record: &PassRecord) {
    let name = record.pass.split_whitespace().next().unwrap_or("?");
    telemetry::global_metrics()
        .histogram(
            "qdaflow_pass_duration_seconds",
            "Wall-clock pipeline pass duration, labelled by pass name.",
            &telemetry::DURATION_BUCKETS,
            &[("pass", name)],
        )
        .observe_duration(record.duration);
    if telemetry::enabled() {
        telemetry::event(
            "pipeline",
            format!("pass {name}"),
            vec![
                ("pass", record.pass.clone()),
                ("stage", record.stage.to_string()),
                ("duration_us", record.duration.as_micros().to_string()),
            ],
        );
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pipeline({})", self.pass_names().join("; "))
    }
}

impl fmt::Display for Pipeline {
    /// Renders the pipeline in the canonical shell syntax: the pass
    /// descriptions joined by `"; "`. For every pipeline obtained from
    /// [`Pipeline::parse`] the rendering parses back to an equivalent
    /// pipeline with the identical rendering (parse/Display are mutually
    /// normalizing; enforced by the `parse_display_roundtrip` property
    /// suite).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pass_names().join("; "))
    }
}

/// Accumulates passes and validates the sequence on
/// [`build`](PipelineBuilder::build).
#[must_use = "call .build() to obtain a validated pipeline"]
pub struct PipelineBuilder {
    passes: Vec<Box<dyn Pass>>,
}

impl PipelineBuilder {
    /// Appends a pass.
    pub fn then(self, pass: impl Pass + 'static) -> Self {
        self.then_boxed(Box::new(pass))
    }

    /// Appends an already boxed pass.
    pub fn then_boxed(mut self, pass: Box<dyn Pass>) -> Self {
        self.passes.push(pass);
        self
    }

    /// Validates every stage transition and produces the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::EmptyPipeline`] for an empty sequence and
    /// [`FlowError::InvalidStageOrder`] for the first pass that cannot
    /// consume what its predecessors produce.
    pub fn build(self) -> Result<Pipeline, FlowError> {
        let Some(first) = self.passes.first() else {
            return Err(FlowError::EmptyPipeline);
        };
        // Validate once over the full accepted-input set — this produces
        // the typed error (with the offending position) when no input kind
        // can make the sequence work.
        Self::validate(&self.passes, first.accepts())?;
        // Then narrow the externally accepted inputs to the stages that
        // actually flow through the *whole* chain, so `input_stages` never
        // advertises an input the pipeline would reject at run time (e.g.
        // `revgen; esopbs` accepts only a boolean function even though the
        // passthrough `revgen` alone would accept a permutation too).
        let mut input_stages = StageSet::EMPTY;
        for stage in first.accepts().stages() {
            if Self::validate(&self.passes, stage.into()).is_ok() {
                input_stages = input_stages.union(stage.into());
            }
        }
        Ok(Pipeline {
            passes: self.passes,
            input_stages,
        })
    }

    fn validate(passes: &[Box<dyn Pass>], input: StageSet) -> Result<(), FlowError> {
        let mut possible = passes[0].output(input);
        for (position, pass) in passes.iter().enumerate().skip(1) {
            let feasible = possible.intersect(pass.accepts());
            if feasible.is_empty() {
                return Err(FlowError::InvalidStageOrder {
                    pass: pass.describe(),
                    position,
                    expected: pass.accepts(),
                    found: possible,
                });
            }
            possible = pass.output(feasible);
        }
        Ok(())
    }
}

/// The latest value the pipeline produced at each stage, in flow order —
/// what a shell would have left in its stores after running the script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Artifacts {
    /// Latest OpenQASM source text (a `qasmin` input).
    pub qasm_source: Option<String>,
    /// Latest permutation specification.
    pub permutation: Option<Permutation>,
    /// Latest single-output Boolean function specification.
    pub function: Option<TruthTable>,
    /// Latest reversible circuit.
    pub reversible: Option<ReversibleCircuit>,
    /// Latest quantum circuit.
    pub quantum: Option<QuantumCircuit>,
}

impl Artifacts {
    fn absorb(&mut self, ir: &Ir) {
        match ir {
            Ir::QasmSource(s) => self.qasm_source = Some(s.clone()),
            Ir::Permutation(p) => self.permutation = Some(p.clone()),
            Ir::Function(f) => self.function = Some(f.clone()),
            Ir::Reversible(c) => self.reversible = Some(c.clone()),
            Ir::Quantum(c) => self.quantum = Some(c.clone()),
        }
    }
}

/// Metrics recorded for one executed pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PassRecord {
    /// The pass description (name plus arguments).
    pub pass: String,
    /// Stage of the pass output.
    pub stage: Stage,
    /// Gate count of the output reversible circuit, if the output is one.
    pub reversible_gates: Option<usize>,
    /// Resource counts of the output quantum circuit, if the output is one.
    pub resources: Option<ResourceCounts>,
    /// Gate census of the output quantum circuit, if the output is one —
    /// the Clifford/permutation/T/Hadamard populations the automatic
    /// backend dispatcher routes by, surfaced here so its decisions are
    /// inspectable per pass (the shell's `flow` report prints this line).
    pub census: Option<GateCensus>,
    /// A pass-provided summary line (`ps` uses this).
    pub note: Option<String>,
    /// Wall-clock time the pass took.
    pub duration: Duration,
}

impl PassRecord {
    fn of(pass: &dyn Pass, output: &Ir, duration: Duration) -> Self {
        let (reversible_gates, resources, census) = match output {
            Ir::Reversible(circuit) => (Some(circuit.num_gates()), None, None),
            Ir::Quantum(circuit) => (
                None,
                Some(ResourceCounts::of(circuit)),
                Some(GateCensus::of(circuit)),
            ),
            _ => (None, None, None),
        };
        Self {
            pass: pass.describe(),
            stage: output.stage(),
            reversible_gates,
            resources,
            census,
            note: pass.summarize(output),
            duration,
        }
    }

    /// A one-line rendering of the record (pass, stage metrics, timing).
    pub fn summary(&self) -> String {
        let metrics = if let Some(gates) = self.reversible_gates {
            format!("{gates} gates")
        } else if let Some(resources) = &self.resources {
            resources.summary()
        } else {
            self.stage.to_string()
        };
        format!("{}: {} ({:.1?})", self.pass, metrics, self.duration)
    }
}

/// The result of running a [`Pipeline`]: per-pass metrics, stage artifacts
/// and the final IR value.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// One record per executed pass, in order.
    pub passes: Vec<PassRecord>,
    /// The value the last pass produced.
    pub output: Ir,
    /// The latest value produced at each stage.
    pub artifacts: Artifacts,
}

impl PipelineReport {
    /// The final quantum circuit, if the pipeline ended at one.
    pub fn final_quantum(&self) -> Option<&QuantumCircuit> {
        match &self.output {
            Ir::Quantum(circuit) => Some(circuit),
            _ => None,
        }
    }

    /// The final reversible circuit, if the pipeline ended at one.
    pub fn final_reversible(&self) -> Option<&ReversibleCircuit> {
        match &self.output {
            Ir::Reversible(circuit) => Some(circuit),
            _ => None,
        }
    }

    /// Resource counts of the final quantum circuit, if any.
    pub fn final_resources(&self) -> Option<ResourceCounts> {
        self.final_quantum().map(ResourceCounts::of)
    }

    /// The record of the last executed pass with the given name (matching
    /// on the name, ignoring arguments).
    pub fn record_of(&self, name: &str) -> Option<&PassRecord> {
        self.passes
            .iter()
            .rev()
            .find(|r| r.pass == name || r.pass.starts_with(&format!("{name} ")))
    }

    /// Reversible gate count recorded after the last pass with `name`.
    pub fn gates_after(&self, name: &str) -> Option<usize> {
        self.record_of(name).and_then(|r| r.reversible_gates)
    }

    /// Quantum resource counts recorded after the last pass with `name`.
    pub fn resources_after(&self, name: &str) -> Option<&ResourceCounts> {
        self.record_of(name).and_then(|r| r.resources.as_ref())
    }

    /// Total wall-clock time across all passes.
    pub fn total_duration(&self) -> Duration {
        self.passes.iter().map(|r| r.duration).sum()
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for record in &self.passes {
            writeln!(f, "{}", record.summary())?;
            if let Some(census) = &record.census {
                writeln!(f, "  census: {census}")?;
            }
            if let Some(note) = &record.note {
                writeln!(f, "  {note}")?;
            }
        }
        write!(f, "total: {:.1?}", self.total_duration())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{Ps, Revgen, Revsimp, Rptm, Tbs, Tpar};

    #[test]
    fn equation_5_parses_builds_and_runs() {
        let pipeline = Pipeline::parse("revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c").unwrap();
        assert!(pipeline.is_generated());
        assert_eq!(pipeline.len(), 6);
        let report = pipeline.run_generated().unwrap();
        let circuit = report.final_quantum().unwrap();
        assert!(circuit.is_clifford_t());
        assert!(report.artifacts.reversible.is_some());
        assert!(report.artifacts.permutation.is_some());
        // tpar never increases the T-count.
        let mapped = report.resources_after("rptm").unwrap();
        let optimized = report.resources_after("tpar").unwrap();
        assert!(optimized.t_count <= mapped.t_count);
        // The ps pass recorded a statistics note.
        assert!(report.record_of("ps").unwrap().note.is_some());
        // Quantum-stage passes record a gate census; reversible ones don't.
        let mapped = report.record_of("rptm").unwrap().census.unwrap();
        assert_eq!(mapped.total, mapped.clifford + mapped.t);
        assert!(report.record_of("tbs").unwrap().census.is_none());
        let rendered = report.to_string();
        assert!(rendered.contains("tbs"));
        assert!(rendered.contains("census:"));
        assert!(rendered.contains("total:"));
    }

    #[test]
    fn passthrough_pipelines_take_external_input() {
        let pipeline = Pipeline::parse("revgen; tbs; revsimp; rptm; tpar; ps").unwrap();
        assert!(!pipeline.is_generated());
        assert!(matches!(
            pipeline.run_generated(),
            Err(FlowError::MissingPipelineInput { .. })
        ));
        let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
        let report = pipeline.run(pi.clone().into()).unwrap();
        for basis in 0..8 {
            let reversible = report.artifacts.reversible.as_ref().unwrap();
            assert_eq!(reversible.apply(basis), pi.apply(basis));
        }
    }

    #[test]
    fn invalid_orders_fail_at_build_time() {
        // tpar before rptm: reversible circuit cannot flow into tpar.
        let err = Pipeline::parse("revgen --hwb 4; tbs; tpar").unwrap_err();
        assert!(matches!(
            err,
            FlowError::InvalidStageOrder { position: 2, .. }
        ));
        // rptm directly on a specification.
        assert!(Pipeline::parse("revgen --hwb 4; rptm").is_err());
        // tbs on a boolean function specification.
        assert!(Pipeline::parse("revgen --expr \"a & b\"; tbs").is_err());
        // esopbs on a permutation specification.
        assert!(Pipeline::parse("revgen --hwb 3; esopbs").is_err());
        // Unknown pass names are typed errors.
        assert!(matches!(
            Pipeline::parse("revgen --hwb 4; frobnicate"),
            Err(FlowError::UnknownPass { .. })
        ));
        // The empty pipeline is rejected.
        assert!(matches!(
            Pipeline::parse("  # only a comment"),
            Err(FlowError::EmptyPipeline)
        ));
        // An unterminated quote is a typed lexing error, not a silent
        // mis-split.
        assert!(matches!(
            Pipeline::parse("revgen --expr \"(a & b; tbs"),
            Err(FlowError::Script(_))
        ));
    }

    #[test]
    fn qasm_source_flows_through_qasmin() {
        let pipeline = Pipeline::parse("qasmin; tpar; ps").unwrap();
        assert_eq!(pipeline.input_stages(), StageSet::QASM_SOURCE);
        let report = pipeline
            .run(Ir::QasmSource(
                "qreg q[2];\nh q;\ncz q[0],q[1];\nt q[0];".to_owned(),
            ))
            .unwrap();
        assert!(report.final_quantum().unwrap().is_clifford_t());
        assert!(report
            .artifacts
            .qasm_source
            .as_deref()
            .unwrap()
            .starts_with("qreg q[2];"));
        // Parse errors surface as typed quantum errors from the pass.
        let err = pipeline
            .run(Ir::QasmSource("qreg q[1];\nnope q[0];".to_owned()))
            .unwrap_err();
        assert!(matches!(err, FlowError::Quantum(_)));
    }

    #[test]
    fn builder_matches_parse() {
        let built = Pipeline::builder()
            .then(Revgen::hwb(4))
            .then(Tbs)
            .then(Revsimp)
            .then(Rptm::default())
            .then(Tpar)
            .then(Ps)
            .build()
            .unwrap();
        let parsed = Pipeline::parse("revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c").unwrap();
        let a = built.run_generated().unwrap();
        let b = parsed.run_generated().unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.final_resources(), b.final_resources());
    }

    #[test]
    fn input_stages_are_narrowed_through_the_whole_chain() {
        // A passthrough revgen alone accepts either specification kind, but
        // followed by esopbs only a boolean function can flow through.
        let pipeline = Pipeline::parse("revgen; esopbs; rptm").unwrap();
        assert_eq!(pipeline.input_stages(), StageSet::FUNCTION);
        let err = pipeline
            .run(Ir::Permutation(Permutation::identity(2)))
            .unwrap_err();
        assert!(matches!(
            err,
            FlowError::StageMismatch {
                expected: StageSet::FUNCTION,
                ..
            }
        ));
        // Same narrowing towards tbs.
        let pipeline = Pipeline::parse("revgen; tbs; rptm").unwrap();
        assert_eq!(pipeline.input_stages(), StageSet::PERMUTATION);
        // A generator first pass keeps accepting (and ignoring) anything.
        let pipeline = Pipeline::parse("revgen --hwb 3; tbs").unwrap();
        assert_eq!(pipeline.input_stages(), StageSet::ANY);
    }

    #[test]
    fn run_rejects_mismatched_external_input() {
        let pipeline = Pipeline::parse("tbs; rptm").unwrap();
        assert_eq!(pipeline.input_stages(), StageSet::PERMUTATION);
        let err = pipeline
            .run(Ir::Quantum(QuantumCircuit::new(1)))
            .unwrap_err();
        assert!(matches!(err, FlowError::StageMismatch { .. }));
    }

    #[test]
    fn programmatic_function_pipelines_have_distinct_spec_keys() {
        // Regression: `Revgen::function` carries no source text, so its
        // description must still distinguish different truth tables (the
        // table hex is embedded) — otherwise two generated pipelines over
        // different functions would share a cache key.
        use qdaflow_boolfn::TruthTable;
        let build = |bit: usize| {
            Pipeline::builder()
                .then(Revgen::function(
                    TruthTable::from_bits(3, (0..8).map(|x| x == bit)).unwrap(),
                ))
                .then(crate::passes::Esopbs::default())
                .then(Rptm::default())
                .build()
                .unwrap()
        };
        let a = build(1);
        let b = build(2);
        assert_ne!(a.pass_names(), b.pass_names());
        assert_ne!(a.spec_key(None), b.spec_key(None));
        // Identical construction produces identical keys.
        assert_eq!(a.spec_key(None), build(1).spec_key(None));
    }

    #[test]
    fn esop_pipeline_compiles_functions() {
        let pipeline =
            Pipeline::parse("revgen --expr \"(a & b) ^ (c & d)\"; esopbs; revsimp; rptm; tpar")
                .unwrap();
        let report = pipeline.run_generated().unwrap();
        assert!(report.final_quantum().unwrap().is_clifford_t());
        assert!(report.gates_after("esopbs").is_some());
    }
}
