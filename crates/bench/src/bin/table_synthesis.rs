//! Experiment E6: synthesis-method comparison across benchmark functions,
//! quantifying the scaling behaviour Section V of the paper describes
//! (transformation-based vs decomposition-based synthesis, gate counts,
//! Clifford+T costs and runtimes).

use qdaflow::prelude::*;
use qdaflow::reversible::synthesis::SynthesisMethod;
use std::time::Instant;

struct Row {
    benchmark: String,
    method: &'static str,
    reversible_gates: usize,
    simplified_gates: usize,
    t_count: usize,
    cnot_count: usize,
    qubits: usize,
    micros: u128,
}

fn benchmark(name: &str, permutation: &Permutation, rows: &mut Vec<Row>) {
    for (label, method) in [
        ("tbs", SynthesisMethod::TransformationBased),
        ("dbs", SynthesisMethod::DecompositionBased),
    ] {
        let start = Instant::now();
        let report = qdaflow::flow::compile_permutation(permutation, method)
            .expect("benchmark permutations are small");
        let elapsed = start.elapsed().as_micros();
        rows.push(Row {
            benchmark: name.to_owned(),
            method: label,
            reversible_gates: report.reversible_gates,
            simplified_gates: report.simplified_gates,
            t_count: report.optimized.t_count,
            cnot_count: report.optimized.cnot_count,
            qubits: report.optimized.num_qubits,
            micros: elapsed,
        });
    }
}

fn main() {
    println!("=== E6: reversible synthesis comparison (Section V) ===");
    let mut rows = Vec::new();
    for n in 3..=6usize {
        benchmark(
            &format!("hwb{n}"),
            &qdaflow::boolfn::hwb::hwb_permutation(n),
            &mut rows,
        );
    }
    for n in 3..=6usize {
        benchmark(
            &format!("random{n}"),
            &Permutation::random_seeded(n, 0xBEEF + n as u64),
            &mut rows,
        );
    }
    benchmark(
        "fig7-pi",
        &Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).expect("valid permutation"),
        &mut rows,
    );

    println!(
        "{:<10} {:<5} {:>9} {:>9} {:>8} {:>7} {:>7} {:>10}",
        "benchmark", "synth", "rev.gates", "simp.gates", "T-count", "CNOTs", "qubits", "time[us]"
    );
    for row in &rows {
        println!(
            "{:<10} {:<5} {:>9} {:>9} {:>8} {:>7} {:>7} {:>10}",
            row.benchmark,
            row.method,
            row.reversible_gates,
            row.simplified_gates,
            row.t_count,
            row.cnot_count,
            row.qubits,
            row.micros
        );
    }
}
