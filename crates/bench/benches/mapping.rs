//! Criterion benchmarks of the reversible-to-Clifford+T mapping and the
//! T-count optimization (the `rptm` and `tpar` pipeline stages).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdaflow::boolfn::hwb::hwb_permutation;
use qdaflow::mapping::{map, optimize};
use qdaflow::reversible::synthesis;
use std::time::Duration;

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("clifford_t_mapping");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for n in [4usize, 6, 8] {
        let reversible = synthesis::transformation_based(&hwb_permutation(n)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("rptm_hwb", n),
            &reversible,
            |b, circuit| {
                b.iter(|| map::to_clifford_t(circuit, &map::MappingOptions::default()).unwrap())
            },
        );
        let mapped = map::to_clifford_t(&reversible, &map::MappingOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("tpar_hwb", n), &mapped, |b, circuit| {
            b.iter(|| optimize::optimize_clifford_t(circuit))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
