//! Vendored, dependency-free stand-in for the subset of the [`proptest`]
//! property-testing framework used by this workspace.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements the entry points the workspace's `tests/properties.rs`
//! suites rely on: the [`Strategy`] trait with `prop_map` / `prop_filter`,
//! [`any`], integer-range and tuple strategies, `prop::collection::vec`,
//! [`prop_oneof!`], the [`proptest!`] test macro and the `prop_assert*`
//! macros. Generation is deterministic (the RNG is seeded from the test
//! name), and there is **no shrinking** — a failing case panics with the
//! ordinary assertion message instead of a minimized counterexample.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng as _;

pub mod collection;
pub mod prelude;
pub mod test_runner;

pub use test_runner::ProptestConfig;

/// The random source threaded through strategy generation.
pub type TestRng = StdRng;

/// A recipe for generating values of one type, mirroring
/// `proptest::strategy::Strategy` (without shrinking).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map }
    }

    /// Discards generated values failing `filter`, retrying until one
    /// passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        filter: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            filter,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    filter: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.source.generate(rng);
            if (self.filter)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 candidates in a row",
            self.whence
        );
    }
}

/// Strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternative strategies; the expansion of
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)`; sufficient for the workspace's tests.
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy for an unconstrained value of `T`, returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                rng.gen_range(start..end + 1)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Uniform choice among alternative strategies with a common value type,
/// mirroring `proptest::prop_oneof!` (without weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that evaluates the body for `config.cases` generated
/// inputs. The RNG is seeded from the test name, so runs are deterministic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
                for _ in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn filter_and_map_compose() {
        let mut rng = crate::test_runner::rng_for_test("filter_and_map_compose");
        let even = (0usize..100)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v + 1);
        for _ in 0..100 {
            let value = even.generate(&mut rng);
            assert!(value % 2 == 1 && value < 101);
        }
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let mut rng = crate::test_runner::rng_for_test("oneof_hits_every_alternative");
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strategy.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_vectors_respect_length_ranges(
            values in prop::collection::vec(any::<bool>(), 3..7),
            exact in prop::collection::vec(any::<u64>(), 4),
        ) {
            prop_assert!((3..7).contains(&values.len()));
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn tuples_and_ranges_generate_in_bounds(
            (a, b) in (0usize..5, 10u64..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 5);
            prop_assert!((10..20).contains(&b));
            prop_assert!(u64::from(flag) <= 1);
        }
    }
}
