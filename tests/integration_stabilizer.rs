//! End-to-end tests of the stabilizer tableau backend and the automatic
//! backend dispatcher through the `qdaflow` facade: a 100-qubit Clifford
//! hidden-shift circuit must run through the shell and the batch engine in
//! under a second, and `backend auto` must route dense-only, permutation
//! and Clifford workloads to the dense, sparse and stabilizer engines.

use std::time::{Duration, Instant};

use qdaflow::engine::resolve_backend;
use qdaflow::prelude::*;
use qdaflow::quantum::GateCensus;

/// The 100-qubit Clifford hidden-shift golden: pairing bent function
/// (CZ on adjacent pairs, self-dual), hidden shift `s = 0b1001011`.
const GOLDEN_QASM: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/goldens/clifford_hidden_shift_100q.qasm"
);
const HIDDEN_SHIFT: usize = 0b1001011;

fn golden_source() -> String {
    std::fs::read_to_string(GOLDEN_QASM).unwrap()
}

#[test]
fn hundred_qubit_clifford_circuit_runs_in_under_a_second_end_to_end() {
    // Shell path: `backend stabilizer` + a batch over the golden QASM. The
    // register is 100 qubits — far beyond every amplitude engine — and the
    // hidden-shift output is the single basis state |s⟩.
    let start = Instant::now();
    let mut shell = Shell::new();
    let output = shell
        .run_script(&format!(
            "backend stabilizer; batch --shots 256 --spec \"qasm:{GOLDEN_QASM}\""
        ))
        .unwrap();
    let shell_elapsed = start.elapsed();
    let log = output.join("\n");
    assert!(
        log.contains(&format!("most likely {HIDDEN_SHIFT} (p=1.00)")),
        "{log}"
    );
    assert!(log.contains("100 qubits"), "{log}");
    assert!(log.contains("on the stabilizer backend"), "{log}");

    // Batch-engine path with the same spec, pinned to the same outcome.
    let start = Instant::now();
    let engine = BatchEngine::new();
    let job = BatchJob::new(OracleSpec::qasm(golden_source()), 512, 3)
        .with_backend(BackendChoice::Stabilizer);
    let results = engine.run_batch(&[job]).unwrap();
    let batch_elapsed = start.elapsed();
    assert_eq!(results[0].most_likely(), Some((HIDDEN_SHIFT, 1.0)));
    assert_eq!(results[0].num_qubits, 100);

    // The acceptance bound of the subsystem: end-to-end in under a second
    // on each path (in practice both are milliseconds).
    assert!(
        shell_elapsed < Duration::from_secs(1),
        "shell path took {shell_elapsed:?}"
    );
    assert!(
        batch_elapsed < Duration::from_secs(1),
        "batch path took {batch_elapsed:?}"
    );
}

#[test]
fn auto_dispatch_routes_the_acceptance_triple() {
    // Three jobs of distinct character, all submitted as `Auto`:
    //   * a Hadamard+T circuit — amplitude-sized, non-Clifford → dense,
    //   * a compiled hwb permutation oracle — T gates, almost no H → sparse,
    //   * the 100-qubit Clifford hidden shift → stabilizer.
    let dense_spec = OracleSpec::qasm(
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\nh q[1];\nh q[2];\nt q[0];\n"
            .to_owned(),
    );
    let sparse_spec = OracleSpec::permutation(
        qdaflow::boolfn::hwb::hwb_permutation(3),
        SynthesisChoice::default(),
    );
    let stab_spec = OracleSpec::qasm(golden_source());

    let engine = BatchEngine::new();
    let jobs = vec![
        BatchJob::new(dense_spec, 64, 1).with_backend(BackendChoice::Auto),
        BatchJob::new(sparse_spec, 64, 2).with_backend(BackendChoice::Auto),
        BatchJob::new(stab_spec, 64, 3).with_backend(BackendChoice::Auto),
    ];
    let resolved = engine.resolve_backends(&jobs).unwrap();
    assert_eq!(
        resolved,
        vec![
            BackendChoice::Dense,
            BackendChoice::Sparse,
            BackendChoice::Stabilizer
        ]
    );
    // The resolution is exactly what the pure routing function says about
    // each compiled circuit's census.
    for (job, &backend) in jobs.iter().zip(&resolved) {
        let program = engine.cache().get_or_compile(&job.spec).unwrap();
        assert_eq!(resolve_backend(&GateCensus::of(program.circuit())), backend);
    }

    let results = engine.run_batch(&jobs).unwrap();
    assert_eq!(results[2].most_likely(), Some((HIDDEN_SHIFT, 1.0)));

    // Cache entries are keyed by the *resolved* backend, never by `Auto`.
    for (job, &backend) in jobs.iter().zip(&resolved) {
        let resolved_key = job.clone().with_backend(backend).cache_key();
        assert!(engine.cache().peek(resolved_key).is_some(), "{backend}");
        assert!(engine.cache().peek(job.cache_key()).is_none(), "{backend}");
    }
}

#[test]
fn shell_auto_backend_logs_the_stabilizer_route_for_clifford_qasm() {
    let mut shell = Shell::new();
    let output = shell
        .run_script(&format!(
            "backend auto; batch --shots 64 --spec \"qasm:{GOLDEN_QASM}\""
        ))
        .unwrap();
    let log = output.join("\n");
    assert!(log.contains("auto -> stabilizer"), "{log}");
    assert!(
        log.contains(&format!("most likely {HIDDEN_SHIFT}")),
        "{log}"
    );
}
