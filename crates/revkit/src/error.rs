//! Error types for the RevKit-style shell.

use qdaflow_boolfn::BoolfnError;
use qdaflow_engine::EngineError;
use qdaflow_mapping::MappingError;
use qdaflow_pipeline::{FlowError, ScriptError};
use qdaflow_quantum::QuantumError;
use qdaflow_reversible::ReversibleError;
use std::error::Error;
use std::fmt;

/// Errors produced while parsing or executing shell commands.
#[derive(Debug, Clone, PartialEq)]
pub enum RevkitError {
    /// The command name is not registered.
    UnknownCommand {
        /// The offending command name.
        name: String,
    },
    /// A command was called with malformed arguments.
    InvalidArguments {
        /// The command name.
        command: &'static str,
        /// Description of the problem.
        message: String,
    },
    /// A command needs data that is not yet in the store (for example `tbs`
    /// before `revgen`).
    MissingStoreEntry {
        /// The command that failed.
        command: &'static str,
        /// The kind of store entry that is missing.
        expected: &'static str,
    },
    /// An error from the Boolean function substrate.
    Boolfn(BoolfnError),
    /// An error from the reversible circuit layer.
    Reversible(ReversibleError),
    /// An error from the quantum circuit layer.
    Quantum(QuantumError),
    /// An error from the mapping layer.
    Mapping(MappingError),
    /// A lexing error in the shell script itself (e.g. an unterminated
    /// double quote).
    Script(ScriptError),
    /// A structural engine error (e.g. from the batch execution subsystem)
    /// degraded to its rendered message.
    Engine {
        /// Rendered engine error message.
        message: String,
    },
}

impl fmt::Display for RevkitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownCommand { name } => write!(f, "unknown command '{name}'"),
            Self::InvalidArguments { command, message } => {
                write!(f, "invalid arguments for '{command}': {message}")
            }
            Self::MissingStoreEntry { command, expected } => {
                write!(f, "command '{command}' requires a {expected} in the store")
            }
            Self::Boolfn(inner) => write!(f, "{inner}"),
            Self::Reversible(inner) => write!(f, "{inner}"),
            Self::Quantum(inner) => write!(f, "{inner}"),
            Self::Mapping(inner) => write!(f, "{inner}"),
            Self::Script(inner) => write!(f, "{inner}"),
            Self::Engine { message } => f.write_str(message),
        }
    }
}

impl Error for RevkitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Boolfn(inner) => Some(inner),
            Self::Reversible(inner) => Some(inner),
            Self::Quantum(inner) => Some(inner),
            Self::Mapping(inner) => Some(inner),
            Self::Script(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<BoolfnError> for RevkitError {
    fn from(inner: BoolfnError) -> Self {
        Self::Boolfn(inner)
    }
}

impl From<ReversibleError> for RevkitError {
    fn from(inner: ReversibleError) -> Self {
        Self::Reversible(inner)
    }
}

impl From<QuantumError> for RevkitError {
    fn from(inner: QuantumError) -> Self {
        Self::Quantum(inner)
    }
}

impl From<MappingError> for RevkitError {
    fn from(inner: MappingError) -> Self {
        Self::Mapping(inner)
    }
}

impl From<ScriptError> for RevkitError {
    fn from(inner: ScriptError) -> Self {
        Self::Script(inner)
    }
}

impl From<EngineError> for RevkitError {
    fn from(inner: EngineError) -> Self {
        match inner {
            EngineError::Boolfn(e) => Self::Boolfn(e),
            EngineError::Reversible(e) => Self::Reversible(e),
            EngineError::Quantum(e) => Self::Quantum(e),
            EngineError::Mapping(e) => Self::Mapping(e),
            other => Self::Engine {
                message: other.to_string(),
            },
        }
    }
}

impl From<FlowError> for RevkitError {
    fn from(inner: FlowError) -> Self {
        match inner {
            FlowError::Boolfn(e) => Self::Boolfn(e),
            FlowError::Reversible(e) => Self::Reversible(e),
            FlowError::Quantum(e) => Self::Quantum(e),
            FlowError::Mapping(e) => Self::Mapping(e),
            FlowError::Script(e) => Self::Script(e),
            other => Self::InvalidArguments {
                command: "flow",
                message: other.to_string(),
            },
        }
    }
}

impl From<RevkitError> for FlowError {
    fn from(inner: RevkitError) -> Self {
        match inner {
            RevkitError::Boolfn(e) => Self::Boolfn(e),
            RevkitError::Reversible(e) => Self::Reversible(e),
            RevkitError::Quantum(e) => Self::Quantum(e),
            RevkitError::Mapping(e) => Self::Mapping(e),
            RevkitError::Script(e) => Self::Script(e),
            other => Self::Shell {
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(RevkitError::UnknownCommand {
            name: "foo".to_owned()
        }
        .to_string()
        .contains("foo"));
        let err: RevkitError = BoolfnError::NotBent.into();
        assert!(matches!(err, RevkitError::Boolfn(_)));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RevkitError>();
    }

    #[test]
    fn flow_errors_bridge_both_ways() {
        let err: RevkitError = FlowError::UnknownPass {
            name: "frobnicate".to_owned(),
        }
        .into();
        assert!(matches!(
            err,
            RevkitError::InvalidArguments {
                command: "flow",
                ..
            }
        ));
        let err: RevkitError = FlowError::Boolfn(BoolfnError::NotBent).into();
        assert!(matches!(err, RevkitError::Boolfn(_)));
        let err: FlowError = RevkitError::UnknownCommand {
            name: "nope".to_owned(),
        }
        .into();
        assert!(matches!(err, FlowError::Shell { .. }));
        let err: FlowError = RevkitError::Boolfn(BoolfnError::NotBent).into();
        assert!(matches!(err, FlowError::Boolfn(_)));
        // Script lexing errors survive both bridges structurally.
        let script = ScriptError::UnterminatedQuote { position: 7 };
        let err: RevkitError = FlowError::Script(script.clone()).into();
        assert!(matches!(err, RevkitError::Script(_)));
        let err: FlowError = RevkitError::Script(script).into();
        assert!(matches!(
            err,
            FlowError::Script(ScriptError::UnterminatedQuote { position: 7 })
        ));
    }

    #[test]
    fn engine_errors_bridge_into_shell_errors() {
        let err: RevkitError =
            EngineError::Quantum(QuantumError::DuplicateQubit { qubit: 3 }).into();
        assert!(matches!(err, RevkitError::Quantum(_)));
        let err: RevkitError = EngineError::InvalidComputeSection.into();
        assert!(matches!(err, RevkitError::Engine { .. }));
        assert!(err.to_string().contains("compute"));
    }
}
