//! Golden-file tests for the OpenQASM exporter and the ASCII circuit drawer
//! on the paper's compiled hidden-shift circuits.
//!
//! * **Fig. 5**: the truth-table-oracle compilation of the Fig. 4 program
//!   (`f = x0 x1 ⊕ x2 x3`, shift `s = 1`).
//! * **Fig. 8**: the structured Maiorana–McFarland compilation with a
//!   RevKit-synthesized permutation oracle (transformation-based synthesis).
//!
//! The expected outputs are committed under `tests/goldens/`. Any change to
//! gate lowering, oracle compilation, QASM formatting or the drawer shows up
//! as a golden diff. To regenerate after an intentional change, run
//! `UPDATE_GOLDENS=1 cargo test --test golden_files` and review the diff.

use qdaflow::codegen::{hidden_shift_driver, permutation_oracle_namespace, QsharpOptions};
use qdaflow::hidden_shift::{HiddenShiftInstance, OracleStyle};
use qdaflow::prelude::*;
use qdaflow::quantum::{drawer, qasm};
use std::path::Path;

/// The Fig. 4/5 circuit: truth-table phase oracles.
fn fig5_circuit() -> QuantumCircuit {
    let f = Expr::parse("(x0 & x1) ^ (x2 & x3)")
        .unwrap()
        .truth_table(4)
        .unwrap();
    let instance = HiddenShiftInstance::from_bent_function(&f, 1).unwrap();
    instance.build_circuit(OracleStyle::TruthTable).unwrap()
}

/// The Fig. 7/8 circuit: Maiorana–McFarland with a synthesized permutation
/// oracle (`π = [2, 0, 3, 1]`, `h = 0`, shift `s = 5`).
fn fig8_circuit() -> QuantumCircuit {
    let pi = Permutation::new(vec![2, 0, 3, 1]).unwrap();
    let mm = MaioranaMcFarland::with_zero_h(pi).unwrap();
    let instance = HiddenShiftInstance::from_maiorana_mcfarland(&mm, 5).unwrap();
    instance
        .build_circuit(OracleStyle::MaioranaMcFarland {
            synthesis: SynthesisChoice::TransformationBased,
        })
        .unwrap()
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with UPDATE_GOLDENS=1", name));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if intentional, regenerate with UPDATE_GOLDENS=1"
    );
}

#[test]
fn fig5_qasm_export_matches_golden() {
    check_golden("fig5_truth_table.qasm", &qasm::to_qasm(&fig5_circuit()));
}

#[test]
fn fig5_drawing_matches_golden() {
    check_golden("fig5_truth_table.txt", &drawer::draw(&fig5_circuit()));
}

#[test]
fn fig8_qasm_export_matches_golden() {
    check_golden(
        "fig8_maiorana_mcfarland.qasm",
        &qasm::to_qasm(&fig8_circuit()),
    );
}

#[test]
fn fig8_drawing_matches_golden() {
    check_golden(
        "fig8_maiorana_mcfarland.txt",
        &drawer::draw(&fig8_circuit()),
    );
}

/// The Fig. 10 Q# source: the RevKit-preprocessed permutation-oracle
/// namespace for `π = [0, 2, 3, 5, 7, 1, 4, 6]` plus the hand-written
/// hidden-shift driver of Fig. 9 — exactly what the `qsharp_codegen`
/// example prints.
fn fig10_qsharp_source() -> String {
    let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
    let namespace = permutation_oracle_namespace(&pi, &QsharpOptions::default()).unwrap();
    let driver = hidden_shift_driver("Microsoft.Quantum.HiddenShift");
    format!("{namespace}\n{driver}")
}

#[test]
fn fig10_qsharp_codegen_matches_golden() {
    check_golden("fig10_qsharp.qs", &fig10_qsharp_source());
}

#[test]
fn fig5_golden_qasm_round_trips_through_the_importer() {
    // The exported QASM (identical to the committed golden per the test
    // above) is itself valid input for our importer, and re-exporting the
    // imported circuit is a fixed point. Built from the circuit rather than
    // read from disk so regeneration runs don't race the writer tests.
    let exported = qasm::to_qasm(&fig5_circuit());
    let circuit = qasm::from_qasm(&exported).unwrap();
    assert_eq!(qasm::to_qasm(&circuit), exported);
}
