//! Property-based round-trip tests for the OpenQASM exporter/importer pair.
//!
//! The checked exporter refuses circuits it cannot render faithfully, so
//! everything it emits must re-import *gate for gate* — not just up to
//! fidelity. The fidelity check is kept as well: it would catch a matched
//! pair of bugs where exporter and importer disagree with the simulator.

use proptest::prelude::*;
use qdaflow_quantum::{circuit::QuantumCircuit, gate::QuantumGate, qasm, statevector::Statevector};

/// Strategy producing a random exporter-supported gate over `n` qubits
/// (n >= 2). Encoded as (kind, qubit, qubit pair, Rz step) and decoded in
/// one map so the arm count stays small for the vendored proptest.
fn gate(n: usize) -> impl Strategy<Value = QuantumGate> {
    let pair = (0..n, 0..n).prop_filter("distinct qubits", |(a, b)| a != b);
    let triple =
        (0..n, 0..n, 0..n).prop_filter("distinct qubits", |(a, b, c)| a != b && a != c && b != c);
    (0..13usize, 0..n, pair, triple, any::<i8>()).prop_map(
        |(kind, q, (a, b), (ca, cb, t), steps)| match kind {
            0 => QuantumGate::H(q),
            1 => QuantumGate::X(q),
            2 => QuantumGate::Y(q),
            3 => QuantumGate::Z(q),
            4 => QuantumGate::S(q),
            5 => QuantumGate::Sdg(q),
            6 => QuantumGate::T(q),
            7 => QuantumGate::Tdg(q),
            8 => QuantumGate::Rz {
                qubit: q,
                angle: f64::from(steps) * std::f64::consts::FRAC_PI_4 / 2.0,
            },
            9 => QuantumGate::Cx {
                control: a,
                target: b,
            },
            10 => QuantumGate::Cz { a, b },
            11 => QuantumGate::Swap { a, b },
            _ => QuantumGate::Ccx {
                control_a: ca,
                control_b: cb,
                target: t,
            },
        },
    )
}

fn circuit(n: usize, max_gates: usize) -> impl Strategy<Value = QuantumCircuit> {
    prop::collection::vec(gate(n), 0..max_gates).prop_map(move |gates| {
        let mut circuit = QuantumCircuit::new(n);
        for gate in gates {
            circuit.push(gate).expect("gates are generated in range");
        }
        circuit
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checked_export_reimports_gate_for_gate(c in circuit(5, 40)) {
        let text = qasm::to_qasm_checked(&c).unwrap();
        let parsed = qasm::from_qasm(&text).unwrap();
        prop_assert_eq!(parsed.num_qubits(), c.num_qubits());
        prop_assert_eq!(parsed.gates(), c.gates());
        let a = Statevector::from_circuit(&c).unwrap();
        let b = Statevector::from_circuit(&parsed).unwrap();
        prop_assert!(a.fidelity(&b) > 1.0 - 1e-12);
    }
}
