//! Criterion benchmark of the pass-manager overhead: the canned
//! `flow::compile_permutation` wrapper against an explicitly built (and a
//! freshly parsed) pipeline running the same passes. The pass-manager
//! bookkeeping (dispatch, per-pass metrics, artifact snapshots) must be
//! negligible next to the synthesis/mapping work itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdaflow::flow;
use qdaflow::prelude::*;
use qdaflow::reversible::synthesis::SynthesisMethod;
use std::time::Duration;

fn bench_pipeline_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [4usize, 5, 6] {
        let pi = qdaflow::boolfn::hwb::hwb_permutation(n);

        group.bench_with_input(BenchmarkId::new("canned_flow_wrapper", n), &pi, |b, pi| {
            b.iter(|| flow::compile_permutation(pi, SynthesisMethod::TransformationBased).unwrap())
        });

        let pipeline = flow::equation5_pipeline(SynthesisMethod::TransformationBased);
        group.bench_with_input(BenchmarkId::new("prebuilt_pipeline", n), &pi, |b, pi| {
            b.iter(|| pipeline.run(pi.clone().into()).unwrap())
        });

        group.bench_with_input(BenchmarkId::new("parse_and_run", n), &pi, |b, pi| {
            b.iter(|| {
                Pipeline::parse("revgen; tbs; revsimp; rptm; tpar; ps")
                    .unwrap()
                    .run(pi.clone().into())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_overhead);
criterion_main!(benches);
