//! Experiment E1 (Fig. 4/5 of the paper): the ProjectQ-style program for the
//! hidden shift instance f = x0x1 ⊕ x2x3, g(x) = f(x + 1), compiled and run
//! on the ideal simulator. The paper's program prints "Shift is 1"
//! deterministically; this binary regenerates the compiled circuit, its
//! statistics and the measurement outcome.

use qdaflow::hidden_shift::{HiddenShiftInstance, OracleStyle};
use qdaflow::prelude::*;
use qdaflow::quantum::{drawer, qasm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== E1: hidden shift instance of Fig. 4/5 ===");
    let f = Expr::parse("(x0 & x1) ^ (x2 & x3)")?.truth_table(4)?;
    let instance = HiddenShiftInstance::from_bent_function(&f, 1)?;
    let circuit = instance.build_circuit(OracleStyle::TruthTable)?;

    println!("--- compiled circuit (Fig. 5) ---");
    println!("{}", drawer::draw(&circuit));
    let counts = ResourceCounts::of(&circuit);
    println!("{counts}");

    println!("--- OpenQASM 2.0 ---");
    println!("{}", qasm::to_qasm(&circuit));

    let outcome = instance.run_ideal(&circuit, 1024)?;
    println!(
        "planted shift: {}, recovered shift: {:?}, success probability: {:.4}",
        outcome.planted_shift, outcome.recovered_shift, outcome.success_probability
    );
    println!("Shift is {}", outcome.recovered_shift.unwrap_or(0));
    assert_eq!(outcome.recovered_shift, Some(1));
    Ok(())
}
