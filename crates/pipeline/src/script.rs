//! Shared lexing helpers for pipeline scripts and shell command lines.
//!
//! Both the [`Pipeline::parse`](crate::Pipeline::parse) syntax and the RevKit
//! shell accept the paper's notation: statements separated by `;` or
//! newlines, arguments separated by whitespace, with double quotes grouping
//! an argument that contains spaces or separators (as needed for
//! `revgen --expr "(a & b) ^ c"`).

/// Splits a script into statements at `;` and newlines, honouring double
/// quotes (a separator inside a quoted argument does not end the statement).
///
/// Empty statements and `#`-comments are dropped; surrounding whitespace is
/// trimmed.
///
/// ```
/// use qdaflow_pipeline::script::split_statements;
///
/// assert_eq!(
///     split_statements("revgen --hwb 4; tbs;; ps -c"),
///     vec!["revgen --hwb 4", "tbs", "ps -c"]
/// );
/// // A quoted ';' does not split.
/// assert_eq!(
///     split_statements("flow \"revgen --hwb 4; tbs\""),
///     vec!["flow \"revgen --hwb 4; tbs\""]
/// );
/// ```
pub fn split_statements(script: &str) -> Vec<String> {
    let mut statements = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for character in script.chars() {
        match character {
            '"' => {
                in_quotes = !in_quotes;
                current.push('"');
            }
            ';' | '\n' if !in_quotes => {
                push_statement(&mut statements, &mut current);
            }
            c => current.push(c),
        }
    }
    push_statement(&mut statements, &mut current);
    statements
}

fn push_statement(statements: &mut Vec<String>, current: &mut String) {
    let statement = std::mem::take(current);
    let statement = statement.trim();
    if !statement.is_empty() && !statement.starts_with('#') {
        statements.push(statement.to_owned());
    }
}

/// Splits a single statement into tokens, honouring double quotes.
///
/// ```
/// use qdaflow_pipeline::script::tokenize;
///
/// assert_eq!(
///     tokenize("revgen --expr \"(a & b) ^ c\""),
///     vec!["revgen", "--expr", "(a & b) ^ c"]
/// );
/// ```
pub fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut quoted = false;
    for character in line.chars() {
        match character {
            '"' => {
                in_quotes = !in_quotes;
                quoted = true;
            }
            c if c.is_whitespace() && !in_quotes => {
                if !current.is_empty() || quoted {
                    tokens.push(std::mem::take(&mut current));
                }
                quoted = false;
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() || quoted {
        tokens.push(current);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statements_split_on_semicolons_and_newlines() {
        assert_eq!(
            split_statements("a; b\nc;;\n# comment\n d "),
            vec!["a", "b", "c", "d"]
        );
        assert!(split_statements("").is_empty());
        assert!(split_statements(" ; ;\n").is_empty());
    }

    #[test]
    fn quoted_separators_do_not_split() {
        assert_eq!(
            split_statements("flow \"revgen --hwb 4; tbs; ps\"; ps -c"),
            vec!["flow \"revgen --hwb 4; tbs; ps\"", "ps -c"]
        );
    }

    #[test]
    fn tokenizer_honours_quotes() {
        assert_eq!(
            tokenize("revgen --perm \"0 2 1 3\""),
            vec!["revgen", "--perm", "0 2 1 3"]
        );
        assert_eq!(tokenize("  ps   -c "), vec!["ps", "-c"]);
        assert!(tokenize("").is_empty());
        // An explicitly quoted empty argument survives.
        assert_eq!(tokenize("x \"\""), vec!["x", ""]);
    }
}
