//! ASCII circuit drawing.
//!
//! Produces a text rendering of a quantum circuit in the style of the circuit
//! figures of the paper: one row per qubit, time flowing left to right,
//! controls drawn as `*`, CNOT targets as `+`, and boxed single-qubit gates.

use crate::{QuantumCircuit, QuantumError, QuantumGate};

/// Renders the circuit as ASCII art, one line per qubit.
///
/// # Example
///
/// ```
/// use qdaflow_quantum::{circuit::QuantumCircuit, drawer, gate::QuantumGate};
///
/// # fn main() -> Result<(), qdaflow_quantum::QuantumError> {
/// let mut circuit = QuantumCircuit::new(2);
/// circuit.push(QuantumGate::H(0))?;
/// circuit.push(QuantumGate::Cx { control: 0, target: 1 })?;
/// let drawing = drawer::draw(&circuit);
/// assert!(drawing.contains("[H]"));
/// # Ok(())
/// # }
/// ```
pub fn draw(circuit: &QuantumCircuit) -> String {
    draw_gates(circuit.num_qubits(), circuit.gates())
        .expect("gates of a QuantumCircuit are validated at construction")
}

/// Renders a raw gate list over an explicit register width.
///
/// This is the checked entry point for gates that did **not** pass through
/// [`QuantumCircuit::push`]'s validation (e.g. user-assembled gate lists):
/// an out-of-range qubit is reported as a typed error instead of the slice
/// indexing panic the renderer would otherwise hit. [`draw`] delegates here —
/// circuits enforce the invariant at construction, so their rendering cannot
/// fail.
///
/// # Errors
///
/// Returns [`QuantumError::QubitOutOfRange`] if any gate references a qubit
/// `>= num_qubits`.
pub fn draw_gates(num_qubits: usize, gates: &[QuantumGate]) -> Result<String, QuantumError> {
    for gate in gates {
        for qubit in gate.qubits() {
            if qubit >= num_qubits {
                return Err(QuantumError::QubitOutOfRange { qubit, num_qubits });
            }
        }
    }
    if num_qubits == 0 {
        return Ok(String::new());
    }
    // Columns of symbols; each gate gets one column.
    let mut columns: Vec<Vec<String>> = Vec::new();
    for gate in gates {
        let mut column = vec!["---".to_owned(); num_qubits];
        match gate {
            QuantumGate::Cx { control, target } => {
                column[*control] = "-*-".to_owned();
                column[*target] = "-+-".to_owned();
            }
            QuantumGate::Cz { a, b } => {
                column[*a] = "-*-".to_owned();
                column[*b] = "-*-".to_owned();
            }
            QuantumGate::Swap { a, b } => {
                column[*a] = "-x-".to_owned();
                column[*b] = "-x-".to_owned();
            }
            QuantumGate::Ccx {
                control_a,
                control_b,
                target,
            } => {
                column[*control_a] = "-*-".to_owned();
                column[*control_b] = "-*-".to_owned();
                column[*target] = "-+-".to_owned();
            }
            QuantumGate::Mcx { controls, target } => {
                for &control in controls {
                    column[control] = "-*-".to_owned();
                }
                column[*target] = "-+-".to_owned();
            }
            QuantumGate::Mcz { qubits } => {
                for &qubit in qubits {
                    column[qubit] = "-*-".to_owned();
                }
            }
            QuantumGate::Rz { qubit, .. } => {
                column[*qubit] = "[R]".to_owned();
            }
            single => {
                let label = match single {
                    QuantumGate::H(_) => "H",
                    QuantumGate::X(_) => "X",
                    QuantumGate::Y(_) => "Y",
                    QuantumGate::Z(_) => "Z",
                    QuantumGate::S(_) => "S",
                    QuantumGate::Sdg(_) => "s",
                    QuantumGate::T(_) => "T",
                    QuantumGate::Tdg(_) => "t",
                    _ => "?",
                };
                column[single.qubits()[0]] = format!("[{label}]");
            }
        }
        columns.push(column);
    }
    let mut lines = Vec::with_capacity(num_qubits);
    for qubit in 0..num_qubits {
        let mut line = format!("q{qubit}: |0>-");
        for column in &columns {
            line.push_str(&column[qubit]);
            line.push('-');
        }
        lines.push(line);
    }
    Ok(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_single_and_two_qubit_gates() {
        let mut circuit = QuantumCircuit::new(3);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit.push(QuantumGate::T(1)).unwrap();
        circuit.push(QuantumGate::Tdg(2)).unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 2,
            })
            .unwrap();
        let drawing = draw(&circuit);
        let lines: Vec<&str> = drawing.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("[H]"));
        assert!(lines[1].contains("[T]"));
        assert!(lines[2].contains("[t]"));
        assert!(lines[0].contains("-*-"));
        assert!(lines[2].contains("-+-"));
    }

    #[test]
    fn all_lines_have_equal_length() {
        let mut circuit = QuantumCircuit::new(4);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit
            .push(QuantumGate::Ccx {
                control_a: 0,
                control_b: 1,
                target: 3,
            })
            .unwrap();
        circuit.push(QuantumGate::Swap { a: 1, b: 2 }).unwrap();
        circuit
            .push(QuantumGate::Mcz {
                qubits: vec![0, 2, 3],
            })
            .unwrap();
        let drawing = draw(&circuit);
        let lengths: Vec<usize> = drawing.lines().map(str::len).collect();
        assert!(lengths.windows(2).all(|pair| pair[0] == pair[1]));
    }

    #[test]
    fn empty_circuit_draws_bare_wires() {
        let drawing = draw(&QuantumCircuit::new(2));
        assert_eq!(drawing.lines().count(), 2);
        assert!(drawing.contains("q0: |0>-"));
        assert_eq!(draw(&QuantumCircuit::new(0)), "");
    }

    #[test]
    fn rz_uses_rotation_box() {
        let mut circuit = QuantumCircuit::new(1);
        circuit
            .push(QuantumGate::Rz {
                qubit: 0,
                angle: 1.0,
            })
            .unwrap();
        assert!(draw(&circuit).contains("[R]"));
    }

    #[test]
    fn raw_gate_lists_with_out_of_range_qubits_are_a_typed_error() {
        use crate::QuantumError;
        // An unvalidated gate list used to hit the renderer's slice indexing
        // panic; the checked entry point reports it as a typed error.
        let gates = [
            QuantumGate::H(0),
            QuantumGate::Cx {
                control: 0,
                target: 5,
            },
        ];
        assert_eq!(
            draw_gates(2, &gates).unwrap_err(),
            QuantumError::QubitOutOfRange {
                qubit: 5,
                num_qubits: 2,
            }
        );
    }

    #[test]
    fn raw_gate_lists_render_like_circuits() {
        let mut circuit = QuantumCircuit::new(2);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit.push(QuantumGate::Swap { a: 0, b: 1 }).unwrap();
        assert_eq!(draw_gates(2, circuit.gates()).unwrap(), draw(&circuit));
    }
}
