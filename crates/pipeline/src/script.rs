//! Shared lexing helpers for pipeline scripts and shell command lines.
//!
//! Both the [`Pipeline::parse`](crate::Pipeline::parse) syntax and the RevKit
//! shell accept the paper's notation: statements separated by `;` or
//! newlines, arguments separated by whitespace, with double quotes grouping
//! an argument that contains spaces or separators (as needed for
//! `revgen --expr "(a & b) ^ c"`).
//!
//! Both helpers report unterminated quotes as a typed [`ScriptError`]
//! instead of silently swallowing every separator after the dangling quote.

use std::error::Error;
use std::fmt;

/// Errors produced while lexing a script or command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// A double quote was opened but never closed.
    UnterminatedQuote {
        /// Byte offset of the opening quote within the input.
        position: usize,
    },
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnterminatedQuote { position } => {
                write!(f, "unterminated double quote opened at byte {position}")
            }
        }
    }
}

impl Error for ScriptError {}

/// Splits a script into statements at `;` and newlines, honouring double
/// quotes (a separator inside a quoted argument does not end the statement).
///
/// Empty statements and `#`-comments are dropped; surrounding whitespace is
/// trimmed.
///
/// ```
/// use qdaflow_pipeline::script::split_statements;
///
/// assert_eq!(
///     split_statements("revgen --hwb 4; tbs;; ps -c").unwrap(),
///     vec!["revgen --hwb 4", "tbs", "ps -c"]
/// );
/// // A quoted ';' does not split.
/// assert_eq!(
///     split_statements("flow \"revgen --hwb 4; tbs\"").unwrap(),
///     vec!["flow \"revgen --hwb 4; tbs\""]
/// );
/// ```
///
/// # Errors
///
/// Returns [`ScriptError::UnterminatedQuote`] if a double quote is left
/// open at the end of the script.
pub fn split_statements(script: &str) -> Result<Vec<String>, ScriptError> {
    let mut statements = Vec::new();
    let mut current = String::new();
    let mut quote_start: Option<usize> = None;
    for (position, character) in script.char_indices() {
        match character {
            '"' => {
                quote_start = match quote_start {
                    Some(_) => None,
                    None => Some(position),
                };
                current.push('"');
            }
            ';' | '\n' if quote_start.is_none() => {
                push_statement(&mut statements, &mut current);
            }
            c => current.push(c),
        }
    }
    if let Some(position) = quote_start {
        return Err(ScriptError::UnterminatedQuote { position });
    }
    push_statement(&mut statements, &mut current);
    Ok(statements)
}

fn push_statement(statements: &mut Vec<String>, current: &mut String) {
    let statement = std::mem::take(current);
    let statement = statement.trim();
    if !statement.is_empty() && !statement.starts_with('#') {
        statements.push(statement.to_owned());
    }
}

/// Splits a single statement into tokens, honouring double quotes.
///
/// ```
/// use qdaflow_pipeline::script::tokenize;
///
/// assert_eq!(
///     tokenize("revgen --expr \"(a & b) ^ c\"").unwrap(),
///     vec!["revgen", "--expr", "(a & b) ^ c"]
/// );
/// ```
///
/// # Errors
///
/// Returns [`ScriptError::UnterminatedQuote`] if a double quote is left
/// open at the end of the line.
pub fn tokenize(line: &str) -> Result<Vec<String>, ScriptError> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut quote_start: Option<usize> = None;
    let mut quoted = false;
    for (position, character) in line.char_indices() {
        match character {
            '"' => {
                quote_start = match quote_start {
                    Some(_) => None,
                    None => Some(position),
                };
                quoted = true;
            }
            c if c.is_whitespace() && quote_start.is_none() => {
                if !current.is_empty() || quoted {
                    tokens.push(std::mem::take(&mut current));
                }
                quoted = false;
            }
            c => current.push(c),
        }
    }
    if let Some(position) = quote_start {
        return Err(ScriptError::UnterminatedQuote { position });
    }
    if !current.is_empty() || quoted {
        tokens.push(current);
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statements_split_on_semicolons_and_newlines() {
        assert_eq!(
            split_statements("a; b\nc;;\n# comment\n d ").unwrap(),
            vec!["a", "b", "c", "d"]
        );
        assert!(split_statements("").unwrap().is_empty());
        assert!(split_statements(" ; ;\n").unwrap().is_empty());
    }

    #[test]
    fn quoted_separators_do_not_split() {
        assert_eq!(
            split_statements("flow \"revgen --hwb 4; tbs; ps\"; ps -c").unwrap(),
            vec!["flow \"revgen --hwb 4; tbs; ps\"", "ps -c"]
        );
    }

    #[test]
    fn tokenizer_honours_quotes() {
        assert_eq!(
            tokenize("revgen --perm \"0 2 1 3\"").unwrap(),
            vec!["revgen", "--perm", "0 2 1 3"]
        );
        assert_eq!(tokenize("  ps   -c ").unwrap(), vec!["ps", "-c"]);
        assert!(tokenize("").unwrap().is_empty());
        // An explicitly quoted empty argument survives.
        assert_eq!(tokenize("x \"\"").unwrap(), vec!["x", ""]);
    }

    #[test]
    fn unterminated_quotes_are_typed_errors() {
        // Regression: an unclosed quote used to silently swallow every
        // following separator instead of being reported.
        assert_eq!(
            split_statements("flow \"revgen; tbs"),
            Err(ScriptError::UnterminatedQuote { position: 5 })
        );
        assert_eq!(
            tokenize("revgen --expr \"(a & b"),
            Err(ScriptError::UnterminatedQuote { position: 14 })
        );
        // A re-opened-and-closed quote is fine.
        assert!(split_statements("a \"b\" c \"d\"").is_ok());
        assert!(tokenize("a \"b\" \"c\"").is_ok());
    }
}
