//! A traced batch session: a 20-qubit Maiorana–McFarland hidden-shift
//! oracle (Fig. 7 scaled up: `f(x, y) = x · π(y)` with a 10-bit `π`) runs
//! through the shell's `batch --trace --stats`, producing a Chrome
//! trace-event file — loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev> — with spans from the pipeline, cache,
//! dispatch, kernel and job layers, plus the unified Prometheus dump
//! (pass durations, dispatch decisions, kernel sweep statistics, compile
//! times).
//!
//! Run with `cargo run --release -p qdaflow --example telemetry_trace`.

use qdaflow::hidden_shift::{HiddenShiftInstance, OracleStyle};
use qdaflow::prelude::*;
use qdaflow::quantum::qasm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 20 variables: the inner-product bent function (Maiorana–McFarland
    // with the identity permutation) — the same instance the
    // `fusion_vs_baseline` bench simulates.
    let bent = MaioranaMcFarland::inner_product(10);
    let instance = HiddenShiftInstance::from_maiorana_mcfarland(&bent, 0b10_1101_1001)?;
    let circuit = instance.build_circuit(OracleStyle::MaioranaMcFarland {
        synthesis: SynthesisChoice::TransformationBased,
    })?;

    let dir = std::env::temp_dir();
    let qasm_path = dir.join("qdaflow_hidden_shift_20q.qasm");
    std::fs::write(&qasm_path, qasm::to_qasm(&circuit))?;
    let trace_path = dir.join("qdaflow_trace_20q.json");

    let mut shell = Shell::new();
    let script = format!(
        "backend dense; batch --shots 256 --trace {} --stats --spec \"qasm:{}\"",
        trace_path.display(),
        qasm_path.display()
    );
    println!("$ {script}");
    for line in shell.run_script(&script)? {
        println!("{line}");
    }
    println!();
    println!(
        "trace written to {} — open it in chrome://tracing or https://ui.perfetto.dev",
        trace_path.display()
    );
    Ok(())
}
