//! The stabilizer tableau as an execution [`Backend`].

use crate::{StabilizerSampler, StabilizerTableau};
use qdaflow_quantum::backend::{Backend, ExecutionResult};
use qdaflow_quantum::fusion::ExecConfig;
use qdaflow_quantum::{QuantumCircuit, QuantumError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stabilizer tableau simulation backend: exact measurement statistics for
/// Clifford circuits sampled from the enumerated affine support of a
/// [`StabilizerTableau`].
///
/// The backend mirrors the dense
/// [`StatevectorBackend`](qdaflow_quantum::backend::StatevectorBackend) and
/// the sparse `SparseBackend` — same seeding scheme, same one-draw-per-shot
/// RNG consumption, same shot-sharded batch path — so it can be swapped into
/// any flow (engine, batch subsystem, shell) without changing sampled
/// histograms on the shared domain. Its qubit ceiling is
/// [`MAX_STABILIZER_QUBITS`](crate::MAX_STABILIZER_QUBITS), but it only
/// accepts Clifford gates: non-Clifford content surfaces as the typed
/// [`QuantumError::UnsupportedGate`], and final states with support rank
/// beyond [`MAX_SAMPLING_RANK`](crate::MAX_SAMPLING_RANK) as
/// [`QuantumError::TooManyQubits`] — never a panic, so the automatic
/// dispatcher can fall back cleanly.
#[derive(Debug, Clone)]
pub struct StabilizerBackend {
    rng: StdRng,
    config: ExecConfig,
}

impl StabilizerBackend {
    /// Creates a backend with a fixed random seed (sampling is the only
    /// source of randomness) and the default execution configuration.
    pub fn seeded(seed: u64) -> Self {
        Self::with_config(seed, ExecConfig::default())
    }

    /// Creates a backend with an explicit execution configuration. Tableau
    /// evolution itself is sequential (word-packed column updates); the
    /// configuration governs the sampling layer (`threads`,
    /// `shot_shard_size`).
    pub fn with_config(seed: u64, config: ExecConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// The execution configuration in use.
    pub fn exec_config(&self) -> ExecConfig {
        self.config
    }

    /// Runs the circuit and returns the final tableau instead of sampled
    /// counts.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::UnsupportedGate`] at the first non-Clifford
    /// gate and [`QuantumError::TooManyQubits`] beyond
    /// [`MAX_STABILIZER_QUBITS`](crate::MAX_STABILIZER_QUBITS).
    pub fn tableau(&self, circuit: &QuantumCircuit) -> Result<StabilizerTableau, QuantumError> {
        Ok(StabilizerTableau::from_circuit(circuit)?)
    }

    /// Runs the circuit and extracts its support sampler — what the batch
    /// engine caches per compiled program.
    ///
    /// # Errors
    ///
    /// Everything [`StabilizerBackend::tableau`] returns, plus
    /// [`QuantumError::TooManyQubits`] when the final support exceeds the
    /// sampling caps.
    pub fn sampler(&self, circuit: &QuantumCircuit) -> Result<StabilizerSampler, QuantumError> {
        Ok(StabilizerTableau::from_circuit(circuit)?.sampler()?)
    }

    /// Runs the circuit and samples `shots` measurements with the
    /// shot-sharded parallel sampler under an explicit `seed`, independent
    /// of the backend's own RNG stream — the execution path the batch engine
    /// uses. Reproducible at any thread count, exactly like
    /// [`StatevectorBackend::run_sharded`](qdaflow_quantum::backend::StatevectorBackend::run_sharded).
    ///
    /// # Errors
    ///
    /// Same as [`StabilizerBackend::sampler`].
    pub fn run_sharded(
        &self,
        circuit: &QuantumCircuit,
        shots: usize,
        seed: u64,
    ) -> Result<ExecutionResult, QuantumError> {
        let sampler = self.sampler(circuit)?;
        let counts = sampler.sample_counts_sharded(seed, shots, &self.config);
        Ok(ExecutionResult::from_counts(circuit, shots, counts))
    }
}

impl Default for StabilizerBackend {
    fn default() -> Self {
        Self::seeded(0xC0FFEE)
    }
}

impl Backend for StabilizerBackend {
    fn name(&self) -> &str {
        "stabilizer-tableau-simulator"
    }

    fn run(
        &mut self,
        circuit: &QuantumCircuit,
        shots: usize,
    ) -> Result<ExecutionResult, QuantumError> {
        let sampler = self.sampler(circuit)?;
        let counts = sampler.sample_counts(&mut self.rng, shots);
        Ok(ExecutionResult::from_counts(circuit, shots, counts))
    }

    fn set_exec_config(&mut self, config: ExecConfig) {
        self.config = config;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdaflow_quantum::backend::StatevectorBackend;
    use qdaflow_quantum::QuantumGate;

    fn bell() -> QuantumCircuit {
        let mut circuit = QuantumCircuit::new(2);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 1,
            })
            .unwrap();
        circuit
    }

    #[test]
    fn stabilizer_backend_matches_the_dense_backend_with_equal_seeds() {
        let mut stabilizer = StabilizerBackend::seeded(11);
        let mut dense = StatevectorBackend::seeded(11);
        let a = stabilizer.run(&bell(), 2048).unwrap();
        let b = dense.run(&bell(), 2048).unwrap();
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.resources, b.resources);
        assert_eq!(stabilizer.name(), "stabilizer-tableau-simulator");
    }

    #[test]
    fn sharded_run_is_thread_count_invariant_and_matches_dense() {
        let circuit = bell();
        let config = ExecConfig::sequential().with_shot_shard_size(256);
        let sequential = StabilizerBackend::with_config(0, config)
            .run_sharded(&circuit, 4096, 77)
            .unwrap();
        let threaded = StabilizerBackend::with_config(1, config.with_threads(8))
            .run_sharded(&circuit, 4096, 77)
            .unwrap();
        assert_eq!(sequential, threaded);
        let dense = StatevectorBackend::with_config(0, config)
            .run_sharded(&circuit, 4096, 77)
            .unwrap();
        assert_eq!(sequential.counts, dense.counts);
    }

    #[test]
    fn runs_clifford_circuits_far_beyond_the_amplitude_ceilings() {
        // 256 qubits: no amplitude engine can represent this register.
        let mut circuit = QuantumCircuit::new(256);
        circuit.push(QuantumGate::X(9)).unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 9,
                target: 0,
            })
            .unwrap();
        let result = StabilizerBackend::seeded(1).run(&circuit, 16).unwrap();
        assert_eq!(result.most_likely(), Some(((1usize << 9) | 1, 1.0)));
        assert_eq!(result.shots, 16);
    }

    #[test]
    fn non_clifford_gates_are_a_typed_error_not_a_panic() {
        let mut circuit = QuantumCircuit::new(3);
        circuit
            .push(QuantumGate::Ccx {
                control_a: 0,
                control_b: 1,
                target: 2,
            })
            .unwrap();
        assert!(matches!(
            StabilizerBackend::seeded(1).run(&circuit, 16),
            Err(QuantumError::UnsupportedGate { gate: "ccx", .. })
        ));
    }

    #[test]
    fn reproducibility_with_fixed_seed() {
        let mut a = StabilizerBackend::seeded(99);
        let mut b = StabilizerBackend::seeded(99);
        assert_eq!(a.run(&bell(), 100).unwrap(), b.run(&bell(), 100).unwrap());
    }
}
