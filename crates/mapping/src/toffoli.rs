//! Clifford+T decompositions of Toffoli-like gates.
//!
//! The reversible-to-quantum mapping of the paper relies on the standard
//! 7-T decomposition of the Toffoli gate [Nielsen–Chuang] and on Maslov's
//! relative-phase Toffoli \[42\], which only needs 4 T gates but introduces a
//! relative phase that must be undone by the matching uncompute gate.
//! Larger multiple-controlled gates are decomposed into a ladder of Toffoli
//! gates over clean ancilla qubits (Barenco et al. \[40\]).

use qdaflow_quantum::QuantumGate;

/// The standard Clifford+T decomposition of the Toffoli gate
/// `CCX(a, b; t)` with 7 T gates and 6 CNOTs (plus 2 Hadamards).
pub fn ccx_clifford_t(control_a: usize, control_b: usize, target: usize) -> Vec<QuantumGate> {
    let (a, b, t) = (control_a, control_b, target);
    vec![
        QuantumGate::H(t),
        QuantumGate::Cx {
            control: b,
            target: t,
        },
        QuantumGate::Tdg(t),
        QuantumGate::Cx {
            control: a,
            target: t,
        },
        QuantumGate::T(t),
        QuantumGate::Cx {
            control: b,
            target: t,
        },
        QuantumGate::Tdg(t),
        QuantumGate::Cx {
            control: a,
            target: t,
        },
        QuantumGate::T(b),
        QuantumGate::T(t),
        QuantumGate::H(t),
        QuantumGate::Cx {
            control: a,
            target: b,
        },
        QuantumGate::T(a),
        QuantumGate::Tdg(b),
        QuantumGate::Cx {
            control: a,
            target: b,
        },
    ]
}

/// The Clifford+T decomposition of the doubly-controlled Z gate
/// `CCZ(a, b, c)`, obtained from the Toffoli decomposition by dropping the
/// Hadamard conjugation of the target.
pub fn ccz_clifford_t(a: usize, b: usize, c: usize) -> Vec<QuantumGate> {
    // CCX = (I ⊗ I ⊗ H) · CCZ · (I ⊗ I ⊗ H), so dropping the two Hadamard
    // gates on the target from the Toffoli decomposition yields CCZ.
    ccx_clifford_t(a, b, c)
        .into_iter()
        .filter(|gate| !matches!(gate, QuantumGate::H(q) if *q == c))
        .collect()
}

/// Maslov's relative-phase Toffoli (RTOF): realizes `CCX` up to a relative
/// phase on the `|11x⟩` subspace using only 4 T gates. It is safe to use when
/// the gate is later undone by the adjoint of the same construction, which is
/// exactly the compute/uncompute pattern produced by the oracles of the
/// hidden shift circuits.
pub fn relative_phase_ccx(control_a: usize, control_b: usize, target: usize) -> Vec<QuantumGate> {
    let (a, b, t) = (control_a, control_b, target);
    vec![
        QuantumGate::H(t),
        QuantumGate::T(t),
        QuantumGate::Cx {
            control: a,
            target: t,
        },
        QuantumGate::Tdg(t),
        QuantumGate::Cx {
            control: b,
            target: t,
        },
        QuantumGate::T(t),
        QuantumGate::Cx {
            control: a,
            target: t,
        },
        QuantumGate::Tdg(t),
        QuantumGate::H(t),
    ]
}

/// The adjoint of [`relative_phase_ccx`].
pub fn relative_phase_ccx_dagger(
    control_a: usize,
    control_b: usize,
    target: usize,
) -> Vec<QuantumGate> {
    relative_phase_ccx(control_a, control_b, target)
        .into_iter()
        .rev()
        .map(|gate| gate.dagger())
        .collect()
}

/// Decomposes a multiple-controlled X gate with `controls.len() >= 3` into a
/// ladder of Toffoli gates using `controls.len() - 2` clean ancilla qubits
/// starting at `ancilla_base`. The ancillas are returned to `|0⟩`.
///
/// The returned gates still contain [`QuantumGate::Ccx`] operations; pass
/// them through [`ccx_clifford_t`] (as [`crate::map::to_clifford_t`] does) to
/// reach the Clifford+T level.
///
/// # Panics
///
/// Panics if fewer than three controls are given (use CNOT/CCX directly) or
/// if the ancilla range overlaps the controls or the target.
pub fn mcx_with_ancillas(
    controls: &[usize],
    target: usize,
    ancilla_base: usize,
) -> Vec<QuantumGate> {
    assert!(
        controls.len() >= 3,
        "use X, CNOT or CCX for gates with fewer than three controls"
    );
    let num_ancillas = controls.len() - 2;
    let ancillas: Vec<usize> = (ancilla_base..ancilla_base + num_ancillas).collect();
    for &ancilla in &ancillas {
        assert!(
            !controls.contains(&ancilla) && ancilla != target,
            "ancilla {ancilla} overlaps the gate qubits"
        );
    }
    let mut compute = Vec::new();
    // a0 = c0 AND c1
    compute.push(QuantumGate::Ccx {
        control_a: controls[0],
        control_b: controls[1],
        target: ancillas[0],
    });
    // a_i = a_{i-1} AND c_{i+1}
    for i in 1..num_ancillas {
        compute.push(QuantumGate::Ccx {
            control_a: ancillas[i - 1],
            control_b: controls[i + 1],
            target: ancillas[i],
        });
    }
    let mut gates = compute.clone();
    // Final conditional flip of the target controlled by the last ancilla and
    // the last control.
    gates.push(QuantumGate::Ccx {
        control_a: ancillas[num_ancillas - 1],
        control_b: *controls.last().expect("at least three controls"),
        target,
    });
    // Uncompute the ancilla ladder.
    gates.extend(compute.into_iter().rev());
    gates
}

/// Number of clean ancillas required by [`mcx_with_ancillas`] for a gate with
/// `num_controls` controls (zero for up to two controls).
pub fn required_ancillas(num_controls: usize) -> usize {
    num_controls.saturating_sub(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdaflow_quantum::{circuit::QuantumCircuit, statevector::Statevector, QuantumError};

    /// Builds a circuit from raw gates over `n` qubits.
    fn circuit_of(n: usize, gates: &[QuantumGate]) -> Result<QuantumCircuit, QuantumError> {
        let mut circuit = QuantumCircuit::new(n);
        for gate in gates {
            circuit.push(gate.clone())?;
        }
        Ok(circuit)
    }

    /// Checks that `gates` act on computational basis states exactly like the
    /// classical function `f` over `n` qubits.
    fn assert_classical_action(n: usize, gates: &[QuantumGate], f: impl Fn(usize) -> usize) {
        let circuit = circuit_of(n, gates).unwrap();
        for basis in 0..(1usize << n) {
            let mut state = Statevector::basis_state(n, basis).unwrap();
            state.apply_circuit(&circuit);
            let expected = f(basis);
            assert!(
                state.probability_of(expected) > 1.0 - 1e-9,
                "basis {basis:0width$b} mapped incorrectly",
                width = n
            );
        }
    }

    fn toffoli_function(basis: usize) -> usize {
        if basis & 0b011 == 0b011 {
            basis ^ 0b100
        } else {
            basis
        }
    }

    #[test]
    fn ccx_decomposition_matches_toffoli_exactly() {
        // Compare the full unitary against the native Toffoli gate by
        // checking amplitudes on a complete basis of input states prepared in
        // superposition (H layer) to be sensitive to phases.
        let decomposed = {
            let mut gates = vec![QuantumGate::H(0), QuantumGate::H(1), QuantumGate::H(2)];
            gates.extend(ccx_clifford_t(0, 1, 2));
            circuit_of(3, &gates).unwrap()
        };
        let native = {
            let gates = vec![
                QuantumGate::H(0),
                QuantumGate::H(1),
                QuantumGate::H(2),
                QuantumGate::Ccx {
                    control_a: 0,
                    control_b: 1,
                    target: 2,
                },
            ];
            circuit_of(3, &gates).unwrap()
        };
        let a = Statevector::from_circuit(&decomposed).unwrap();
        let b = Statevector::from_circuit(&native).unwrap();
        assert!(a.fidelity(&b) > 1.0 - 1e-9, "fidelity {}", a.fidelity(&b));
    }

    #[test]
    fn ccx_decomposition_has_seven_t_gates() {
        let circuit = circuit_of(3, &ccx_clifford_t(0, 1, 2)).unwrap();
        assert_eq!(circuit.t_count(), 7);
        assert!(circuit.is_clifford_t());
        assert_classical_action(3, &ccx_clifford_t(0, 1, 2), toffoli_function);
    }

    #[test]
    fn ccz_is_diagonal_and_flips_the_all_ones_phase() {
        let gates = ccz_clifford_t(0, 1, 2);
        let circuit = circuit_of(3, &gates).unwrap();
        // Compare against the native MCZ.
        let mut native = QuantumCircuit::new(3);
        native
            .push(QuantumGate::Mcz {
                qubits: vec![0, 1, 2],
            })
            .unwrap();
        for basis in 0..8usize {
            let mut lhs = Statevector::basis_state(3, basis).unwrap();
            lhs.apply_circuit(&circuit);
            let mut rhs = Statevector::basis_state(3, basis).unwrap();
            rhs.apply_circuit(&native);
            assert!(lhs.fidelity(&rhs) > 1.0 - 1e-9, "basis {basis}");
        }
        // Phase check on a superposed input.
        let mut superposed = QuantumCircuit::new(3);
        for q in 0..3 {
            superposed.push(QuantumGate::H(q)).unwrap();
        }
        let mut with_ccz = superposed.clone();
        for gate in &gates {
            with_ccz.push(gate.clone()).unwrap();
        }
        let mut with_native = superposed;
        with_native
            .push(QuantumGate::Mcz {
                qubits: vec![0, 1, 2],
            })
            .unwrap();
        let a = Statevector::from_circuit(&with_ccz).unwrap();
        let b = Statevector::from_circuit(&with_native).unwrap();
        assert!(a.fidelity(&b) > 1.0 - 1e-9);
    }

    #[test]
    fn relative_phase_toffoli_acts_correctly_on_basis_states() {
        // RTOF realizes the Toffoli permutation on the computational basis
        // (up to phases), and RTOF followed by its adjoint is the identity.
        assert_classical_action(3, &relative_phase_ccx(0, 1, 2), toffoli_function);
        let mut gates = relative_phase_ccx(0, 1, 2);
        gates.extend(relative_phase_ccx_dagger(0, 1, 2));
        let mut with_h: Vec<QuantumGate> =
            vec![QuantumGate::H(0), QuantumGate::H(1), QuantumGate::H(2)];
        with_h.extend(gates);
        let circuit = circuit_of(3, &with_h).unwrap();
        let reference = circuit_of(
            3,
            &[QuantumGate::H(0), QuantumGate::H(1), QuantumGate::H(2)],
        )
        .unwrap();
        let a = Statevector::from_circuit(&circuit).unwrap();
        let b = Statevector::from_circuit(&reference).unwrap();
        assert!(a.fidelity(&b) > 1.0 - 1e-9);
    }

    #[test]
    fn relative_phase_toffoli_uses_four_t_gates() {
        let circuit = circuit_of(3, &relative_phase_ccx(0, 1, 2)).unwrap();
        assert_eq!(circuit.t_count(), 4);
    }

    #[test]
    fn mcx_with_ancillas_computes_the_and_of_all_controls() {
        for num_controls in 3..=5usize {
            let controls: Vec<usize> = (0..num_controls).collect();
            let target = num_controls;
            let ancilla_base = num_controls + 1;
            let gates = mcx_with_ancillas(&controls, target, ancilla_base);
            let total_qubits = ancilla_base + required_ancillas(num_controls);
            // Check action on every basis state of the control+target block
            // with ancillas initialised to zero.
            for basis in 0..(1usize << (num_controls + 1)) {
                let mut state = Statevector::basis_state(total_qubits, basis).unwrap();
                state.apply_circuit(&circuit_of(total_qubits, &gates).unwrap());
                let all_controls = (0..num_controls).all(|c| (basis >> c) & 1 == 1);
                let expected = if all_controls {
                    basis ^ (1 << target)
                } else {
                    basis
                };
                assert!(
                    state.probability_of(expected) > 1.0 - 1e-9,
                    "controls={num_controls}, basis={basis:b}"
                );
            }
        }
    }

    #[test]
    fn required_ancillas_formula() {
        assert_eq!(required_ancillas(0), 0);
        assert_eq!(required_ancillas(2), 0);
        assert_eq!(required_ancillas(3), 1);
        assert_eq!(required_ancillas(6), 4);
    }

    #[test]
    #[should_panic(expected = "fewer than three controls")]
    fn mcx_with_too_few_controls_panics() {
        mcx_with_ancillas(&[0, 1], 2, 3);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_ancillas_panic() {
        mcx_with_ancillas(&[0, 1, 2], 3, 2);
    }
}
