//! The command shell: parsing and executing command pipelines.

use crate::command::{builtin_commands, Command};
use crate::{RevkitError, Store};
use qdaflow_pipeline::script::{split_statements, tokenize};

/// A RevKit-style shell holding a [`Store`] and a command registry.
///
/// Scripts are semicolon- or newline-separated command invocations; arguments
/// are whitespace-separated, with double quotes grouping an argument that
/// contains spaces (as needed for `revgen --expr "(a & b) ^ c"`).
pub struct Shell {
    commands: Vec<Box<dyn Command>>,
    store: Store,
}

impl Shell {
    /// Creates a shell with the built-in command set and an empty store.
    pub fn new() -> Self {
        Self {
            commands: builtin_commands(),
            store: Store::new(),
        }
    }

    /// Read access to the store (for inspecting results after a script run).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable access to the store (for seeding specifications directly).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Registers an additional command; a command with the same name replaces
    /// the existing one.
    pub fn register(&mut self, command: Box<dyn Command>) {
        self.commands.retain(|c| c.name() != command.name());
        self.commands.push(command);
    }

    /// Names and descriptions of all registered commands.
    pub fn help(&self) -> Vec<(String, String)> {
        self.commands
            .iter()
            .map(|c| (c.name().to_owned(), c.description().to_owned()))
            .collect()
    }

    /// Runs a single command line (name plus arguments).
    ///
    /// # Errors
    ///
    /// Returns [`RevkitError::UnknownCommand`] for unregistered commands,
    /// [`RevkitError::Script`] for malformed lines (e.g. an unterminated
    /// quote), and propagates command execution errors.
    pub fn run_command(&mut self, line: &str) -> Result<(), RevkitError> {
        let tokens = tokenize(line)?;
        let Some((name, args)) = tokens.split_first() else {
            return Ok(());
        };
        let command = self
            .commands
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| RevkitError::UnknownCommand { name: name.clone() })?;
        command.execute(args, &mut self.store)
    }

    /// Runs a whole script (commands separated by `;` or newlines, with
    /// double quotes protecting separators inside an argument — as needed
    /// for `flow "revgen --hwb 4; tbs; …"`) and returns the log lines
    /// produced by this run.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first command error.
    pub fn run_script(&mut self, script: &str) -> Result<Vec<String>, RevkitError> {
        let before = self.store.log_lines().len();
        for line in split_statements(script)? {
            self.run_command(&line)?;
        }
        Ok(self.store.log_lines()[before..].to_vec())
    }
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_handles_quotes() {
        assert_eq!(
            tokenize("revgen --expr \"(a & b) ^ c\"").unwrap(),
            vec!["revgen", "--expr", "(a & b) ^ c"]
        );
        assert_eq!(tokenize("  ps   -c ").unwrap(), vec!["ps", "-c"]);
        assert!(tokenize("").unwrap().is_empty());
    }

    #[test]
    fn unterminated_quotes_are_shell_errors() {
        let mut shell = Shell::new();
        assert!(matches!(
            shell.run_command("revgen --expr \"a & b"),
            Err(RevkitError::Script(_))
        ));
        assert!(matches!(
            shell.run_script("ps; revgen --expr \"a & b"),
            Err(RevkitError::Script(_))
        ));
    }

    #[test]
    fn paper_pipeline_runs_end_to_end() {
        // Equation (5) of the paper.
        let mut shell = Shell::new();
        let output = shell
            .run_script("revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c")
            .unwrap();
        assert!(output.iter().any(|l| l.contains("[tbs]")));
        assert!(output.iter().any(|l| l.contains("[revsimp]")));
        assert!(output.iter().any(|l| l.contains("[rptm]")));
        assert!(output.iter().any(|l| l.contains("[tpar]")));
        assert!(output.iter().any(|l| l.contains("T-count")));
        assert!(shell.store().quantum().is_some());
    }

    #[test]
    fn exec_command_reconfigures_simulation() {
        let mut shell = Shell::new();
        let output = shell
            .run_script(
                "exec --threads 2 --fusion off --threshold 4096\n\
                 revgen --hwb 3; tbs; rptm; simulate",
            )
            .unwrap();
        assert!(output.iter().any(|l| l.contains(
            "[exec] threads=2 fusion=off parallel-threshold=4096 \
             plan=on block-bits=auto pair-fusion=on"
        )));
        assert!(output
            .iter()
            .any(|l| l.contains("[simulate]") && l.contains("matches")));
        let config = shell.store().exec_config();
        assert_eq!(config.threads, 2);
        assert!(!config.fusion);
        // The plan knobs reconfigure the interpreter path.
        let output = shell
            .run_script("exec --plan off --block-bits 8 --pair-fusion off")
            .unwrap();
        assert!(output
            .iter()
            .any(|l| l.contains("plan=off block-bits=8 pair-fusion=off")));
        let config = shell.store().exec_config();
        assert!(!config.plan);
        assert_eq!(config.block_bits, 8);
        assert!(!config.pair_fusion);
        // Invalid arguments are rejected.
        assert!(shell.run_command("exec --threads 0").is_err());
        assert!(shell.run_command("exec --fusion maybe").is_err());
        assert!(shell.run_command("exec --plan maybe").is_err());
        assert!(shell.run_command("exec --pair-fusion maybe").is_err());
        // Without arguments the command just reports the current settings.
        let report = shell.run_script("exec").unwrap();
        assert!(report.iter().any(|l| l.contains("threads=2")));
    }

    #[test]
    fn flow_command_runs_a_quoted_pipeline() {
        // Equation (5) as literal user input: the quoted script is one
        // statement even though it contains semicolons.
        let mut shell = Shell::new();
        let output = shell
            .run_script("flow \"revgen --hwb 4; tbs; revsimp; rptm; tpar; ps\"")
            .unwrap();
        assert!(output.iter().any(|l| l.contains("[flow] tbs")));
        assert!(output.iter().any(|l| l.contains("T-count")));
        assert!(shell.store().quantum().is_some());
        assert!(shell.store().reversible().is_some());
        assert!(shell.store().permutation().is_some());
        // The produced circuits agree with each other.
        let quantum = shell.store().quantum().unwrap().clone();
        let reversible = shell.store().reversible().unwrap().clone();
        assert!(crate::command::quantum_matches_reversible(&quantum, &reversible).unwrap());
    }

    #[test]
    fn flow_command_seeds_from_the_store() {
        let mut shell = Shell::new();
        let output = shell
            .run_script("revgen --perm \"0 2 3 5 7 1 4 6\"; flow \"revgen; dbs; revsimp; rptm; tpar\"; simulate")
            .unwrap();
        assert!(output.iter().any(|l| l.contains("[flow]")));
        assert!(output.iter().any(|l| l.contains("matches")));
        assert!(!output.iter().any(|l| l.contains("DOES NOT")));
    }

    #[test]
    fn flow_command_rejects_invalid_pipelines_up_front() {
        let mut shell = Shell::new();
        // Invalid pass order: typed error, nothing runs, store untouched.
        let err = shell
            .run_command("flow \"revgen --hwb 4; tpar\"")
            .unwrap_err();
        assert!(matches!(
            err,
            RevkitError::InvalidArguments {
                command: "flow",
                ..
            }
        ));
        assert!(shell.store().permutation().is_none());
        // Unknown pass.
        assert!(shell
            .run_command("flow \"revgen --hwb 4; frobnicate\"")
            .is_err());
        // Missing script.
        assert!(shell.run_command("flow").is_err());
        // Missing store entry for a passthrough pipeline.
        assert!(matches!(
            shell.run_command("flow \"revgen; tbs\""),
            Err(RevkitError::MissingStoreEntry { .. })
        ));
    }

    #[test]
    fn batch_command_reuses_the_cache_across_script_lines() {
        let mut shell = Shell::new();
        let output = shell
            .run_script(
                "batch --shots 128 --spec \"hwb 4\" --spec \"hwb 4\"\n\
                 batch --shots 256 --spec \"hwb 4\" --spec \"perm 0 2 3 5 7 1 4 6\"",
            )
            .unwrap();
        assert!(output
            .iter()
            .any(|l| l.contains("2 jobs (1 distinct), 1 compiled, 1 cache hits")));
        // The second line compiles only the new permutation oracle; the
        // repeated hwb 4 oracle is a cache hit from the first line.
        assert!(output.iter().any(
            |l| l.contains("2 jobs (2 distinct), 1 compiled, 1 cache hits (2 programs cached)")
        ));
    }

    #[test]
    fn batch_stats_logs_prometheus_metrics() {
        let mut shell = Shell::new();
        let output = shell
            .run_script("batch --shots 32 --spec \"hwb 3\"\nbatch --stats")
            .unwrap();
        assert!(output
            .iter()
            .any(|l| l.contains("# TYPE qdaflow_jobs_submitted_total counter")));
        assert!(output.iter().any(|l| l == "qdaflow_jobs_submitted_total 1"));
        assert!(output.iter().any(|l| l == "qdaflow_jobs_completed_total 1"));
    }

    #[test]
    fn batch_resume_replays_journaled_jobs_across_shells() {
        let dir = std::env::temp_dir().join(format!("qdaflow-shell-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("batch.journal");
        let line = format!(
            "batch --resume {} --shots 64 --spec \"hwb 3\" --spec \"perm 1 0 3 2\"",
            journal.display()
        );
        let first = Shell::new().run_script(&line).unwrap();
        assert!(first.iter().any(|l| l.contains("2 compiled")));
        // A brand-new shell — a restarted process — replays both jobs from
        // the journal without compiling or simulating anything.
        let mut shell = Shell::new();
        let output = shell.run_script(&format!("{line}\nbatch --stats")).unwrap();
        assert!(output
            .iter()
            .any(|l| l.contains("2 jobs (2 distinct), 0 compiled, 0 cache hits")));
        assert!(output.iter().any(|l| l == "qdaflow_jobs_resumed_total 2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_commands_are_reported() {
        let mut shell = Shell::new();
        assert!(matches!(
            shell.run_command("frobnicate --now"),
            Err(RevkitError::UnknownCommand { .. })
        ));
    }

    #[test]
    fn scripts_skip_comments_and_blank_lines() {
        let mut shell = Shell::new();
        let output = shell
            .run_script("# a comment\n\nrevgen --hwb 3\n tbs ;; ps -c")
            .unwrap();
        assert!(output.iter().any(|l| l.contains("[tbs]")));
    }

    #[test]
    fn help_lists_builtin_commands() {
        let shell = Shell::new();
        let help = shell.help();
        for expected in [
            "revgen", "tbs", "dbs", "esopbs", "revsimp", "rptm", "tpar", "ps",
        ] {
            assert!(help.iter().any(|(name, _)| name == expected), "{expected}");
        }
    }

    #[test]
    fn register_replaces_commands_by_name() {
        struct Fake;
        impl Command for Fake {
            fn name(&self) -> &'static str {
                "tbs"
            }
            fn description(&self) -> &'static str {
                "fake"
            }
            fn execute(&self, _: &[String], store: &mut Store) -> Result<(), RevkitError> {
                store.log("[fake-tbs]");
                Ok(())
            }
        }
        let mut shell = Shell::new();
        let before = shell.help().len();
        shell.register(Box::new(Fake));
        assert_eq!(shell.help().len(), before);
        shell.run_command("tbs").unwrap();
        assert!(shell.store().log_lines().iter().any(|l| l == "[fake-tbs]"));
    }

    #[test]
    fn dbs_based_pipeline_also_verifies() {
        let mut shell = Shell::new();
        let output = shell
            .run_script("revgen --perm \"0 2 3 5 7 1 4 6\"; dbs; revsimp; rptm; tpar; simulate")
            .unwrap();
        assert!(output.iter().any(|l| l.contains("matches")));
        assert!(!output.iter().any(|l| l.contains("DOES NOT")));
    }

    #[test]
    fn errors_propagate_from_commands() {
        let mut shell = Shell::new();
        assert!(matches!(
            shell.run_script("tbs"),
            Err(RevkitError::MissingStoreEntry { .. })
        ));
    }
}
