//! Quickstart: compile a Boolean function to a Clifford+T circuit and run the
//! hidden shift algorithm on the ideal simulator.
//!
//! Run with `cargo run -p qdaflow --example quickstart`.

use qdaflow::flow::compile_phase_function;
use qdaflow::hidden_shift::{HiddenShiftInstance, OracleStyle};
use qdaflow::prelude::*;
use qdaflow::quantum::drawer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a Boolean function — the bent function of the paper's Fig. 4.
    let f = Expr::parse("(x0 & x1) ^ (x2 & x3)")?.truth_table(4)?;
    println!("function f            : {f}");

    // 2. Compile it into a diagonal Clifford+T phase oracle.
    let report = compile_phase_function(&f)?;
    println!(
        "compiled phase oracle : {} gates, T-count {}",
        report.optimized.total_gates, report.optimized.t_count
    );
    println!("{}", drawer::draw(&report.circuit));

    // 3. Use it inside the hidden shift algorithm with a planted shift of 1.
    let instance = HiddenShiftInstance::from_bent_function(&f, 1)?;
    let circuit = instance.build_circuit(OracleStyle::TruthTable)?;
    let outcome = instance.run_ideal(&circuit, 1024)?;
    println!(
        "hidden shift          : planted {}, recovered {:?} (success probability {:.3})",
        outcome.planted_shift, outcome.recovered_shift, outcome.success_probability
    );
    println!("Shift is {}", outcome.recovered_shift.unwrap_or(0));
    Ok(())
}
