//! Integration tests of the engine's oracle primitives against the
//! mathematical definitions from the Boolean-function layer.

use qdaflow::prelude::*;
use qdaflow::quantum::statevector::Statevector;

/// Applies the compiled phase oracle to a uniform superposition and checks
/// the signs against the function.
fn phase_oracle_signs_match(function: &TruthTable) {
    let mut engine = MainEngine::with_simulator();
    let qubits = engine.allocate_qureg(function.num_vars());
    engine.all_h(&qubits).unwrap();
    engine.phase_oracle(function, &qubits).unwrap();
    let circuit = engine.circuit();
    let state = Statevector::from_circuit(&circuit).unwrap();
    let reference = state.amplitude(0).re.signum();
    let magnitude = (1.0 / function.len() as f64).sqrt();
    let base_sign = if function.get(0) {
        -reference
    } else {
        reference
    };
    for x in 0..function.len() {
        let expected = base_sign
            * if function.get(x) {
                -magnitude
            } else {
                magnitude
            };
        let actual = state.amplitude(x);
        assert!(
            (actual.re - expected).abs() < 1e-9 && actual.im.abs() < 1e-9,
            "sign mismatch at {x}"
        );
    }
}

#[test]
fn phase_oracles_for_bent_and_non_bent_functions() {
    for text in [
        "(a & b) ^ (c & d)",
        "a & b & c",
        "!a ^ (b & !c)",
        "(a | b) & (c | d)",
    ] {
        let f = Expr::parse(text).unwrap();
        let table = f.truth_table(f.num_vars().max(2)).unwrap();
        phase_oracle_signs_match(&table);
    }
}

#[test]
fn permutation_oracles_agree_with_both_synthesis_methods() {
    let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
    for basis in 0..8usize {
        let mut outcomes = Vec::new();
        for synthesis in [
            SynthesisChoice::TransformationBased,
            SynthesisChoice::DecompositionBased,
        ] {
            let mut engine = MainEngine::with_simulator();
            let qubits = engine.allocate_qureg(3);
            for (bit, &qubit) in qubits.iter().enumerate() {
                if (basis >> bit) & 1 == 1 {
                    engine.x(qubit).unwrap();
                }
            }
            engine.permutation_oracle(&pi, &qubits, synthesis).unwrap();
            let result = engine.flush(32).unwrap();
            outcomes.push(result.most_likely().unwrap().0 & 0b111);
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], pi.apply(basis));
    }
}

#[test]
fn permutation_oracle_followed_by_its_dagger_is_identity() {
    let pi = Permutation::random_seeded(3, 1234);
    let mut engine = MainEngine::with_simulator();
    let qubits = engine.allocate_qureg(3);
    engine.all_h(&qubits).unwrap();
    engine
        .permutation_oracle(&pi, &qubits, SynthesisChoice::TransformationBased)
        .unwrap();
    engine
        .permutation_oracle_dagger(&pi, &qubits, SynthesisChoice::TransformationBased)
        .unwrap();
    engine.all_h(&qubits).unwrap();
    let result = engine.flush(64).unwrap();
    assert_eq!(result.most_likely(), Some((0, 1.0)));
}

#[test]
fn engine_circuit_runs_identically_on_the_raw_backend() {
    // Build a circuit through the engine, then run the same circuit directly
    // on a StatevectorBackend and compare distributions.
    let f = Expr::parse("(a & b) ^ c").unwrap().truth_table(3).unwrap();
    let mut engine = MainEngine::with_simulator();
    let qubits = engine.allocate_qureg(3);
    engine.all_h(&qubits).unwrap();
    engine.phase_oracle(&f, &qubits).unwrap();
    engine.all_h(&qubits).unwrap();
    let circuit = engine.circuit();
    let engine_result = engine.flush(2048).unwrap();

    let mut backend = StatevectorBackend::seeded(5);
    let direct_result = backend.run(&circuit, 2048).unwrap();
    for outcome in 0..8usize {
        let a = engine_result.probability_of(outcome);
        let b = direct_result.probability_of(outcome);
        assert!((a - b).abs() < 0.1, "outcome {outcome}: {a} vs {b}");
    }
}

#[test]
fn maiorana_mcfarland_dual_identity_holds_on_the_oracle_level() {
    // Check that the structured dual construction used by the hidden shift
    // circuits matches the spectral dual for random instances.
    for seed in 0..4u64 {
        let pi = Permutation::random_seeded(2, seed);
        let h = TruthTable::from_fn(2, |y| (y + seed as usize).is_multiple_of(2)).unwrap();
        let mm = MaioranaMcFarland::new(pi, h).unwrap();
        let spectral = qdaflow::boolfn::spectrum::dual_bent(&mm.truth_table().unwrap()).unwrap();
        assert_eq!(mm.dual_truth_table().unwrap(), spectral);
    }
}
