//! Exact statevector simulation.
//!
//! The statevector simulator is the "local simulator" backend of the paper's
//! ProjectQ flow and the reference against which the noisy backend and the
//! compiled circuits are validated. It stores all `2^n` complex amplitudes
//! and applies gates in place.

use crate::complex::Complex;
use crate::fusion::{ExecConfig, FusedProgram};
use crate::kernel;
use crate::plan::{ExecPlan, SoaStatevector};
use crate::sampling::CumulativeDistribution;
use crate::{QuantumCircuit, QuantumError, QuantumGate, MAX_SIMULATOR_QUBITS};
use rand::Rng;

/// The state of an `n`-qubit register as a dense vector of `2^n` amplitudes.
///
/// Basis states are indexed with qubit 0 as the least significant bit.
#[derive(Debug, Clone, PartialEq)]
pub struct Statevector {
    num_qubits: usize,
    amplitudes: Vec<Complex>,
}

impl Statevector {
    /// Creates the all-zeros state `|0...0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::TooManyQubits`] if `num_qubits` exceeds
    /// [`MAX_SIMULATOR_QUBITS`].
    pub fn new(num_qubits: usize) -> Result<Self, QuantumError> {
        if num_qubits > MAX_SIMULATOR_QUBITS {
            return Err(QuantumError::TooManyQubits {
                requested: num_qubits,
                maximum: MAX_SIMULATOR_QUBITS,
            });
        }
        let mut amplitudes = vec![Complex::ZERO; 1 << num_qubits];
        amplitudes[0] = Complex::ONE;
        Ok(Self {
            num_qubits,
            amplitudes,
        })
    }

    /// Creates the computational basis state `|basis⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::TooManyQubits`] for oversized registers.
    ///
    /// # Panics
    ///
    /// Panics if `basis >= 2^num_qubits`.
    pub fn basis_state(num_qubits: usize, basis: usize) -> Result<Self, QuantumError> {
        let mut state = Self::new(num_qubits)?;
        assert!(basis < state.amplitudes.len(), "basis state out of range");
        state.amplitudes[0] = Complex::ZERO;
        state.amplitudes[basis] = Complex::ONE;
        Ok(state)
    }

    /// Runs a full circuit on the all-zeros state and returns the resulting
    /// state, executing through the default fused execution layer.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::TooManyQubits`] for oversized circuits.
    pub fn from_circuit(circuit: &QuantumCircuit) -> Result<Self, QuantumError> {
        Self::run(circuit, &ExecConfig::default())
    }

    /// Runs a full circuit on the all-zeros state with an explicit execution
    /// configuration: the circuit is compiled to a
    /// [`FusedProgram`] and applied with the
    /// configured fusion/threading settings.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::TooManyQubits`] for oversized circuits.
    pub fn run(circuit: &QuantumCircuit, config: &ExecConfig) -> Result<Self, QuantumError> {
        if config.plan {
            // Plan fast path: start from a blocked SoA zero state and
            // convert to the interleaved layout once at the end, instead of
            // allocating an interleaved zero register only to split it into
            // SoA and merge it back (two extra full-register passes).
            if circuit.num_qubits() > MAX_SIMULATOR_QUBITS {
                return Err(QuantumError::TooManyQubits {
                    requested: circuit.num_qubits(),
                    maximum: MAX_SIMULATOR_QUBITS,
                });
            }
            let plan = ExecPlan::compile(circuit, config);
            let mut state = SoaStatevector::zero_state(circuit.num_qubits(), plan.block_bits());
            plan.apply_soa(&mut state, config);
            return Ok(Self {
                num_qubits: circuit.num_qubits(),
                amplitudes: state.to_amplitudes(),
            });
        }
        let mut state = Self::new(circuit.num_qubits())?;
        state.apply_circuit_with(circuit, config);
        Ok(state)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude of basis state `basis`.
    ///
    /// # Panics
    ///
    /// Panics if `basis` is out of range.
    pub fn amplitude(&self, basis: usize) -> Complex {
        self.amplitudes[basis]
    }

    /// All amplitudes in basis order.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// Mutable access to the raw amplitudes, for callers that drive the
    /// kernel or the fused execution layer directly (e.g. the noisy
    /// simulator's per-shot loop). Callers must preserve normalization.
    pub fn amplitudes_mut(&mut self) -> &mut [Complex] {
        &mut self.amplitudes
    }

    /// The probability of measuring each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// The probability of measuring the specific basis state `basis`.
    ///
    /// # Panics
    ///
    /// Panics if `basis` is out of range.
    pub fn probability_of(&self, basis: usize) -> f64 {
        self.amplitudes[basis].norm_sqr()
    }

    /// Sum of all probabilities; 1 up to floating point error for any state
    /// produced by unitary evolution.
    pub fn norm(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the states have different sizes.
    pub fn inner_product(&self, other: &Self) -> Complex {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "states must have the same number of qubits"
        );
        self.amplitudes
            .iter()
            .zip(&other.amplitudes)
            .fold(Complex::ZERO, |acc, (a, b)| acc + a.conj() * *b)
    }

    /// Fidelity `|⟨self|other⟩|^2` between two pure states.
    ///
    /// # Panics
    ///
    /// Panics if the states have different sizes.
    pub fn fidelity(&self, other: &Self) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Applies a single gate in place through the shared
    /// [`kernel`] dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the gate references qubits outside of the register; circuits
    /// built through [`QuantumCircuit::push`] can never trigger this.
    pub fn apply_gate(&mut self, gate: &QuantumGate) {
        kernel::apply_gate(&mut self.amplitudes, gate);
    }

    /// Applies every gate of a circuit in order through the default fused
    /// execution layer.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit(&mut self, circuit: &QuantumCircuit) {
        self.apply_circuit_with(circuit, &ExecConfig::default());
    }

    /// Applies every gate of a circuit with an explicit execution
    /// configuration: through the [`ExecPlan`] SoA interpreter when
    /// `config.plan` is set (the default), or the legacy interleaved
    /// [`FusedProgram`] path otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit_with(&mut self, circuit: &QuantumCircuit, config: &ExecConfig) {
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit on {} qubits cannot run on a {}-qubit state",
            circuit.num_qubits(),
            self.num_qubits
        );
        if config.plan {
            ExecPlan::compile(circuit, config).apply(&mut self.amplitudes, config);
        } else {
            FusedProgram::compile(circuit, config).apply(&mut self.amplitudes, config);
        }
    }

    /// The precomputed cumulative measurement distribution of this state,
    /// for callers that sample the same state many times (each draw is then
    /// a binary search instead of a linear scan).
    pub fn cumulative_distribution(&self) -> CumulativeDistribution {
        CumulativeDistribution::from_amplitudes(&self.amplitudes)
    }

    /// Samples a measurement of all qubits in the computational basis,
    /// returning the observed basis state. The state is not collapsed.
    ///
    /// A *single* draw is answered by the early-exiting linear scan — for
    /// one shot that is both allocation-free and cheaper than building the
    /// prefix sums (the noisy simulator samples each per-shot state exactly
    /// once). Callers taking many shots from the same state should use
    /// [`Statevector::sample_counts`] /
    /// [`Statevector::sample_counts_sharded`], which build the
    /// [`CumulativeDistribution`] once and binary-search every draw; both
    /// samplers map any given draw to the identical outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample_linear(rng)
    }

    /// The per-shot linear scan, the reference implementation the
    /// `sampling_differential.rs` property suite compares the binary-search
    /// sampler against (and the one-shot fast path behind
    /// [`Statevector::sample`]). Consumes one `f64` draw and returns the
    /// same outcome the cumulative distribution assigns to that draw.
    pub fn sample_linear<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let draw: f64 = rng.gen();
        let mut cumulative = 0.0f64;
        for (basis, amplitude) in self.amplitudes.iter().enumerate() {
            cumulative += amplitude.norm_sqr();
            if draw < cumulative {
                return basis;
            }
        }
        self.amplitudes.len() - 1
    }

    /// Samples `shots` measurements and returns a histogram of observed
    /// basis states. The cumulative distribution is built once and every
    /// shot is a binary search; the RNG stream and the resulting histogram
    /// are identical to the historical per-shot linear scan.
    pub fn sample_counts<R: Rng + ?Sized>(&self, rng: &mut R, shots: usize) -> Vec<usize> {
        self.cumulative_distribution().sample_counts(rng, shots)
    }

    /// Shot-sharded parallel sampling: `shots` are split into fixed-size
    /// shards, each drawing from an independent deterministic RNG stream
    /// derived from `(seed, shard index)`, executed on up to
    /// `config.threads` scoped workers. The histogram is identical at every
    /// thread count and fully determined by `(seed, shots,
    /// config.shot_shard_size)`; see [`crate::sampling`].
    pub fn sample_counts_sharded(
        &self,
        seed: u64,
        shots: usize,
        config: &ExecConfig,
    ) -> Vec<usize> {
        self.cumulative_distribution().sample_sharded(
            seed,
            shots,
            config.threads,
            config.shot_shard_size,
        )
    }

    /// Returns the basis state with the highest probability (ties broken by
    /// the lowest index), together with that probability.
    pub fn most_likely(&self) -> (usize, f64) {
        let mut best = (0usize, 0.0f64);
        for (basis, amplitude) in self.amplitudes.iter().enumerate() {
            let probability = amplitude.norm_sqr();
            if probability > best.1 {
                best = (basis, probability);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn bell_circuit() -> QuantumCircuit {
        let mut circuit = QuantumCircuit::new(2);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 1,
            })
            .unwrap();
        circuit
    }

    #[test]
    fn initial_state_is_all_zeros() {
        let state = Statevector::new(3).unwrap();
        assert_eq!(state.probability_of(0), 1.0);
        assert!((state.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_many_qubits_is_rejected() {
        assert!(matches!(
            Statevector::new(MAX_SIMULATOR_QUBITS + 1),
            Err(QuantumError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut state = Statevector::new(1).unwrap();
        state.apply_gate(&QuantumGate::H(0));
        assert!((state.amplitude(0).re - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((state.amplitude(1).re - FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn bell_state_from_paper_fig1a() {
        // Fig. 1(a): |Ψ⟩ = (|00⟩ + |11⟩)/sqrt(2).
        let state = Statevector::from_circuit(&bell_circuit()).unwrap();
        assert!((state.probability_of(0b00) - 0.5).abs() < 1e-12);
        assert!((state.probability_of(0b11) - 0.5).abs() < 1e-12);
        assert!(state.probability_of(0b01) < 1e-12);
        assert!(state.probability_of(0b10) < 1e-12);
    }

    #[test]
    fn x_and_cnot_act_classically() {
        let mut state = Statevector::new(2).unwrap();
        state.apply_gate(&QuantumGate::X(0));
        state.apply_gate(&QuantumGate::Cx {
            control: 0,
            target: 1,
        });
        assert_eq!(state.most_likely().0, 0b11);
    }

    #[test]
    fn toffoli_and_mcx_act_classically() {
        let mut state = Statevector::basis_state(4, 0b0111).unwrap();
        state.apply_gate(&QuantumGate::Ccx {
            control_a: 0,
            control_b: 1,
            target: 3,
        });
        assert_eq!(state.most_likely().0, 0b1111);
        let mut state = Statevector::basis_state(4, 0b0111).unwrap();
        state.apply_gate(&QuantumGate::Mcx {
            controls: vec![0, 1, 2],
            target: 3,
        });
        assert_eq!(state.most_likely().0, 0b1111);
        // A blocked control leaves the state unchanged.
        let mut blocked = Statevector::basis_state(4, 0b0101).unwrap();
        blocked.apply_gate(&QuantumGate::Mcx {
            controls: vec![0, 1, 2],
            target: 3,
        });
        assert_eq!(blocked.most_likely().0, 0b0101);
    }

    #[test]
    fn z_s_t_phases_compose() {
        // T^2 = S, S^2 = Z on the |1⟩ state.
        let mut with_t = Statevector::basis_state(1, 1).unwrap();
        with_t.apply_gate(&QuantumGate::T(0));
        with_t.apply_gate(&QuantumGate::T(0));
        let mut with_s = Statevector::basis_state(1, 1).unwrap();
        with_s.apply_gate(&QuantumGate::S(0));
        assert!(with_t.fidelity(&with_s) > 1.0 - 1e-12);
        assert!(with_t.amplitude(1).approx_eq(Complex::I, 1e-12));

        let mut with_z = Statevector::basis_state(1, 1).unwrap();
        with_z.apply_gate(&QuantumGate::Z(0));
        assert!(with_z.amplitude(1).approx_eq(Complex::real(-1.0), 1e-12));
    }

    #[test]
    fn cz_and_mcz_flip_phase_of_all_ones() {
        let mut state = Statevector::new(2).unwrap();
        state.apply_gate(&QuantumGate::H(0));
        state.apply_gate(&QuantumGate::H(1));
        state.apply_gate(&QuantumGate::Cz { a: 0, b: 1 });
        assert!(state.amplitude(0b11).re < 0.0);
        assert!(state.amplitude(0b00).re > 0.0);

        let mut three = Statevector::basis_state(3, 0b111).unwrap();
        three.apply_gate(&QuantumGate::Mcz {
            qubits: vec![0, 1, 2],
        });
        assert!(three.amplitude(0b111).approx_eq(Complex::real(-1.0), 1e-12));
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut state = Statevector::basis_state(2, 0b01).unwrap();
        state.apply_gate(&QuantumGate::Swap { a: 0, b: 1 });
        assert_eq!(state.most_likely().0, 0b10);
        state.apply_gate(&QuantumGate::Swap { a: 0, b: 1 });
        assert_eq!(state.most_likely().0, 0b01);
    }

    #[test]
    fn dagger_circuit_restores_initial_state() {
        let mut circuit = QuantumCircuit::new(3);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit.push(QuantumGate::T(1)).unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 2,
            })
            .unwrap();
        circuit.push(QuantumGate::S(2)).unwrap();
        let mut state = Statevector::new(3).unwrap();
        state.apply_circuit(&circuit);
        state.apply_circuit(&circuit.dagger());
        assert!((state.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn norm_is_preserved_by_random_circuits() {
        let mut circuit = QuantumCircuit::new(4);
        let gates = [
            QuantumGate::H(0),
            QuantumGate::T(1),
            QuantumGate::Cx {
                control: 1,
                target: 2,
            },
            QuantumGate::S(3),
            QuantumGate::Cz { a: 0, b: 3 },
            QuantumGate::Ccx {
                control_a: 0,
                control_b: 1,
                target: 3,
            },
            QuantumGate::Y(2),
            QuantumGate::Rz {
                qubit: 0,
                angle: 0.3,
            },
        ];
        for gate in gates {
            circuit.push(gate).unwrap();
        }
        let state = Statevector::from_circuit(&circuit).unwrap();
        assert!((state.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let state = Statevector::from_circuit(&bell_circuit()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let histogram = state.sample_counts(&mut rng, 4000);
        assert_eq!(histogram[0b01], 0);
        assert_eq!(histogram[0b10], 0);
        let zero_fraction = histogram[0b00] as f64 / 4000.0;
        assert!((zero_fraction - 0.5).abs() < 0.05);
    }

    #[test]
    fn binary_search_sampler_matches_the_linear_reference() {
        let state = Statevector::from_circuit(&bell_circuit()).unwrap();
        let distribution = state.cumulative_distribution();
        let mut fast_rng = StdRng::seed_from_u64(99);
        let mut slow_rng = StdRng::seed_from_u64(99);
        for _ in 0..256 {
            assert_eq!(
                distribution.sample_one(&mut fast_rng),
                state.sample_linear(&mut slow_rng)
            );
        }
    }

    #[test]
    fn sharded_sampling_is_reproducible_across_thread_counts() {
        let state = Statevector::from_circuit(&bell_circuit()).unwrap();
        let sequential = state.sample_counts_sharded(
            7,
            5000,
            &ExecConfig::sequential().with_shot_shard_size(256),
        );
        let threaded = state.sample_counts_sharded(
            7,
            5000,
            &ExecConfig::sequential()
                .with_threads(4)
                .with_shot_shard_size(256),
        );
        assert_eq!(sequential, threaded);
        assert_eq!(sequential.iter().sum::<usize>(), 5000);
        assert_eq!(sequential[0b01], 0);
        assert_eq!(sequential[0b10], 0);
    }

    #[test]
    fn inner_product_of_orthogonal_states_is_zero() {
        let zero = Statevector::basis_state(2, 0).unwrap();
        let three = Statevector::basis_state(2, 3).unwrap();
        assert_eq!(zero.inner_product(&three), Complex::ZERO);
        assert!((zero.fidelity(&zero) - 1.0).abs() < 1e-12);
    }
}
