//! The batch execution subsystem: deduplicated compilation plus parallel,
//! reproducible sampling for many jobs at once.
//!
//! A [`BatchJob`] is one workload — an [`OracleSpec`] plus a shot count, a
//! sampling seed and a simulation [`BackendChoice`] (dense, sparse,
//! stabilizer, or automatic). [`BatchEngine::run_batch`] executes a whole
//! slice of jobs:
//!
//! 1. jobs under [`BackendChoice::Auto`] are **resolved** first
//!    ([`BatchEngine::resolve_backends`]): the spec is compiled through the
//!    cache, censused ([`qdaflow_quantum::GateCensus`]) and routed by
//!    [`resolve_backend`] — so every key and log entry downstream names a
//!    concrete backend, never `auto`;
//! 2. every job is keyed by the canonical hash of its spec *and* resolved
//!    backend ([`BatchJob::cache_key`]) and **deduplicated** through the
//!    engine's [`OracleCache`], so `N` jobs over `k` distinct oracles cost
//!    `k` compilations (or fewer, when the cache is warm from a previous
//!    batch);
//! 3. the distinct programs are compiled and simulated **in parallel** over
//!    `std::thread::scope` workers (one simulated state — dense, sparse, or
//!    a stabilizer support sampler per the job's backend — per distinct
//!    program, shared by every job that uses it);
//! 4. each job samples its shots with the **shot-sharded** sampler
//!    ([`Statevector::sample_counts_sharded`] /
//!    [`SparseStatevector::sample_counts_sharded`] /
//!    [`StabilizerSampler::sample_counts_sharded`]) under its own seed.
//!
//! Results come back in job order and are fully reproducible: a job's
//! histogram depends only on `(spec, backend, shots, seed,
//! shot_shard_size)` — never on the thread count, the batch composition, or
//! the cache state. Auto resolution is reproducible too: it is a pure
//! function of the compiled circuit.

use crate::cache::{CompiledProgram, OracleCache, OracleSpec};
use crate::engine::{note_dispatch, resolve_backend, BackendChoice};
use crate::EngineError;
use qdaflow_pipeline::spec::{CanonicalHasher, SpecKey};
use qdaflow_quantum::backend::ExecutionResult;
use qdaflow_quantum::fusion::ExecConfig;
use qdaflow_quantum::{GateCensus, QuantumError, Statevector};
use qdaflow_sparse::SparseStatevector;
use qdaflow_stabilizer::{StabilizerSampler, StabilizerTableau};
use qdaflow_telemetry as telemetry;
use std::collections::{HashMap, HashSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

/// Renders a caught panic payload into the text carried by
/// [`EngineError::JobPanicked`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// Runs `body` with panics converted into [`EngineError::JobPanicked`] —
/// the per-job fault boundary of the batch engine and the job service.
pub(crate) fn catch_job_panic<T>(
    body: impl FnOnce() -> Result<T, EngineError>,
) -> Result<T, EngineError> {
    panic::catch_unwind(AssertUnwindSafe(body)).unwrap_or_else(|payload| {
        Err(EngineError::JobPanicked {
            message: panic_message(payload),
        })
    })
}

/// One batch workload: compile `spec`, execute it on the chosen simulation
/// backend, and sample `shots` measurements under `seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchJob {
    /// The oracle to compile and execute.
    pub spec: OracleSpec,
    /// Number of measurement shots.
    pub shots: usize,
    /// Seed of the job's sharded sampling streams.
    pub seed: u64,
    /// Which exact simulation engine executes the compiled oracle.
    pub backend: BackendChoice,
}

impl BatchJob {
    /// Creates a job on the default (dense) simulation backend.
    pub fn new(spec: OracleSpec, shots: usize, seed: u64) -> Self {
        Self {
            spec,
            shots,
            seed,
            backend: BackendChoice::default(),
        }
    }

    /// Replaces the simulation backend of the job.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// The cache key of this job's compilation.
    ///
    /// Dense jobs use the spec's canonical key unchanged (so the batch path
    /// shares cache entries with [`OracleCache::get_or_compile`] and keys
    /// stay stable across releases); every other backend extends the digest
    /// with a backend tag, so the cache distinguishes which execution engine
    /// a program was compiled for. Compilation itself is
    /// backend-independent, so a mixed-backend workload over the same spec
    /// deliberately compiles (and caches) it once *per backend* — the cache
    /// records the execution-ready artifact per engine, trading one
    /// redundant compilation for unambiguous per-backend provenance.
    /// [`BackendChoice::Auto`] jobs are resolved to a concrete backend
    /// before keying on the batch path ([`BatchEngine::resolve_backends`]),
    /// so cache entries stay backend-exact; the defensive `backend:auto` tag
    /// only appears if an unresolved job is keyed directly.
    pub fn cache_key(&self) -> SpecKey {
        let base = self.spec.cache_key();
        let tag = match self.backend {
            BackendChoice::Dense => return base,
            BackendChoice::Sparse => "backend:sparse",
            BackendChoice::Stabilizer => "backend:stabilizer",
            BackendChoice::Auto => "backend:auto",
        };
        let mut hasher = CanonicalHasher::new();
        hasher.write_u64((base.0 >> 64) as u64);
        hasher.write_u64(base.0 as u64);
        hasher.write_str(tag);
        hasher.finish()
    }

    /// The canonical identity digest of the whole job: the compilation
    /// cache key extended with the shot count, the sampling seed and the
    /// backend name. Two jobs with equal digests produce identical results
    /// under the same `shot_shard_size`, which is what makes the digest
    /// safe as the checkpoint key of the
    /// [`Journal`](crate::store::Journal): a resumed service replays a
    /// journaled result only onto an identical job.
    pub fn digest(&self) -> SpecKey {
        let key = self.cache_key();
        let mut hasher = CanonicalHasher::new();
        hasher.write_str("job");
        hasher.write_u64((key.0 >> 64) as u64);
        hasher.write_u64(key.0 as u64);
        hasher.write_u64(self.shots as u64);
        hasher.write_u64(self.seed);
        hasher.write_str(self.backend.as_str());
        hasher.finish()
    }
}

/// The simulated output state of one distinct batch program, on whichever
/// engine its jobs selected.
#[derive(Debug)]
enum SimulatedState {
    Dense(Statevector),
    Sparse(SparseStatevector),
    /// The stabilizer path stores the enumerated support sampler rather
    /// than a tableau, so support-extraction errors surface at simulate
    /// time (in the fallible batch path) and per-job sampling stays
    /// infallible like the other backends.
    Stabilizer(StabilizerSampler),
}

impl SimulatedState {
    /// Samples a job's shots with the shot-sharded sampler and builds its
    /// [`ExecutionResult`]; all engines use the same `(seed, shard)` RNG
    /// scheme, so equal-seed jobs agree across backends.
    fn sample_job(
        &self,
        program: &CompiledProgram,
        shots: usize,
        seed: u64,
        config: &ExecConfig,
    ) -> ExecutionResult {
        let shards = shots.div_ceil(config.shot_shard_size.max(1)) as u64;
        let registry = telemetry::global_metrics();
        registry
            .counter(
                "qdaflow_sampling_shards_total",
                "Shot-sharded sampling shards executed.",
                &[],
            )
            .add(shards);
        registry
            .counter(
                "qdaflow_sampling_shots_total",
                "Shots drawn by the shot-sharded sampler.",
                &[],
            )
            .add(shots as u64);
        let _span = telemetry::span!("sampling", "sample {shots} shots ({shards} shards)");
        match self {
            Self::Dense(state) => {
                let histogram = state.sample_counts_sharded(seed, shots, config);
                ExecutionResult::from_histogram(program.circuit(), shots, &histogram)
            }
            Self::Sparse(state) => {
                let counts =
                    qdaflow_sparse::widen_counts(state.sample_counts_sharded(seed, shots, config));
                ExecutionResult::from_counts(program.circuit(), shots, counts)
            }
            Self::Stabilizer(sampler) => {
                let counts = sampler.sample_counts_sharded(seed, shots, config);
                ExecutionResult::from_counts(program.circuit(), shots, counts)
            }
        }
    }
}

/// The batch execution engine: an [`OracleCache`] plus an execution
/// configuration. The cache persists across [`BatchEngine::run_batch`]
/// calls, so a long-running service keeps amortizing compilations over its
/// whole lifetime.
#[derive(Debug, Default)]
pub struct BatchEngine {
    cache: OracleCache,
    config: ExecConfig,
}

impl BatchEngine {
    /// Creates an engine with an empty cache and the default execution
    /// configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine with an explicit execution configuration
    /// (`config.threads` bounds both the per-program simulation workers and
    /// the shot-sharded sampling workers; `config.shot_shard_size` is part
    /// of the sampling reproducibility contract).
    pub fn with_config(config: ExecConfig) -> Self {
        Self {
            cache: OracleCache::new(),
            config,
        }
    }

    /// Creates an engine over an existing cache (e.g. a disk-backed one
    /// built with [`OracleCache::with_disk`]).
    pub fn with_cache(cache: OracleCache, config: ExecConfig) -> Self {
        Self { cache, config }
    }

    /// The execution configuration in use.
    pub fn exec_config(&self) -> ExecConfig {
        self.config
    }

    /// Replaces the execution configuration. Does not invalidate the cache —
    /// compiled circuits are configuration-independent.
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// The engine's compiled-oracle cache (for statistics or pre-warming).
    pub fn cache(&self) -> &OracleCache {
        &self.cache
    }

    /// Executes a batch of jobs with the engine's own configuration; see
    /// [`BatchEngine::run_batch_with`].
    ///
    /// # Errors
    ///
    /// Returns the first compilation or simulation error (by distinct-spec
    /// order); on error no partial results are returned.
    pub fn run_batch(&self, jobs: &[BatchJob]) -> Result<Vec<ExecutionResult>, EngineError> {
        self.run_batch_with(jobs, &self.config)
    }

    /// Resolves every job's backend to a concrete choice: jobs already on a
    /// concrete backend pass through unchanged, [`BackendChoice::Auto`] jobs
    /// are compiled through the cache (under the raw spec key, shared with
    /// dense callers), censused, and routed by [`resolve_backend`]. The
    /// returned vector is in job order and never contains `Auto` — the shell
    /// logs it per job, and [`BatchEngine::run_batch_with`] keys the cache
    /// with it.
    ///
    /// # Errors
    ///
    /// Returns the first compilation error among the `Auto` jobs.
    pub fn resolve_backends(&self, jobs: &[BatchJob]) -> Result<Vec<BackendChoice>, EngineError> {
        jobs.iter()
            .map(|job| match job.backend {
                BackendChoice::Auto => {
                    let program = self.cache.get_or_compile(&job.spec)?;
                    Ok(resolve_backend(&GateCensus::of(program.circuit())))
                }
                concrete => Ok(concrete),
            })
            .collect()
    }

    /// Executes a batch of jobs under an explicit execution configuration:
    /// automatic-backend resolution, deduplicated compilation through the
    /// cache, parallel compilation + simulation of the distinct programs,
    /// and shot-sharded sampling per job. Results are returned in job order.
    ///
    /// # Errors
    ///
    /// Returns the first compilation or simulation error (by distinct-spec
    /// order); on error no partial results are returned.
    pub fn run_batch_with(
        &self,
        jobs: &[BatchJob],
        config: &ExecConfig,
    ) -> Result<Vec<ExecutionResult>, EngineError> {
        if let Some(index) = jobs.iter().position(|job| job.shots == 0) {
            return Err(EngineError::ZeroShots { index });
        }
        let _span = telemetry::span!("batch", "run_batch: {} jobs", jobs.len());
        // Explicitly requested backends are dispatch decisions too; Auto
        // jobs are counted inside `resolve_backend` when resolved below.
        for job in jobs.iter().filter(|job| job.backend != BackendChoice::Auto) {
            note_dispatch(job.backend);
        }
        // Resolve Auto jobs to concrete backends first, so cache keys and
        // simulated states are always backend-exact. The materialized copy
        // is only made when the batch actually contains an Auto job. The
        // program resolution just compiled under the raw spec key is aliased
        // into the backend-tagged slot, so resolution and execution share
        // one compilation per distinct spec.
        let materialized: Option<Vec<BatchJob>> =
            if jobs.iter().any(|job| job.backend == BackendChoice::Auto) {
                let resolved = self.resolve_backends(jobs)?;
                Some(
                    jobs.iter()
                        .zip(resolved)
                        .map(|(job, backend)| {
                            let was_auto = job.backend == BackendChoice::Auto;
                            let resolved_job = job.clone().with_backend(backend);
                            let tagged = resolved_job.cache_key();
                            if was_auto && tagged != job.spec.cache_key() {
                                if let Some(program) = self.cache.peek(job.spec.cache_key()) {
                                    self.cache.alias_keyed(tagged, &program);
                                }
                            }
                            resolved_job
                        })
                        .collect(),
                )
            } else {
                None
            };
        let jobs = materialized.as_deref().unwrap_or(jobs);
        // Deduplicate jobs by canonical (spec, backend) key, keeping
        // first-appearance order so error reporting and work distribution
        // are deterministic.
        let keys: Vec<SpecKey> = jobs.iter().map(BatchJob::cache_key).collect();
        let mut seen = HashSet::with_capacity(jobs.len());
        let mut distinct: Vec<(SpecKey, &OracleSpec, BackendChoice)> = Vec::new();
        for (job, &key) in jobs.iter().zip(&keys) {
            if seen.insert(key) {
                distinct.push((key, &job.spec, job.backend));
            }
        }
        let executed = self.compile_and_simulate(&distinct, config);
        // All-or-nothing contract: surface the first failure in
        // distinct-spec order (deterministic), no partial results.
        for (key, _, _) in &distinct {
            if let Err(error) = &executed[key] {
                return Err(error.clone());
            }
        }
        let mut results = Vec::with_capacity(jobs.len());
        for (job, key) in jobs.iter().zip(&keys) {
            let (program, state) = executed[key].as_ref().expect("checked above");
            results.push(state.sample_job(program, job.shots, job.seed, config));
        }
        Ok(results)
    }

    /// Executes a batch with **per-job fault isolation**: every job gets
    /// its own `Result`, in job order. A job whose compilation or
    /// simulation fails — including one that *panics* (converted to
    /// [`EngineError::JobPanicked`] at the worker boundary) — fails alone;
    /// its siblings complete normally. Duplicate jobs over a failed spec
    /// share the (cloned) error, exactly as they would have shared the
    /// compiled program. This is the execution path of the
    /// [`JobService`](crate::JobService); [`BatchEngine::run_batch`] keeps
    /// the historical all-or-nothing contract on top of the same machinery.
    pub fn try_run_batch(&self, jobs: &[BatchJob]) -> Vec<Result<ExecutionResult, EngineError>> {
        self.try_run_batch_with(jobs, &self.config)
    }

    /// [`BatchEngine::try_run_batch`] under an explicit execution
    /// configuration.
    pub fn try_run_batch_with(
        &self,
        jobs: &[BatchJob],
        config: &ExecConfig,
    ) -> Vec<Result<ExecutionResult, EngineError>> {
        let _span = telemetry::span!("batch", "try_run_batch: {} jobs", jobs.len());
        // Per-job backend resolution, each under its own panic boundary: a
        // spec whose *resolution* compile panics fails only its own job.
        let mut slots: Vec<Option<Result<ExecutionResult, EngineError>>> =
            jobs.iter().map(|_| None).collect();
        let mut resolved: Vec<Option<BatchJob>> = Vec::with_capacity(jobs.len());
        for (index, job) in jobs.iter().enumerate() {
            if job.shots == 0 {
                slots[index] = Some(Err(EngineError::ZeroShots { index }));
                resolved.push(None);
                continue;
            }
            let outcome = catch_job_panic(|| {
                Ok(match job.backend {
                    BackendChoice::Auto => {
                        let program = self.cache.get_or_compile(&job.spec)?;
                        let backend = resolve_backend(&GateCensus::of(program.circuit()));
                        let materialized = job.clone().with_backend(backend);
                        self.cache.alias_keyed(materialized.cache_key(), &program);
                        materialized
                    }
                    explicit => {
                        note_dispatch(explicit);
                        job.clone()
                    }
                })
            });
            match outcome {
                Ok(materialized) => resolved.push(Some(materialized)),
                Err(error) => {
                    slots[index] = Some(Err(error));
                    resolved.push(None);
                }
            }
        }
        let mut seen = HashSet::new();
        let mut distinct: Vec<(SpecKey, &OracleSpec, BackendChoice)> = Vec::new();
        for job in resolved.iter().flatten() {
            let key = job.cache_key();
            if seen.insert(key) {
                distinct.push((key, &job.spec, job.backend));
            }
        }
        let executed = self.compile_and_simulate(&distinct, config);
        for (index, job) in resolved.iter().enumerate() {
            let Some(job) = job else { continue };
            slots[index] = Some(match &executed[&job.cache_key()] {
                Ok((program, state)) => {
                    catch_job_panic(|| Ok(state.sample_job(program, job.shots, job.seed, config)))
                }
                Err(error) => Err(error.clone()),
            });
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every job received an outcome"))
            .collect()
    }

    /// Executes one job (the [`JobService`](crate::JobService) worker
    /// path): resolution, cached compilation, simulation and sampling, with
    /// panics converted to [`EngineError::JobPanicked`].
    ///
    /// # Errors
    ///
    /// Any compilation, simulation or validation failure of the job,
    /// including [`EngineError::ZeroShots`] and panics.
    pub fn run_job(
        &self,
        job: &BatchJob,
        config: &ExecConfig,
    ) -> Result<ExecutionResult, EngineError> {
        self.try_run_batch_with(std::slice::from_ref(job), config)
            .pop()
            .expect("one job in, one outcome out")
    }

    /// Compiles (through the cache) and simulates every distinct spec on its
    /// selected backend, in parallel over up to `config.threads` scoped
    /// workers. **Fault-isolated**: every spec gets its own `Result`, and a
    /// worker that panics mid-job (the `catch_unwind` boundary wraps each
    /// job individually) poisons only that job's slot with
    /// [`EngineError::JobPanicked`] — siblings on the same and other
    /// workers run to completion.
    #[allow(clippy::type_complexity)]
    fn compile_and_simulate(
        &self,
        distinct: &[(SpecKey, &OracleSpec, BackendChoice)],
        config: &ExecConfig,
    ) -> HashMap<SpecKey, Result<(Arc<CompiledProgram>, SimulatedState), EngineError>> {
        let workers = config.threads.max(1).min(distinct.len().max(1));
        // Avoid thread oversubscription: the per-simulation thread budget is
        // the config's, divided by the batch workers running concurrently.
        let simulate_config = config.with_threads((config.threads / workers).max(1));
        // Parallel compiles run on scoped worker threads: capture the batch
        // span here so each per-spec span stays parented under it.
        let trace_parent = telemetry::current_span();
        let run_one = |key: SpecKey,
                       spec: &OracleSpec,
                       backend: BackendChoice|
         -> Result<(Arc<CompiledProgram>, SimulatedState), EngineError> {
            catch_job_panic(|| {
                let _span = if telemetry::enabled() {
                    telemetry::span_with_parent(
                        "dispatch",
                        format!("compile+simulate on {backend}"),
                        trace_parent,
                    )
                } else {
                    telemetry::SpanGuard::disabled()
                };
                let program = self.cache.get_or_compile_keyed(key, spec)?;
                // run_batch_with resolves Auto before keying; this guard only
                // fires when compile_and_simulate is reached some other way.
                let backend = match backend {
                    BackendChoice::Auto => resolve_backend(&GateCensus::of(program.circuit())),
                    concrete => concrete,
                };
                let state = match backend {
                    BackendChoice::Dense => SimulatedState::Dense(Statevector::run(
                        program.circuit(),
                        &simulate_config,
                    )?),
                    BackendChoice::Sparse => {
                        SimulatedState::Sparse(SparseStatevector::from_circuit(program.circuit())?)
                    }
                    BackendChoice::Stabilizer => {
                        let tableau = StabilizerTableau::from_circuit(program.circuit())
                            .map_err(QuantumError::from)?;
                        SimulatedState::Stabilizer(tableau.sampler().map_err(QuantumError::from)?)
                    }
                    // resolve_backend only returns concrete choices; if this
                    // invariant ever breaks it is a typed error, not a
                    // process abort.
                    BackendChoice::Auto => return Err(EngineError::AutoUnresolved),
                };
                Ok((program, state))
            })
        };
        let mut outcomes: Vec<Option<Result<_, EngineError>>> = if workers <= 1 {
            distinct
                .iter()
                .map(|&(key, spec, backend)| Some(run_one(key, spec, backend)))
                .collect()
        } else {
            let mut slots: Vec<Option<Result<_, EngineError>>> =
                (0..distinct.len()).map(|_| None).collect();
            thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for worker in 0..workers {
                    let run_one = &run_one;
                    handles.push(scope.spawn(move || {
                        let mut local = Vec::new();
                        let mut index = worker;
                        while index < distinct.len() {
                            let (key, spec, backend) = distinct[index];
                            local.push((index, run_one(key, spec, backend)));
                            index += workers;
                        }
                        local
                    }));
                }
                for handle in handles {
                    // Individual jobs are panic-isolated inside `run_one`,
                    // so a worker can only fail to join on a double panic
                    // (e.g. a panicking Drop of a panic payload). Even
                    // then: the worker's jobs become typed per-job errors —
                    // never a crash of the whole batch.
                    if let Ok(local) = handle.join() {
                        for (index, outcome) in local {
                            slots[index] = Some(outcome);
                        }
                    }
                }
            });
            slots
        };
        distinct
            .iter()
            .zip(outcomes.iter_mut())
            .map(|(&(key, _, _), outcome)| {
                let outcome = outcome.take().unwrap_or_else(|| {
                    Err(EngineError::JobPanicked {
                        message: "batch worker terminated before reporting its jobs".to_owned(),
                    })
                });
                (key, outcome)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SynthesisChoice;
    use qdaflow_boolfn::{Permutation, TruthTable};

    /// The Fig. 4 hidden-shift program at `n` qubits as pure-Clifford QASM:
    /// the bent function f(x) = Σ x_{2i}·x_{2i+1} is a layer of CZ pairs
    /// (and is self-dual, so the same layer serves as U_f and U_f̃), the
    /// shifted oracle is X_s·U_f·X_s, and the ideal output is exactly |s⟩.
    fn clifford_hidden_shift_qasm(n: usize, shift: usize) -> String {
        use std::fmt::Write as _;
        let mut source = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
        writeln!(source, "qreg q[{n}];").unwrap();
        let h_layer = |source: &mut String| {
            for q in 0..n {
                writeln!(source, "h q[{q}];").unwrap();
            }
        };
        let shift_layer = |source: &mut String| {
            for q in 0..n.min(usize::BITS as usize) {
                if (shift >> q) & 1 == 1 {
                    writeln!(source, "x q[{q}];").unwrap();
                }
            }
        };
        let oracle = |source: &mut String| {
            for i in 0..n / 2 {
                writeln!(source, "cz q[{}],q[{}];", 2 * i, 2 * i + 1).unwrap();
            }
        };
        h_layer(&mut source);
        shift_layer(&mut source);
        oracle(&mut source);
        shift_layer(&mut source);
        h_layer(&mut source);
        oracle(&mut source);
        h_layer(&mut source);
        source
    }

    fn perm_job(images: Vec<usize>, shots: usize, seed: u64) -> BatchJob {
        BatchJob::new(
            OracleSpec::permutation(
                Permutation::new(images).unwrap(),
                SynthesisChoice::default(),
            ),
            shots,
            seed,
        )
    }

    #[test]
    fn duplicate_jobs_compile_once() {
        let engine = BatchEngine::new();
        let jobs = vec![
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 64, 1),
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 64, 2),
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 128, 3),
            perm_job(vec![1, 0, 3, 2], 64, 4),
        ];
        let results = engine.run_batch(&jobs).unwrap();
        assert_eq!(results.len(), 4);
        let stats = engine.cache().stats();
        assert_eq!(stats.misses, 2, "two distinct oracles in the batch");
        assert_eq!(stats.entries, 2);
        // A second batch over the same oracles is all cache hits.
        engine.run_batch(&jobs).unwrap();
        assert_eq!(engine.cache().stats().misses, 2);
        assert!(engine.cache().stats().hits >= 2);
    }

    #[test]
    fn results_arrive_in_job_order_and_with_the_right_shots() {
        let engine = BatchEngine::new();
        let jobs = vec![
            perm_job(vec![1, 0, 3, 2], 10, 1),
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 20, 1),
            perm_job(vec![1, 0, 3, 2], 30, 1),
        ];
        let results = engine.run_batch(&jobs).unwrap();
        assert_eq!(
            results.iter().map(|r| r.shots).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert_eq!(results[0].num_qubits, results[2].num_qubits);
        // All probability mass of a permutation oracle on |0…0⟩ sits on π(0).
        assert_eq!(results[0].most_likely(), Some((1, 1.0)));
    }

    #[test]
    fn batch_results_are_thread_count_invariant() {
        let jobs = vec![
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 2000, 11),
            BatchJob::new(
                OracleSpec::phase_function(
                    TruthTable::from_bits(3, (0..8).map(|x| x % 3 == 0)).unwrap(),
                ),
                1500,
                13,
            ),
        ];
        let config = ExecConfig::sequential().with_shot_shard_size(128);
        let sequential = BatchEngine::with_config(config).run_batch(&jobs).unwrap();
        for threads in [2usize, 4, 8] {
            let threaded = BatchEngine::with_config(config.with_threads(threads))
                .run_batch(&jobs)
                .unwrap();
            assert_eq!(sequential, threaded, "threads={threads}");
        }
    }

    #[test]
    fn seeds_isolate_jobs_over_the_same_oracle() {
        let engine = BatchEngine::new();
        // A phase oracle preceded by nothing is deterministic, so use a
        // function with spread mass: sample the uniform state by compiling a
        // phase oracle and sampling — histograms over a deterministic state
        // are equal regardless of seed; instead check that equal seeds give
        // equal results and that the job seed (not position) keys sampling.
        let jobs = vec![
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 500, 42),
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 500, 42),
        ];
        let results = engine.run_batch(&jobs).unwrap();
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine = BatchEngine::new();
        assert!(engine.run_batch(&[]).unwrap().is_empty());
        assert_eq!(engine.cache().stats().entries, 0);
    }

    #[test]
    fn cache_keys_distinguish_backend_choice() {
        let dense = perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 64, 1);
        let sparse = dense.clone().with_backend(BackendChoice::Sparse);
        assert_ne!(dense.cache_key(), sparse.cache_key());
        // The dense job key stays the raw spec key, so the batch path keeps
        // sharing cache entries with direct `get_or_compile` callers.
        assert_eq!(dense.cache_key(), dense.spec.cache_key());
        // A mixed batch compiles (and caches) the oracle once per backend.
        let engine = BatchEngine::new();
        engine.run_batch(&[dense, sparse]).unwrap();
        let stats = engine.cache().stats();
        assert_eq!((stats.misses, stats.entries), (2, 2));
    }

    #[test]
    fn sparse_jobs_match_dense_jobs_shot_for_shot() {
        // Unfused sequential execution makes the two engines' amplitudes
        // (and therefore their sampling prefix sums) bit-identical, so
        // equal-seed jobs must produce the *same* histogram.
        let config = ExecConfig::baseline().with_shot_shard_size(128);
        let engine = BatchEngine::with_config(config);
        let jobs: Vec<BatchJob> = [
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 2000, 11),
            BatchJob::new(
                OracleSpec::phase_function(
                    TruthTable::from_bits(3, (0..8).map(|x| x % 3 == 0)).unwrap(),
                ),
                1500,
                13,
            ),
        ]
        .into_iter()
        .flat_map(|job| [job.clone(), job.with_backend(BackendChoice::Sparse)])
        .collect();
        let results = engine.run_batch(&jobs).unwrap();
        assert_eq!(results[0], results[1], "permutation oracle");
        assert_eq!(results[2], results[3], "phase oracle");
    }

    #[test]
    fn stabilizer_jobs_match_dense_jobs_shot_for_shot() {
        // A permutation oracle synthesized into Clifford+T is not Clifford,
        // but a pure phase-function oracle over Mcz(≤2)/Z gates can be; use
        // a parity-ish function whose compiled circuit is all-Clifford. The
        // linear function x0^x1 compiles to Z gates only.
        let config = ExecConfig::baseline().with_shot_shard_size(128);
        let engine = BatchEngine::with_config(config);
        let job = BatchJob::new(
            OracleSpec::phase_function(
                TruthTable::from_bits(2, [false, true, true, false]).unwrap(),
            ),
            2000,
            11,
        );
        let jobs = vec![job.clone(), job.with_backend(BackendChoice::Stabilizer)];
        let results = engine.run_batch(&jobs).unwrap();
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn stabilizer_jobs_run_clifford_circuits_beyond_every_amplitude_ceiling() {
        // A 100-qubit Clifford program through the batch engine: both
        // amplitude engines are representationally incapable of this.
        let source = clifford_hidden_shift_qasm(100, 0b1001011);
        let job =
            BatchJob::new(OracleSpec::qasm(source), 512, 5).with_backend(BackendChoice::Stabilizer);
        let engine = BatchEngine::new();
        let started = std::time::Instant::now();
        let results = engine.run_batch(&[job]).unwrap();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(1),
            "100q Clifford batch took {:?}",
            started.elapsed()
        );
        assert_eq!(results[0].most_likely(), Some((0b1001011, 1.0)));
    }

    #[test]
    fn auto_jobs_resolve_to_the_backend_the_census_predicts() {
        // The acceptance triple: an H-heavy+T circuit (dense), a
        // permutation oracle whose Toffolis map to T gates (sparse), and a
        // pure-Clifford circuit (stabilizer).
        let dense_spec = OracleSpec::qasm(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\nh q[1];\nh q[2];\nt q[0];\n",
        );
        let sparse_spec = OracleSpec::permutation(
            Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap(),
            SynthesisChoice::default(),
        );
        let clifford_spec = OracleSpec::qasm(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncz q[1],q[2];\n",
        );
        let jobs = vec![
            BatchJob::new(dense_spec, 100, 1).with_backend(BackendChoice::Auto),
            BatchJob::new(sparse_spec, 100, 2).with_backend(BackendChoice::Auto),
            BatchJob::new(clifford_spec, 100, 3).with_backend(BackendChoice::Auto),
        ];
        let engine = BatchEngine::new();
        let resolved = engine.resolve_backends(&jobs).unwrap();
        assert_eq!(
            resolved,
            vec![
                BackendChoice::Dense,
                BackendChoice::Sparse,
                BackendChoice::Stabilizer,
            ]
        );
        // The run goes through the same resolution, and the cache ends up
        // keyed by the *resolved* backend: the dense job under the raw spec
        // key, the others under their backend-tagged keys — no auto tag
        // anywhere.
        let results = engine.run_batch(&jobs).unwrap();
        assert_eq!(results.len(), 3);
        for (job, backend) in jobs.iter().zip(&resolved) {
            let resolved_key = job.clone().with_backend(*backend).cache_key();
            assert!(
                engine.cache().peek(resolved_key).is_some(),
                "missing cache entry for resolved backend {backend}"
            );
        }
        assert!(engine.cache().peek(jobs[2].cache_key()).is_none());
        // Resolution compiled each spec once under its raw key; execution
        // reuses those programs through tagged-slot aliases instead of
        // compiling again.
        assert_eq!(engine.cache().stats().misses, 3);
    }

    #[test]
    fn auto_batches_match_their_resolved_concrete_batches() {
        let job = BatchJob::new(
            OracleSpec::qasm(
                "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
            ),
            1500,
            21,
        );
        let engine = BatchEngine::new();
        let auto = engine
            .run_batch(&[job.clone().with_backend(BackendChoice::Auto)])
            .unwrap();
        let concrete = engine
            .run_batch(&[job.with_backend(BackendChoice::Stabilizer)])
            .unwrap();
        assert_eq!(auto, concrete);
    }

    #[test]
    fn sparse_batches_are_thread_count_invariant() {
        let jobs = vec![
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 2000, 11).with_backend(BackendChoice::Sparse),
            perm_job(vec![1, 0, 3, 2], 1000, 3).with_backend(BackendChoice::Sparse),
        ];
        let config = ExecConfig::sequential().with_shot_shard_size(128);
        let sequential = BatchEngine::with_config(config).run_batch(&jobs).unwrap();
        for threads in [2usize, 4, 8] {
            let threaded = BatchEngine::with_config(config.with_threads(threads))
                .run_batch(&jobs)
                .unwrap();
            assert_eq!(sequential, threaded, "threads={threads}");
        }
    }

    #[test]
    fn panicking_job_fails_alone_while_siblings_complete() {
        // Regression for the old worker join: a panic inside one job's
        // compilation used to abort the whole batch (and, through the
        // worker `.join().expect(...)`, the calling thread). Now the panic
        // is caught at the job boundary: the poisoned job carries a typed
        // `JobPanicked` and every sibling still returns its real result.
        let engine = BatchEngine::new();
        let jobs = vec![
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 200, 1),
            BatchJob::new(OracleSpec::fault_injection(true, 3), 100, 2),
            perm_job(vec![1, 0, 3, 2], 300, 3),
        ];
        let outcomes = engine.try_run_batch(&jobs);
        assert_eq!(outcomes.len(), 3);
        assert!(
            matches!(&outcomes[1], Err(EngineError::JobPanicked { message })
            if message.contains("injected compilation panic (tag 3)"))
        );
        let expected = engine
            .run_batch(&[jobs[0].clone(), jobs[2].clone()])
            .unwrap();
        assert_eq!(outcomes[0].as_ref().unwrap(), &expected[0]);
        assert_eq!(outcomes[2].as_ref().unwrap(), &expected[1]);
        // The all-or-nothing API reports the same typed error — never a
        // propagated panic.
        assert!(matches!(
            engine.run_batch(&jobs),
            Err(EngineError::JobPanicked { .. })
        ));
    }

    #[test]
    fn deterministic_job_failures_are_typed_and_isolated() {
        let engine = BatchEngine::new();
        let jobs = vec![
            BatchJob::new(OracleSpec::fault_injection(false, 9), 50, 1),
            perm_job(vec![1, 0, 3, 2], 50, 2),
        ];
        let outcomes = engine.try_run_batch(&jobs);
        assert!(matches!(&outcomes[0], Err(EngineError::Flow { message })
            if message.contains("tag 9")));
        assert!(outcomes[1].is_ok());
    }

    #[test]
    fn resolve_backends_never_yields_auto() {
        // Pins the invariant the old `unreachable!` assumed: automatic
        // resolution always lands on a concrete backend, for every census
        // shape we can produce (H-heavy, T-heavy, pure Clifford, empty).
        let specs = vec![
            OracleSpec::qasm(
                "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\nh q[1];\nt q[0];\n",
            ),
            OracleSpec::permutation(
                Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap(),
                SynthesisChoice::default(),
            ),
            OracleSpec::qasm(
                "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
            ),
            OracleSpec::qasm("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n"),
        ];
        let jobs: Vec<BatchJob> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| BatchJob::new(spec, 10, i as u64).with_backend(BackendChoice::Auto))
            .collect();
        let engine = BatchEngine::new();
        let resolved = engine.resolve_backends(&jobs).unwrap();
        assert_eq!(resolved.len(), jobs.len());
        for backend in resolved {
            assert_ne!(backend, BackendChoice::Auto);
        }
    }

    #[test]
    fn zero_shot_jobs_are_rejected_with_their_index() {
        let engine = BatchEngine::new();
        let jobs = vec![
            perm_job(vec![1, 0, 3, 2], 10, 1),
            perm_job(vec![1, 0, 3, 2], 0, 2),
        ];
        assert!(matches!(
            engine.run_batch(&jobs),
            Err(EngineError::ZeroShots { index: 1 })
        ));
        // Validation happens before any compilation.
        assert_eq!(engine.cache().stats().entries, 0);
        // The isolating API rejects per job, leaving valid siblings alone.
        let outcomes = engine.try_run_batch(&jobs);
        assert!(outcomes[0].is_ok());
        assert!(matches!(
            outcomes[1],
            Err(EngineError::ZeroShots { index: 1 })
        ));
    }

    #[test]
    fn job_digests_separate_execution_parameters_from_cache_keys() {
        let base = perm_job(vec![1, 0, 3, 2], 100, 1);
        let other_seed = perm_job(vec![1, 0, 3, 2], 100, 2);
        let other_shots = perm_job(vec![1, 0, 3, 2], 200, 1);
        // Same compilation, so one cache key…
        assert_eq!(base.cache_key(), other_seed.cache_key());
        // …but distinct checkpoints: a journal must not answer a 200-shot
        // job with a 100-shot result.
        assert_ne!(base.digest(), other_seed.digest());
        assert_ne!(base.digest(), other_shots.digest());
        assert_eq!(base.digest(), base.clone().digest());
    }
}
