//! Criterion benchmark of the stabilizer tableau engine against the dense
//! simulator on Clifford hidden-shift workloads.
//!
//! Two claims back the stabilizer subsystem:
//!
//! 1. **The qubit ceiling is lifted for Clifford circuits** — a 100-qubit
//!    Clifford hidden-shift circuit (H layers, the shift's X gates, CZ
//!    layers of the self-dual pairing bent function) runs end to end
//!    through [`StabilizerBackend`] in milliseconds and recovers the
//!    hidden shift with certainty, while the dense engine *cannot even
//!    allocate* the `2^100`-amplitude register (`MAX_SIMULATOR_QUBITS`
//!    is 26); the bench asserts the typed `TooManyQubits` rejection.
//! 2. **Tableau evolution replaces amplitude sweeps** — on a 20-qubit
//!    register both engines can run the same circuit; the tableau updates
//!    cost `O(n/64)` words per gate instead of the `2^20`-amplitude sweep,
//!    and sampling enumerates the affine support instead of prefix-summing
//!    a million amplitudes.

use criterion::{criterion_group, criterion_main, Criterion};
use qdaflow::prelude::*;
use qdaflow::quantum::{QuantumError, Statevector, MAX_SIMULATOR_QUBITS};
use std::time::Duration;

/// Register width of the beyond-dense-ceiling demonstration.
const LARGE_QUBITS: usize = 100;
/// Register width of the shared-domain comparison.
const SHARED_QUBITS: usize = 20;
/// The hidden shift recovered by the circuit.
const HIDDEN_SHIFT: usize = 0b1001011;

/// The Clifford hidden-shift circuit for the self-dual pairing bent
/// function `f(x) = ⊕ x_{2i} x_{2i+1}` (CZ on adjacent pairs): H layer,
/// shifted oracle (X-conjugated CZ layer), H layer, dual oracle, H layer.
/// Its output is exactly the basis state `|s⟩`.
fn clifford_hidden_shift(num_qubits: usize, shift: usize) -> QuantumCircuit {
    let mut circuit = QuantumCircuit::new(num_qubits);
    let h_layer = |circuit: &mut QuantumCircuit| {
        for qubit in 0..num_qubits {
            circuit.push(QuantumGate::H(qubit)).expect("in range");
        }
    };
    let shift_layer = |circuit: &mut QuantumCircuit| {
        for qubit in 0..num_qubits.min(usize::BITS as usize) {
            if (shift >> qubit) & 1 == 1 {
                circuit.push(QuantumGate::X(qubit)).expect("in range");
            }
        }
    };
    let oracle = |circuit: &mut QuantumCircuit| {
        for pair in 0..num_qubits / 2 {
            circuit
                .push(QuantumGate::Cz {
                    a: 2 * pair,
                    b: 2 * pair + 1,
                })
                .expect("in range");
        }
    };
    h_layer(&mut circuit);
    shift_layer(&mut circuit);
    oracle(&mut circuit);
    shift_layer(&mut circuit);
    h_layer(&mut circuit);
    oracle(&mut circuit);
    h_layer(&mut circuit);
    circuit
}

fn bench_beyond_dense_ceiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("stabilizer_vs_dense");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let circuit = clifford_hidden_shift(LARGE_QUBITS, HIDDEN_SHIFT);

    // The dense engine cannot even allocate the 2^100-amplitude register —
    // the typed rejection is the baseline this subsystem removes.
    group.bench_function("dense_cannot_allocate/100q", |b| {
        const _: () = assert!(LARGE_QUBITS > MAX_SIMULATOR_QUBITS);
        b.iter(|| {
            let denied = Statevector::new(LARGE_QUBITS);
            assert!(matches!(
                denied,
                Err(QuantumError::TooManyQubits { requested: 100, .. })
            ));
            denied
        })
    });

    // End-to-end through the stabilizer Backend impl: tableau evolution,
    // affine-support extraction and 1024 sampled shots. Every shot is the
    // hidden shift.
    group.bench_function("stabilizer_hidden_shift_end_to_end/100q_1024_shots", |b| {
        b.iter(|| {
            let mut backend = StabilizerBackend::seeded(7);
            let result = qdaflow::quantum::Backend::run(&mut backend, &circuit, 1024).unwrap();
            assert_eq!(result.most_likely(), Some((HIDDEN_SHIFT, 1.0)));
            result
        })
    });
    group.finish();
}

fn bench_shared_domain(c: &mut Criterion) {
    let mut group = c.benchmark_group("stabilizer_vs_dense");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let circuit = clifford_hidden_shift(SHARED_QUBITS, HIDDEN_SHIFT);

    group.bench_function("dense_hidden_shift/20q", |b| {
        let backend = StatevectorBackend::seeded(7);
        b.iter(|| backend.statevector(&circuit).unwrap())
    });

    group.bench_function("stabilizer_hidden_shift/20q", |b| {
        let backend = StabilizerBackend::seeded(7);
        b.iter(|| {
            let tableau = backend.tableau(&circuit).unwrap();
            assert_eq!(tableau.num_qubits(), SHARED_QUBITS);
            tableau
        })
    });

    let dense_state = StatevectorBackend::seeded(7).statevector(&circuit).unwrap();
    let sampler = StabilizerBackend::seeded(7).sampler(&circuit).unwrap();
    let config = ExecConfig::auto();
    group.bench_function("dense_sampling/20q_100000_shots", |b| {
        b.iter(|| dense_state.sample_counts_sharded(7, 100_000, &config))
    });
    group.bench_function("stabilizer_sampling/20q_100000_shots", |b| {
        b.iter(|| {
            let counts = sampler.sample_counts_sharded(7, 100_000, &config);
            assert_eq!(counts.values().sum::<usize>(), 100_000);
            counts
        })
    });
    group.finish();
}

criterion_group!(benches, bench_beyond_dense_ceiling, bench_shared_domain);
criterion_main!(benches);
