//! The slow, obviously-correct reference simulator used as a test oracle.
//!
//! [`DenseReference`] applies every gate by naive out-of-place matrix
//! application: for each basis state it accumulates the gate's column action
//! into a freshly allocated output vector, with **no** diagonal fast path,
//! no in-place pair tricks, no fusion and no threading. Its implementation
//! shares nothing with the optimized [`kernel`](crate::kernel)/
//! [`fusion`](crate::fusion) execution layer, which is exactly what makes it
//! a useful differential-testing oracle: the property suites in
//! `tests/differential.rs` compare the fused, parallel simulator against it
//! amplitude-for-amplitude on random circuits.
//!
//! The same pattern — an optimized production simulator paired with a
//! trivially-auditable reference implementation — is used by the large
//! industrial simulators (e.g. Microsoft's QDK sparse/full-state pair).

use crate::backend::{Backend, ExecutionResult};
use crate::complex::Complex;
use crate::{QuantumCircuit, QuantumError, QuantumGate, MAX_SIMULATOR_QUBITS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A naive full-statevector simulator: gate-by-gate out-of-place 2×2 /
/// permutation matrix application with no fast paths.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseReference {
    num_qubits: usize,
    amplitudes: Vec<Complex>,
}

impl DenseReference {
    /// Creates the all-zeros state `|0...0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::TooManyQubits`] if `num_qubits` exceeds
    /// [`MAX_SIMULATOR_QUBITS`].
    pub fn new(num_qubits: usize) -> Result<Self, QuantumError> {
        if num_qubits > MAX_SIMULATOR_QUBITS {
            return Err(QuantumError::TooManyQubits {
                requested: num_qubits,
                maximum: MAX_SIMULATOR_QUBITS,
            });
        }
        let mut amplitudes = vec![Complex::ZERO; 1 << num_qubits];
        amplitudes[0] = Complex::ONE;
        Ok(Self {
            num_qubits,
            amplitudes,
        })
    }

    /// Runs a full circuit on the all-zeros state.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::TooManyQubits`] for oversized circuits.
    pub fn from_circuit(circuit: &QuantumCircuit) -> Result<Self, QuantumError> {
        let mut state = Self::new(circuit.num_qubits())?;
        state.apply_circuit(circuit);
        Ok(state)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// All amplitudes in basis order.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// The amplitude of basis state `basis`.
    ///
    /// # Panics
    ///
    /// Panics if `basis` is out of range.
    pub fn amplitude(&self, basis: usize) -> Complex {
        self.amplitudes[basis]
    }

    /// Sum of all probabilities.
    pub fn norm(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// The probability of measuring each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Applies every gate of a circuit in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit(&mut self, circuit: &QuantumCircuit) {
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit on {} qubits cannot run on a {}-qubit state",
            circuit.num_qubits(),
            self.num_qubits
        );
        for gate in circuit {
            self.apply_gate(gate);
        }
    }

    /// Applies one gate by naive column accumulation: every input basis
    /// state scatters its amplitude into the output vector according to the
    /// gate's unitary, exactly as written in a textbook.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit outside the register.
    pub fn apply_gate(&mut self, gate: &QuantumGate) {
        for qubit in gate.qubits() {
            assert!(
                qubit < self.num_qubits,
                "qubit {qubit} out of range for a {}-qubit register",
                self.num_qubits
            );
        }
        let mut next = vec![Complex::ZERO; self.amplitudes.len()];
        for (index, &amplitude) in self.amplitudes.iter().enumerate() {
            match gate {
                QuantumGate::Cx { control, target } => {
                    let out = if index >> control & 1 == 1 {
                        index ^ (1 << target)
                    } else {
                        index
                    };
                    next[out] += amplitude;
                }
                QuantumGate::Ccx {
                    control_a,
                    control_b,
                    target,
                } => {
                    let both = index >> control_a & 1 == 1 && index >> control_b & 1 == 1;
                    let out = if both { index ^ (1 << target) } else { index };
                    next[out] += amplitude;
                }
                QuantumGate::Mcx { controls, target } => {
                    let all = controls.iter().all(|&c| index >> c & 1 == 1);
                    let out = if all { index ^ (1 << target) } else { index };
                    next[out] += amplitude;
                }
                QuantumGate::Swap { a, b } => {
                    let bit_a = index >> a & 1;
                    let bit_b = index >> b & 1;
                    let out = (index & !(1 << a) & !(1 << b)) | (bit_a << b) | (bit_b << a);
                    next[out] += amplitude;
                }
                QuantumGate::Cz { a, b } => {
                    let sign = if index >> a & 1 == 1 && index >> b & 1 == 1 {
                        Complex::real(-1.0)
                    } else {
                        Complex::ONE
                    };
                    next[index] += sign * amplitude;
                }
                QuantumGate::Mcz { qubits } => {
                    let sign = if qubits.iter().all(|&q| index >> q & 1 == 1) {
                        Complex::real(-1.0)
                    } else {
                        Complex::ONE
                    };
                    next[index] += sign * amplitude;
                }
                single => {
                    let qubit = single.qubits()[0];
                    let matrix = single
                        .single_qubit_matrix()
                        .expect("all remaining gates are single-qubit");
                    let bit = 1usize << qubit;
                    let value = index >> qubit & 1;
                    next[index & !bit] += matrix[0][value] * amplitude;
                    next[index | bit] += matrix[1][value] * amplitude;
                }
            }
        }
        self.amplitudes = next;
    }

    /// Samples a measurement of all qubits, mirroring
    /// [`Statevector::sample`](crate::statevector::Statevector::sample) so
    /// seeded backends draw identical outcomes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let draw: f64 = rng.gen();
        let mut cumulative = 0.0f64;
        for (basis, amplitude) in self.amplitudes.iter().enumerate() {
            cumulative += amplitude.norm_sqr();
            if draw < cumulative {
                return basis;
            }
        }
        self.amplitudes.len() - 1
    }

    /// Samples `shots` measurements into a dense histogram.
    pub fn sample_counts<R: Rng + ?Sized>(&self, rng: &mut R, shots: usize) -> Vec<usize> {
        let mut histogram = vec![0usize; self.amplitudes.len()];
        for _ in 0..shots {
            histogram[self.sample(rng)] += 1;
        }
        histogram
    }
}

/// The reference simulator exposed as an execution [`Backend`], so it can be
/// swapped into any flow (engine, hidden-shift runner, shell) for
/// differential testing against the optimized backends.
#[derive(Debug, Clone)]
pub struct DenseReferenceBackend {
    rng: StdRng,
}

impl DenseReferenceBackend {
    /// Creates a backend with a fixed random seed (sampling is the only
    /// source of randomness).
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Default for DenseReferenceBackend {
    fn default() -> Self {
        Self::seeded(0xC0FFEE)
    }
}

impl Backend for DenseReferenceBackend {
    fn name(&self) -> &str {
        "dense-reference"
    }

    fn run(
        &mut self,
        circuit: &QuantumCircuit,
        shots: usize,
    ) -> Result<ExecutionResult, QuantumError> {
        let state = DenseReference::from_circuit(circuit)?;
        let histogram = state.sample_counts(&mut self.rng, shots);
        Ok(ExecutionResult::from_histogram(circuit, shots, &histogram))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_4;

    fn bell() -> QuantumCircuit {
        let mut circuit = QuantumCircuit::new(2);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 1,
            })
            .unwrap();
        circuit
    }

    #[test]
    fn bell_state_matches_the_paper() {
        let state = DenseReference::from_circuit(&bell()).unwrap();
        assert!((state.probabilities()[0b00] - 0.5).abs() < 1e-12);
        assert!((state.probabilities()[0b11] - 0.5).abs() < 1e-12);
        assert!((state.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn every_gate_class_matches_the_kernel() {
        let mut circuit = QuantumCircuit::new(4);
        for gate in [
            QuantumGate::H(0),
            QuantumGate::X(1),
            QuantumGate::Y(2),
            QuantumGate::Z(3),
            QuantumGate::S(0),
            QuantumGate::Sdg(1),
            QuantumGate::T(2),
            QuantumGate::Tdg(3),
            QuantumGate::Rz {
                qubit: 0,
                angle: FRAC_PI_4 * 3.0,
            },
            QuantumGate::Cx {
                control: 0,
                target: 1,
            },
            QuantumGate::Cz { a: 1, b: 2 },
            QuantumGate::Swap { a: 0, b: 3 },
            QuantumGate::Ccx {
                control_a: 0,
                control_b: 1,
                target: 2,
            },
            QuantumGate::Mcx {
                controls: vec![0, 1, 2],
                target: 3,
            },
            QuantumGate::Mcz {
                qubits: vec![1, 2, 3],
            },
        ] {
            circuit.push(gate).unwrap();
        }
        let reference = DenseReference::from_circuit(&circuit).unwrap();
        let mut kernel_state = vec![Complex::ZERO; 16];
        kernel_state[0] = Complex::ONE;
        crate::kernel::apply_circuit(&mut kernel_state, &circuit);
        for (index, (a, b)) in reference.amplitudes().iter().zip(&kernel_state).enumerate() {
            assert!(a.approx_eq(*b, 1e-12), "amplitude {index}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn too_many_qubits_is_rejected() {
        assert!(matches!(
            DenseReference::new(MAX_SIMULATOR_QUBITS + 1),
            Err(QuantumError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn backend_samples_match_the_statevector_backend() {
        use crate::backend::StatevectorBackend;
        let mut reference = DenseReferenceBackend::seeded(42);
        let mut optimized = StatevectorBackend::seeded(42);
        let a = reference.run(&bell(), 256).unwrap();
        let b = optimized.run(&bell(), 256).unwrap();
        assert_eq!(a.counts, b.counts);
        assert_eq!(reference.name(), "dense-reference");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gate_panics() {
        let mut state = DenseReference::new(1).unwrap();
        state.apply_gate(&QuantumGate::H(3));
    }
}
