//! Criterion benchmarks of the statevector and noisy simulators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdaflow::prelude::*;
use qdaflow::quantum::noise::NoisySimulator;
use qdaflow::quantum::statevector::Statevector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn ghz(num_qubits: usize) -> QuantumCircuit {
    let mut circuit = QuantumCircuit::new(num_qubits);
    circuit.push(QuantumGate::H(0)).unwrap();
    for target in 1..num_qubits {
        circuit
            .push(QuantumGate::Cx { control: 0, target })
            .unwrap();
    }
    for qubit in 0..num_qubits {
        circuit.push(QuantumGate::T(qubit)).unwrap();
        circuit.push(QuantumGate::H(qubit)).unwrap();
    }
    circuit
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(2));
    for n in [4usize, 8, 12, 16] {
        let circuit = ghz(n);
        group.bench_with_input(
            BenchmarkId::new("ghz_plus_layer", n),
            &circuit,
            |b, circ| b.iter(|| Statevector::from_circuit(circ).unwrap()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("noisy_shots");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let circuit = ghz(4);
    let simulator = NoisySimulator::new(NoiseModel::ibm_qx_2017());
    for shots in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("ghz4", shots), &shots, |b, &shots| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                simulator.run(&circuit, shots, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
