//! The ProjectQ program of Fig. 7: hidden shift for the Maiorana–McFarland
//! bent function `f(x, y) = x · π(y)` with `π = [0, 2, 3, 5, 7, 1, 4, 6]` and
//! planted shift `s = 5`, using RevKit-synthesized permutation oracles
//! (both transformation-based and decomposition-based synthesis, as in the
//! paper's two `PermutationOracle` calls).
//!
//! Run with `cargo run -p qdaflow --example hidden_shift_maiorana_mcfarland`.

use qdaflow::hidden_shift::{HiddenShiftInstance, OracleStyle};
use qdaflow::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6])?;
    let bent = MaioranaMcFarland::with_zero_h(pi)?;
    let instance = HiddenShiftInstance::from_maiorana_mcfarland(&bent, 5)?;

    for synthesis in [
        SynthesisChoice::TransformationBased,
        SynthesisChoice::DecompositionBased,
    ] {
        let circuit = instance.build_circuit(OracleStyle::MaioranaMcFarland { synthesis })?;
        let counts = ResourceCounts::of(&circuit);
        let outcome = instance.run_ideal(&circuit, 1024)?;
        println!("--- permutation oracles via {synthesis:?} ---");
        println!(
            "qubits {}, gates {}, T-count {}, T-depth {}, CNOTs {}",
            counts.num_qubits,
            counts.total_gates,
            counts.t_count,
            counts.t_depth,
            counts.cnot_count
        );
        println!(
            "Shift is {} (success probability {:.3})",
            outcome.recovered_shift.expect("shots were taken"),
            outcome.success_probability
        );
        assert_eq!(outcome.recovered_shift, Some(5));
    }
    Ok(())
}
