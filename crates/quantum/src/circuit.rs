//! Quantum circuits as ordered gate lists.

use crate::{QuantumError, QuantumGate};
use std::collections::BTreeMap;
use std::fmt;

/// A quantum circuit: an ordered list of [`QuantumGate`]s over a fixed number
/// of qubits. Gates are applied left to right.
///
/// # Example
///
/// ```
/// use qdaflow_quantum::{circuit::QuantumCircuit, gate::QuantumGate};
///
/// # fn main() -> Result<(), qdaflow_quantum::QuantumError> {
/// let mut circuit = QuantumCircuit::new(2);
/// circuit.push(QuantumGate::H(0))?;
/// circuit.push(QuantumGate::Cx { control: 0, target: 1 })?;
/// assert_eq!(circuit.num_gates(), 2);
/// assert_eq!(circuit.depth(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantumCircuit {
    num_qubits: usize,
    gates: Vec<QuantumGate>,
}

impl QuantumCircuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate list, first gate first.
    pub fn gates(&self) -> &[QuantumGate] {
        &self.gates
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate to the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::QubitOutOfRange`] if the gate references a
    /// qubit `>= num_qubits` and [`QuantumError::DuplicateQubit`] if it
    /// references the same qubit twice.
    pub fn push(&mut self, gate: QuantumGate) -> Result<(), QuantumError> {
        let qubits = gate.qubits();
        for &qubit in &qubits {
            if qubit >= self.num_qubits {
                return Err(QuantumError::QubitOutOfRange {
                    qubit,
                    num_qubits: self.num_qubits,
                });
            }
        }
        let mut sorted = qubits;
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            if pair[0] == pair[1] {
                return Err(QuantumError::DuplicateQubit { qubit: pair[0] });
            }
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends every gate of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::QubitCountMismatch`] if the circuits differ in
    /// qubit count.
    pub fn append(&mut self, other: &Self) -> Result<(), QuantumError> {
        if self.num_qubits != other.num_qubits {
            return Err(QuantumError::QubitCountMismatch {
                left: self.num_qubits,
                right: other.num_qubits,
            });
        }
        self.gates.extend(other.gates.iter().cloned());
        Ok(())
    }

    /// Returns the adjoint circuit (each gate inverted, order reversed).
    pub fn dagger(&self) -> Self {
        Self {
            num_qubits: self.num_qubits,
            gates: self.gates.iter().rev().map(QuantumGate::dagger).collect(),
        }
    }

    /// Returns a copy of the circuit extended to `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is smaller than the current count.
    pub fn extended_to(&self, num_qubits: usize) -> Self {
        assert!(
            num_qubits >= self.num_qubits,
            "cannot shrink a circuit from {} to {num_qubits} qubits",
            self.num_qubits
        );
        Self {
            num_qubits,
            gates: self.gates.clone(),
        }
    }

    /// Circuit depth: the length of the longest chain of gates sharing
    /// qubits, computed with the usual as-soon-as-possible scheduling.
    pub fn depth(&self) -> usize {
        let mut layer_of_qubit = vec![0usize; self.num_qubits];
        let mut depth = 0usize;
        for gate in &self.gates {
            let qubits = gate.qubits();
            let layer = qubits.iter().map(|&q| layer_of_qubit[q]).max().unwrap_or(0) + 1;
            for &q in &qubits {
                layer_of_qubit[q] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// T-depth: depth counting only T/T† gates (layers of parallel T gates),
    /// the figure of merit optimized by the T-par algorithm referenced in the
    /// paper.
    pub fn t_depth(&self) -> usize {
        let mut layer_of_qubit = vec![0usize; self.num_qubits];
        let mut t_depth = 0usize;
        for gate in &self.gates {
            let qubits = gate.qubits();
            let is_t = gate.t_count() > 0;
            let layer =
                qubits.iter().map(|&q| layer_of_qubit[q]).max().unwrap_or(0) + usize::from(is_t);
            for &q in &qubits {
                layer_of_qubit[q] = layer;
            }
            t_depth = t_depth.max(layer);
        }
        t_depth
    }

    /// Number of T and T† gates in the circuit (not counting undecomposed
    /// Toffoli gates).
    pub fn t_count(&self) -> usize {
        self.gates.iter().map(QuantumGate::t_count).sum()
    }

    /// Number of gates acting on two or more qubits.
    pub fn multi_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.arity() >= 2).count()
    }

    /// Histogram of gate mnemonics.
    pub fn gate_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for gate in &self.gates {
            *counts.entry(gate.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Returns `true` if every gate belongs to the Clifford+T library (i.e.
    /// no undecomposed Toffoli/MCX/MCZ with more than two qubits and no
    /// non-π/4 rotations).
    pub fn is_clifford_t(&self) -> bool {
        self.gates.iter().all(|gate| match gate {
            QuantumGate::Ccx { .. } | QuantumGate::Mcx { .. } | QuantumGate::Swap { .. } => false,
            QuantumGate::Mcz { qubits } => qubits.len() <= 2,
            QuantumGate::Rz { angle, .. } => {
                let eighth_turns = angle / std::f64::consts::FRAC_PI_4;
                (eighth_turns - eighth_turns.round()).abs() < 1e-9
            }
            _ => true,
        })
    }

    /// Iterates over the gates.
    pub fn iter(&self) -> std::slice::Iter<'_, QuantumGate> {
        self.gates.iter()
    }
}

impl<'a> IntoIterator for &'a QuantumCircuit {
    type Item = &'a QuantumGate;
    type IntoIter = std::slice::Iter<'a, QuantumGate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl fmt::Display for QuantumCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "// {} qubits, {} gates",
            self.num_qubits,
            self.num_gates()
        )?;
        for gate in &self.gates {
            writeln!(f, "{gate};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> QuantumCircuit {
        let mut circuit = QuantumCircuit::new(2);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 1,
            })
            .unwrap();
        circuit
    }

    #[test]
    fn push_validates_qubits() {
        let mut circuit = QuantumCircuit::new(2);
        assert!(matches!(
            circuit.push(QuantumGate::H(2)),
            Err(QuantumError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            circuit.push(QuantumGate::Cx {
                control: 1,
                target: 1
            }),
            Err(QuantumError::DuplicateQubit { .. })
        ));
        assert!(circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 1
            })
            .is_ok());
    }

    #[test]
    fn dagger_reverses_and_inverts() {
        let mut circuit = QuantumCircuit::new(1);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit.push(QuantumGate::T(0)).unwrap();
        let dagger = circuit.dagger();
        assert_eq!(dagger.gates()[0], QuantumGate::Tdg(0));
        assert_eq!(dagger.gates()[1], QuantumGate::H(0));
    }

    #[test]
    fn depth_of_parallel_and_serial_gates() {
        let mut circuit = QuantumCircuit::new(3);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit.push(QuantumGate::H(1)).unwrap();
        circuit.push(QuantumGate::H(2)).unwrap();
        assert_eq!(circuit.depth(), 1);
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 1,
            })
            .unwrap();
        assert_eq!(circuit.depth(), 2);
        circuit
            .push(QuantumGate::Cx {
                control: 1,
                target: 2,
            })
            .unwrap();
        assert_eq!(circuit.depth(), 3);
        assert_eq!(QuantumCircuit::new(4).depth(), 0);
    }

    #[test]
    fn t_count_and_t_depth() {
        let mut circuit = QuantumCircuit::new(2);
        circuit.push(QuantumGate::T(0)).unwrap();
        circuit.push(QuantumGate::T(1)).unwrap();
        circuit.push(QuantumGate::Tdg(0)).unwrap();
        assert_eq!(circuit.t_count(), 3);
        // The two parallel T gates form one layer, the T† a second one.
        assert_eq!(circuit.t_depth(), 2);
        assert_eq!(bell().t_count(), 0);
        assert_eq!(bell().t_depth(), 0);
    }

    #[test]
    fn gate_counts_histogram() {
        let mut circuit = bell();
        circuit.push(QuantumGate::H(1)).unwrap();
        let counts = circuit.gate_counts();
        assert_eq!(counts["h"], 2);
        assert_eq!(counts["cx"], 1);
        assert_eq!(circuit.multi_qubit_count(), 1);
    }

    #[test]
    fn clifford_t_detection() {
        let mut circuit = bell();
        circuit.push(QuantumGate::T(0)).unwrap();
        assert!(circuit.is_clifford_t());
        circuit
            .push(QuantumGate::Ccx {
                control_a: 0,
                control_b: 1,
                target: 1,
            })
            .unwrap_err();
        let mut with_toffoli = QuantumCircuit::new(3);
        with_toffoli
            .push(QuantumGate::Ccx {
                control_a: 0,
                control_b: 1,
                target: 2,
            })
            .unwrap();
        assert!(!with_toffoli.is_clifford_t());
    }

    #[test]
    fn append_checks_widths() {
        let mut circuit = bell();
        let other = bell();
        assert!(circuit.append(&other).is_ok());
        assert_eq!(circuit.num_gates(), 4);
        let wrong = QuantumCircuit::new(3);
        assert!(matches!(
            circuit.append(&wrong),
            Err(QuantumError::QubitCountMismatch { .. })
        ));
    }

    #[test]
    fn extended_keeps_gates() {
        let circuit = bell().extended_to(5);
        assert_eq!(circuit.num_qubits(), 5);
        assert_eq!(circuit.num_gates(), 2);
    }

    #[test]
    fn display_lists_gates() {
        let text = bell().to_string();
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0], q[1];"));
    }

    #[test]
    fn iteration() {
        let circuit = bell();
        assert_eq!(circuit.iter().count(), 2);
        assert_eq!((&circuit).into_iter().count(), 2);
    }
}
