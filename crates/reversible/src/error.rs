//! Error types for reversible circuits and synthesis.

use qdaflow_boolfn::BoolfnError;
use std::error::Error;
use std::fmt;

/// Errors produced while constructing reversible circuits or running
/// synthesis algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReversibleError {
    /// A gate references a line outside of the circuit.
    LineOutOfRange {
        /// The referenced line.
        line: usize,
        /// Number of lines in the circuit.
        num_lines: usize,
    },
    /// A gate lists the same line as target and control, or lists a control
    /// twice.
    OverlappingLines {
        /// The line that appears more than once.
        line: usize,
    },
    /// Circuits with different line counts were combined.
    LineCountMismatch {
        /// Line count of the left circuit.
        left: usize,
        /// Line count of the right circuit.
        right: usize,
    },
    /// The synthesis input is too large for the chosen algorithm.
    SpecificationTooLarge {
        /// Number of variables of the specification.
        num_vars: usize,
        /// Maximum supported by the algorithm.
        maximum: usize,
    },
    /// An error was reported by the Boolean function substrate.
    Boolfn(BoolfnError),
}

impl fmt::Display for ReversibleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LineOutOfRange { line, num_lines } => {
                write!(
                    f,
                    "line {line} is out of range for a circuit on {num_lines} lines"
                )
            }
            Self::OverlappingLines { line } => {
                write!(f, "line {line} is used more than once by the same gate")
            }
            Self::LineCountMismatch { left, right } => {
                write!(
                    f,
                    "circuits have mismatched line counts ({left} vs {right})"
                )
            }
            Self::SpecificationTooLarge { num_vars, maximum } => write!(
                f,
                "specification over {num_vars} variables exceeds the algorithm limit of {maximum}"
            ),
            Self::Boolfn(inner) => write!(f, "{inner}"),
        }
    }
}

impl Error for ReversibleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Boolfn(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<BoolfnError> for ReversibleError {
    fn from(inner: BoolfnError) -> Self {
        Self::Boolfn(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolfn_errors_convert() {
        let err: ReversibleError = BoolfnError::NotBent.into();
        assert!(matches!(err, ReversibleError::Boolfn(_)));
        assert!(err.to_string().contains("bent"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReversibleError>();
    }
}
