//! Exhaustive simulation and equivalence checking of reversible circuits.

use crate::ReversibleCircuit;
use qdaflow_boolfn::{truth_table::MultiTruthTable, Permutation};

/// Returns `true` if the circuit realizes the given permutation on all of
/// its lines.
///
/// # Panics
///
/// Panics if the permutation acts on a different number of variables than
/// the circuit has lines.
pub fn realizes_permutation(circuit: &ReversibleCircuit, permutation: &Permutation) -> bool {
    assert_eq!(
        circuit.num_lines(),
        permutation.num_vars(),
        "circuit has {} lines but the permutation acts on {} variables",
        circuit.num_lines(),
        permutation.num_vars()
    );
    (0..permutation.len()).all(|x| circuit.apply(x) == permutation.apply(x))
}

/// Returns `true` if `circuit` realizes the Bennett-style embedding
/// `|x⟩|y⟩ → |x⟩|y ⊕ f(x)⟩` of the multi-output function `f`, where the
/// first `f.num_vars()` lines carry `x` and the next `f.num_outputs()` lines
/// carry `y`. Any additional lines are required to be restored to their
/// input value (clean ancillae).
pub fn realizes_xor_embedding(circuit: &ReversibleCircuit, function: &MultiTruthTable) -> bool {
    let n = function.num_vars();
    let m = function.num_outputs();
    if circuit.num_lines() < n + m {
        return false;
    }
    let extra = circuit.num_lines() - n - m;
    // Check all x, all y, ancillae fixed at zero; additionally check that
    // ancillae initialised to zero come back to zero (clean reuse).
    for x in 0..(1usize << n) {
        for y in 0..(1usize << m) {
            let word = x | (y << n);
            let expected = x | ((y ^ function.evaluate(x)) << n);
            let result = circuit.apply(word);
            if result & ((1usize << (n + m)) - 1) != expected {
                return false;
            }
            if extra > 0 && (result >> (n + m)) != 0 {
                return false;
            }
        }
    }
    true
}

/// Returns `true` if two circuits over the same number of lines realize the
/// same permutation.
///
/// # Panics
///
/// Panics if the circuits have a different number of lines.
pub fn equivalent(left: &ReversibleCircuit, right: &ReversibleCircuit) -> bool {
    assert_eq!(
        left.num_lines(),
        right.num_lines(),
        "cannot compare circuits over {} and {} lines",
        left.num_lines(),
        right.num_lines()
    );
    (0..(1usize << left.num_lines())).all(|x| left.apply(x) == right.apply(x))
}

/// Computes the truth table of every output line of the circuit when the
/// input lines are driven exhaustively — the multi-output function realized
/// on the first `num_inputs` lines with the remaining lines held at zero.
pub fn output_functions(circuit: &ReversibleCircuit, num_inputs: usize) -> MultiTruthTable {
    let num_lines = circuit.num_lines();
    assert!(
        num_inputs <= num_lines,
        "cannot drive {num_inputs} inputs on a circuit with {num_lines} lines"
    );
    MultiTruthTable::from_fn(num_inputs, num_lines, |x| circuit.apply(x))
        .expect("line counts are bounded by the circuit size")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MctGate;
    use qdaflow_boolfn::TruthTable;

    #[test]
    fn identity_realizes_identity_permutation() {
        let circuit = ReversibleCircuit::new(3);
        assert!(realizes_permutation(&circuit, &Permutation::identity(3)));
        assert!(!realizes_permutation(
            &circuit,
            &Permutation::new(vec![1, 0, 2, 3, 4, 5, 6, 7]).unwrap()
        ));
    }

    #[test]
    fn cnot_realizes_xor_embedding_of_identity_function() {
        // One input, one output: y ^= x.
        let mut circuit = ReversibleCircuit::new(2);
        circuit.add_cnot(0, 1).unwrap();
        let f = MultiTruthTable::new(vec![TruthTable::variable(1, 0).unwrap()]).unwrap();
        assert!(realizes_xor_embedding(&circuit, &f));
    }

    #[test]
    fn toffoli_realizes_and_embedding() {
        let mut circuit = ReversibleCircuit::new(3);
        circuit.add_toffoli(0, 1, 2).unwrap();
        let and = TruthTable::from_fn(2, |x| x == 0b11).unwrap();
        let f = MultiTruthTable::new(vec![and]).unwrap();
        assert!(realizes_xor_embedding(&circuit, &f));
        // The same circuit does not realize OR.
        let or = TruthTable::from_fn(2, |x| x != 0).unwrap();
        let g = MultiTruthTable::new(vec![or]).unwrap();
        assert!(!realizes_xor_embedding(&circuit, &g));
    }

    #[test]
    fn embedding_with_dirty_ancilla_is_rejected() {
        // A circuit that computes into the ancilla but never uncomputes it.
        let mut circuit = ReversibleCircuit::new(4);
        circuit.add_toffoli(0, 1, 3).unwrap();
        circuit.add_cnot(3, 2).unwrap();
        let and = TruthTable::from_fn(2, |x| x == 0b11).unwrap();
        let f = MultiTruthTable::new(vec![and]).unwrap();
        assert!(!realizes_xor_embedding(&circuit, &f));
        // Uncomputing the ancilla makes it a valid implementation.
        circuit.add_toffoli(0, 1, 3).unwrap();
        assert!(realizes_xor_embedding(&circuit, &f));
    }

    #[test]
    fn equivalence_detects_reordered_but_equal_circuits() {
        let mut left = ReversibleCircuit::new(3);
        left.add_cnot(0, 1).unwrap();
        left.add_cnot(0, 2).unwrap();
        let mut right = ReversibleCircuit::new(3);
        right.add_cnot(0, 2).unwrap();
        right.add_cnot(0, 1).unwrap();
        assert!(equivalent(&left, &right));
        let mut different = ReversibleCircuit::new(3);
        different.add_cnot(1, 0).unwrap();
        assert!(!equivalent(&left, &different));
    }

    #[test]
    fn output_functions_capture_all_lines() {
        let mut circuit = ReversibleCircuit::new(3);
        circuit.add_toffoli(0, 1, 2).unwrap();
        let functions = output_functions(&circuit, 2);
        assert_eq!(functions.num_outputs(), 3);
        // Line 2 carries the AND of the two inputs when initialised to zero.
        assert_eq!(
            functions.output(2),
            &TruthTable::from_fn(2, |x| x == 0b11).unwrap()
        );
        // Lines 0 and 1 pass through.
        assert_eq!(functions.output(0), &TruthTable::variable(2, 0).unwrap());
        assert_eq!(functions.output(1), &TruthTable::variable(2, 1).unwrap());
    }

    #[test]
    fn xor_embedding_requires_enough_lines() {
        let circuit = ReversibleCircuit::new(2);
        let f = MultiTruthTable::from_fn(2, 2, |x| x).unwrap();
        assert!(!realizes_xor_embedding(&circuit, &f));
    }

    #[test]
    fn swap_gate_equivalence() {
        let swap = crate::circuit::swap_circuit(2, 0, 1);
        let perm = Permutation::new(vec![0, 2, 1, 3]).unwrap();
        assert!(realizes_permutation(&swap, &perm));
        let mut single = ReversibleCircuit::new(2);
        single.add_gate(MctGate::cnot(0, 1)).unwrap();
        assert!(!equivalent(&swap, &single));
    }
}
