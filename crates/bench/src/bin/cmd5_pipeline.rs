//! Experiment E4 (equation (5) of the paper): the RevKit command pipeline
//! `revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c` and its printed
//! statistics.

use qdaflow::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== E4: RevKit pipeline of equation (5) ===");
    let script = "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c";
    println!("$ {script}");
    let mut shell = Shell::new();
    for line in shell.run_script(script)? {
        println!("{line}");
    }

    // Also run the same specification through decomposition-based synthesis
    // for comparison.
    let script = "revgen --hwb 4; dbs; revsimp; rptm; tpar; ps -c; simulate";
    println!("\n$ {script}");
    let mut shell = Shell::new();
    for line in shell.run_script(script)? {
        println!("{line}");
    }
    Ok(())
}
