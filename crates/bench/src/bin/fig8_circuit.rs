//! Experiment E3 (Fig. 7/8 of the paper): the Maiorana–McFarland hidden
//! shift instance on 6 qubits with π = [0, 2, 3, 5, 7, 1, 4, 6], h = 0 and
//! planted shift s = 5. The permutation oracles are synthesized with
//! transformation-based synthesis (as the first oracle of Fig. 7) and with
//! decomposition-based synthesis (as the `synth=revkit.dbs` oracle), mapped
//! to Clifford+T, and the full circuit is verified on the simulator.

use qdaflow::hidden_shift::{HiddenShiftInstance, OracleStyle};
use qdaflow::prelude::*;
use qdaflow::quantum::drawer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== E3: Maiorana–McFarland instance of Fig. 7/8 ===");
    let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6])?;
    println!("pi      = {pi}");
    println!("pi^-1   = {}", pi.inverse());
    let bent = MaioranaMcFarland::with_zero_h(pi.clone())?;
    let instance = HiddenShiftInstance::from_maiorana_mcfarland(&bent, 5)?;

    // Per-oracle compilation statistics (the dashed boxes of Fig. 8).
    for (label, method) in [
        (
            "tbs",
            qdaflow::reversible::synthesis::SynthesisMethod::TransformationBased,
        ),
        (
            "dbs",
            qdaflow::reversible::synthesis::SynthesisMethod::DecompositionBased,
        ),
    ] {
        let report = qdaflow::flow::compile_permutation(&pi, method)?;
        println!(
            "permutation oracle via {label}: {} reversible gates -> {} Clifford+T gates, T-count {}, CNOTs {}",
            report.simplified_gates,
            report.optimized.total_gates,
            report.optimized.t_count,
            report.optimized.cnot_count
        );
    }

    for synthesis in [
        SynthesisChoice::TransformationBased,
        SynthesisChoice::DecompositionBased,
    ] {
        let circuit = instance.build_circuit(OracleStyle::MaioranaMcFarland { synthesis })?;
        let counts = ResourceCounts::of(&circuit);
        let outcome = instance.run_ideal(&circuit, 1024)?;
        println!("\n--- full hidden shift circuit, permutation oracles via {synthesis:?} ---");
        println!("{counts}");
        println!(
            "planted shift 5, recovered {:?}, success probability {:.4}",
            outcome.recovered_shift, outcome.success_probability
        );
        assert_eq!(outcome.recovered_shift, Some(5));
        if matches!(synthesis, SynthesisChoice::TransformationBased) {
            println!("{}", drawer::draw(&circuit));
        }
    }
    Ok(())
}
