//! Criterion benchmark of the sparse statevector engine against the dense
//! simulator on permutation-oracle workloads.
//!
//! Three claims back the sparse subsystem:
//!
//! 1. **The qubit ceiling is lifted** — a 28-qubit permutation oracle (in
//!    the spirit of the paper's `hwb` benchmarks: a reversible increment
//!    network of MCX cascades, plus a Hadamard preparation layer) runs end
//!    to end through [`SparseBackend`], while the dense engine *cannot even
//!    allocate* the `2^28`-amplitude register (`MAX_SIMULATOR_QUBITS` is
//!    26); the bench asserts the typed `TooManyQubits` rejection.
//! 2. **Permutation oracles are key remaps** — on a 20-qubit register both
//!    engines can run, and the sparse engine applies the same oracle in
//!    time proportional to the support size (a handful of keys) instead of
//!    the `2^20` amplitude sweep of the dense engine.
//! 3. **Sampling scales with the support** — sparse sampling builds its
//!    cumulative distribution over the nonzero entries only.

use criterion::{criterion_group, criterion_main, Criterion};
use qdaflow::prelude::*;
use qdaflow::quantum::{QuantumError, Statevector, MAX_SIMULATOR_QUBITS};
use std::time::Duration;

/// Number of qubits for the beyond-dense-ceiling demonstration.
const LARGE_QUBITS: usize = 28;
/// Number of high qubits put into superposition by the preparation layer.
const SUPERPOSED: usize = 4;
/// Increment repetitions of the oracle.
const REPETITIONS: usize = 8;
/// Basis value prepared on the low qubits before the oracle.
const PREPARED: usize = 0b1010;

/// An `n`-qubit permutation oracle: `repetitions` applications of the
/// reversible increment `|x⟩ → |x + 1 mod 2^n⟩`, each an MCX cascade from
/// the top qubit down — every gate a pure permutation, like the compiled
/// `hwb` networks of the paper's flow.
fn increment_oracle(num_qubits: usize, repetitions: usize) -> QuantumCircuit {
    let mut circuit = QuantumCircuit::new(num_qubits);
    for _ in 0..repetitions {
        for target in (1..num_qubits).rev() {
            let controls: Vec<usize> = (0..target).collect();
            let gate = match controls.len() {
                1 => QuantumGate::Cx {
                    control: controls[0],
                    target,
                },
                2 => QuantumGate::Ccx {
                    control_a: controls[0],
                    control_b: controls[1],
                    target,
                },
                _ => QuantumGate::Mcx { controls, target },
            };
            circuit.push(gate).expect("generated gates are in range");
        }
        circuit.push(QuantumGate::X(0)).expect("in range");
    }
    circuit
}

/// The full workload: prepare `PREPARED` on the low qubits, spread the top
/// `SUPERPOSED` qubits with Hadamards (a 2^SUPERPOSED-entry support), then
/// apply the increment oracle.
fn oracle_workload(num_qubits: usize) -> QuantumCircuit {
    let mut circuit = QuantumCircuit::new(num_qubits);
    for bit in 0..num_qubits {
        if (PREPARED >> bit) & 1 == 1 {
            circuit.push(QuantumGate::X(bit)).expect("in range");
        }
    }
    for qubit in num_qubits - SUPERPOSED..num_qubits {
        circuit.push(QuantumGate::H(qubit)).expect("in range");
    }
    circuit
        .append(&increment_oracle(num_qubits, REPETITIONS))
        .expect("same register");
    circuit
}

fn bench_beyond_dense_ceiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let circuit = oracle_workload(LARGE_QUBITS);

    // The dense engine cannot even allocate the 2^28-amplitude register —
    // the typed rejection is the baseline this subsystem removes.
    group.bench_function("dense_cannot_allocate/28q", |b| {
        const _: () = assert!(LARGE_QUBITS > MAX_SIMULATOR_QUBITS);
        b.iter(|| {
            let denied = Statevector::new(LARGE_QUBITS);
            assert!(matches!(
                denied,
                Err(QuantumError::TooManyQubits { requested: 28, .. })
            ));
            let backend_denied = StatevectorBackend::seeded(7).statevector(&circuit);
            assert!(matches!(
                backend_denied,
                Err(QuantumError::TooManyQubits { .. })
            ));
        })
    });

    // End-to-end through the sparse Backend impl: simulate + 1024 shots.
    // Every outcome carries `PREPARED + REPETITIONS` on the low qubits (the
    // increments never carry into the superposed top qubits).
    group.bench_function("sparse_oracle_end_to_end/28q_1024_shots", |b| {
        b.iter(|| {
            let mut backend = SparseBackend::seeded(7);
            let result = qdaflow::quantum::Backend::run(&mut backend, &circuit, 1024).unwrap();
            assert_eq!(result.shots, 1024);
            let low_mask = (1usize << (LARGE_QUBITS - SUPERPOSED)) - 1;
            assert!(result
                .counts
                .keys()
                .all(|outcome| outcome & low_mask == PREPARED + REPETITIONS));
            result
        })
    });
    group.finish();
}

fn bench_shared_domain(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let num_qubits = 20;
    let circuit = oracle_workload(num_qubits);

    group.bench_function("dense_oracle/20q", |b| {
        let backend = StatevectorBackend::seeded(7);
        b.iter(|| backend.statevector(&circuit).unwrap())
    });

    group.bench_function("sparse_oracle/20q", |b| {
        let backend = SparseBackend::seeded(7);
        b.iter(|| {
            let state = backend.statevector(&circuit).unwrap();
            assert_eq!(state.num_nonzero(), 1 << SUPERPOSED);
            state
        })
    });

    let sparse_state = SparseBackend::seeded(7).statevector(&circuit).unwrap();
    let dense_state = StatevectorBackend::seeded(7).statevector(&circuit).unwrap();
    let config = ExecConfig::auto();
    group.bench_function("dense_sampling/20q_100000_shots", |b| {
        b.iter(|| dense_state.sample_counts_sharded(7, 100_000, &config))
    });
    group.bench_function("sparse_sampling/20q_100000_shots", |b| {
        b.iter(|| sparse_state.sample_counts_sharded(7, 100_000, &config))
    });
    group.finish();
}

criterion_group!(benches, bench_beyond_dense_ceiling, bench_shared_domain);
criterion_main!(benches);
