//! Criterion benchmarks of the end-to-end hidden shift flow (compile and
//! run), supporting experiments E1, E3 and E7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdaflow::hidden_shift::{HiddenShiftInstance, OracleStyle};
use qdaflow::prelude::*;
use std::time::Duration;

fn instance(n_half: usize, shift: usize) -> HiddenShiftInstance {
    let pi = Permutation::random_seeded(n_half, 7);
    let mm = MaioranaMcFarland::with_zero_h(pi).unwrap();
    HiddenShiftInstance::from_maiorana_mcfarland(&mm, shift).unwrap()
}

fn bench_hidden_shift(c: &mut Criterion) {
    let mut group = c.benchmark_group("hidden_shift_compile");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n_half in [2usize, 3] {
        let inst = instance(n_half, 3);
        group.bench_with_input(
            BenchmarkId::new("truth_table_oracles", 2 * n_half),
            &inst,
            |b, inst| b.iter(|| inst.build_circuit(OracleStyle::TruthTable).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("structured_oracles", 2 * n_half),
            &inst,
            |b, inst| {
                b.iter(|| {
                    inst.build_circuit(OracleStyle::MaioranaMcFarland {
                        synthesis: SynthesisChoice::TransformationBased,
                    })
                    .unwrap()
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("hidden_shift_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n_half in [2usize, 3] {
        let inst = instance(n_half, 3);
        let circuit = inst.build_circuit(OracleStyle::TruthTable).unwrap();
        group.bench_with_input(
            BenchmarkId::new("ideal_64_shots", 2 * n_half),
            &(inst, circuit),
            |b, (inst, circuit)| b.iter(|| inst.run_ideal(circuit, 64).unwrap()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("hidden_shift_classical_baseline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n_half in [2usize, 3, 4] {
        let inst = instance(n_half, 3);
        let f = inst.function().clone();
        let g = inst.shifted_function();
        group.bench_with_input(
            BenchmarkId::new("elimination", 2 * n_half),
            &(f, g),
            |b, (f, g)| {
                b.iter(|| {
                    qdaflow::classical::ClassicalSolver::new()
                        .solve_by_elimination(f, g)
                        .shift
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hidden_shift);
criterion_main!(benches);
