//! A minimal complex-number type for the statevector simulator.
//!
//! The simulator only needs addition, multiplication, conjugation and norms,
//! so a small local implementation keeps the crate dependency-free.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The complex zero.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The complex one.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a real complex number.
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates the unit-magnitude complex number `e^{i angle}`.
    pub fn from_angle(angle: f64) -> Self {
        Self {
            re: angle.cos(),
            im: angle.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|^2`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, factor: f64) -> Self {
        Self {
            re: self.re * factor,
            im: self.im * factor,
        }
    }

    /// Returns `true` if both components are within `tolerance` of `other`.
    pub fn approx_eq(self, other: Self, tolerance: f64) -> bool {
        (self.re - other.re).abs() <= tolerance && (self.im - other.im).abs() <= tolerance
    }
}

impl Add for Complex {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Self;

    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(1.5, -2.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z + z, Complex::ZERO);
    }

    #[test]
    fn multiplication_matches_formula() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let product = a * b;
        assert!((product.re - 5.0).abs() < 1e-12);
        assert!((product.im - 5.0).abs() < 1e-12);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex::I * Complex::I).approx_eq(Complex::real(-1.0), 1e-15));
    }

    #[test]
    fn conjugation_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
        assert!((z * z.conj()).im.abs() < 1e-12);
    }

    #[test]
    fn from_angle_lies_on_unit_circle() {
        for step in 0..8 {
            let angle = step as f64 * std::f64::consts::FRAC_PI_4;
            let z = Complex::from_angle(angle);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
        assert!(Complex::from_angle(std::f64::consts::PI).approx_eq(Complex::real(-1.0), 1e-12));
    }

    #[test]
    fn assign_operators() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::new(2.0, -1.0);
        assert_eq!(z, Complex::new(3.0, 0.0));
        z *= Complex::I;
        assert!(z.approx_eq(Complex::new(0.0, 3.0), 1e-15));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1.0000-1.0000i");
        assert_eq!(Complex::new(0.5, 0.25).to_string(), "0.5000+0.2500i");
    }

    #[test]
    fn scale_and_from() {
        let z = Complex::from(2.0).scale(1.5);
        assert_eq!(z, Complex::real(3.0));
    }
}
