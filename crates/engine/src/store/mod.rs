//! Persistence for the batch job service: the disk-backed compiled-oracle
//! cache and the checkpoint journal.
//!
//! Compilation is the expensive step of the flow, and the paper's workloads
//! are compile-once-run-many — so compilations should survive the process
//! that produced them. This module gives the engine two durable artifacts:
//!
//! * [`DiskCache`] — one file per canonical
//!   [`SpecKey`](qdaflow_pipeline::spec::SpecKey), written atomically
//!   (temp + rename), versioned, checksummed, and **fail-open**: a corrupt
//!   or truncated entry is a counted miss, never a panic. Layered under the
//!   in-memory [`OracleCache`](crate::OracleCache) via
//!   [`OracleCache::with_disk`](crate::OracleCache::with_disk), so a
//!   restarted process warms itself from disk instead of recompiling.
//! * [`Journal`] — an append-only, line-oriented checkpoint log of
//!   completed jobs (digest + full result). A
//!   [`JobService`](crate::JobService) opened over an existing journal
//!   replays completed jobs instantly on resubmission, so a killed batch
//!   resumes from its last completed job.

pub mod codec;
pub mod disk;
pub mod journal;

pub use disk::{DiskCache, DiskCacheStats};
pub use journal::{Journal, JournalEntry};
