//! Error types for the mapping crate.

use qdaflow_boolfn::BoolfnError;
use qdaflow_quantum::QuantumError;
use qdaflow_reversible::ReversibleError;
use std::error::Error;
use std::fmt;

/// Errors produced while mapping reversible circuits to Clifford+T.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// An error was reported by the quantum circuit layer.
    Quantum(QuantumError),
    /// An error was reported by the reversible circuit layer.
    Reversible(ReversibleError),
    /// An error was reported by the Boolean function substrate.
    Boolfn(BoolfnError),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Quantum(inner) => write!(f, "{inner}"),
            Self::Reversible(inner) => write!(f, "{inner}"),
            Self::Boolfn(inner) => write!(f, "{inner}"),
        }
    }
}

impl Error for MappingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Quantum(inner) => Some(inner),
            Self::Reversible(inner) => Some(inner),
            Self::Boolfn(inner) => Some(inner),
        }
    }
}

impl From<QuantumError> for MappingError {
    fn from(inner: QuantumError) -> Self {
        Self::Quantum(inner)
    }
}

impl From<ReversibleError> for MappingError {
    fn from(inner: ReversibleError) -> Self {
        Self::Reversible(inner)
    }
}

impl From<BoolfnError> for MappingError {
    fn from(inner: BoolfnError) -> Self {
        Self::Boolfn(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let err: MappingError = QuantumError::DuplicateQubit { qubit: 2 }.into();
        assert!(err.to_string().contains('2'));
        let err: MappingError = BoolfnError::NotBent.into();
        assert!(matches!(err, MappingError::Boolfn(_)));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MappingError>();
    }
}
