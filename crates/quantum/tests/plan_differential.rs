//! Differential property tests for the `ExecPlan` SoA interpreter.
//!
//! Random 2–10 qubit circuits over every gate kind of the IR are executed
//! through the plan interpreter and compared against two independent
//! implementations:
//!
//! * the naive [`DenseReference`] oracle, amplitude-for-amplitude at 1e-10
//!   (suites 1–2, including forced multi-block + worker-pool configs that
//!   exercise the cross-block pair/quad dispatch paths on tiny registers);
//! * the legacy interleaved fused path, **bit for bit** with 4×4 batching
//!   disabled (suite 3) — the SoA sweeps use the same multiply-add
//!   association as the legacy complex arithmetic, so the two paths must
//!   agree exactly, not just approximately;
//! * itself across thread counts (suite 4): amplitudes and sampled
//!   histograms are bit-identical at 1, 2, 4 and 8 threads, and the
//!   histograms match the legacy path's — the reproducibility contract the
//!   batch subsystem relies on;
//! * the noisy simulator's plan replay against its legacy replay (suite 5):
//!   identical RNG streams, bit-identical histograms.

use proptest::prelude::*;
use qdaflow_quantum::fusion::ExecConfig;
use qdaflow_quantum::noise::{NoiseModel, NoisySimulator};
use qdaflow_quantum::reference::DenseReference;
use qdaflow_quantum::{QuantumCircuit, QuantumGate, Statevector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Amplitude agreement tolerance against the dense reference.
const TOLERANCE: f64 = 1e-10;

/// Builds a random circuit over 2..=10 qubits from a seed, covering every
/// gate kind of the Clifford+T IR (same generator shape as
/// `tests/differential.rs`, two qubits wider).
fn random_circuit(seed: u64) -> QuantumCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_qubits = rng.gen_range(2..11usize);
    let num_gates = rng.gen_range(1..41usize);
    let mut circuit = QuantumCircuit::new(num_qubits);
    for _ in 0..num_gates {
        let qubit = rng.gen_range(0..num_qubits);
        let gate = match rng.gen_range(0..15u32) {
            0 => QuantumGate::H(qubit),
            1 => QuantumGate::X(qubit),
            2 => QuantumGate::Y(qubit),
            3 => QuantumGate::Z(qubit),
            4 => QuantumGate::S(qubit),
            5 => QuantumGate::Sdg(qubit),
            6 => QuantumGate::T(qubit),
            7 => QuantumGate::Tdg(qubit),
            8 => QuantumGate::Rz {
                qubit,
                angle: f64::from(rng.gen_range(0..16u32)) * std::f64::consts::FRAC_PI_4,
            },
            9 => {
                let target = distinct(&mut rng, num_qubits, &[qubit]);
                QuantumGate::Cx {
                    control: qubit,
                    target,
                }
            }
            10 => {
                let b = distinct(&mut rng, num_qubits, &[qubit]);
                QuantumGate::Cz { a: qubit, b }
            }
            11 => {
                let b = distinct(&mut rng, num_qubits, &[qubit]);
                QuantumGate::Swap { a: qubit, b }
            }
            12 if num_qubits >= 3 => {
                let control_b = distinct(&mut rng, num_qubits, &[qubit]);
                let target = distinct(&mut rng, num_qubits, &[qubit, control_b]);
                QuantumGate::Ccx {
                    control_a: qubit,
                    control_b,
                    target,
                }
            }
            13 if num_qubits >= 4 => {
                let c2 = distinct(&mut rng, num_qubits, &[qubit]);
                let c3 = distinct(&mut rng, num_qubits, &[qubit, c2]);
                let target = distinct(&mut rng, num_qubits, &[qubit, c2, c3]);
                QuantumGate::Mcx {
                    controls: vec![qubit, c2, c3],
                    target,
                }
            }
            14 if num_qubits >= 3 => {
                let b = distinct(&mut rng, num_qubits, &[qubit]);
                let c = distinct(&mut rng, num_qubits, &[qubit, b]);
                QuantumGate::Mcz {
                    qubits: vec![qubit, b, c],
                }
            }
            _ => QuantumGate::H(qubit),
        };
        circuit.push(gate).expect("generated gates are in range");
    }
    circuit
}

/// Draws a qubit distinct from the ones already used.
fn distinct(rng: &mut StdRng, num_qubits: usize, used: &[usize]) -> usize {
    loop {
        let candidate = rng.gen_range(0..num_qubits);
        if !used.contains(&candidate) {
            return candidate;
        }
    }
}

fn assert_matches_reference(circuit: &QuantumCircuit, config: &ExecConfig) {
    let reference = DenseReference::from_circuit(circuit).expect("small register");
    let optimized = Statevector::run(circuit, config).expect("small register");
    for (index, (a, b)) in optimized
        .amplitudes()
        .iter()
        .zip(reference.amplitudes())
        .enumerate()
    {
        assert!(
            a.approx_eq(*b, TOLERANCE),
            "amplitude {index} diverges: plan {a:?} vs reference {b:?}\ncircuit:\n{circuit}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Suite 1: the plan interpreter in its production configuration (4×4
    /// batching on, auto block size — one block for these registers) is
    /// amplitude-exact against the dense reference oracle.
    #[test]
    fn plan_kernel_matches_dense_reference(seed in any::<u64>()) {
        let circuit = random_circuit(seed);
        assert_matches_reference(&circuit, &ExecConfig::sequential());
    }

    /// Suite 2: tiny cache blocks (4 amplitudes) force the cross-block
    /// pair/quad/permute dispatch for most gates, and the forced worker pool
    /// routes the blocks over channels — amplitude-exact against the oracle.
    #[test]
    fn blocked_pooled_plan_matches_dense_reference(seed in any::<u64>()) {
        let circuit = random_circuit(seed);
        let config = ExecConfig::sequential()
            .with_block_bits(2)
            .with_threads(4)
            .with_parallel_threshold(2);
        assert_matches_reference(&circuit, &config);
    }

    /// Suite 3: with 4×4 batching disabled the plan path and the legacy
    /// interleaved path perform element-for-element identical arithmetic —
    /// the amplitudes must agree bit for bit, across block sizes.
    #[test]
    fn plan_is_bit_identical_to_legacy_path(seed in any::<u64>()) {
        let circuit = random_circuit(seed);
        let legacy = Statevector::run(
            &circuit,
            &ExecConfig::sequential().with_plan(false),
        ).expect("small register");
        for block_bits in [0usize, 2, 3] {
            let plan = Statevector::run(
                &circuit,
                &ExecConfig::sequential()
                    .with_pair_fusion(false)
                    .with_block_bits(block_bits),
            ).expect("small register");
            prop_assert_eq!(
                plan.amplitudes(),
                legacy.amplitudes(),
                "block_bits {} diverges from the legacy path", block_bits
            );
        }
    }

    /// Suite 4: thread-count invariance. The plan path produces bit-identical
    /// amplitudes at 1, 2, 4 and 8 threads, and the sampled histograms match
    /// the legacy path's exactly for the same seed.
    #[test]
    fn plan_histograms_are_bit_identical_across_threads(seed in any::<u64>()) {
        let circuit = random_circuit(seed);
        let legacy = Statevector::run(
            &circuit,
            &ExecConfig::sequential().with_plan(false),
        ).expect("small register");
        let mut legacy_rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        let expected = legacy.sample_counts(&mut legacy_rng, 512);
        for threads in [1usize, 2, 4, 8] {
            let config = ExecConfig::sequential()
                .with_pair_fusion(false)
                .with_block_bits(3)
                .with_threads(threads)
                .with_parallel_threshold(2);
            let plan = Statevector::run(&circuit, &config).expect("small register");
            prop_assert_eq!(
                plan.amplitudes(),
                legacy.amplitudes(),
                "{} threads diverge from the legacy amplitudes", threads
            );
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
            let histogram = plan.sample_counts(&mut rng, 512);
            prop_assert_eq!(
                &histogram,
                &expected,
                "{} threads produce a different histogram", threads
            );
        }
    }
}

proptest! {
    // Noisy shots are expensive; fewer cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Suite 5: the noisy simulator's plan replay draws the identical RNG
    /// stream as its legacy replay — histograms are bit-identical.
    #[test]
    fn noisy_plan_replay_matches_legacy_replay(seed in any::<u64>()) {
        let circuit = random_circuit(seed);
        let model = NoiseModel::ibm_qx_2017();
        let legacy_sim = NoisySimulator::with_config(
            model,
            ExecConfig::sequential().with_plan(false),
        );
        let mut legacy_rng = StdRng::seed_from_u64(seed);
        let legacy = legacy_sim.run(&circuit, 64, &mut legacy_rng).expect("small register");
        for block_bits in [0usize, 2] {
            let plan_sim = NoisySimulator::with_config(
                model,
                ExecConfig::sequential().with_block_bits(block_bits),
            );
            let mut plan_rng = StdRng::seed_from_u64(seed);
            let plan = plan_sim.run(&circuit, 64, &mut plan_rng).expect("small register");
            prop_assert_eq!(
                &plan,
                &legacy,
                "noisy plan replay (block_bits {}) diverges", block_bits
            );
        }
    }
}
