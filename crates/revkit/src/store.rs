//! The shell's data store.
//!
//! RevKit commands communicate through shared stores (one per object kind).
//! This reproduction keeps one current entry per kind — a Boolean
//! specification (permutation and/or single-output function), a reversible
//! circuit, and a quantum circuit — which is exactly what the pipelines used
//! in the paper need.

use qdaflow_boolfn::{Permutation, TruthTable};
use qdaflow_engine::{BackendChoice, BatchEngine, EngineError, JobService, JobServiceConfig};
use qdaflow_quantum::fusion::ExecConfig;
use qdaflow_quantum::QuantumCircuit;
use qdaflow_reversible::ReversibleCircuit;
use std::path::PathBuf;
use std::sync::Arc;

/// The mutable state shared by all shell commands.
#[derive(Debug, Clone, Default)]
pub struct Store {
    permutation: Option<Permutation>,
    function: Option<TruthTable>,
    reversible: Option<ReversibleCircuit>,
    quantum: Option<QuantumCircuit>,
    qasm_source: Option<String>,
    exec_config: ExecConfig,
    backend_choice: BackendChoice,
    batch: Arc<BatchEngine>,
    service: Option<Arc<JobService>>,
    service_exec: ExecConfig,
    service_journal: Option<PathBuf>,
    journal_path: Option<PathBuf>,
    log: Vec<String>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current permutation specification, if any.
    pub fn permutation(&self) -> Option<&Permutation> {
        self.permutation.as_ref()
    }

    /// Replaces the current permutation specification.
    pub fn set_permutation(&mut self, permutation: Permutation) {
        self.permutation = Some(permutation);
    }

    /// The current single-output Boolean function, if any.
    pub fn function(&self) -> Option<&TruthTable> {
        self.function.as_ref()
    }

    /// Replaces the current single-output Boolean function.
    pub fn set_function(&mut self, function: TruthTable) {
        self.function = Some(function);
    }

    /// The current reversible circuit, if any.
    pub fn reversible(&self) -> Option<&ReversibleCircuit> {
        self.reversible.as_ref()
    }

    /// Replaces the current reversible circuit.
    pub fn set_reversible(&mut self, circuit: ReversibleCircuit) {
        self.reversible = Some(circuit);
    }

    /// The current quantum circuit, if any.
    pub fn quantum(&self) -> Option<&QuantumCircuit> {
        self.quantum.as_ref()
    }

    /// Replaces the current quantum circuit.
    pub fn set_quantum(&mut self, circuit: QuantumCircuit) {
        self.quantum = Some(circuit);
    }

    /// The most recently loaded OpenQASM source (`qasm load <file>`), if any.
    /// Pipelines starting with `qasmin` seed from it.
    pub fn qasm_source(&self) -> Option<&str> {
        self.qasm_source.as_deref()
    }

    /// Replaces the current OpenQASM source.
    pub fn set_qasm_source(&mut self, source: String) {
        self.qasm_source = Some(source);
    }

    /// The execution configuration used by simulating commands.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec_config
    }

    /// Replaces the execution configuration (the `exec` command).
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.exec_config = config;
    }

    /// The simulation backend used by the `batch` command's jobs (the
    /// `backend` command).
    pub fn backend_choice(&self) -> BackendChoice {
        self.backend_choice
    }

    /// Replaces the simulation backend choice.
    pub fn set_backend_choice(&mut self, choice: BackendChoice) {
        self.backend_choice = choice;
    }

    /// The shared batch execution engine (the `batch` command). Its
    /// compiled-oracle cache persists across commands of the same shell, so
    /// repeated batches over the same oracles skip recompilation; clones of
    /// the store share the same cache.
    pub fn batch_engine(&self) -> &BatchEngine {
        &self.batch
    }

    /// The checkpoint journal the `batch` command's jobs record into
    /// (`batch --resume <path>` sets it for the rest of the shell session).
    pub fn journal_path(&self) -> Option<&PathBuf> {
        self.journal_path.as_ref()
    }

    /// Points the job service at a checkpoint journal (or detaches it with
    /// `None`). Takes effect at the next [`Store::job_service`] call.
    pub fn set_journal_path(&mut self, path: Option<PathBuf>) {
        self.journal_path = path;
    }

    /// The shell's batch job service — the `batch` command's thin-client
    /// backend. Built lazily over the shared [`BatchEngine`] (so the
    /// service's workers and the synchronous commands amortize one
    /// compiled-oracle cache) and rebuilt when the execution configuration
    /// or journal path changed since the last call; clones of the store
    /// share the same running service.
    ///
    /// # Errors
    ///
    /// Propagates journal open failures ([`EngineError::Io`]).
    pub fn job_service(&mut self) -> Result<Arc<JobService>, EngineError> {
        let stale = self.service.is_none()
            || self.service_exec != self.exec_config
            || self.service_journal != self.journal_path;
        if stale {
            let config = JobServiceConfig {
                exec: self.exec_config,
                journal_path: self.journal_path.clone(),
                ..JobServiceConfig::default()
            };
            self.service = Some(Arc::new(JobService::with_engine(
                Arc::clone(&self.batch),
                config,
            )?));
            self.service_exec = self.exec_config;
            self.service_journal = self.journal_path.clone();
        }
        Ok(Arc::clone(self.service.as_ref().expect("service built")))
    }

    /// Appends a line to the command log (what the shell prints).
    pub fn log(&mut self, line: impl Into<String>) {
        self.log.push(line.into());
    }

    /// All logged output lines in order.
    pub fn log_lines(&self) -> &[String] {
        &self.log
    }

    /// Clears everything, including the log.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_holds_entries_by_kind() {
        let mut store = Store::new();
        assert!(store.permutation().is_none());
        store.set_permutation(Permutation::identity(2));
        store.set_function(TruthTable::zero(2).unwrap());
        store.set_reversible(ReversibleCircuit::new(2));
        store.set_quantum(QuantumCircuit::new(2));
        store.set_qasm_source("qreg q[1];".to_owned());
        assert_eq!(store.qasm_source(), Some("qreg q[1];"));
        assert!(store.permutation().is_some());
        assert!(store.function().is_some());
        assert!(store.reversible().is_some());
        assert!(store.quantum().is_some());
        store.log("hello");
        assert_eq!(store.log_lines(), ["hello"]);
        store.set_backend_choice(BackendChoice::Sparse);
        assert_eq!(store.backend_choice(), BackendChoice::Sparse);
        store.clear();
        assert!(store.permutation().is_none());
        assert!(store.log_lines().is_empty());
        assert_eq!(store.backend_choice(), BackendChoice::Dense);
    }
}
