//! Workspace-level smoke test: every example must build, and the
//! `quickstart` example must run end-to-end and recover the hidden shift.
//!
//! The test shells out to the `cargo` that is running the test suite (via the
//! `CARGO` environment variable), so it always uses the same toolchain and
//! target directory and never hits the network.

use std::process::Command;

fn cargo() -> Command {
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let mut command = Command::new(cargo);
    // Run at the workspace root so the root Cargo.toml is picked up.
    command.current_dir(env!("CARGO_MANIFEST_DIR").to_owned() + "/../..");
    command.env("CARGO_TERM_COLOR", "never");
    command
}

#[test]
fn all_examples_build() {
    let output = cargo()
        .args(["build", "--examples"])
        .output()
        .expect("failed to spawn cargo build --examples");
    assert!(
        output.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn quickstart_example_runs_end_to_end() {
    let output = cargo()
        .args(["run", "--quiet", "--example", "quickstart"])
        .output()
        .expect("failed to spawn cargo run --example quickstart");
    assert!(
        output.status.success(),
        "quickstart example exited with {:?}:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("recovered Some(1)"),
        "quickstart output did not report the recovered shift:\n{stdout}"
    );
}
