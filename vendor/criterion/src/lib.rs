//! Vendored, dependency-free stand-in for the subset of the [`criterion`]
//! benchmark harness used by `qdaflow_bench`.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements the handful of entry points the workspace benches rely on:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId::new`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a straightforward
//! median-of-samples measurement printed to stdout — good enough for the
//! relative comparisons the paper reproduction needs, without the
//! statistical machinery (or the compile time) of the real crate.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported for benchmark bodies.
pub fn black_box<T>(value: T) -> T {
    hint_black_box(value)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id such as `tbs_hwb/8` from a name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Self {
            sample_size,
            measurement_time,
            samples: Vec::new(),
        }
    }

    /// Measures `routine` repeatedly and records per-iteration timings.
    ///
    /// Collects up to `sample_size` samples but never runs longer than the
    /// group's measurement time (after a small warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            hint_black_box(routine());
        }
        let deadline = Instant::now() + self.measurement_time;
        self.samples.clear();
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            hint_black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples collected)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{id:<40} time: [{} {} {}] ({} samples)",
            format_duration(min),
            format_duration(median),
            format_duration(max),
            sorted.len(),
        );
    }
}

fn format_duration(duration: Duration) -> String {
    let nanos = duration.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Bounds the wall-clock time spent measuring each benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Runs one benchmark with an input value passed by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher);
        bencher.report(&format!("{}/{id}", self.name));
        self
    }

    /// Marks the group as complete (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(10, Duration::from_secs(2));
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let input = 10u64;
        group.bench_with_input(BenchmarkId::new("sum", input), &input, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("free", |b| b.iter(|| 2 + 2));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("tbs", 8).to_string(), "tbs/8");
        assert_eq!(BenchmarkId::from_parameter(5).to_string(), "5");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
