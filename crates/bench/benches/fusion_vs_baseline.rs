//! Criterion benchmark: the fused (and optionally multi-threaded) execution
//! layer against the PR-1 per-gate sequential kernel on a 20-qubit hidden
//! shift circuit.
//!
//! The baseline replays the circuit gate by gate through
//! `Statevector::apply_gate` (the single-kernel dispatch every execution
//! path used before the fusion layer existed). The contenders compile the
//! same circuit to a `FusedProgram` first: the H/X shift sandwiches merge
//! into single dense ops, the CZ layers run as subspace-enumerating phase
//! multiplies instead of full scans, and — where the host has more than one
//! CPU — the dense and phase sweeps split across scoped threads. The
//! `plan_*` variants go one layer further and lower the fused program to an
//! `ExecPlan`: split re/im amplitude storage, adjacent dense ops batched
//! into 4×4 applications, cache-blocked sweeps, and a persistent worker
//! pool instead of per-op thread spawns.

use criterion::{criterion_group, criterion_main, Criterion};
use qdaflow::hidden_shift::{HiddenShiftInstance, OracleStyle};
use qdaflow::prelude::*;
use qdaflow::quantum::statevector::Statevector;
use std::time::Duration;

const NUM_QUBITS: usize = 20;

/// A 20-qubit hidden shift instance over the inner-product bent function
/// (Maiorana–McFarland with the identity permutation), the largest single
/// register the paper's benchmark family reaches on a workstation-class
/// simulator.
fn twenty_qubit_hidden_shift() -> QuantumCircuit {
    let mm = MaioranaMcFarland::inner_product(NUM_QUBITS / 2);
    let instance = HiddenShiftInstance::from_maiorana_mcfarland(&mm, 0b10_1101_1001).unwrap();
    let circuit = instance
        .build_circuit(OracleStyle::MaioranaMcFarland {
            synthesis: SynthesisChoice::TransformationBased,
        })
        .unwrap();
    assert_eq!(circuit.num_qubits(), NUM_QUBITS);
    circuit
}

fn bench_fusion_vs_baseline(c: &mut Criterion) {
    let circuit = twenty_qubit_hidden_shift();
    let fused_ops = FusedProgram::fuse(&circuit).num_ops();
    println!(
        "hidden-shift-20q: {} gates -> {} fused ops",
        circuit.num_gates(),
        fused_ops
    );

    let mut group = c.benchmark_group("fusion_vs_baseline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    // PR-1 behaviour: per-gate kernel dispatch, no fusion, no threading.
    group.bench_function("baseline_sequential_kernel", |b| {
        b.iter(|| {
            let mut state = Statevector::new(NUM_QUBITS).unwrap();
            for gate in &circuit {
                state.apply_gate(gate);
            }
            state.amplitude(0)
        })
    });

    // Fused program on the legacy interleaved path, single-threaded:
    // isolates the fusion win over the per-gate baseline.
    group.bench_function("fused_sequential", |b| {
        b.iter(|| {
            let config = ExecConfig::sequential().with_plan(false);
            let state = Statevector::run(&circuit, &config).unwrap();
            state.amplitude(0)
        })
    });

    // Legacy path with the auto-threaded configuration.
    group.bench_function("fused_parallel_auto", |b| {
        b.iter(|| {
            let config = ExecConfig::default().with_plan(false);
            let state = Statevector::run(&circuit, &config).unwrap();
            state.amplitude(0)
        })
    });

    // ExecPlan SoA interpreter, single-threaded: split re/im sweeps, 4x4
    // batching and cache-blocked local runs, no worker pool.
    group.bench_function("plan_sequential", |b| {
        b.iter(|| {
            let state = Statevector::run(&circuit, &ExecConfig::sequential()).unwrap();
            state.amplitude(0)
        })
    });

    // ExecPlan with the full auto configuration: the persistent worker pool
    // picks up block batches where the host has more than one CPU.
    group.bench_function("plan_parallel_auto", |b| {
        b.iter(|| {
            let state = Statevector::run(&circuit, &ExecConfig::auto()).unwrap();
            state.amplitude(0)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fusion_vs_baseline);
criterion_main!(benches);
