//! The unified intermediate representation threaded through a pipeline.
//!
//! Equation (5) of the paper moves one object through three representations:
//! a Boolean specification (a permutation for `tbs`/`dbs`, a single-output
//! function for `esopbs`), a reversible Toffoli network, and a Clifford+T
//! quantum circuit. [`Ir`] is the sum of those representations; [`Stage`]
//! names them, and [`StageSet`] is the small lattice the
//! [`Pipeline`](crate::Pipeline) builder uses to validate pass transitions
//! before anything runs.

use crate::FlowError;
use qdaflow_boolfn::{Permutation, TruthTable};
use qdaflow_quantum::QuantumCircuit;
use qdaflow_reversible::ReversibleCircuit;
use std::fmt;

/// A value flowing through a pipeline: one of the representations of the
/// compilation flow.
#[derive(Debug, Clone, PartialEq)]
pub enum Ir {
    /// Unparsed OpenQASM 2.0 source text (imported by the `qasmin` pass).
    QasmSource(String),
    /// A reversible specification: a permutation of `B^n`.
    Permutation(Permutation),
    /// An irreversible specification: a single-output Boolean function.
    Function(TruthTable),
    /// A reversible circuit over multiple-controlled Toffoli gates.
    Reversible(ReversibleCircuit),
    /// A quantum circuit (Clifford+T after `rptm`).
    Quantum(QuantumCircuit),
}

impl Ir {
    /// The stage this value belongs to.
    pub fn stage(&self) -> Stage {
        match self {
            Self::QasmSource(_) => Stage::QasmSource,
            Self::Permutation(_) => Stage::Permutation,
            Self::Function(_) => Stage::Function,
            Self::Reversible(_) => Stage::Reversible,
            Self::Quantum(_) => Stage::Quantum,
        }
    }

    /// Unwraps OpenQASM source text, or reports a stage mismatch blamed on
    /// `pass`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::StageMismatch`] for any other stage.
    pub fn into_qasm_source(self, pass: &str) -> Result<String, FlowError> {
        match self {
            Self::QasmSource(source) => Ok(source),
            other => Err(mismatch(pass, StageSet::QASM_SOURCE, &other)),
        }
    }

    /// Unwraps a permutation, or reports a stage mismatch blamed on `pass`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::StageMismatch`] for any other stage.
    pub fn into_permutation(self, pass: &str) -> Result<Permutation, FlowError> {
        match self {
            Self::Permutation(permutation) => Ok(permutation),
            other => Err(mismatch(pass, StageSet::PERMUTATION, &other)),
        }
    }

    /// Unwraps a Boolean function, or reports a stage mismatch blamed on
    /// `pass`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::StageMismatch`] for any other stage.
    pub fn into_function(self, pass: &str) -> Result<TruthTable, FlowError> {
        match self {
            Self::Function(function) => Ok(function),
            other => Err(mismatch(pass, StageSet::FUNCTION, &other)),
        }
    }

    /// Unwraps a reversible circuit, or reports a stage mismatch blamed on
    /// `pass`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::StageMismatch`] for any other stage.
    pub fn into_reversible(self, pass: &str) -> Result<ReversibleCircuit, FlowError> {
        match self {
            Self::Reversible(circuit) => Ok(circuit),
            other => Err(mismatch(pass, StageSet::REVERSIBLE, &other)),
        }
    }

    /// Unwraps a quantum circuit, or reports a stage mismatch blamed on
    /// `pass`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::StageMismatch`] for any other stage.
    pub fn into_quantum(self, pass: &str) -> Result<QuantumCircuit, FlowError> {
        match self {
            Self::Quantum(circuit) => Ok(circuit),
            other => Err(mismatch(pass, StageSet::QUANTUM, &other)),
        }
    }
}

fn mismatch(pass: &str, expected: StageSet, found: &Ir) -> FlowError {
    FlowError::StageMismatch {
        pass: pass.to_owned(),
        expected,
        found: found.stage(),
    }
}

impl From<Permutation> for Ir {
    fn from(permutation: Permutation) -> Self {
        Self::Permutation(permutation)
    }
}

impl From<TruthTable> for Ir {
    fn from(function: TruthTable) -> Self {
        Self::Function(function)
    }
}

impl From<ReversibleCircuit> for Ir {
    fn from(circuit: ReversibleCircuit) -> Self {
        Self::Reversible(circuit)
    }
}

impl From<QuantumCircuit> for Ir {
    fn from(circuit: QuantumCircuit) -> Self {
        Self::Quantum(circuit)
    }
}

/// The stage (representation kind) of an [`Ir`] value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Unparsed OpenQASM 2.0 source text.
    QasmSource,
    /// Permutation specification.
    Permutation,
    /// Single-output Boolean function specification.
    Function,
    /// Reversible Toffoli network.
    Reversible,
    /// Quantum circuit.
    Quantum,
}

impl Stage {
    const ALL: [Self; 5] = [
        Self::QasmSource,
        Self::Permutation,
        Self::Function,
        Self::Reversible,
        Self::Quantum,
    ];

    fn bit(self) -> u8 {
        match self {
            Self::QasmSource => 16,
            Self::Permutation => 1,
            Self::Function => 2,
            Self::Reversible => 4,
            Self::Quantum => 8,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::QasmSource => "openqasm source",
            Self::Permutation => "permutation",
            Self::Function => "boolean function",
            Self::Reversible => "reversible circuit",
            Self::Quantum => "quantum circuit",
        };
        f.write_str(name)
    }
}

/// A set of [`Stage`]s, used to describe what a pass accepts and produces.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageSet(u8);

impl StageSet {
    /// The empty set.
    pub const EMPTY: Self = Self(0);
    /// Only [`Stage::Permutation`].
    pub const PERMUTATION: Self = Self(1);
    /// Only [`Stage::Function`].
    pub const FUNCTION: Self = Self(2);
    /// Only [`Stage::Reversible`].
    pub const REVERSIBLE: Self = Self(4);
    /// Only [`Stage::Quantum`].
    pub const QUANTUM: Self = Self(8);
    /// Only [`Stage::QasmSource`].
    pub const QASM_SOURCE: Self = Self(16);
    /// Both specification stages (permutation or Boolean function).
    pub const SPEC: Self = Self(1 | 2);
    /// Every stage.
    pub const ANY: Self = Self(31);

    /// Whether `stage` is in the set.
    pub fn contains(self, stage: Stage) -> bool {
        self.0 & stage.bit() != 0
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: Self) -> Self {
        Self(self.0 & other.0)
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Whether the set contains no stage.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The stages in the set, in flow order.
    pub fn stages(self) -> impl Iterator<Item = Stage> {
        Stage::ALL.into_iter().filter(move |s| self.contains(*s))
    }
}

impl From<Stage> for StageSet {
    fn from(stage: Stage) -> Self {
        Self(stage.bit())
    }
}

impl fmt::Display for StageSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("nothing");
        }
        let mut first = true;
        for stage in self.stages() {
            if !first {
                f.write_str(" or ")?;
            }
            write!(f, "{stage}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for StageSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StageSet({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_sets_form_a_lattice() {
        assert!(StageSet::SPEC.contains(Stage::Permutation));
        assert!(StageSet::SPEC.contains(Stage::Function));
        assert!(!StageSet::SPEC.contains(Stage::Quantum));
        assert!(StageSet::SPEC.intersect(StageSet::QUANTUM).is_empty());
        assert_eq!(
            StageSet::PERMUTATION.union(StageSet::FUNCTION),
            StageSet::SPEC
        );
        assert_eq!(StageSet::ANY.stages().count(), 5);
        assert!(StageSet::ANY.contains(Stage::QasmSource));
        assert!(!StageSet::SPEC.contains(Stage::QasmSource));
    }

    #[test]
    fn stage_set_display_lists_members() {
        assert_eq!(StageSet::EMPTY.to_string(), "nothing");
        assert_eq!(
            StageSet::SPEC.to_string(),
            "permutation or boolean function"
        );
        assert_eq!(StageSet::QUANTUM.to_string(), "quantum circuit");
    }

    #[test]
    fn ir_unwrappers_report_mismatches() {
        let ir = Ir::from(Permutation::identity(2));
        assert_eq!(ir.stage(), Stage::Permutation);
        let err = ir.into_quantum("tpar").unwrap_err();
        assert!(matches!(err, FlowError::StageMismatch { .. }));
        assert!(err.to_string().contains("tpar"));
    }
}
