//! Oracle compilation for the engine: `PhaseOracle` and `PermutationOracle`.
//!
//! These are the two RevKit-backed primitives the paper's ProjectQ programs
//! use (`projectq.libs.revkit.PhaseOracle` / `PermutationOracle`). They
//! compile a Boolean specification into a quantum sub-circuit over a local
//! register `0..k` (plus ancillas at the end), which the engine then relabels
//! onto the caller's qubits.

use crate::EngineError;
use qdaflow_boolfn::{Permutation, TruthTable};
use qdaflow_mapping::phase_oracle::PhaseOracleOptions;
use qdaflow_pipeline::passes::{synthesis_pass, PhaseOracle, Revsimp, Rptm};
use qdaflow_pipeline::Pipeline;
use qdaflow_quantum::QuantumCircuit;
use qdaflow_reversible::synthesis::SynthesisMethod;

/// Which reversible synthesis algorithm a `PermutationOracle` should use,
/// mirroring the `synth=revkit.dbs` keyword of the paper's Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SynthesisChoice {
    /// Transformation-based synthesis (RevKit's `tbs`, the default).
    #[default]
    TransformationBased,
    /// Decomposition-based synthesis (RevKit's `dbs`).
    DecompositionBased,
}

impl SynthesisChoice {
    fn method(self) -> SynthesisMethod {
        match self {
            Self::TransformationBased => SynthesisMethod::TransformationBased,
            Self::DecompositionBased => SynthesisMethod::DecompositionBased,
        }
    }
}

/// Compiles the diagonal phase oracle `U_f` of a Boolean function over a
/// local register of `function.num_vars()` qubits.
///
/// Routed through the pass-manager pipeline (`po`) so the engine and the
/// one-call flows share a single compilation path.
///
/// # Errors
///
/// Propagates failures of the underlying phase-oracle compiler.
pub fn compile_phase_oracle(function: &TruthTable) -> Result<QuantumCircuit, EngineError> {
    let pipeline = Pipeline::builder()
        .then(PhaseOracle {
            options: PhaseOracleOptions::default(),
        })
        .build()?;
    let report = pipeline.run(function.clone().into())?;
    Ok(report
        .output
        .into_quantum("po")
        .expect("the po pipeline ends at a quantum circuit"))
}

/// Compiles a permutation oracle (the unitary `|x⟩ → |π(x)⟩`) over a local
/// register of `permutation.num_vars()` qubits (plus ancillas appended at the
/// end when large multiple-controlled gates require them).
///
/// Routed through the pass-manager pipeline (`tbs`/`dbs`; `revsimp`;
/// `rptm`), the oracle-compilation prefix of the paper's equation (5).
///
/// # Errors
///
/// Propagates synthesis and mapping failures.
pub fn compile_permutation_oracle(
    permutation: &Permutation,
    synthesis: SynthesisChoice,
) -> Result<QuantumCircuit, EngineError> {
    let pipeline = Pipeline::builder()
        .then_boxed(synthesis_pass(synthesis.method()))
        .then(Revsimp)
        .then(Rptm::default())
        .build()?;
    let report = pipeline.run(permutation.clone().into())?;
    Ok(report
        .output
        .into_quantum("rptm")
        .expect("the oracle pipeline ends at a quantum circuit"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdaflow_boolfn::Expr;
    use qdaflow_mapping::phase_oracle;
    use qdaflow_quantum::statevector::Statevector;

    #[test]
    fn phase_oracle_for_paper_function() {
        let f = Expr::parse("(a & b) ^ (c & d)")
            .unwrap()
            .truth_table(4)
            .unwrap();
        let oracle = compile_phase_oracle(&f).unwrap();
        assert!(phase_oracle::oracle_matches_function(&oracle, &f));
    }

    #[test]
    fn permutation_oracle_realizes_the_permutation() {
        let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
        for choice in [
            SynthesisChoice::TransformationBased,
            SynthesisChoice::DecompositionBased,
        ] {
            let oracle = compile_permutation_oracle(&pi, choice).unwrap();
            for basis in 0..8usize {
                let mut state = Statevector::basis_state(oracle.num_qubits(), basis).unwrap();
                state.apply_circuit(&oracle);
                assert!(
                    state.probability_of(pi.apply(basis)) > 1.0 - 1e-9,
                    "{choice:?} basis {basis}"
                );
            }
        }
    }

    #[test]
    fn default_choice_is_transformation_based() {
        assert_eq!(
            SynthesisChoice::default(),
            SynthesisChoice::TransformationBased
        );
    }
}
