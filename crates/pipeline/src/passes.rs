//! Named [`Pass`] implementations wrapping every stage of the flow.
//!
//! Each pass carries the name of the RevKit command it reproduces:
//!
//! | pass      | stage transition                         | wraps                                      |
//! |-----------|------------------------------------------|--------------------------------------------|
//! | `revgen`  | ∅ → specification                        | specification generators                   |
//! | `tbs`     | permutation → reversible                 | [`synthesis::transformation_based`]        |
//! | `dbs`     | permutation → reversible                 | [`synthesis::decomposition_based`]         |
//! | `esopbs`  | function → reversible                    | [`synthesis::esop_based_single`]           |
//! | `revsimp` | reversible → reversible                  | [`revopt::simplify`]                       |
//! | `rptm`    | reversible → quantum                     | [`map::to_clifford_t`]                     |
//! | `tpar`    | quantum → quantum                        | [`optimize::optimize_clifford_t`]          |
//! | `ps`      | any → same (records statistics)          | [`ResourceCounts::of`]                     |
//! | `po`      | function → quantum                       | [`phase_oracle::phase_oracle`]             |
//! | `qasmin`  | openqasm source → quantum                | [`qasm::from_qasm`]                        |
//!
//! `po` (direct phase-oracle compilation, the `PhaseOracle` primitive of the
//! paper's ProjectQ flow) has no shell counterpart in equation (5) but lets
//! the phase-function flow route through pipelines as well.

use crate::ir::{Ir, StageSet};
use crate::pass::Pass;
use crate::FlowError;
use qdaflow_boolfn::{hwb, Expr, Permutation, TruthTable};
use qdaflow_mapping::phase_oracle::{self, PhaseOracleOptions};
use qdaflow_mapping::{map, optimize};
use qdaflow_quantum::qasm;
use qdaflow_quantum::resource::ResourceCounts;
use qdaflow_reversible::optimize as revopt;
use qdaflow_reversible::synthesis::{self, EsopSynthesisOptions, SynthesisMethod};

fn no_arguments(pass: &'static str, args: &[String]) -> Result<(), FlowError> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(FlowError::InvalidPassArguments {
            pass: pass.to_owned(),
            message: format!("unexpected arguments: {}", args.join(" ")),
        })
    }
}

fn parse_usize(pass: &'static str, text: &str) -> Result<usize, FlowError> {
    text.parse().map_err(|_| FlowError::InvalidPassArguments {
        pass: pass.to_owned(),
        message: format!("expected a number, found '{text}'"),
    })
}

/// How a [`Revgen`] pass obtains its specification.
#[derive(Debug, Clone, PartialEq)]
enum RevgenSpec {
    /// Pass the pipeline's external input specification through unchanged.
    Passthrough,
    /// The hidden-weighted-bit permutation on `n` variables.
    Hwb(usize),
    /// A seeded random permutation.
    Random {
        /// Number of variables.
        num_vars: usize,
        /// RNG seed.
        seed: u64,
    },
    /// An explicit permutation.
    Permutation(Permutation),
    /// An explicit single-output Boolean function. The optional `source`
    /// keeps the argument text the pass was parsed from (`--expr "…"
    /// [--vars N]`), so parsed pipelines describe themselves in a form
    /// [`Pipeline::parse`](crate::Pipeline::parse) accepts again.
    Function {
        /// The materialized truth table.
        table: TruthTable,
        /// The canonical argument suffix captured at parse time, if any.
        source: Option<String>,
    },
}

/// `revgen` — produce the specification a pipeline starts from.
///
/// With arguments (`--hwb`, `--random`, `--perm`, `--expr`) the pass is a
/// *generator*: it ignores and replaces whatever flows into it, and a
/// pipeline starting with it can be run without an external input via
/// [`Pipeline::run_generated`](crate::Pipeline::run_generated). Without
/// arguments it passes the pipeline's external input specification through,
/// which is how `Pipeline::parse("revgen; tbs; …")` accepts the
/// specification at run time.
#[derive(Debug, Clone, PartialEq)]
pub struct Revgen {
    spec: RevgenSpec,
}

impl Revgen {
    /// A passthrough `revgen`: the specification is the pipeline input.
    pub fn passthrough() -> Self {
        Self {
            spec: RevgenSpec::Passthrough,
        }
    }

    /// The hidden-weighted-bit permutation on `n` variables (`--hwb n`).
    pub fn hwb(n: usize) -> Self {
        Self {
            spec: RevgenSpec::Hwb(n),
        }
    }

    /// A seeded random permutation (`--random n --seed s`).
    pub fn random(num_vars: usize, seed: u64) -> Self {
        Self {
            spec: RevgenSpec::Random { num_vars, seed },
        }
    }

    /// An explicit permutation (`--perm "0 2 1 3"`).
    pub fn permutation(permutation: Permutation) -> Self {
        Self {
            spec: RevgenSpec::Permutation(permutation),
        }
    }

    /// An explicit Boolean function (`--expr "(a & b) ^ c"`).
    pub fn function(function: TruthTable) -> Self {
        Self {
            spec: RevgenSpec::Function {
                table: function,
                source: None,
            },
        }
    }

    /// Builds a `revgen` pass from shell-style arguments.
    ///
    /// The grammar is strict — every argument must be consumed: exactly one
    /// of `--hwb N`, `--random N [--seed S]`, `--perm "0 2 1 3"`,
    /// `--expr "(a & b) ^ c" [--vars N]`, or no arguments at all for a
    /// passthrough pass. A stray or misspelled flag is an error, not
    /// silently ignored.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidPassArguments`] for malformed flags and
    /// propagates specification construction errors.
    pub fn from_args(args: &[String]) -> Result<Self, FlowError> {
        if args.is_empty() {
            return Ok(Self::passthrough());
        }
        let invalid = |message: String| FlowError::InvalidPassArguments {
            pass: "revgen".to_owned(),
            message,
        };
        let mut flags: Vec<(&str, &str)> = Vec::new();
        let mut index = 0;
        while index < args.len() {
            let flag = args[index].as_str();
            if !matches!(
                flag,
                "--hwb" | "--random" | "--seed" | "--perm" | "--expr" | "--vars"
            ) {
                return Err(invalid(format!(
                    "unexpected argument '{flag}' (expected --hwb N | --random N [--seed S] | --perm \"0 2 1 3\" | --expr \"(a & b) ^ c\" [--vars N])"
                )));
            }
            if flags.iter().any(|(known, _)| *known == flag) {
                return Err(invalid(format!("flag '{flag}' given more than once")));
            }
            let Some(value) = args.get(index + 1) else {
                return Err(invalid(format!("flag '{flag}' expects a value")));
            };
            flags.push((flag, value));
            index += 2;
        }
        let value_of = |name: &str| flags.iter().find(|(f, _)| *f == name).map(|(_, v)| *v);
        let modes = ["--hwb", "--random", "--perm", "--expr"]
            .iter()
            .filter(|mode| value_of(mode).is_some())
            .count();
        if modes != 1 {
            return Err(invalid(
                "expected exactly one of --hwb, --random, --perm, --expr".to_owned(),
            ));
        }
        if value_of("--seed").is_some() && value_of("--random").is_none() {
            return Err(invalid("--seed is only valid with --random".to_owned()));
        }
        if value_of("--vars").is_some() && value_of("--expr").is_none() {
            return Err(invalid("--vars is only valid with --expr".to_owned()));
        }
        if let Some(n) = value_of("--hwb") {
            return Ok(Self::hwb(parse_usize("revgen", n)?));
        }
        if let Some(n) = value_of("--random") {
            let n = parse_usize("revgen", n)?;
            let seed = value_of("--seed")
                .map(|s| parse_usize("revgen", s))
                .transpose()?
                .unwrap_or(1) as u64;
            return Ok(Self::random(n, seed));
        }
        if let Some(list) = value_of("--perm") {
            let values: Result<Vec<usize>, _> = list
                .split([',', ' '])
                .filter(|t| !t.is_empty())
                .map(|t| parse_usize("revgen", t))
                .collect();
            return Ok(Self::permutation(Permutation::new(values?)?));
        }
        let expression = value_of("--expr").expect("exactly one mode flag is present");
        let expr = Expr::parse(expression)?;
        let explicit_vars = value_of("--vars")
            .map(|s| parse_usize("revgen", s))
            .transpose()?;
        let num_vars = explicit_vars.unwrap_or_else(|| expr.num_vars());
        let source = match explicit_vars {
            Some(vars) => format!("--expr \"{expression}\" --vars {vars}"),
            None => format!("--expr \"{expression}\""),
        };
        Ok(Self {
            spec: RevgenSpec::Function {
                table: expr.truth_table(num_vars)?,
                source: Some(source),
            },
        })
    }
}

impl Pass for Revgen {
    fn name(&self) -> &'static str {
        "revgen"
    }

    fn describe(&self) -> String {
        match &self.spec {
            RevgenSpec::Passthrough => "revgen".to_owned(),
            RevgenSpec::Hwb(n) => format!("revgen --hwb {n}"),
            RevgenSpec::Random { num_vars, seed } => {
                format!("revgen --random {num_vars} --seed {seed}")
            }
            RevgenSpec::Permutation(p) => {
                let images: Vec<String> = p.as_slice().iter().map(usize::to_string).collect();
                format!("revgen --perm \"{}\"", images.join(" "))
            }
            RevgenSpec::Function {
                source: Some(source),
                ..
            } => format!("revgen {source}"),
            // No source text (programmatic construction): not re-parseable,
            // but the truth-table hex keeps the description — and therefore
            // any spec key derived from it — unique per function.
            RevgenSpec::Function {
                table,
                source: None,
            } => format!(
                "revgen --expr ({} vars, 0x{})",
                table.num_vars(),
                table.to_hex()
            ),
        }
    }

    fn accepts(&self) -> StageSet {
        match self.spec {
            RevgenSpec::Passthrough => StageSet::SPEC,
            _ => StageSet::ANY,
        }
    }

    fn output(&self, input: StageSet) -> StageSet {
        match self.spec {
            RevgenSpec::Passthrough => input.intersect(StageSet::SPEC),
            RevgenSpec::Hwb(_) | RevgenSpec::Random { .. } | RevgenSpec::Permutation(_) => {
                StageSet::PERMUTATION
            }
            RevgenSpec::Function { .. } => StageSet::FUNCTION,
        }
    }

    fn apply(&self, input: Ir) -> Result<Ir, FlowError> {
        match &self.spec {
            RevgenSpec::Passthrough => match input {
                spec @ (Ir::Permutation(_) | Ir::Function(_)) => Ok(spec),
                other => Err(FlowError::StageMismatch {
                    pass: self.describe(),
                    expected: StageSet::SPEC,
                    found: other.stage(),
                }),
            },
            _ => self.generate().expect("non-passthrough revgen generates"),
        }
    }

    fn generate(&self) -> Option<Result<Ir, FlowError>> {
        match &self.spec {
            RevgenSpec::Passthrough => None,
            RevgenSpec::Hwb(n) => Some(Ok(Ir::Permutation(hwb::hwb_permutation(*n)))),
            RevgenSpec::Random { num_vars, seed } => Some(Ok(Ir::Permutation(
                Permutation::random_seeded(*num_vars, *seed),
            ))),
            RevgenSpec::Permutation(p) => Some(Ok(Ir::Permutation(p.clone()))),
            RevgenSpec::Function { table, .. } => Some(Ok(Ir::Function(table.clone()))),
        }
    }

    fn is_generator(&self) -> bool {
        !matches!(self.spec, RevgenSpec::Passthrough)
    }
}

/// `tbs` — transformation-based synthesis (permutation → reversible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tbs;

impl Pass for Tbs {
    fn name(&self) -> &'static str {
        "tbs"
    }

    fn accepts(&self) -> StageSet {
        StageSet::PERMUTATION
    }

    fn output(&self, _input: StageSet) -> StageSet {
        StageSet::REVERSIBLE
    }

    fn apply(&self, input: Ir) -> Result<Ir, FlowError> {
        let permutation = input.into_permutation(self.name())?;
        Ok(Ir::Reversible(synthesis::transformation_based(
            &permutation,
        )?))
    }
}

/// `dbs` — decomposition-based synthesis (permutation → reversible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Dbs;

impl Pass for Dbs {
    fn name(&self) -> &'static str {
        "dbs"
    }

    fn accepts(&self) -> StageSet {
        StageSet::PERMUTATION
    }

    fn output(&self, _input: StageSet) -> StageSet {
        StageSet::REVERSIBLE
    }

    fn apply(&self, input: Ir) -> Result<Ir, FlowError> {
        let permutation = input.into_permutation(self.name())?;
        Ok(Ir::Reversible(synthesis::decomposition_based(
            &permutation,
        )?))
    }
}

/// A synthesis pass for either [`SynthesisMethod`] (used by canned flows
/// that select the method at run time).
pub fn synthesis_pass(method: SynthesisMethod) -> Box<dyn Pass> {
    match method {
        SynthesisMethod::TransformationBased => Box::new(Tbs),
        SynthesisMethod::DecompositionBased => Box::new(Dbs),
    }
}

/// `esopbs` — ESOP-based synthesis / Bennett embedding (function →
/// reversible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Esopbs {
    /// Options of the underlying ESOP extraction.
    pub options: EsopSynthesisOptions,
}

impl Pass for Esopbs {
    fn name(&self) -> &'static str {
        "esopbs"
    }

    fn accepts(&self) -> StageSet {
        StageSet::FUNCTION
    }

    fn output(&self, _input: StageSet) -> StageSet {
        StageSet::REVERSIBLE
    }

    fn apply(&self, input: Ir) -> Result<Ir, FlowError> {
        let function = input.into_function(self.name())?;
        Ok(Ir::Reversible(synthesis::esop_based_single(
            &function,
            self.options,
        )?))
    }
}

/// `revsimp` — reversible circuit simplification (reversible → reversible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Revsimp;

impl Pass for Revsimp {
    fn name(&self) -> &'static str {
        "revsimp"
    }

    fn accepts(&self) -> StageSet {
        StageSet::REVERSIBLE
    }

    fn output(&self, input: StageSet) -> StageSet {
        input
    }

    fn apply(&self, input: Ir) -> Result<Ir, FlowError> {
        let circuit = input.into_reversible(self.name())?;
        let (simplified, _) = revopt::simplify(&circuit);
        Ok(Ir::Reversible(simplified))
    }
}

/// `rptm` — reversible-to-quantum mapping (reversible → quantum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rptm {
    /// Options of the Clifford+T mapping.
    pub options: map::MappingOptions,
}

impl Pass for Rptm {
    fn name(&self) -> &'static str {
        "rptm"
    }

    fn accepts(&self) -> StageSet {
        StageSet::REVERSIBLE
    }

    fn output(&self, _input: StageSet) -> StageSet {
        StageSet::QUANTUM
    }

    fn apply(&self, input: Ir) -> Result<Ir, FlowError> {
        let circuit = input.into_reversible(self.name())?;
        Ok(Ir::Quantum(map::to_clifford_t(&circuit, &self.options)?))
    }
}

/// `tpar` — T-count optimization by phase folding (quantum → quantum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tpar;

impl Pass for Tpar {
    fn name(&self) -> &'static str {
        "tpar"
    }

    fn accepts(&self) -> StageSet {
        StageSet::QUANTUM
    }

    fn output(&self, input: StageSet) -> StageSet {
        input
    }

    fn apply(&self, input: Ir) -> Result<Ir, FlowError> {
        let circuit = input.into_quantum(self.name())?;
        Ok(Ir::Quantum(optimize::optimize_clifford_t(&circuit)))
    }
}

/// `ps` — print statistics: passes the IR through unchanged and records a
/// statistics line into the [`PassRecord`](crate::PassRecord).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ps;

impl Pass for Ps {
    fn name(&self) -> &'static str {
        "ps"
    }

    fn accepts(&self) -> StageSet {
        StageSet::ANY
    }

    fn output(&self, input: StageSet) -> StageSet {
        input
    }

    fn apply(&self, input: Ir) -> Result<Ir, FlowError> {
        Ok(input)
    }

    fn summarize(&self, output: &Ir) -> Option<String> {
        Some(match output {
            Ir::Permutation(p) => format!(
                "permutation on {} variables ({} fixed points)",
                p.num_vars(),
                p.fixed_points()
            ),
            Ir::Function(f) => format!(
                "boolean function on {} variables ({} ones)",
                f.num_vars(),
                f.count_ones()
            ),
            Ir::Reversible(c) => format!(
                "reversible circuit: {} lines, {} gates ({}), quantum cost {}",
                c.num_lines(),
                c.num_gates(),
                c.gate_profile(),
                c.quantum_cost()
            ),
            Ir::Quantum(c) => {
                let counts = ResourceCounts::of(c);
                format!(
                    "quantum circuit: {} qubits, {} gates, depth {}, T-count {}, T-depth {}, CNOTs {}",
                    counts.num_qubits,
                    counts.total_gates,
                    counts.depth,
                    counts.t_count,
                    counts.t_depth,
                    counts.cnot_count
                )
            }
            Ir::QasmSource(source) => format!(
                "openqasm source: {} bytes, {} lines",
                source.len(),
                source.lines().count()
            ),
        })
    }
}

/// `qasmin` — OpenQASM 2.0 import (openqasm source → quantum), the front
/// door for circuits not generated by our own spec types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Qasmin;

impl Pass for Qasmin {
    fn name(&self) -> &'static str {
        "qasmin"
    }

    fn accepts(&self) -> StageSet {
        StageSet::QASM_SOURCE
    }

    fn output(&self, _input: StageSet) -> StageSet {
        StageSet::QUANTUM
    }

    fn apply(&self, input: Ir) -> Result<Ir, FlowError> {
        let source = input.into_qasm_source(self.name())?;
        Ok(Ir::Quantum(qasm::from_qasm(&source)?))
    }
}

/// `po` — direct phase-oracle compilation (function → quantum), the
/// `PhaseOracle` primitive of the paper's engine flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseOracle {
    /// Options of the phase-oracle compiler.
    pub options: PhaseOracleOptions,
}

impl PhaseOracle {
    /// A phase-oracle pass that decomposes multi-controlled phases into
    /// Clifford+T (the configuration of the one-call phase-function flow).
    pub fn decomposed() -> Self {
        Self {
            options: PhaseOracleOptions {
                minimize_esop: true,
                decompose: true,
            },
        }
    }
}

impl Pass for PhaseOracle {
    fn name(&self) -> &'static str {
        "po"
    }

    fn accepts(&self) -> StageSet {
        StageSet::FUNCTION
    }

    fn output(&self, _input: StageSet) -> StageSet {
        StageSet::QUANTUM
    }

    fn apply(&self, input: Ir) -> Result<Ir, FlowError> {
        let function = input.into_function(self.name())?;
        Ok(Ir::Quantum(phase_oracle::phase_oracle(
            &function,
            &self.options,
        )?))
    }
}

/// Resolves a tokenized statement (`name` plus `args`) into a pass — the
/// registry behind [`Pipeline::parse`](crate::Pipeline::parse).
///
/// # Errors
///
/// Returns [`FlowError::UnknownPass`] for unregistered names and
/// [`FlowError::InvalidPassArguments`] for malformed arguments.
pub fn pass_from_tokens(name: &str, args: &[String]) -> Result<Box<dyn Pass>, FlowError> {
    match name {
        "revgen" => Ok(Box::new(Revgen::from_args(args)?)),
        "tbs" => {
            no_arguments("tbs", args)?;
            Ok(Box::new(Tbs))
        }
        "dbs" => {
            no_arguments("dbs", args)?;
            Ok(Box::new(Dbs))
        }
        "esopbs" => {
            no_arguments("esopbs", args)?;
            Ok(Box::new(Esopbs::default()))
        }
        "revsimp" => {
            no_arguments("revsimp", args)?;
            Ok(Box::new(Revsimp))
        }
        "rptm" => {
            no_arguments("rptm", args)?;
            Ok(Box::new(Rptm::default()))
        }
        "tpar" => {
            no_arguments("tpar", args)?;
            Ok(Box::new(Tpar))
        }
        "ps" => {
            // `ps -c` (select the circuit stores) is accepted for
            // compatibility with the paper's shell syntax; the pipeline `ps`
            // always reports the current IR.
            if args.iter().any(|a| a != "-c") {
                return Err(FlowError::InvalidPassArguments {
                    pass: "ps".to_owned(),
                    message: format!("unexpected arguments: {}", args.join(" ")),
                });
            }
            Ok(Box::new(Ps))
        }
        "po" => {
            no_arguments("po", args)?;
            Ok(Box::new(PhaseOracle::decomposed()))
        }
        "qasmin" => {
            no_arguments("qasmin", args)?;
            Ok(Box::new(Qasmin))
        }
        other => Err(FlowError::UnknownPass {
            name: other.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revgen_argument_parsing_mirrors_the_shell() {
        let pass = Revgen::from_args(&[]).unwrap();
        assert!(!pass.is_generator());
        let args: Vec<String> = ["--hwb", "4"].iter().map(|s| (*s).to_owned()).collect();
        let pass = Revgen::from_args(&args).unwrap();
        assert!(pass.is_generator());
        assert_eq!(pass.describe(), "revgen --hwb 4");
        let args: Vec<String> = ["--expr", "(a & b) ^ c"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let pass = Revgen::from_args(&args).unwrap();
        assert_eq!(pass.output(StageSet::ANY), StageSet::FUNCTION);
        let args: Vec<String> = ["--frobnicate"].iter().map(|s| (*s).to_owned()).collect();
        assert!(matches!(
            Revgen::from_args(&args),
            Err(FlowError::InvalidPassArguments { .. })
        ));
    }

    #[test]
    fn revgen_rejects_stray_and_inconsistent_arguments() {
        let to_args =
            |tokens: &[&str]| -> Vec<String> { tokens.iter().map(|s| (*s).to_owned()).collect() };
        // A typo next to a valid mode is an error, not silently dropped.
        for tokens in [
            &["--hwb", "4", "--frobnicate", "1"][..],
            &["--random", "4", "--sed", "7"],
            &["--hwb", "4", "--hwb", "5"],
            &["--hwb"],
            &["--hwb", "4", "--perm", "0 1"],
            &["--seed", "7"],
            &["--vars", "3"],
            &["--hwb", "4", "--vars", "3"],
        ] {
            assert!(
                matches!(
                    Revgen::from_args(&to_args(tokens)),
                    Err(FlowError::InvalidPassArguments { .. })
                ),
                "{tokens:?}"
            );
        }
        // The documented combinations still parse.
        Revgen::from_args(&to_args(&["--random", "4", "--seed", "7"])).unwrap();
        Revgen::from_args(&to_args(&["--expr", "a ^ b", "--vars", "5"])).unwrap();
    }

    #[test]
    fn registry_resolves_all_named_passes() {
        for name in [
            "revgen", "tbs", "dbs", "esopbs", "revsimp", "rptm", "tpar", "ps", "po", "qasmin",
        ] {
            let pass = pass_from_tokens(name, &[]).unwrap();
            assert_eq!(pass.name(), name);
        }
        assert!(matches!(
            pass_from_tokens("frobnicate", &[]),
            Err(FlowError::UnknownPass { .. })
        ));
        assert!(matches!(
            pass_from_tokens("tbs", &["--fast".to_owned()]),
            Err(FlowError::InvalidPassArguments { .. })
        ));
        // `ps -c` is accepted.
        pass_from_tokens("ps", &["-c".to_owned()]).unwrap();
    }

    #[test]
    fn passes_reject_wrong_stages_at_run_time() {
        let err = Tbs.apply(Ir::Quantum(qdaflow_quantum::QuantumCircuit::new(1)));
        assert!(matches!(err, Err(FlowError::StageMismatch { .. })));
        let err = Tpar.apply(Ir::Permutation(Permutation::identity(2)));
        assert!(matches!(err, Err(FlowError::StageMismatch { .. })));
    }

    #[test]
    fn ps_summarizes_every_stage() {
        for ir in [
            Ir::Permutation(Permutation::identity(2)),
            Ir::Function(TruthTable::zero(2).unwrap()),
            Ir::Reversible(qdaflow_reversible::ReversibleCircuit::new(2)),
            Ir::Quantum(qdaflow_quantum::QuantumCircuit::new(2)),
            Ir::QasmSource("qreg q[1];\nh q[0];".to_owned()),
        ] {
            assert!(Ps.summarize(&ir).is_some());
        }
    }

    #[test]
    fn qasmin_imports_source_and_rejects_other_stages() {
        let out = Qasmin
            .apply(Ir::QasmSource("qreg q[2];\nh q;\ncx q[0],q[1];".to_owned()))
            .unwrap();
        match out {
            Ir::Quantum(circuit) => assert_eq!(circuit.num_gates(), 3),
            other => panic!("expected a quantum circuit, got {other:?}"),
        }
        assert!(matches!(
            Qasmin.apply(Ir::Permutation(Permutation::identity(2))),
            Err(FlowError::StageMismatch { .. })
        ));
        assert!(matches!(
            Qasmin.apply(Ir::QasmSource("qreg q[1];\nbad".to_owned())),
            Err(FlowError::Quantum(_))
        ));
    }
}
