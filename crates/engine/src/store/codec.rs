//! Binary encoding of compiled circuits for the disk-backed oracle cache.
//!
//! The format is deliberately dumb: little-endian fixed-width integers, a
//! one-byte tag per gate, and a trailing FNV-1a checksum over everything
//! before it. A decoder **never panics** on hostile input — every read is
//! bounds-checked, every gate is re-validated through
//! [`QuantumCircuit::push`], and any mismatch (bad magic, unknown version,
//! truncation, trailing garbage, checksum drift) comes back as a
//! [`DecodeError`] that the cache layer degrades to a miss.

use qdaflow_quantum::{QuantumCircuit, QuantumGate};
use std::time::Duration;

/// Leading magic of every disk-cache entry (`"QDFC"`).
pub const MAGIC: [u8; 4] = *b"QDFC";
/// Current on-disk format version. Entries with any other version are
/// treated as misses, so a format change never corrupts a running service —
/// it just recompiles.
pub const FORMAT_VERSION: u32 = 1;

/// Why a disk-cache entry failed to decode. All variants degrade to a cache
/// miss; the distinction only feeds the corruption counters and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the record did.
    Truncated,
    /// The leading magic bytes are not [`MAGIC`].
    BadMagic,
    /// The version field is not [`FORMAT_VERSION`].
    WrongVersion(u32),
    /// The stored key does not match the file the entry was read from.
    KeyMismatch,
    /// An unknown gate tag, an out-of-range qubit, or trailing bytes.
    Malformed,
    /// The trailing checksum does not match the payload.
    ChecksumMismatch,
}

/// 64-bit FNV-1a over a byte slice — the integrity checksum of disk
/// entries (fast, dependency-free, and plenty for corruption detection;
/// this is not a cryptographic boundary).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        state ^= u64::from(byte);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

fn put_u16(out: &mut Vec<u8>, value: u16) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Encodes a compiled circuit (plus its cache key and cold compile time)
/// into one self-validating disk record.
pub fn encode_entry(key: u128, circuit: &QuantumCircuit, compile_time: Duration) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + circuit.num_gates() * 8);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    out.extend_from_slice(&key.to_le_bytes());
    put_u64(
        &mut out,
        compile_time.as_nanos().min(u128::from(u64::MAX)) as u64,
    );
    put_u32(&mut out, circuit.num_qubits() as u32);
    put_u32(&mut out, circuit.num_gates() as u32);
    for gate in circuit.gates() {
        encode_gate(&mut out, gate);
    }
    let checksum = fnv1a64(&out);
    put_u64(&mut out, checksum);
    out
}

fn encode_gate(out: &mut Vec<u8>, gate: &QuantumGate) {
    let q32 = |q: usize| q as u32;
    match gate {
        QuantumGate::H(q) => {
            out.push(0);
            put_u32(out, q32(*q));
        }
        QuantumGate::X(q) => {
            out.push(1);
            put_u32(out, q32(*q));
        }
        QuantumGate::Y(q) => {
            out.push(2);
            put_u32(out, q32(*q));
        }
        QuantumGate::Z(q) => {
            out.push(3);
            put_u32(out, q32(*q));
        }
        QuantumGate::S(q) => {
            out.push(4);
            put_u32(out, q32(*q));
        }
        QuantumGate::Sdg(q) => {
            out.push(5);
            put_u32(out, q32(*q));
        }
        QuantumGate::T(q) => {
            out.push(6);
            put_u32(out, q32(*q));
        }
        QuantumGate::Tdg(q) => {
            out.push(7);
            put_u32(out, q32(*q));
        }
        QuantumGate::Rz { qubit, angle } => {
            out.push(8);
            put_u32(out, q32(*qubit));
            put_u64(out, angle.to_bits());
        }
        QuantumGate::Cx { control, target } => {
            out.push(9);
            put_u32(out, q32(*control));
            put_u32(out, q32(*target));
        }
        QuantumGate::Cz { a, b } => {
            out.push(10);
            put_u32(out, q32(*a));
            put_u32(out, q32(*b));
        }
        QuantumGate::Swap { a, b } => {
            out.push(11);
            put_u32(out, q32(*a));
            put_u32(out, q32(*b));
        }
        QuantumGate::Ccx {
            control_a,
            control_b,
            target,
        } => {
            out.push(12);
            put_u32(out, q32(*control_a));
            put_u32(out, q32(*control_b));
            put_u32(out, q32(*target));
        }
        QuantumGate::Mcx { controls, target } => {
            out.push(13);
            put_u16(out, controls.len() as u16);
            for &control in controls {
                put_u32(out, q32(control));
            }
            put_u32(out, q32(*target));
        }
        QuantumGate::Mcz { qubits } => {
            out.push(14);
            put_u16(out, qubits.len() as u16);
            for &qubit in qubits {
                put_u32(out, q32(qubit));
            }
        }
    }
}

/// A bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, position: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .position
            .checked_add(len)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(DecodeError::Truncated)?;
        let slice = &self.bytes[self.position..end];
        self.position = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
}

/// Decodes one disk record, verifying magic, version, the embedded key
/// against `expected_key`, the checksum, and every gate.
pub fn decode_entry(
    bytes: &[u8],
    expected_key: u128,
) -> Result<(QuantumCircuit, Duration), DecodeError> {
    if bytes.len() < 8 {
        return Err(DecodeError::Truncated);
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored_checksum = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a64(payload) != stored_checksum {
        // Distinguish the common cases for the robustness tests: a record
        // whose header is intact but whose body was cut short reports as
        // truncation, everything else as checksum drift.
        let mut probe = Cursor::new(payload);
        if probe.take(4).map(|magic| magic != MAGIC).unwrap_or(true) {
            return Err(DecodeError::BadMagic);
        }
        if let Ok(version) = probe.u32() {
            if version != FORMAT_VERSION {
                return Err(DecodeError::WrongVersion(version));
            }
        }
        return Err(DecodeError::ChecksumMismatch);
    }
    let mut cursor = Cursor::new(payload);
    if cursor.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = cursor.u32()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::WrongVersion(version));
    }
    if cursor.u128()? != expected_key {
        return Err(DecodeError::KeyMismatch);
    }
    let compile_time = Duration::from_nanos(cursor.u64()?);
    let num_qubits = cursor.u32()? as usize;
    let num_gates = cursor.u32()? as usize;
    let mut circuit = QuantumCircuit::new(num_qubits);
    for _ in 0..num_gates {
        let gate = decode_gate(&mut cursor)?;
        circuit.push(gate).map_err(|_| DecodeError::Malformed)?;
    }
    if cursor.position != payload.len() {
        return Err(DecodeError::Malformed);
    }
    Ok((circuit, compile_time))
}

fn decode_gate(cursor: &mut Cursor<'_>) -> Result<QuantumGate, DecodeError> {
    let q = |value: u32| value as usize;
    Ok(match cursor.u8()? {
        0 => QuantumGate::H(q(cursor.u32()?)),
        1 => QuantumGate::X(q(cursor.u32()?)),
        2 => QuantumGate::Y(q(cursor.u32()?)),
        3 => QuantumGate::Z(q(cursor.u32()?)),
        4 => QuantumGate::S(q(cursor.u32()?)),
        5 => QuantumGate::Sdg(q(cursor.u32()?)),
        6 => QuantumGate::T(q(cursor.u32()?)),
        7 => QuantumGate::Tdg(q(cursor.u32()?)),
        8 => QuantumGate::Rz {
            qubit: q(cursor.u32()?),
            angle: f64::from_bits(cursor.u64()?),
        },
        9 => QuantumGate::Cx {
            control: q(cursor.u32()?),
            target: q(cursor.u32()?),
        },
        10 => QuantumGate::Cz {
            a: q(cursor.u32()?),
            b: q(cursor.u32()?),
        },
        11 => QuantumGate::Swap {
            a: q(cursor.u32()?),
            b: q(cursor.u32()?),
        },
        12 => QuantumGate::Ccx {
            control_a: q(cursor.u32()?),
            control_b: q(cursor.u32()?),
            target: q(cursor.u32()?),
        },
        13 => {
            let len = cursor.u16()? as usize;
            let mut controls = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                controls.push(q(cursor.u32()?));
            }
            QuantumGate::Mcx {
                controls,
                target: q(cursor.u32()?),
            }
        }
        14 => {
            let len = cursor.u16()? as usize;
            let mut qubits = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                qubits.push(q(cursor.u32()?));
            }
            QuantumGate::Mcz { qubits }
        }
        _ => return Err(DecodeError::Malformed),
    })
}

/// Maps a gate mnemonic back to the `&'static str` the in-process
/// [`ResourceCounts`](qdaflow_quantum::resource::ResourceCounts) histogram
/// uses — journal records store gate names as text and must re-intern them
/// on load. Unknown names are `None` (a corrupt record, skipped).
pub fn intern_gate_name(name: &str) -> Option<&'static str> {
    const NAMES: [&str; 15] = [
        "h", "x", "y", "z", "s", "sdg", "t", "tdg", "rz", "cx", "cz", "swap", "ccx", "mcx", "mcz",
    ];
    NAMES.iter().find(|&&known| known == name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_circuit() -> QuantumCircuit {
        let mut circuit = QuantumCircuit::new(5);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit
            .push(QuantumGate::Rz {
                qubit: 1,
                angle: std::f64::consts::FRAC_PI_4,
            })
            .unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 2,
            })
            .unwrap();
        circuit
            .push(QuantumGate::Mcx {
                controls: vec![0, 1, 2],
                target: 4,
            })
            .unwrap();
        circuit
            .push(QuantumGate::Mcz {
                qubits: vec![1, 3, 4],
            })
            .unwrap();
        circuit.push(QuantumGate::Tdg(3)).unwrap();
        circuit
    }

    #[test]
    fn round_trip_preserves_every_gate() {
        let circuit = example_circuit();
        let time = Duration::from_micros(1234);
        let bytes = encode_entry(42, &circuit, time);
        let (decoded, decoded_time) = decode_entry(&bytes, 42).unwrap();
        assert_eq!(decoded.num_qubits(), circuit.num_qubits());
        assert_eq!(decoded.gates(), circuit.gates());
        assert_eq!(decoded_time, time);
    }

    #[test]
    fn every_truncation_is_a_typed_failure_never_a_panic() {
        let bytes = encode_entry(7, &example_circuit(), Duration::ZERO);
        for len in 0..bytes.len() {
            assert!(decode_entry(&bytes[..len], 7).is_err(), "len={len}");
        }
    }

    #[test]
    fn corruption_kinds_are_distinguished() {
        let circuit = example_circuit();
        let good = encode_entry(7, &circuit, Duration::ZERO);
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(decode_entry(&bad, 7), Err(DecodeError::BadMagic));
        // Wrong version (with a recomputed checksum, so only the version is
        // at fault).
        let mut bad = good.clone();
        bad[4] = 99;
        let len = bad.len();
        let sum = fnv1a64(&bad[..len - 8]);
        bad[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_entry(&bad, 7), Err(DecodeError::WrongVersion(99)));
        // Wrong key.
        assert_eq!(decode_entry(&good, 8), Err(DecodeError::KeyMismatch));
        // Flipped payload byte.
        let mut bad = good.clone();
        let flip = bad.len() / 2;
        bad[flip] ^= 0xff;
        assert!(decode_entry(&bad, 7).is_err());
        // Trailing garbage after a valid record.
        let mut bad = good;
        bad.extend_from_slice(&[0u8; 3]);
        assert!(decode_entry(&bad, 7).is_err());
    }

    #[test]
    fn out_of_range_qubits_are_rejected_through_circuit_validation() {
        let mut circuit = QuantumCircuit::new(2);
        circuit.push(QuantumGate::H(1)).unwrap();
        let mut bytes = encode_entry(1, &circuit, Duration::ZERO);
        // Rewrite the qubit operand of the single H gate to 9 (out of
        // range for a 2-qubit circuit) and fix the checksum.
        let gate_offset = 4 + 4 + 16 + 8 + 4 + 4 + 1;
        bytes[gate_offset..gate_offset + 4].copy_from_slice(&9u32.to_le_bytes());
        let len = bytes.len();
        let sum = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_entry(&bytes, 1), Err(DecodeError::Malformed));
    }

    #[test]
    fn gate_names_intern_to_their_static_forms() {
        for gate in example_circuit().gates() {
            assert_eq!(intern_gate_name(gate.name()), Some(gate.name()));
        }
        assert_eq!(intern_gate_name("frobnicate"), None);
    }
}
