//! Unified metrics registry: counters, gauges and histograms with label
//! sets, rendered in Prometheus text exposition format.
//!
//! Handles returned by the registry ([`Counter`], [`Gauge`], [`Histogram`])
//! are cheap `Arc`-shared atomics: registration takes the registry lock
//! once, after which updates are lock-free. Register a handle once (e.g. in
//! a `OnceLock`) and update it from hot paths freely.
//!
//! A process-wide instance is available via [`global_metrics`]; subsystems
//! that want isolated numbers (such as `JobService`) create their own
//! [`MetricsRegistry`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Seconds-scale latency bucket upper bounds shared by the workspace's
/// duration histograms.
pub const DURATION_BUCKETS: [f64; 10] =
    [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0];

/// Monotonic counter handle. Cloning shares the underlying value.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value. Intended for mirroring totals that are already
    /// tracked elsewhere (e.g. cache-layer atomics) into the registry at
    /// render time; ordinary call sites should only ever [`Counter::inc`].
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Gauge handle holding a signed integer value. Cloning shares the value.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the gauge to an absolute value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; rendered cumulatively.
    buckets: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64` bits.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// Histogram handle with fixed bucket bounds. Cloning shares the series.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Self {
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let core = &*self.0;
        for (bucket, bound) in core.buckets.iter().zip(core.bounds.iter()) {
            if value <= *bound {
                bucket.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut current = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match core.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Record a wall-clock duration in seconds.
    pub fn observe_duration(&self, duration: Duration) {
        self.observe(duration.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum FamilyKind {
    Counter,
    Gauge,
    Histogram,
}

impl FamilyKind {
    fn as_str(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Series {
    /// Rendered label pairs without braces, e.g. `backend="dense"`.
    labels: String,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    kind: FamilyKind,
    series: Vec<Series>,
}

#[derive(Default)]
struct State {
    families: Vec<Family>,
    index: HashMap<String, usize>,
}

/// A named collection of metric families rendered as Prometheus text
/// exposition. Families appear in registration order; series within a
/// family in first-use order.
#[derive(Default)]
pub struct MetricsRegistry {
    state: Mutex<State>,
}

/// Escape a label value per the Prometheus exposition rules.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        out.push_str(&escape_label_value(value));
        out.push('"');
    }
    out
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn series_handle(
        &self,
        name: &str,
        help: &str,
        kind: FamilyKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let idx = match state.index.get(name) {
            Some(&idx) => idx,
            None => {
                let idx = state.families.len();
                state.families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                state.index.insert(name.to_string(), idx);
                idx
            }
        };
        let family = &mut state.families[idx];
        assert!(
            family.kind == kind,
            "metric family {name} already registered as a {}",
            family.kind.as_str()
        );
        let labels = render_labels(labels);
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            return series.handle.clone();
        }
        let handle = make();
        family.series.push(Series {
            labels,
            handle: handle.clone(),
        });
        handle
    }

    /// Fetch (or create) a counter series. Repeated calls with the same
    /// name and labels return handles sharing one value.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series_handle(name, help, FamilyKind::Counter, labels, || {
            Handle::Counter(Counter::default())
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Fetch (or create) a gauge series.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series_handle(name, help, FamilyKind::Gauge, labels, || {
            Handle::Gauge(Gauge::default())
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Fetch (or create) a histogram series with the given bucket bounds.
    /// The bounds of the first registration win for the whole family.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.series_handle(name, help, FamilyKind::Histogram, labels, || {
            Handle::Histogram(Histogram::with_bounds(bounds))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Render every family in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Append the exposition text to an existing buffer.
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        for family in &state.families {
            let name = &family.name;
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for series in &family.series {
                let labels = &series.labels;
                match &series.handle {
                    Handle::Counter(c) => {
                        if labels.is_empty() {
                            let _ = writeln!(out, "{name} {}", c.get());
                        } else {
                            let _ = writeln!(out, "{name}{{{labels}}} {}", c.get());
                        }
                    }
                    Handle::Gauge(g) => {
                        if labels.is_empty() {
                            let _ = writeln!(out, "{name} {}", g.get());
                        } else {
                            let _ = writeln!(out, "{name}{{{labels}}} {}", g.get());
                        }
                    }
                    Handle::Histogram(h) => {
                        let core = &*h.0;
                        let mut cumulative = 0u64;
                        for (bound, bucket) in core.bounds.iter().zip(core.buckets.iter()) {
                            cumulative += bucket.load(Ordering::Relaxed);
                            let le = format!("le=\"{bound}\"");
                            let joined = if labels.is_empty() {
                                le
                            } else {
                                format!("{labels},{le}")
                            };
                            let _ = writeln!(out, "{name}_bucket{{{joined}}} {cumulative}");
                        }
                        let inf = if labels.is_empty() {
                            "le=\"+Inf\"".to_string()
                        } else {
                            format!("{labels},le=\"+Inf\"")
                        };
                        let _ = writeln!(out, "{name}_bucket{{{inf}}} {}", h.count());
                        if labels.is_empty() {
                            let _ = writeln!(out, "{name}_sum {}", h.sum());
                            let _ = writeln!(out, "{name}_count {}", h.count());
                        } else {
                            let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum());
                            let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
                        }
                    }
                }
            }
        }
    }
}

/// The process-wide registry shared by the pipeline, kernel, cache,
/// dispatcher and sampling layers.
pub fn global_metrics() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_series_share_values_by_labels() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("demo_total", "Demo.", &[("backend", "dense")]);
        let b = registry.counter("demo_total", "Demo.", &[("backend", "dense")]);
        let c = registry.counter("demo_total", "Demo.", &[("backend", "sparse")]);
        a.inc();
        b.add(2);
        c.inc();
        let text = registry.render();
        assert!(text.contains("# HELP demo_total Demo.\n"));
        assert!(text.contains("# TYPE demo_total counter\n"));
        assert!(text.contains("demo_total{backend=\"dense\"} 3\n"));
        assert!(text.contains("demo_total{backend=\"sparse\"} 1\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat_seconds", "Latency.", &[0.001, 0.01, 0.1], &[]);
        h.observe(0.0005);
        h.observe(0.002);
        h.observe(5.0);
        let text = registry.render();
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.001\"} 1\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.01\"} 2\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 2\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_seconds_count 3\n"));
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 5.0025).abs() < 1e-9);
    }

    #[test]
    fn gauge_set_and_add() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("workers", "Active workers.", &[]);
        g.set(4);
        g.add(-1);
        assert_eq!(g.get(), 3);
        assert!(registry.render().contains("workers 3\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("esc_total", "Escapes.", &[("pass", "a\"b\\c")]);
        c.inc();
        assert!(registry
            .render()
            .contains("esc_total{pass=\"a\\\"b\\\\c\"} 1\n"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("kindful", "A counter.", &[]);
        let _ = registry.gauge("kindful", "Not a gauge.", &[]);
    }
}
