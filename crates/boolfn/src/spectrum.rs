//! Walsh–Hadamard spectra, bentness tests and dual bent functions.
//!
//! A Boolean function `f : B^n -> B` is *bent* when its Walsh–Hadamard
//! spectrum is perfectly flat, i.e. `|W_f(w)| = 2^{n/2}` for every `w`. Bent
//! functions are the functions for which the quantum hidden shift algorithm of
//! the paper applies; the *dual* bent function `f~` is defined through the
//! sign of the spectrum and is the second oracle the algorithm queries.

use crate::{BoolfnError, TruthTable};

/// Computes the Walsh–Hadamard spectrum of `f`.
///
/// The result has one entry per frequency `w`, with
/// `W_f(w) = sum_x (-1)^{f(x) + w·x}`.
///
/// # Example
///
/// ```
/// use qdaflow_boolfn::{spectrum, TruthTable};
///
/// # fn main() -> Result<(), qdaflow_boolfn::BoolfnError> {
/// let f = TruthTable::from_fn(2, |x| x == 0b11)?; // AND is bent on 2 variables
/// let w = spectrum::walsh_hadamard(&f);
/// assert!(w.iter().all(|&c| c.abs() == 2));
/// # Ok(())
/// # }
/// ```
pub fn walsh_hadamard(f: &TruthTable) -> Vec<i64> {
    let mut spectrum: Vec<i64> = (0..f.len())
        .map(|x| if f.get(x) { -1i64 } else { 1i64 })
        .collect();
    fwht(&mut spectrum);
    spectrum
}

/// In-place fast Walsh–Hadamard transform (butterfly network).
fn fwht(values: &mut [i64]) {
    let len = values.len();
    let mut stride = 1usize;
    while stride < len {
        let mut base = 0usize;
        while base < len {
            for offset in 0..stride {
                let low = base + offset;
                let high = low + stride;
                let (a, b) = (values[low], values[high]);
                values[low] = a + b;
                values[high] = a - b;
            }
            base += stride << 1;
        }
        stride <<= 1;
    }
}

/// Reconstructs a Boolean function from its Walsh–Hadamard spectrum — the
/// inverse of [`walsh_hadamard`], using the fact that the transform is an
/// involution up to a `2^n` scale factor.
///
/// # Errors
///
/// Returns [`BoolfnError::NotPowerOfTwo`] if the spectrum length is not a
/// power of two, and [`BoolfnError::NotBent`] if the values are not the
/// spectrum of any Boolean function (the inverse transform must land on
/// `±2^n` everywhere).
pub fn from_spectrum(spectrum: &[i64]) -> Result<TruthTable, BoolfnError> {
    let len = spectrum.len();
    if !len.is_power_of_two() {
        return Err(BoolfnError::NotPowerOfTwo { length: len });
    }
    let num_vars = len.trailing_zeros() as usize;
    // The FWHT is an involution up to the 2^n scale factor: transforming the
    // spectrum again recovers len * (-1)^{f(x)}.
    let mut signs = spectrum.to_vec();
    fwht(&mut signs);
    let scale = len as i64;
    let mut table = TruthTable::zero(num_vars)?;
    for (x, &sign) in signs.iter().enumerate() {
        if sign == scale {
            table.set(x, false);
        } else if sign == -scale {
            table.set(x, true);
        } else {
            // The spectrum is not that of any Boolean function.
            return Err(BoolfnError::NotBent);
        }
    }
    Ok(table)
}

/// Returns `true` if the function is bent (perfectly flat spectrum).
///
/// Functions over an odd number of variables are never bent.
pub fn is_bent(f: &TruthTable) -> bool {
    let n = f.num_vars();
    if n == 0 || !n.is_multiple_of(2) {
        return false;
    }
    let target = 1i64 << (n / 2);
    walsh_hadamard(f).iter().all(|&c| c.abs() == target)
}

/// Computes the dual bent function `f~`, defined by
/// `(-1)^{f~(w)} = 2^{-n/2} * W_f(w)`.
///
/// # Errors
///
/// Returns [`BoolfnError::OddVariableCount`] if `f` has an odd number of
/// variables and [`BoolfnError::NotBent`] if the spectrum is not flat.
pub fn dual_bent(f: &TruthTable) -> Result<TruthTable, BoolfnError> {
    let n = f.num_vars();
    if !n.is_multiple_of(2) {
        return Err(BoolfnError::OddVariableCount { num_vars: n });
    }
    let target = 1i64 << (n / 2);
    let spectrum = walsh_hadamard(f);
    let mut dual = TruthTable::zero(n)?;
    for (w, &coefficient) in spectrum.iter().enumerate() {
        if coefficient == target {
            dual.set(w, false);
        } else if coefficient == -target {
            dual.set(w, true);
        } else {
            return Err(BoolfnError::NotBent);
        }
    }
    Ok(dual)
}

/// Nonlinearity of the function: the Hamming distance to the closest affine
/// function, `2^{n-1} - max_w |W_f(w)| / 2`.
pub fn nonlinearity(f: &TruthTable) -> usize {
    let max = walsh_hadamard(f)
        .iter()
        .map(|c| c.unsigned_abs())
        .max()
        .unwrap_or(0) as usize;
    f.len() / 2 - max / 2
}

/// Computes the autocorrelation spectrum
/// `r_f(s) = sum_x (-1)^{f(x) + f(x ^ s)}`.
///
/// For a bent function every off-zero autocorrelation coefficient vanishes,
/// which is what makes the convolution-based quantum algorithm work.
pub fn autocorrelation(f: &TruthTable) -> Vec<i64> {
    let len = f.len();
    (0..len)
        .map(|s| {
            (0..len)
                .map(|x| if f.get(x) ^ f.get(x ^ s) { -1i64 } else { 1i64 })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    fn inner_product(n_half: usize) -> TruthTable {
        TruthTable::from_fn(2 * n_half, |z| {
            let x = z & ((1 << n_half) - 1);
            let y = z >> n_half;
            ((x & y).count_ones() % 2) == 1
        })
        .unwrap()
    }

    #[test]
    fn spectrum_of_constant_zero() {
        let f = TruthTable::zero(3).unwrap();
        let w = walsh_hadamard(&f);
        assert_eq!(w[0], 8);
        assert!(w[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn spectrum_of_linear_function_is_concentrated() {
        // f(x) = x0 ^ x2 has spectrum concentrated at w = 0b101.
        let f = Expr::parse("x0 ^ x2").unwrap().truth_table(3).unwrap();
        let w = walsh_hadamard(&f);
        for (freq, &value) in w.iter().enumerate() {
            if freq == 0b101 {
                assert_eq!(value, 8);
            } else {
                assert_eq!(value, 0);
            }
        }
    }

    #[test]
    fn parseval_identity_holds() {
        for seed in 0..10usize {
            let f = TruthTable::from_fn(4, |x| ((x * 37 + seed * 11) % 9) < 4).unwrap();
            let w = walsh_hadamard(&f);
            let energy: i64 = w.iter().map(|&c| c * c).sum();
            assert_eq!(energy, (f.len() * f.len()) as i64);
        }
    }

    #[test]
    fn inner_product_functions_are_bent() {
        for n_half in 1..=3 {
            let f = inner_product(n_half);
            assert!(is_bent(&f), "inner product on 2*{n_half} vars must be bent");
        }
    }

    #[test]
    fn paper_function_is_bent_and_self_dual() {
        // f = x0x1 ^ x2x3 from the paper; Section VII states f~ = f.
        let f = Expr::parse("(x0 & x1) ^ (x2 & x3)")
            .unwrap()
            .truth_table(4)
            .unwrap();
        assert!(is_bent(&f));
        let dual = dual_bent(&f).unwrap();
        assert_eq!(dual, f);
    }

    #[test]
    fn dual_of_dual_is_identity() {
        let f = inner_product(3);
        let dual = dual_bent(&f).unwrap();
        let dual_dual = dual_bent(&dual).unwrap();
        assert_eq!(dual_dual, f);
    }

    #[test]
    fn linear_functions_are_not_bent() {
        let f = Expr::parse("x0 ^ x1").unwrap().truth_table(2).unwrap();
        assert!(!is_bent(&f));
        assert!(matches!(dual_bent(&f), Err(BoolfnError::NotBent)));
    }

    #[test]
    fn odd_variable_count_cannot_be_bent() {
        let f = TruthTable::from_fn(3, |x| x.count_ones() % 2 == 1).unwrap();
        assert!(!is_bent(&f));
        assert!(matches!(
            dual_bent(&f),
            Err(BoolfnError::OddVariableCount { .. })
        ));
    }

    #[test]
    fn nonlinearity_of_bent_function_is_maximal() {
        let f = inner_product(2);
        // Maximal nonlinearity for n = 4 is 2^{3} - 2^{1} = 6.
        assert_eq!(nonlinearity(&f), 6);
        let linear = Expr::parse("x0 ^ x1 ^ x2 ^ x3")
            .unwrap()
            .truth_table(4)
            .unwrap();
        assert_eq!(nonlinearity(&linear), 0);
    }

    #[test]
    fn autocorrelation_of_bent_function_vanishes_off_zero() {
        let f = inner_product(2);
        let r = autocorrelation(&f);
        assert_eq!(r[0], 16);
        assert!(r[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn shifted_bent_function_has_same_dual_up_to_linear_phase() {
        // For g(x) = f(x ^ s), the dual satisfies g~(w) = f~(w) ^ (w · s).
        let f = inner_product(2);
        let s = 0b0110usize;
        let g = f.xor_shift(s);
        assert!(is_bent(&g));
        let dual_f = dual_bent(&f).unwrap();
        let dual_g = dual_bent(&g).unwrap();
        for w in 0..16usize {
            let dot = ((w & s).count_ones() % 2) == 1;
            assert_eq!(dual_g.get(w), dual_f.get(w) ^ dot);
        }
    }
}
