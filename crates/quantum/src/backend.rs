//! Execution backends.
//!
//! The ProjectQ flow of the paper can target "various types of backends, be
//! it software (simulator, emulator, resource counter, etc.) or hardware".
//! This module defines the [`Backend`] trait used by the engine crate and the
//! three software backends of this reproduction: the exact
//! [`StatevectorBackend`], the [`NoisyHardwareBackend`] standing in for the
//! IBM Quantum Experience chip, and the [`ResourceCounterBackend`].
//!
//! Dense state evolution inside these backends is governed by the
//! [`ExecConfig`] they are built with: by default circuits compile into the
//! [`ExecPlan`](crate::plan::ExecPlan) kernel (structure-of-arrays amplitudes,
//! cache-blocked sweeps, persistent worker pool); setting
//! [`ExecConfig::plan`] to `false` replays the legacy fused gate-at-a-time
//! path instead.

use crate::fusion::ExecConfig;
use crate::noise::{NoiseModel, NoisySimulator};
use crate::resource::ResourceCounts;
use crate::statevector::Statevector;
use crate::{QuantumCircuit, QuantumError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// The result of executing a circuit on a backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionResult {
    /// Number of qubits that were measured.
    pub num_qubits: usize,
    /// Number of shots executed.
    pub shots: usize,
    /// Histogram of measured basis states (missing entries mean zero counts).
    pub counts: BTreeMap<usize, usize>,
    /// Resource counts of the executed circuit.
    pub resources: ResourceCounts,
}

impl ExecutionResult {
    /// Builds the uniform result of a sampling backend from a dense
    /// histogram of measured basis states.
    ///
    /// Every backend that takes shots ([`StatevectorBackend`],
    /// [`NoisyHardwareBackend`]) produces its result through this one
    /// constructor, so the shape of [`ExecutionResult`] stays identical
    /// across execution paths.
    pub fn from_histogram(circuit: &QuantumCircuit, shots: usize, histogram: &[usize]) -> Self {
        Self {
            num_qubits: circuit.num_qubits(),
            shots,
            counts: histogram
                .iter()
                .enumerate()
                .filter(|(_, &count)| count > 0)
                .map(|(outcome, &count)| (outcome, count))
                .collect(),
            resources: ResourceCounts::of(circuit),
        }
    }

    /// Builds the result of a sampling backend from a *sparse* histogram of
    /// measured basis states (outcome → count).
    ///
    /// Backends whose state representation never materializes all `2^n`
    /// outcomes (the sparse statevector simulator) cannot afford the dense
    /// histogram slice of [`ExecutionResult::from_histogram`]; this
    /// constructor accepts the counts map directly while producing the exact
    /// same result shape (zero counts are dropped either way).
    pub fn from_counts(
        circuit: &QuantumCircuit,
        shots: usize,
        counts: BTreeMap<usize, usize>,
    ) -> Self {
        Self {
            num_qubits: circuit.num_qubits(),
            shots,
            counts: counts.into_iter().filter(|&(_, count)| count > 0).collect(),
            resources: ResourceCounts::of(circuit),
        }
    }

    /// Builds the result of a backend that analyzes a circuit without
    /// sampling it (the [`ResourceCounterBackend`]).
    pub fn resources_only(circuit: &QuantumCircuit) -> Self {
        Self::from_histogram(circuit, 0, &[])
    }

    /// Empirical probability of an outcome.
    pub fn probability_of(&self, outcome: usize) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        *self.counts.get(&outcome).unwrap_or(&0) as f64 / self.shots as f64
    }

    /// The most frequent outcome and its empirical probability; `None` when
    /// no shots were taken.
    pub fn most_likely(&self) -> Option<(usize, f64)> {
        self.counts
            .iter()
            .max_by_key(|(_, &count)| count)
            .map(|(&outcome, &count)| (outcome, count as f64 / self.shots.max(1) as f64))
    }
}

/// A target that can execute quantum circuits, mirroring the backend concept
/// of ProjectQ and the machine concept of Q#.
pub trait Backend {
    /// Human-readable backend name.
    fn name(&self) -> &str;

    /// Executes `circuit` for `shots` measurement shots.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit cannot be executed on this backend
    /// (for example, too many qubits for a simulator).
    fn run(
        &mut self,
        circuit: &QuantumCircuit,
        shots: usize,
    ) -> Result<ExecutionResult, QuantumError>;

    /// Reconfigures how the backend executes circuits (thread count, gate
    /// fusion). Backends that do not simulate — or that deliberately avoid
    /// the optimized execution layer, like the dense reference oracle —
    /// ignore the setting.
    fn set_exec_config(&mut self, _config: ExecConfig) {}
}

/// Exact statevector simulation backend: the measurement statistics are
/// sampled from the exact output distribution.
#[derive(Debug, Clone)]
pub struct StatevectorBackend {
    rng: StdRng,
    config: ExecConfig,
}

impl StatevectorBackend {
    /// Creates a backend with a fixed random seed (sampling is the only
    /// source of randomness) and the default execution configuration.
    pub fn seeded(seed: u64) -> Self {
        Self::with_config(seed, ExecConfig::default())
    }

    /// Creates a backend with an explicit execution configuration.
    pub fn with_config(seed: u64, config: ExecConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// The execution configuration in use.
    pub fn exec_config(&self) -> ExecConfig {
        self.config
    }

    /// Runs the circuit and returns the exact final state instead of sampled
    /// counts.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::TooManyQubits`] for oversized circuits.
    pub fn statevector(&self, circuit: &QuantumCircuit) -> Result<Statevector, QuantumError> {
        Statevector::run(circuit, &self.config)
    }

    /// Runs the circuit and samples `shots` measurements with the
    /// shot-sharded parallel sampler under an explicit `seed`, independent of
    /// the backend's own RNG stream. The histogram is reproducible at any
    /// thread count — it depends only on `(circuit, shots, seed,
    /// shot_shard_size)`; see [`crate::sampling`]. This is the execution path
    /// the batch engine uses.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::TooManyQubits`] for oversized circuits.
    pub fn run_sharded(
        &self,
        circuit: &QuantumCircuit,
        shots: usize,
        seed: u64,
    ) -> Result<ExecutionResult, QuantumError> {
        let state = Statevector::run(circuit, &self.config)?;
        let histogram = state.sample_counts_sharded(seed, shots, &self.config);
        Ok(ExecutionResult::from_histogram(circuit, shots, &histogram))
    }
}

impl Default for StatevectorBackend {
    fn default() -> Self {
        Self::seeded(0xC0FFEE)
    }
}

impl Backend for StatevectorBackend {
    fn name(&self) -> &str {
        "statevector-simulator"
    }

    fn run(
        &mut self,
        circuit: &QuantumCircuit,
        shots: usize,
    ) -> Result<ExecutionResult, QuantumError> {
        let state = Statevector::run(circuit, &self.config)?;
        let histogram = state.sample_counts(&mut self.rng, shots);
        Ok(ExecutionResult::from_histogram(circuit, shots, &histogram))
    }

    fn set_exec_config(&mut self, config: ExecConfig) {
        self.config = config;
    }
}

/// Noisy-hardware backend: Monte-Carlo simulation with a gate-level noise
/// model, standing in for the IBM Quantum Experience chip of the paper.
#[derive(Debug, Clone)]
pub struct NoisyHardwareBackend {
    simulator: NoisySimulator,
    rng: StdRng,
    name: String,
}

impl NoisyHardwareBackend {
    /// Creates a backend with the given noise model and random seed.
    pub fn new(model: NoiseModel, seed: u64) -> Self {
        Self {
            simulator: NoisySimulator::new(model),
            rng: StdRng::seed_from_u64(seed),
            name: "noisy-hardware-model(ibmqx)".to_owned(),
        }
    }

    /// The noise model in use.
    pub fn model(&self) -> &NoiseModel {
        self.simulator.model()
    }
}

impl Default for NoisyHardwareBackend {
    fn default() -> Self {
        Self::new(NoiseModel::ibm_qx_2017(), 0x1B3)
    }
}

impl Backend for NoisyHardwareBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(
        &mut self,
        circuit: &QuantumCircuit,
        shots: usize,
    ) -> Result<ExecutionResult, QuantumError> {
        let histogram = self.simulator.run(circuit, shots, &mut self.rng)?;
        Ok(ExecutionResult::from_histogram(circuit, shots, &histogram))
    }

    fn set_exec_config(&mut self, config: ExecConfig) {
        self.simulator.set_exec_config(config);
    }
}

/// Resource-counting backend: never simulates, only reports gate counts.
#[derive(Debug, Clone, Default)]
pub struct ResourceCounterBackend;

impl Backend for ResourceCounterBackend {
    fn name(&self) -> &str {
        "resource-counter"
    }

    fn run(
        &mut self,
        circuit: &QuantumCircuit,
        _shots: usize,
    ) -> Result<ExecutionResult, QuantumError> {
        Ok(ExecutionResult::resources_only(circuit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuantumGate;

    fn bell() -> QuantumCircuit {
        let mut circuit = QuantumCircuit::new(2);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 1,
            })
            .unwrap();
        circuit
    }

    #[test]
    fn statevector_backend_samples_bell_distribution() {
        let mut backend = StatevectorBackend::seeded(11);
        let result = backend.run(&bell(), 2048).unwrap();
        assert_eq!(result.shots, 2048);
        assert!(result.probability_of(0b01) < 1e-9);
        assert!((result.probability_of(0b00) - 0.5).abs() < 0.05);
        assert_eq!(result.resources.cnot_count, 1);
        let (outcome, probability) = result.most_likely().unwrap();
        assert!(outcome == 0b00 || outcome == 0b11);
        assert!(probability > 0.4);
        assert_eq!(backend.name(), "statevector-simulator");
    }

    #[test]
    fn noisy_backend_spreads_probability_mass() {
        let mut ideal = StatevectorBackend::seeded(1);
        let mut noisy = NoisyHardwareBackend::default();
        let ideal_result = ideal.run(&bell(), 1024).unwrap();
        let noisy_result = noisy.run(&bell(), 1024).unwrap();
        let ideal_mass = ideal_result.probability_of(0b00) + ideal_result.probability_of(0b11);
        let noisy_mass = noisy_result.probability_of(0b00) + noisy_result.probability_of(0b11);
        assert!((ideal_mass - 1.0).abs() < 1e-9);
        assert!(noisy_mass < 0.999);
        assert!(noisy_mass > 0.75);
        assert!(noisy.name().contains("noisy"));
    }

    #[test]
    fn resource_counter_backend_reports_without_sampling() {
        let mut backend = ResourceCounterBackend;
        let result = backend.run(&bell(), 1000).unwrap();
        assert_eq!(result.shots, 0);
        assert!(result.counts.is_empty());
        assert_eq!(result.resources.total_gates, 2);
        assert_eq!(result.probability_of(0), 0.0);
        assert!(result.most_likely().is_none());
        assert_eq!(backend.name(), "resource-counter");
    }

    #[test]
    fn reproducibility_with_fixed_seed() {
        let mut a = StatevectorBackend::seeded(99);
        let mut b = StatevectorBackend::seeded(99);
        assert_eq!(a.run(&bell(), 100).unwrap(), b.run(&bell(), 100).unwrap());
    }

    #[test]
    fn sharded_run_is_thread_count_invariant_and_seed_keyed() {
        let circuit = bell();
        let sequential = StatevectorBackend::with_config(0, ExecConfig::sequential())
            .run_sharded(&circuit, 4096, 77)
            .unwrap();
        let threaded = StatevectorBackend::with_config(0, ExecConfig::sequential().with_threads(8))
            .run_sharded(&circuit, 4096, 77)
            .unwrap();
        assert_eq!(sequential, threaded);
        // The seed, not the backend's internal RNG, keys the histogram.
        let reseeded = StatevectorBackend::with_config(1, ExecConfig::sequential())
            .run_sharded(&circuit, 4096, 77)
            .unwrap();
        assert_eq!(sequential, reseeded);
        assert_eq!(sequential.shots, 4096);
        assert!(sequential.probability_of(0b01) < 1e-12);
    }

    #[test]
    fn sparse_and_dense_histogram_constructors_agree() {
        let circuit = bell();
        let histogram = [100usize, 0, 0, 156];
        let dense = ExecutionResult::from_histogram(&circuit, 256, &histogram);
        let sparse = ExecutionResult::from_counts(
            &circuit,
            256,
            BTreeMap::from([(0usize, 100usize), (1, 0), (3, 156)]),
        );
        assert_eq!(dense, sparse);
        assert!(!sparse.counts.contains_key(&1), "zero counts are dropped");
    }

    #[test]
    fn statevector_accessor_returns_exact_state() {
        let backend = StatevectorBackend::default();
        let state = backend.statevector(&bell()).unwrap();
        assert!((state.probability_of(0b11) - 0.5).abs() < 1e-12);
    }
}
