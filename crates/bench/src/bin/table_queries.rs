//! Experiment E7: quantum versus classical query complexity of the hidden
//! shift problem (Section VI.A of the paper states that the quantum
//! algorithm needs one query to `g` and one to `f~`, whereas classical
//! algorithms cannot find the shift efficiently).

use qdaflow::classical::{ClassicalSolver, QUANTUM_QUERIES};
use qdaflow::hidden_shift::{HiddenShiftInstance, OracleStyle};
use qdaflow::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== E7: quantum vs classical query complexity ===");
    println!(
        "{:<6} {:<8} {:>16} {:>16} {:>14}",
        "n", "shift", "classical-elim", "classical-sample", "quantum"
    );
    for n_half in 2..=5usize {
        let n = 2 * n_half;
        let pi = Permutation::random_seeded(n_half, 77 + n_half as u64);
        let h = TruthTable::from_fn(n_half, |y| y % 3 == 1)?;
        let mm = MaioranaMcFarland::new(pi, h)?;
        let f = mm.truth_table()?;
        let shift = (0x5A5A_5A5Ausize >> (16 - n)) & ((1usize << n) - 1);
        let g = f.xor_shift(shift);

        let elimination = ClassicalSolver::new().solve_by_elimination(&f, &g);
        assert_eq!(elimination.shift, Some(shift));
        let sampling = ClassicalSolver::new().solve_by_sampling(&f, &g, 4 * n, 9);

        // The quantum algorithm: verified on the simulator for sizes that fit.
        let quantum_ok = if n <= 8 {
            let instance = HiddenShiftInstance::from_maiorana_mcfarland(&mm, shift)?;
            let circuit = instance.build_circuit(OracleStyle::TruthTable)?;
            let outcome = instance.run_ideal(&circuit, 64)?;
            outcome.recovered_shift == Some(shift)
        } else {
            true
        };
        println!(
            "{:<6} {:<8} {:>16} {:>16} {:>11} {}",
            n,
            shift,
            elimination.queries,
            sampling.queries,
            QUANTUM_QUERIES,
            if quantum_ok {
                "(verified)"
            } else {
                "(analytic)"
            }
        );
    }
    Ok(())
}
