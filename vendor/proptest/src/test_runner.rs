//! Test-runner configuration and deterministic per-test seeding.

use crate::TestRng;
use rand::SeedableRng as _;

/// Configuration of a [`proptest!`](crate::proptest) block, mirroring
/// `proptest::test_runner::Config`.
///
/// Like upstream proptest, the `PROPTEST_CASES` environment variable scales
/// the number of generated cases. In this shim it acts as a **floor** over
/// both the default and explicit `with_cases` values, so a CI job can run
/// every suite in the workspace at a higher case count without touching the
/// per-suite configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` generated inputs per test
    /// (or more, if `PROPTEST_CASES` demands it).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases: cases.max(env_case_floor().unwrap_or(0)),
        }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep the offline CI loop
    /// fast, while still exercising each property broadly. `PROPTEST_CASES`
    /// raises the count.
    fn default() -> Self {
        Self::with_cases(64)
    }
}

/// The `PROPTEST_CASES` environment override, if set and parseable.
fn env_case_floor() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Derives a deterministic RNG from a test name (FNV-1a over the name), so
/// every run of the suite generates identical cases.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_case_counts_are_honored() {
        // Without PROPTEST_CASES in the environment the explicit value wins;
        // with it, the env value is only ever a floor.
        let config = ProptestConfig::with_cases(97);
        assert!(config.cases >= 97);
        assert!(ProptestConfig::default().cases >= 64);
    }
}
