//! Property-based tests: the Clifford+T mapping and the optimization passes
//! must preserve circuit semantics for arbitrary reversible inputs.

use proptest::prelude::*;
use qdaflow_boolfn::{Permutation, TruthTable};
use qdaflow_mapping::{map, optimize, phase_oracle};
use qdaflow_quantum::statevector::Statevector;
use qdaflow_quantum::{QuantumCircuit, QuantumGate};
use qdaflow_reversible::synthesis;

fn permutation(n: usize) -> impl Strategy<Value = Permutation> {
    any::<u64>().prop_map(move |seed| Permutation::random_seeded(n, seed))
}

fn truth_table(n: usize) -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(any::<bool>(), 1 << n)
        .prop_map(move |bits| TruthTable::from_bits(n, bits).expect("n is small"))
}

/// A random Clifford+T circuit over `n` qubits.
fn clifford_t_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = QuantumCircuit> {
    let gate = prop_oneof![
        (0..n).prop_map(QuantumGate::H),
        (0..n).prop_map(QuantumGate::X),
        (0..n).prop_map(QuantumGate::T),
        (0..n).prop_map(QuantumGate::Tdg),
        (0..n).prop_map(QuantumGate::S),
        ((0..n), (0..n))
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(control, target)| QuantumGate::Cx { control, target }),
    ];
    prop::collection::vec(gate, 0..max_gates).prop_map(move |gates| {
        let mut circuit = QuantumCircuit::new(n);
        for gate in gates {
            circuit.push(gate).expect("generated gates are in range");
        }
        circuit
    })
}

fn states_match(a: &QuantumCircuit, b: &QuantumCircuit) -> bool {
    // Compare on a phase-sensitive input state.
    let n = a.num_qubits().max(b.num_qubits());
    let mut preparation = QuantumCircuit::new(n);
    for qubit in 0..n {
        preparation.push(QuantumGate::H(qubit)).unwrap();
        preparation
            .push(QuantumGate::Rz {
                qubit,
                angle: 0.37 * (qubit as f64 + 1.0),
            })
            .unwrap();
    }
    let mut lhs = preparation.clone();
    lhs.append(&a.extended_to(n)).unwrap();
    let mut rhs = preparation;
    rhs.append(&b.extended_to(n)).unwrap();
    let x = Statevector::from_circuit(&lhs).unwrap();
    let y = Statevector::from_circuit(&rhs).unwrap();
    x.fidelity(&y) > 1.0 - 1e-9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mapping_preserves_the_permutation(p in permutation(3)) {
        let reversible = synthesis::transformation_based(&p).unwrap();
        let quantum = map::to_clifford_t(&reversible, &map::MappingOptions::default()).unwrap();
        for basis in 0..8usize {
            let mut state = Statevector::basis_state(quantum.num_qubits(), basis).unwrap();
            state.apply_circuit(&quantum);
            prop_assert!(state.probability_of(p.apply(basis)) > 1.0 - 1e-9);
        }
    }

    #[test]
    fn phase_folding_preserves_semantics(c in clifford_t_circuit(3, 25)) {
        let optimized = optimize::phase_folding(&c);
        prop_assert!(states_match(&c, &optimized));
        prop_assert!(optimized.t_count() <= c.t_count());
    }

    #[test]
    fn cancellation_preserves_semantics(c in clifford_t_circuit(3, 25)) {
        let optimized = optimize::cancel_adjacent(&c);
        prop_assert!(states_match(&c, &optimized));
        prop_assert!(optimized.num_gates() <= c.num_gates());
    }

    #[test]
    fn combined_optimization_preserves_semantics(c in clifford_t_circuit(3, 25)) {
        let optimized = optimize::optimize_clifford_t(&c);
        prop_assert!(states_match(&c, &optimized));
        prop_assert!(optimized.t_count() <= c.t_count());
    }

    #[test]
    fn phase_oracles_match_their_functions(f in truth_table(4)) {
        let oracle = phase_oracle::phase_oracle(&f, &Default::default()).unwrap();
        prop_assert!(phase_oracle::oracle_matches_function(&oracle, &f));
    }

    #[test]
    fn circuit_followed_by_dagger_optimizes_to_zero_t(c in clifford_t_circuit(3, 15)) {
        let mut round_trip = c.clone();
        round_trip.append(&c.dagger()).unwrap();
        let optimized = optimize::optimize_clifford_t(&round_trip);
        prop_assert_eq!(optimized.t_count(), 0);
    }
}
