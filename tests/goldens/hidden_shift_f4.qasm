// Hidden-shift instance for the Maiorana-McFarland bent function
// f(x) = x0*x1 ^ x2*x3 (its own dual) with shift s = 0b0101.
// Roetteler's algorithm lands on |s> = |5> with probability 1.
//
// This file is deliberately NOT in the shape our exporter produces:
// it uses two named registers, user gate definitions, whole-register
// broadcast, and pi-expression angles.
OPENQASM 2.0;
include "qelib1.inc";

qreg d[2];
qreg e[2];

// cu1(pi) is exactly a controlled-Z under our phase convention.
gate zz a, b { cu1(pi) a, b; }

// Shifted oracle (-1)^{f(x ^ s)}: the shift flips x0 and x2, so each
// product term x0*x1 picks up a linear correction z on the partner.
gate oracle_shifted p, q, r, t { zz p, q; z q; zz r, t; z t; }

// Dual oracle (-1)^{f(x)} — f is self-dual.
gate oracle_dual p, q, r, t { zz p, q; zz r, t; }

h d;
h e;
oracle_shifted d[0], d[1], e[0], e[1];
h d;
h e;
oracle_dual d[0], d[1], e[0], e[1];
h d;
h e;
// A pi-expression rotation on a qubit that ends in |1>: global phase only.
rz(pi/4) d[0];
