//! Integration tests of the fault-tolerant batch job service: checkpoint
//! resume across a real SIGKILL, warm disk-cache restarts, and a lint of
//! the Prometheus exposition produced by `metrics_text()`.

use qdaflow::prelude::*;
use qdaflow_engine::JobServiceConfig;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const CHILD_ENV: &str = "QDAFLOW_SERVICE_KILL_CHILD_DIR";
const CHILD_JOBS: usize = 24;

/// The deterministic workload shared by the killed child and the resuming
/// parent: identical jobs produce identical digests, which is what the
/// journal keys checkpoints by.
fn workload() -> Vec<BatchJob> {
    (0..CHILD_JOBS)
        .map(|index| {
            BatchJob::new(
                OracleSpec::permutation(
                    Permutation::random_seeded(6, 1000 + index as u64),
                    SynthesisChoice::default(),
                ),
                40_000,
                index as u64,
            )
        })
        .collect()
}

fn service_over(dir: &Path, workers: usize) -> JobService {
    JobService::new(JobServiceConfig {
        workers,
        disk_cache_dir: Some(dir.join("cache")),
        journal_path: Some(dir.join("journal.log")),
        ..JobServiceConfig::default()
    })
    .expect("open service over scratch dir")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qdaflow-integration-service-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
        .parse()
        .unwrap_or_else(|_| panic!("metric {name} is not an integer"))
}

fn journaled_records(journal: &Path) -> usize {
    std::fs::read_to_string(journal)
        .map(|text| text.lines().filter(|l| l.starts_with("done ")).count())
        .unwrap_or(0)
}

/// Not a test of its own: the process that gets SIGKILLed. Re-entered by
/// `killed_batches_resume_without_recompiling_completed_jobs` via
/// `current_exe()`; a plain `cargo test` run sees the env var unset and
/// returns immediately.
#[test]
fn kill_resume_child_entry() {
    let Ok(dir) = std::env::var(CHILD_ENV) else {
        return;
    };
    // One worker: jobs complete strictly one after another, so the journal
    // grows steadily while later jobs are still pending — the parent kills
    // somewhere in the middle.
    let service = service_over(Path::new(&dir), 1);
    let ids = service.submit_batch(&workload()).unwrap();
    for id in ids {
        assert!(matches!(service.wait(id), Some(JobStatus::Done(_))));
    }
}

#[test]
fn killed_batches_resume_without_recompiling_completed_jobs() {
    let dir = scratch_dir("kill-resume");
    let journal = dir.join("journal.log");
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["kill_resume_child_entry", "--exact", "--nocapture"])
        .env(CHILD_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    // Wait for at least two checkpointed completions, then SIGKILL the
    // child mid-batch. If the machine is so fast that the child finishes
    // the whole workload first, the test degrades gracefully: every job is
    // then a resume and the zero-recompile assertion still bites.
    let deadline = Instant::now() + Duration::from_secs(120);
    while journaled_records(&journal) < 2 {
        assert!(Instant::now() < deadline, "child never checkpointed 2 jobs");
        if child.try_wait().unwrap().is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().ok();
    child.wait().unwrap();
    let completed = journaled_records(&journal);
    assert!(completed >= 2, "journal lost checkpoints after the kill");

    // Resume: a fresh service over the same journal + disk cache, given
    // the identical workload.
    let service = service_over(&dir, 2);
    let ids = service.submit_batch(&workload()).unwrap();
    for id in ids {
        assert!(matches!(service.wait(id), Some(JobStatus::Done(_))));
    }
    let text = service.metrics_text();
    let resumed = metric_value(&text, "qdaflow_jobs_resumed_total");
    assert_eq!(
        resumed as usize, completed,
        "every journaled job must resume from its checkpoint"
    );
    // Zero recompiles of completed jobs: the only compiler work left is the
    // jobs the child never finished — and even those come warm off the disk
    // cache when the child had already compiled them before dying.
    let compiled = metric_value(&text, "qdaflow_oracle_cache_misses_total");
    let disk_hits = metric_value(&text, "qdaflow_oracle_cache_disk_hits_total");
    assert_eq!(
        (compiled + disk_hits) as usize,
        CHILD_JOBS - completed,
        "resumed jobs must not touch the compiler"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restarted_processes_get_warm_disk_cache_hits() {
    let dir = scratch_dir("warm-restart");
    let jobs: Vec<BatchJob> = (0..3)
        .map(|index| {
            BatchJob::new(
                OracleSpec::permutation(
                    Permutation::random_seeded(5, 2000 + index as u64),
                    SynthesisChoice::default(),
                ),
                512,
                index as u64,
            )
        })
        .collect();
    let cold = JobService::new(JobServiceConfig {
        disk_cache_dir: Some(dir.join("cache")),
        ..JobServiceConfig::default()
    })
    .unwrap();
    for id in cold.submit_batch(&jobs).unwrap() {
        assert!(matches!(cold.wait(id), Some(JobStatus::Done(_))));
    }
    let text = cold.metrics_text();
    assert_eq!(metric_value(&text, "qdaflow_oracle_cache_misses_total"), 3);
    assert_eq!(
        metric_value(&text, "qdaflow_oracle_cache_disk_writes_total"),
        3
    );
    drop(cold);
    // No journal this time: the restarted process re-executes every job,
    // but compiles nothing — all three oracles come off the disk.
    let warm = JobService::new(JobServiceConfig {
        disk_cache_dir: Some(dir.join("cache")),
        ..JobServiceConfig::default()
    })
    .unwrap();
    for id in warm.submit_batch(&jobs).unwrap() {
        assert!(matches!(warm.wait(id), Some(JobStatus::Done(_))));
    }
    let text = warm.metrics_text();
    assert_eq!(metric_value(&text, "qdaflow_oracle_cache_misses_total"), 0);
    assert_eq!(
        metric_value(&text, "qdaflow_oracle_cache_disk_hits_total"),
        3
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A hand-rolled lint of the Prometheus text exposition format (version
/// 0.0.4): family declarations, sample syntax, histogram coherence.
fn lint_prometheus_exposition(text: &str) {
    use std::collections::HashMap;
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    /// Cumulative `(le, count)` buckets plus the family's `_count` sample.
    type HistogramSamples = (Vec<(f64, u64)>, Option<u64>);
    let mut types: HashMap<String, String> = HashMap::new();
    let mut histograms: HashMap<String, HistogramSamples> = HashMap::new();
    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap();
            let name = parts.next().unwrap_or_default();
            let tail = parts.next().unwrap_or_default();
            assert!(
                keyword == "HELP" || keyword == "TYPE",
                "unknown comment keyword in {line:?}"
            );
            assert!(valid_name(name), "bad metric name in {line:?}");
            if keyword == "TYPE" {
                assert!(
                    ["counter", "gauge", "histogram", "summary", "untyped"].contains(&tail),
                    "bad metric type in {line:?}"
                );
                types.insert(name.to_owned(), tail.to_owned());
            } else {
                assert!(!tail.is_empty(), "HELP without text in {line:?}");
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = line.rsplit_once(' ').expect("sample without value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("unparseable sample value in {line:?}");
        });
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest.strip_suffix('}').expect("unclosed label braces");
                for pair in labels.split(',') {
                    let (key, val) = pair.split_once('=').expect("label without =");
                    assert!(valid_name(key), "bad label name in {line:?}");
                    assert!(
                        val.starts_with('"') && val.ends_with('"') && val.len() >= 2,
                        "unquoted label value in {line:?}"
                    );
                }
                (name, Some(labels))
            }
            None => (series, None),
        };
        assert!(valid_name(name), "bad sample name in {line:?}");
        // Every sample must belong to a declared family (histogram samples
        // declare under the base name).
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        assert!(
            types.contains_key(family),
            "sample {name} has no TYPE declaration"
        );
        if types[family] == "histogram" {
            let entry = histograms.entry(family.to_owned()).or_default();
            if name.ends_with("_bucket") {
                let le = labels
                    .and_then(|l| l.strip_prefix("le=\""))
                    .and_then(|l| l.strip_suffix('"'))
                    .expect("bucket without le label");
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().expect("unparseable le bound")
                };
                entry.0.push((bound, value as u64));
            } else if name.ends_with("_count") {
                entry.1 = Some(value as u64);
            }
        }
    }
    for (family, (buckets, count)) in histograms {
        assert!(!buckets.is_empty(), "{family} has no buckets");
        let mut previous = 0u64;
        for (bound, cumulative) in &buckets {
            assert!(
                *cumulative >= previous,
                "{family} buckets are not cumulative at le={bound}"
            );
            previous = *cumulative;
        }
        let (last_bound, last_count) = buckets.last().unwrap();
        assert!(
            last_bound.is_infinite(),
            "{family} is missing its +Inf bucket"
        );
        assert_eq!(
            Some(*last_count),
            count,
            "{family}: +Inf bucket disagrees with _count"
        );
    }
}

#[test]
fn metrics_text_is_valid_prometheus_exposition() {
    let service = JobService::new(JobServiceConfig {
        retry_base_delay: Duration::from_millis(1),
        ..JobServiceConfig::default()
    })
    .unwrap();
    // Exercise every counter family: successes, a retried panic, and a
    // deterministic dead-letter.
    let ids = service
        .submit_batch(&[
            BatchJob::new(
                OracleSpec::permutation(
                    Permutation::random_seeded(4, 7),
                    SynthesisChoice::default(),
                ),
                256,
                1,
            ),
            BatchJob::new(OracleSpec::fault_injection(true, 1), 64, 2),
            BatchJob::new(OracleSpec::fault_injection(false, 2), 64, 3),
        ])
        .unwrap();
    for id in ids {
        assert!(service.wait(id).unwrap().is_terminal());
    }
    let text = service.metrics_text();
    lint_prometheus_exposition(&text);
    assert_eq!(metric_value(&text, "qdaflow_jobs_submitted_total"), 3);
    assert_eq!(metric_value(&text, "qdaflow_jobs_dead_total"), 2);
    assert!(metric_value(&text, "qdaflow_jobs_retried_total") >= 1);
}
