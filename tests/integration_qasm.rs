//! End-to-end tests of the OpenQASM front door: a hand-written `.qasm` file
//! that our exporter could not have produced (named registers, user gate
//! definitions, whole-register broadcast, pi-expression angles) flows
//! through `qasm load`, `batch --spec qasm:<file>` on both simulation
//! backends, and a `qasmin` pipeline — with cache keys agreeing across
//! layers.

use qdaflow::pipeline::spec::spec_key;
use qdaflow::prelude::*;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/goldens/hidden_shift_f4.qasm"
);

fn golden_source() -> String {
    std::fs::read_to_string(GOLDEN).unwrap()
}

#[test]
fn golden_file_runs_through_shell_and_both_backends() {
    // The hidden-shift instance in the golden lands on |5> with certainty,
    // so every shot of every backend reports outcome 5.
    let mut shell = Shell::new();
    let output = shell
        .run_script(&format!(
            "qasm load {GOLDEN}\n\
             batch --shots 128 --spec \"qasm:{GOLDEN}\"\n\
             backend sparse\n\
             batch --shots 128 --spec \"qasm:{GOLDEN}\""
        ))
        .unwrap();
    assert!(output.iter().any(|l| l.contains("[qasm] loaded")));
    assert_eq!(
        output
            .iter()
            .filter(|l| l.contains("most likely 5 (p=1.00)"))
            .count(),
        2,
        "{output:?}"
    );
    assert!(output.iter().any(|l| l.contains("on the dense backend")));
    assert!(output.iter().any(|l| l.contains("on the sparse backend")));
    // The loaded circuit is in the store and seeds `flow "qasmin; …"`.
    assert_eq!(shell.store().quantum().unwrap().num_qubits(), 4);
    let output = shell.run_script("flow \"qasmin; ps\"").unwrap();
    assert!(output.iter().any(|l| l.contains("[flow] qasmin")));
}

#[test]
fn golden_file_runs_as_direct_batch_jobs() {
    let spec = OracleSpec::qasm(golden_source());
    let engine = BatchEngine::new();
    let results = engine
        .run_batch(&[
            BatchJob::new(spec.clone(), 256, 3),
            BatchJob::new(spec.clone(), 256, 4).with_backend(BackendChoice::Sparse),
        ])
        .unwrap();
    for result in &results {
        assert_eq!(result.num_qubits, 4);
        assert_eq!(result.most_likely(), Some((5, 1.0)));
    }
    // Dense and sparse jobs are cached independently but compile the same
    // source: one parse per backend key.
    assert_eq!(engine.cache().stats().misses, 2);
}

#[test]
fn qasm_source_pipelines_and_batch_jobs_share_cache_keys() {
    let source = golden_source();
    let spec = OracleSpec::qasm(source.clone());
    let pipeline = Pipeline::parse("qasmin").unwrap();
    assert_eq!(
        spec.cache_key(),
        spec_key(
            Some(&Ir::QasmSource(source.clone())),
            &pipeline.pass_names()
        )
    );
    // And the pipeline really accepts that IR.
    let report = pipeline.run(Ir::QasmSource(source)).unwrap();
    let circuit = report.final_quantum().unwrap();
    assert_eq!(circuit.num_qubits(), 4);
    assert!(circuit.is_clifford_t());
}

#[test]
fn imported_circuit_agrees_between_dense_and_sparse_statevectors() {
    use qdaflow::quantum::qasm::from_qasm;
    use qdaflow::quantum::statevector::Statevector;

    let circuit = from_qasm(&golden_source()).unwrap();
    let dense = Statevector::from_circuit(&circuit).unwrap();
    assert!((dense.probability_of(5) - 1.0).abs() < 1e-9);
    let mut sparse = SparseStatevector::new(circuit.num_qubits()).unwrap();
    sparse.apply_circuit(&circuit);
    assert!((sparse.probability_of(5) - 1.0).abs() < 1e-9);
}
