//! Boolean function substrate for the `qdaflow` quantum design automation flow.
//!
//! This crate provides the classical-logic foundations that the rest of the
//! flow is built on:
//!
//! * [`TruthTable`] — explicit single-output Boolean functions `f : B^n -> B`,
//! * [`expr::Expr`] — a small Boolean expression language with a parser, used
//!   by the ProjectQ-style `PhaseOracle` front end,
//! * [`esop`] — exclusive sum-of-products (ESOP) representations and
//!   Reed–Muller style extraction, the input form required by ESOP-based
//!   reversible synthesis,
//! * [`spectrum`] — Walsh–Hadamard spectra, bentness tests and dual bent
//!   functions,
//! * [`bent`] — the inner-product and Maiorana–McFarland bent function
//!   families used by the hidden shift benchmark of the paper,
//! * [`Permutation`] — permutations of `B^n`, the specification format for
//!   reversible functions and `PermutationOracle`,
//! * [`hwb`] — the hidden-weighted-bit reversible benchmark function used by
//!   the RevKit pipeline example `revgen --hwb 4; tbs; ...`.
//!
//! # Example
//!
//! ```
//! use qdaflow_boolfn::{expr::Expr, TruthTable};
//!
//! # fn main() -> Result<(), qdaflow_boolfn::BoolfnError> {
//! // f(a, b, c, d) = (a & b) ^ (c & d), the bent function from the paper.
//! let f = Expr::parse("(x0 & x1) ^ (x2 & x3)")?;
//! let tt = f.truth_table(4)?;
//! assert_eq!(tt.count_ones(), 6);
//! assert!(qdaflow_boolfn::spectrum::is_bent(&tt));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bent;
pub mod error;
pub mod esop;
pub mod expr;
pub mod hwb;
pub mod permutation;
pub mod spectrum;
pub mod truth_table;

pub use error::BoolfnError;
pub use esop::{Cube, Esop};
pub use expr::Expr;
pub use permutation::Permutation;
pub use truth_table::TruthTable;

/// Maximum number of variables supported by explicit truth-table
/// representations.
///
/// The limit mirrors the observation in the paper (Section V) that explicit
/// truth-table based synthesis is practical only up to roughly 20 variables.
pub const MAX_TRUTH_TABLE_VARS: usize = 24;
