//! The quantum gate set used by the flow.
//!
//! The mapping stage of the paper targets the **Clifford+T** gate library
//! (H, S, S†, CNOT, CZ plus the non-Clifford T and T†), extended here with
//! the gates that appear before mapping (X, Y, Z, rotations, Toffoli and
//! larger multiple-controlled gates) so that the same IR can represent
//! circuits at every stage of the flow.

use crate::complex::Complex;
use std::f64::consts::FRAC_PI_4;
use std::fmt;

/// A quantum gate applied to specific qubits of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantumGate {
    /// Hadamard gate.
    H(usize),
    /// Pauli-X (NOT) gate.
    X(usize),
    /// Pauli-Y gate.
    Y(usize),
    /// Pauli-Z gate.
    Z(usize),
    /// Phase gate S = diag(1, i).
    S(usize),
    /// Inverse phase gate S† = diag(1, -i).
    Sdg(usize),
    /// T gate = diag(1, e^{iπ/4}).
    T(usize),
    /// Inverse T gate.
    Tdg(usize),
    /// Z-rotation by an arbitrary angle: diag(1, e^{iθ}).
    Rz {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle θ in radians.
        angle: f64,
    },
    /// Controlled NOT.
    Cx {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled Z.
    Cz {
        /// First qubit (symmetric).
        a: usize,
        /// Second qubit (symmetric).
        b: usize,
    },
    /// Swap of two qubits.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// Toffoli gate (CCX).
    Ccx {
        /// First control qubit.
        control_a: usize,
        /// Second control qubit.
        control_b: usize,
        /// Target qubit.
        target: usize,
    },
    /// Multiple-controlled X with an arbitrary number of positive controls.
    Mcx {
        /// Control qubits.
        controls: Vec<usize>,
        /// Target qubit.
        target: usize,
    },
    /// Multiple-controlled Z (fully symmetric phase gate flipping the sign of
    /// the all-ones subspace of its qubits).
    Mcz {
        /// Participating qubits.
        qubits: Vec<usize>,
    },
}

impl QuantumGate {
    /// The qubits the gate acts on, in declaration order.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Self::H(q)
            | Self::X(q)
            | Self::Y(q)
            | Self::Z(q)
            | Self::S(q)
            | Self::Sdg(q)
            | Self::T(q)
            | Self::Tdg(q) => vec![*q],
            Self::Rz { qubit, .. } => vec![*qubit],
            Self::Cx { control, target } => vec![*control, *target],
            Self::Cz { a, b } | Self::Swap { a, b } => vec![*a, *b],
            Self::Ccx {
                control_a,
                control_b,
                target,
            } => vec![*control_a, *control_b, *target],
            Self::Mcx { controls, target } => {
                let mut qubits = controls.clone();
                qubits.push(*target);
                qubits
            }
            Self::Mcz { qubits } => qubits.clone(),
        }
    }

    /// Short lower-case mnemonic of the gate (matching OpenQASM names where
    /// they exist).
    pub fn name(&self) -> &'static str {
        match self {
            Self::H(_) => "h",
            Self::X(_) => "x",
            Self::Y(_) => "y",
            Self::Z(_) => "z",
            Self::S(_) => "s",
            Self::Sdg(_) => "sdg",
            Self::T(_) => "t",
            Self::Tdg(_) => "tdg",
            Self::Rz { .. } => "rz",
            Self::Cx { .. } => "cx",
            Self::Cz { .. } => "cz",
            Self::Swap { .. } => "swap",
            Self::Ccx { .. } => "ccx",
            Self::Mcx { .. } => "mcx",
            Self::Mcz { .. } => "mcz",
        }
    }

    /// Number of qubits the gate acts on.
    pub fn arity(&self) -> usize {
        self.qubits().len()
    }

    /// The adjoint (inverse) of the gate.
    pub fn dagger(&self) -> Self {
        match self {
            Self::S(q) => Self::Sdg(*q),
            Self::Sdg(q) => Self::S(*q),
            Self::T(q) => Self::Tdg(*q),
            Self::Tdg(q) => Self::T(*q),
            Self::Rz { qubit, angle } => Self::Rz {
                qubit: *qubit,
                angle: -angle,
            },
            other => other.clone(),
        }
    }

    /// Returns `true` for gates in the Clifford group (everything except T,
    /// T† and generic rotations).
    pub fn is_clifford(&self) -> bool {
        match self {
            Self::T(_) | Self::Tdg(_) => false,
            Self::Rz { angle, .. } => {
                // Rz is Clifford exactly for multiples of π/2.
                let quarter_turns = angle / (2.0 * FRAC_PI_4);
                (quarter_turns - quarter_turns.round()).abs() < 1e-9
            }
            Self::Ccx { .. } | Self::Mcx { .. } => false,
            Self::Mcz { qubits } => qubits.len() <= 2,
            _ => true,
        }
    }

    /// Number of T gates contributed directly by this gate (without
    /// decomposing Toffoli or larger gates; see `qdaflow-mapping` for the
    /// decomposed counts).
    pub fn t_count(&self) -> usize {
        match self {
            Self::T(_) | Self::Tdg(_) => 1,
            Self::Rz { angle, .. } => {
                let eighth_turns = angle / FRAC_PI_4;
                let is_multiple = (eighth_turns - eighth_turns.round()).abs() < 1e-9;
                let is_odd_multiple =
                    is_multiple && (eighth_turns.round() as i64).rem_euclid(2) == 1;
                usize::from(is_odd_multiple)
            }
            _ => 0,
        }
    }

    /// Returns `true` if the gate is diagonal in the computational basis.
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Self::Z(_)
                | Self::S(_)
                | Self::Sdg(_)
                | Self::T(_)
                | Self::Tdg(_)
                | Self::Rz { .. }
                | Self::Cz { .. }
                | Self::Mcz { .. }
        )
    }

    /// The 2×2 unitary matrix of a single-qubit gate, as
    /// `[[u00, u01], [u10, u11]]`, or `None` for multi-qubit gates.
    pub fn single_qubit_matrix(&self) -> Option<[[Complex; 2]; 2]> {
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        let matrix = match self {
            Self::H(_) => [
                [Complex::real(inv_sqrt2), Complex::real(inv_sqrt2)],
                [Complex::real(inv_sqrt2), Complex::real(-inv_sqrt2)],
            ],
            Self::X(_) => [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
            Self::Y(_) => [[Complex::ZERO, -Complex::I], [Complex::I, Complex::ZERO]],
            Self::Z(_) => [
                [Complex::ONE, Complex::ZERO],
                [Complex::ZERO, Complex::real(-1.0)],
            ],
            Self::S(_) => [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::I]],
            Self::Sdg(_) => [[Complex::ONE, Complex::ZERO], [Complex::ZERO, -Complex::I]],
            Self::T(_) => [
                [Complex::ONE, Complex::ZERO],
                [Complex::ZERO, Complex::from_angle(FRAC_PI_4)],
            ],
            Self::Tdg(_) => [
                [Complex::ONE, Complex::ZERO],
                [Complex::ZERO, Complex::from_angle(-FRAC_PI_4)],
            ],
            Self::Rz { angle, .. } => [
                [Complex::ONE, Complex::ZERO],
                [Complex::ZERO, Complex::from_angle(*angle)],
            ],
            _ => return None,
        };
        Some(matrix)
    }

    /// Like [`QuantumGate::single_qubit_matrix`], but reports multi-qubit
    /// gates as a typed [`QuantumError::UnsupportedGate`](crate::QuantumError::UnsupportedGate) instead of `None`,
    /// for callers that treat the request as fallible rather than optional.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::UnsupportedGate`](crate::QuantumError::UnsupportedGate) for gates without a single
    /// 2×2 matrix.
    pub fn single_qubit_matrix_checked(&self) -> Result<[[Complex; 2]; 2], crate::QuantumError> {
        self.single_qubit_matrix()
            .ok_or(crate::QuantumError::UnsupportedGate {
                gate: self.name(),
                operation: "single_qubit_matrix",
            })
    }
}

impl fmt::Display for QuantumGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Rz { qubit, angle } => write!(f, "rz({angle:.6}) q[{qubit}]"),
            other => {
                let qubits: Vec<String> =
                    other.qubits().iter().map(|q| format!("q[{q}]")).collect();
                write!(f, "{} {}", other.name(), qubits.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubits_and_arity() {
        assert_eq!(QuantumGate::H(3).qubits(), vec![3]);
        assert_eq!(
            QuantumGate::Cx {
                control: 1,
                target: 0
            }
            .qubits(),
            vec![1, 0]
        );
        assert_eq!(
            QuantumGate::Mcx {
                controls: vec![0, 1, 2],
                target: 4
            }
            .arity(),
            4
        );
        assert_eq!(QuantumGate::Mcz { qubits: vec![0, 1] }.arity(), 2);
    }

    #[test]
    fn dagger_pairs() {
        assert_eq!(QuantumGate::T(0).dagger(), QuantumGate::Tdg(0));
        assert_eq!(QuantumGate::Sdg(1).dagger(), QuantumGate::S(1));
        assert_eq!(QuantumGate::H(2).dagger(), QuantumGate::H(2));
        let rz = QuantumGate::Rz {
            qubit: 0,
            angle: 0.7,
        };
        // Rz negation is exact in IEEE arithmetic, so the adjoint can be
        // asserted structurally — no panicking fallback arm needed.
        assert_eq!(
            rz.dagger(),
            QuantumGate::Rz {
                qubit: 0,
                angle: -0.7,
            }
        );
    }

    #[test]
    fn multi_qubit_matrix_request_is_a_typed_error() {
        use crate::QuantumError;
        assert!(QuantumGate::H(0).single_qubit_matrix_checked().is_ok());
        let err = QuantumGate::Cx {
            control: 0,
            target: 1,
        }
        .single_qubit_matrix_checked()
        .unwrap_err();
        assert_eq!(
            err,
            QuantumError::UnsupportedGate {
                gate: "cx",
                operation: "single_qubit_matrix",
            }
        );
        assert!(err.to_string().contains("cx"));
    }

    #[test]
    fn clifford_classification() {
        assert!(QuantumGate::H(0).is_clifford());
        assert!(QuantumGate::S(0).is_clifford());
        assert!(QuantumGate::Cx {
            control: 0,
            target: 1
        }
        .is_clifford());
        assert!(!QuantumGate::T(0).is_clifford());
        assert!(!QuantumGate::Ccx {
            control_a: 0,
            control_b: 1,
            target: 2
        }
        .is_clifford());
        assert!(QuantumGate::Rz {
            qubit: 0,
            angle: std::f64::consts::FRAC_PI_2
        }
        .is_clifford());
        assert!(!QuantumGate::Rz {
            qubit: 0,
            angle: FRAC_PI_4
        }
        .is_clifford());
    }

    #[test]
    fn direct_t_count() {
        assert_eq!(QuantumGate::T(0).t_count(), 1);
        assert_eq!(QuantumGate::Tdg(0).t_count(), 1);
        assert_eq!(QuantumGate::S(0).t_count(), 0);
        assert_eq!(
            QuantumGate::Rz {
                qubit: 0,
                angle: FRAC_PI_4
            }
            .t_count(),
            1
        );
        assert_eq!(
            QuantumGate::Rz {
                qubit: 0,
                angle: std::f64::consts::FRAC_PI_2
            }
            .t_count(),
            0
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn single_qubit_matrices_are_unitary() {
        let gates = [
            QuantumGate::H(0),
            QuantumGate::X(0),
            QuantumGate::Y(0),
            QuantumGate::Z(0),
            QuantumGate::S(0),
            QuantumGate::Sdg(0),
            QuantumGate::T(0),
            QuantumGate::Tdg(0),
            QuantumGate::Rz {
                qubit: 0,
                angle: 1.234,
            },
        ];
        for gate in gates {
            let m = gate.single_qubit_matrix().expect("single-qubit gate");
            // Check U U† = I.
            for row in 0..2 {
                for col in 0..2 {
                    let mut entry = Complex::ZERO;
                    for k in 0..2 {
                        entry += m[row][k] * m[col][k].conj();
                    }
                    let expected = if row == col {
                        Complex::ONE
                    } else {
                        Complex::ZERO
                    };
                    assert!(
                        entry.approx_eq(expected, 1e-12),
                        "{gate:?} is not unitary at ({row},{col})"
                    );
                }
            }
        }
        assert!(QuantumGate::Cx {
            control: 0,
            target: 1
        }
        .single_qubit_matrix()
        .is_none());
    }

    #[test]
    fn diagonal_classification() {
        assert!(QuantumGate::T(0).is_diagonal());
        assert!(QuantumGate::Cz { a: 0, b: 1 }.is_diagonal());
        assert!(QuantumGate::Mcz {
            qubits: vec![0, 1, 2]
        }
        .is_diagonal());
        assert!(!QuantumGate::H(0).is_diagonal());
        assert!(!QuantumGate::X(0).is_diagonal());
    }

    #[test]
    fn display_formats() {
        assert_eq!(QuantumGate::H(0).to_string(), "h q[0]");
        assert_eq!(
            QuantumGate::Cx {
                control: 1,
                target: 2
            }
            .to_string(),
            "cx q[1], q[2]"
        );
        let rz = QuantumGate::Rz {
            qubit: 3,
            angle: 0.5,
        };
        assert!(rz.to_string().starts_with("rz(0.5"));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn sdg_matrix_is_inverse_of_s() {
        let s = QuantumGate::S(0).single_qubit_matrix().unwrap();
        let sdg = QuantumGate::Sdg(0).single_qubit_matrix().unwrap();
        // (S * Sdg) should be the identity.
        for row in 0..2 {
            for col in 0..2 {
                let mut entry = Complex::ZERO;
                for k in 0..2 {
                    entry += s[row][k] * sdg[k][col];
                }
                let expected = if row == col {
                    Complex::ONE
                } else {
                    Complex::ZERO
                };
                assert!(entry.approx_eq(expected, 1e-12));
            }
        }
    }
}
