//! Rendering of quantum circuits as Q#-style source code.

use qdaflow_boolfn::Permutation;
use qdaflow_mapping::map::{self, MappingOptions};
use qdaflow_quantum::{QuantumCircuit, QuantumGate};
use qdaflow_reversible::synthesis;
use std::fmt::Write as _;

/// Options for Q# code generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QsharpOptions {
    /// Namespace the generated operations are placed in.
    pub namespace: String,
    /// Name of the generated oracle operation.
    pub operation_name: String,
    /// Emit the `adjoint auto` / `controlled auto` functor declarations as in
    /// Fig. 10 of the paper.
    pub auto_functors: bool,
}

impl Default for QsharpOptions {
    fn default() -> Self {
        Self {
            namespace: "Microsoft.Quantum.PermOracle".to_owned(),
            operation_name: "PermutationOracle".to_owned(),
            auto_functors: true,
        }
    }
}

/// Renders a single gate as a Q# statement over the array `qubits`.
fn gate_statement(gate: &QuantumGate) -> String {
    match gate {
        QuantumGate::H(q) => format!("H(qubits[{q}]);"),
        QuantumGate::X(q) => format!("X(qubits[{q}]);"),
        QuantumGate::Y(q) => format!("Y(qubits[{q}]);"),
        QuantumGate::Z(q) => format!("Z(qubits[{q}]);"),
        QuantumGate::S(q) => format!("S(qubits[{q}]);"),
        QuantumGate::Sdg(q) => format!("(Adjoint S)(qubits[{q}]);"),
        QuantumGate::T(q) => format!("T(qubits[{q}]);"),
        QuantumGate::Tdg(q) => format!("(Adjoint T)(qubits[{q}]);"),
        QuantumGate::Rz { qubit, angle } => format!("Rz({angle:.12}, qubits[{qubit}]);"),
        QuantumGate::Cx { control, target } => {
            format!("CNOT(qubits[{control}], qubits[{target}]);")
        }
        QuantumGate::Cz { a, b } => format!("CZ(qubits[{a}], qubits[{b}]);"),
        QuantumGate::Swap { a, b } => format!("SWAP(qubits[{a}], qubits[{b}]);"),
        QuantumGate::Ccx {
            control_a,
            control_b,
            target,
        } => format!("CCNOT(qubits[{control_a}], qubits[{control_b}], qubits[{target}]);"),
        QuantumGate::Mcx { controls, target } => {
            let controls: Vec<String> = controls.iter().map(|q| format!("qubits[{q}]")).collect();
            format!(
                "(Controlled X)([{}], qubits[{target}]);",
                controls.join(", ")
            )
        }
        QuantumGate::Mcz { qubits } => {
            let (last, rest) = qubits.split_last().expect("mcz has at least one qubit");
            let controls: Vec<String> = rest.iter().map(|q| format!("qubits[{q}]")).collect();
            format!("(Controlled Z)([{}], qubits[{last}]);", controls.join(", "))
        }
    }
}

/// Renders a Q#-style operation with the given name whose body applies the
/// gates of `circuit` to a `Qubit[]` parameter, in the style of Fig. 10 of
/// the paper.
pub fn operation_from_circuit(
    name: &str,
    circuit: &QuantumCircuit,
    options: &QsharpOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "    operation {name}");
    let _ = writeln!(out, "        // signature of input types");
    let _ = writeln!(out, "        (qubits : Qubit[]) :");
    let _ = writeln!(out, "        // signature of output type");
    let _ = writeln!(out, "        () {{");
    let _ = writeln!(out, "        body {{");
    for gate in circuit {
        let _ = writeln!(out, "            {}", gate_statement(gate));
    }
    let _ = writeln!(out, "        }}");
    if options.auto_functors {
        let _ = writeln!(out, "        adjoint auto");
        let _ = writeln!(out, "        controlled auto");
        let _ = writeln!(out, "        controlled adjoint auto");
    }
    let _ = writeln!(out, "    }}");
    out
}

/// Emits the full `PermOracle` namespace of Fig. 10: the permutation is
/// synthesized with RevKit-style transformation-based synthesis, mapped to
/// Clifford+T, and rendered as a Q# operation together with the
/// `BentFunctionImpl`/`BentFunction` helpers.
///
/// # Errors
///
/// Returns an error if synthesis or mapping of the permutation fails.
pub fn permutation_oracle_namespace(
    permutation: &Permutation,
    options: &QsharpOptions,
) -> Result<String, Box<dyn std::error::Error>> {
    let reversible = synthesis::transformation_based(permutation)?;
    let (simplified, _) = qdaflow_reversible::optimize::simplify(&reversible);
    let circuit = map::to_clifford_t(&simplified, &MappingOptions::default())?;
    let n = permutation.num_vars();
    let mut out = String::new();
    let _ = writeln!(out, "namespace {} {{", options.namespace);
    let _ = writeln!(out, "    open Microsoft.Quantum.Primitive;");
    let _ = writeln!(out);
    out.push_str(&operation_from_circuit(
        &options.operation_name,
        &circuit,
        options,
    ));
    let _ = writeln!(out);
    let _ = writeln!(out, "    operation BentFunctionImpl");
    let _ = writeln!(out, "        (n : Int, qs : Qubit[]) : () {{");
    let _ = writeln!(out, "        body {{");
    let _ = writeln!(out, "            let xs = qs[0..(n-1)];");
    let _ = writeln!(out, "            let ys = qs[n..(2*n-1)];");
    let _ = writeln!(out, "            (Adjoint {})(ys);", options.operation_name);
    let _ = writeln!(out, "            for (idx in 0..(n-1)) {{");
    let _ = writeln!(out, "                (Controlled Z)([xs[idx]], ys[idx]);");
    let _ = writeln!(out, "            }}");
    let _ = writeln!(out, "            {}(ys);", options.operation_name);
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out);
    let _ = writeln!(out, "    function BentFunction");
    let _ = writeln!(out, "        (n : Int) : (Qubit[] => ()) {{");
    let _ = writeln!(out, "        return BentFunctionImpl({n}, _);");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    Ok(out)
}

/// Emits the `HiddenShift` driver namespace of Fig. 9 of the paper.
pub fn hidden_shift_driver(namespace: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "namespace {namespace} {{");
    let _ = writeln!(out, "    // basic operations: Hadamard, CNOT, etc");
    let _ = writeln!(out, "    open Microsoft.Quantum.Primitive;");
    let _ = writeln!(out, "    // useful lib functions and combinators");
    let _ = writeln!(out, "    open Microsoft.Quantum.Canon;");
    let _ = writeln!(out, "    // permutation defining the instance");
    let _ = writeln!(out, "    open Microsoft.Quantum.PermOracle;");
    let _ = writeln!(out);
    let _ = writeln!(out, "    operation HiddenShift");
    let _ = writeln!(out, "        (Ufstar : (Qubit[] => ()),");
    let _ = writeln!(out, "         Ug : (Qubit[] => ()), n : Int) :");
    let _ = writeln!(out, "        Result[] {{");
    let _ = writeln!(out, "        body {{");
    let _ = writeln!(out, "            mutable resultArray = new Result[n];");
    let _ = writeln!(out, "            using (qubits = Qubit[n]) {{");
    let _ = writeln!(out, "                ApplyToEach(H, qubits);");
    let _ = writeln!(out, "                Ug(qubits);");
    let _ = writeln!(out, "                ApplyToEach(H, qubits);");
    let _ = writeln!(out, "                Ufstar(qubits);");
    let _ = writeln!(out, "                ApplyToEach(H, qubits);");
    let _ = writeln!(out, "                for (idx in 0..(n-1)) {{");
    let _ = writeln!(
        out,
        "                    set resultArray[idx] = MResetZ(qubits[idx]);"
    );
    let _ = writeln!(out, "                }}");
    let _ = writeln!(out, "            }}");
    let _ = writeln!(out, "            Message($\"result: {{resultArray}}\");");
    let _ = writeln!(out, "            return resultArray;");
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_circuit() -> QuantumCircuit {
        let mut circuit = QuantumCircuit::new(3);
        for gate in [
            QuantumGate::H(0),
            QuantumGate::T(2),
            QuantumGate::Tdg(1),
            QuantumGate::Cx {
                control: 2,
                target: 1,
            },
            QuantumGate::Ccx {
                control_a: 0,
                control_b: 1,
                target: 2,
            },
            QuantumGate::Mcz {
                qubits: vec![0, 1, 2],
            },
        ] {
            circuit.push(gate).unwrap();
        }
        circuit
    }

    #[test]
    fn operation_contains_one_statement_per_gate() {
        let circuit = sample_circuit();
        let rendered = operation_from_circuit("Oracle", &circuit, &QsharpOptions::default());
        assert!(rendered.contains("operation Oracle"));
        assert!(rendered.contains("H(qubits[0]);"));
        assert!(rendered.contains("(Adjoint T)(qubits[1]);"));
        assert!(rendered.contains("CNOT(qubits[2], qubits[1]);"));
        assert!(rendered.contains("CCNOT(qubits[0], qubits[1], qubits[2]);"));
        assert!(rendered.contains("(Controlled Z)([qubits[0], qubits[1]], qubits[2]);"));
        assert!(rendered.contains("adjoint auto"));
        let statements = rendered.matches(';').count();
        assert!(statements >= circuit.num_gates());
    }

    #[test]
    fn functors_can_be_disabled() {
        let options = QsharpOptions {
            auto_functors: false,
            ..QsharpOptions::default()
        };
        let rendered = operation_from_circuit("Oracle", &sample_circuit(), &options);
        assert!(!rendered.contains("adjoint auto"));
    }

    #[test]
    fn permutation_namespace_matches_fig10_structure() {
        let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
        let rendered = permutation_oracle_namespace(&pi, &QsharpOptions::default()).unwrap();
        assert!(rendered.starts_with("namespace Microsoft.Quantum.PermOracle {"));
        assert!(rendered.contains("operation PermutationOracle"));
        assert!(rendered.contains("operation BentFunctionImpl"));
        assert!(rendered.contains("(Adjoint PermutationOracle)(ys);"));
        assert!(rendered.contains("(Controlled Z)([xs[idx]], ys[idx]);"));
        assert!(rendered.contains("function BentFunction"));
        // Balanced braces.
        assert_eq!(rendered.matches('{').count(), rendered.matches('}').count());
        // The emitted operation only uses the primitive gate set of Fig. 10.
        for line in rendered.lines() {
            let trimmed = line.trim();
            if trimmed.ends_with(");") && trimmed.contains("qubits[") {
                assert!(
                    trimmed.starts_with("H(")
                        || trimmed.starts_with("X(")
                        || trimmed.starts_with("T(")
                        || trimmed.starts_with("S(")
                        || trimmed.starts_with("Z(")
                        || trimmed.starts_with("(Adjoint T)(")
                        || trimmed.starts_with("(Adjoint S)(")
                        || trimmed.starts_with("CNOT(")
                        || trimmed.starts_with("CZ(")
                        || trimmed.starts_with("CCNOT(")
                        || trimmed.starts_with("(Controlled"),
                    "unexpected statement: {trimmed}"
                );
            }
        }
    }

    #[test]
    fn driver_matches_fig9_structure() {
        let rendered = hidden_shift_driver("Microsoft.Quantum.HiddenShift");
        assert!(rendered.contains("operation HiddenShift"));
        assert!(rendered.contains("ApplyToEach(H, qubits);"));
        assert!(rendered.contains("MResetZ"));
        assert_eq!(
            rendered.matches("ApplyToEach(H, qubits);").count(),
            3,
            "the driver applies three Hadamard layers"
        );
        assert_eq!(rendered.matches('{').count(), rendered.matches('}').count());
    }

    #[test]
    fn rz_and_swap_statements() {
        let mut circuit = QuantumCircuit::new(2);
        circuit
            .push(QuantumGate::Rz {
                qubit: 1,
                angle: 0.5,
            })
            .unwrap();
        circuit.push(QuantumGate::Swap { a: 0, b: 1 }).unwrap();
        circuit.push(QuantumGate::S(0)).unwrap();
        circuit.push(QuantumGate::Sdg(1)).unwrap();
        circuit.push(QuantumGate::Y(0)).unwrap();
        circuit.push(QuantumGate::Z(1)).unwrap();
        circuit
            .push(QuantumGate::Mcx {
                controls: vec![0],
                target: 1,
            })
            .unwrap();
        let rendered = operation_from_circuit("Misc", &circuit, &QsharpOptions::default());
        assert!(rendered.contains("Rz(0.5"));
        assert!(rendered.contains("SWAP(qubits[0], qubits[1]);"));
        assert!(rendered.contains("(Controlled X)([qubits[0]], qubits[1]);"));
    }
}
