//! Gate census: the cheap structural classification pass behind automatic
//! backend dispatch.
//!
//! A [`GateCensus`] is one linear sweep over a circuit's gate list, counting
//! the populations that predict simulation cost on each backend:
//!
//! - **Clifford gates** — a fully Clifford circuit belongs on the stabilizer
//!   tableau, which is polynomial in the qubit count.
//! - **Permutation gates** (X, CX, SWAP, CCX, MCX) — classical reversible
//!   logic keeps a sparse statevector's support at a single basis state.
//! - **Hadamard gates** — the only gate in the flow's library that grows
//!   sparse support (each `H` at most doubles it) or the stabilizer
//!   support rank (each `H` raises it by at most one).
//! - **T gates** — the non-Clifford budget, already the flow's central cost
//!   metric ([`QuantumCircuit::t_count`]).
//!
//! The census is deliberately *syntactic*: it never simulates, so it costs
//! `O(gates)` and can run on every compiled program in a batch. The engine
//! crate's `resolve_backend` turns these numbers into a `BackendChoice`, and
//! the pipeline report prints them per pass so dispatch decisions stay
//! inspectable from the shell.

use crate::circuit::QuantumCircuit;
use crate::gate::QuantumGate;
use std::fmt;

/// Structural gate statistics of a circuit, produced by one linear sweep.
///
/// See the [module docs](self) for what each population predicts. All
/// fractions are over [`GateCensus::total`]; for an empty gate list the
/// Clifford fraction is defined as `1.0` (vacuously Clifford — the identity
/// circuit runs on any backend) and every other fraction as `0.0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateCensus {
    /// Number of qubits of the censused circuit.
    pub num_qubits: usize,
    /// Total number of gates.
    pub total: usize,
    /// Gates inside the Clifford group (per [`QuantumGate::is_clifford`]).
    pub clifford: usize,
    /// Classical permutation gates: X, CX, SWAP, CCX, MCX.
    pub permutation: usize,
    /// Diagonal gates (per [`QuantumGate::is_diagonal`]).
    pub diagonal: usize,
    /// Hadamard gates — the support-growing population.
    pub hadamard: usize,
    /// T-count (T, T†, and odd-eighth-turn Rz, per [`QuantumGate::t_count`]).
    pub t: usize,
}

impl GateCensus {
    /// Censuses a circuit.
    pub fn of(circuit: &QuantumCircuit) -> Self {
        Self::of_gates(circuit.num_qubits(), circuit.gates())
    }

    /// Censuses a raw gate list over `num_qubits` qubits.
    pub fn of_gates(num_qubits: usize, gates: &[QuantumGate]) -> Self {
        let mut census = Self {
            num_qubits,
            total: gates.len(),
            clifford: 0,
            permutation: 0,
            diagonal: 0,
            hadamard: 0,
            t: 0,
        };
        for gate in gates {
            if gate.is_clifford() {
                census.clifford += 1;
            }
            if matches!(
                gate,
                QuantumGate::X(_)
                    | QuantumGate::Cx { .. }
                    | QuantumGate::Swap { .. }
                    | QuantumGate::Ccx { .. }
                    | QuantumGate::Mcx { .. }
            ) {
                census.permutation += 1;
            }
            if gate.is_diagonal() {
                census.diagonal += 1;
            }
            if matches!(gate, QuantumGate::H(_)) {
                census.hadamard += 1;
            }
            census.t += gate.t_count();
        }
        census
    }

    /// Whether every gate is Clifford (vacuously true for an empty list) —
    /// the exact acceptance predicate of the stabilizer tableau backend.
    pub fn is_all_clifford(&self) -> bool {
        self.clifford == self.total
    }

    /// Fraction of Clifford gates (`1.0` for an empty gate list).
    pub fn clifford_fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.clifford as f64 / self.total as f64
        }
    }

    /// Fraction of permutation gates (`0.0` for an empty gate list).
    pub fn permutation_fraction(&self) -> f64 {
        self.fraction(self.permutation)
    }

    /// Fraction of Hadamard gates (`0.0` for an empty gate list).
    pub fn hadamard_fraction(&self) -> f64 {
        self.fraction(self.hadamard)
    }

    /// T-count over total gates (`0.0` for an empty gate list).
    pub fn t_fraction(&self) -> f64 {
        self.fraction(self.t)
    }

    /// Upper bound on the log₂ of the final sparse support size (equally:
    /// on the stabilizer support rank). Only `H` grows either quantity — a
    /// Hadamard at most doubles a sparse support and raises the stabilizer
    /// X-block rank by at most one, while every permutation or diagonal
    /// gate preserves both — so `min(num_qubits, hadamard)` bounds the
    /// support a backend must materialize at sampling time. The bound is
    /// loose (H layers frequently cancel, as in hidden-shift circuits), so
    /// the dispatcher treats it as advisory, not as a routing rule.
    pub fn support_bound_log2(&self) -> usize {
        self.num_qubits.min(self.hadamard)
    }

    fn fraction(&self, count: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            count as f64 / self.total as f64
        }
    }
}

impl fmt::Display for GateCensus {
    /// One-line human-readable summary, used by the pipeline report and the
    /// shell `flow` output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates on {} qubits: clifford {:.0}%, permutation {:.0}%, t {:.0}%, h {:.0}%",
            self.total,
            self.num_qubits,
            100.0 * self.clifford_fraction(),
            100.0 * self.permutation_fraction(),
            100.0 * self.t_fraction(),
            100.0 * self.hadamard_fraction(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit(num_qubits: usize, gates: Vec<QuantumGate>) -> QuantumCircuit {
        let mut circuit = QuantumCircuit::new(num_qubits);
        for gate in gates {
            circuit.push(gate).unwrap();
        }
        circuit
    }

    #[test]
    fn empty_circuit_is_vacuously_clifford() {
        let census = GateCensus::of(&circuit(4, vec![]));
        assert!(census.is_all_clifford());
        assert_eq!(census.clifford_fraction(), 1.0);
        assert_eq!(census.permutation_fraction(), 0.0);
        assert_eq!(census.t_fraction(), 0.0);
        assert_eq!(census.support_bound_log2(), 0);
    }

    #[test]
    fn populations_are_counted_per_gate() {
        let census = GateCensus::of(&circuit(
            3,
            vec![
                QuantumGate::H(0),
                QuantumGate::T(0),
                QuantumGate::Cx {
                    control: 0,
                    target: 1,
                },
                QuantumGate::Ccx {
                    control_a: 0,
                    control_b: 1,
                    target: 2,
                },
            ],
        ));
        assert_eq!(census.total, 4);
        assert_eq!(census.clifford, 2); // H, CX
        assert_eq!(census.permutation, 2); // CX, CCX
        assert_eq!(census.hadamard, 1);
        assert!(census.t >= 1); // the explicit T, plus CCX's decomposition cost
        assert!(!census.is_all_clifford());
        assert_eq!(census.support_bound_log2(), 1);
    }

    #[test]
    fn support_bound_saturates_at_the_register_width() {
        let gates = (0..5).flat_map(|q| [QuantumGate::H(q), QuantumGate::H(q)]);
        let census = GateCensus::of(&circuit(5, gates.collect()));
        assert_eq!(census.hadamard, 10);
        assert_eq!(census.support_bound_log2(), 5);
    }

    #[test]
    fn display_is_a_single_line() {
        let census = GateCensus::of(&circuit(2, vec![QuantumGate::H(0), QuantumGate::T(1)]));
        let line = census.to_string();
        assert!(line.contains("2 gates on 2 qubits"), "{line}");
        assert!(line.contains("clifford 50%"), "{line}");
        assert!(!line.contains('\n'));
    }
}
