//! Gate fusion and chunked multi-threaded statevector execution.
//!
//! This module is the optimized execution layer sitting on top of the scalar
//! [`kernel`]: a circuit is first *compiled* into a
//! [`FusedProgram`] — a short list of [`FusedOp`] kernel operations in which
//! runs of adjacent diagonal gates on the same subspace mask have been
//! coalesced into a single phase multiply and adjacent dense single-qubit
//! gates on the same qubit have been merged into one 2×2 matrix product —
//! and the program is then *applied* to the amplitude slice with
//! cache-friendly loops that skip the untouched part of the index space and,
//! for large registers, split the work over scoped OS threads.
//!
//! The [`ExecConfig`] knob selects the thread count, toggles the fusion pass
//! and sets the register size below which threading is never attempted. It
//! is threaded through every execution path of the workspace: the
//! [`Statevector`](crate::statevector::Statevector) simulator, the
//! Monte-Carlo noisy simulator, the sampling backends, the engine crate's
//! `MainEngine` and the RevKit-style shell's `exec` command.
//!
//! Correctness of the fused, parallel path is established differentially:
//! the `tests/differential.rs` property suites compare it
//! amplitude-for-amplitude against the deliberately naive
//! [`DenseReference`](crate::reference::DenseReference) oracle.

use crate::circuit::QuantumCircuit;
use crate::complex::Complex;
use crate::gate::QuantumGate;
use crate::kernel;
use std::thread;

/// Tolerance under which a fused operation is recognized as the identity and
/// dropped from the program.
const IDENTITY_EPS: f64 = 1e-12;

/// Hard cap on the configured thread count; beyond this the memory-bound
/// amplitude sweeps stop scaling.
const MAX_THREADS: usize = 16;

/// How the execution layer runs a circuit: thread count, fusion toggle and
/// the parallelism threshold.
///
/// The default configuration enables fusion and uses one thread per
/// available CPU (capped), falling back to sequential execution for
/// registers smaller than [`ExecConfig::parallel_threshold`] amplitudes
/// where thread startup would dominate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of worker threads; `1` (or `0`) executes sequentially.
    pub threads: usize,
    /// Whether the gate-fusion pass runs before execution.
    pub fusion: bool,
    /// Minimum amplitude-slice length before threads are spawned.
    pub parallel_threshold: usize,
    /// Shots per shard of the sharded measurement sampler (see
    /// [`crate::sampling`]). Part of the reproducibility contract: together
    /// with the seed and the shot count it fully determines the sharded
    /// histogram, independent of the thread count.
    pub shot_shard_size: usize,
    /// Whether circuits execute through the [`ExecPlan`] SoA interpreter
    /// (the production path) or the legacy interleaved `Vec<Complex>` fused
    /// path (kept as the differential oracle).
    ///
    /// [`ExecPlan`]: crate::plan::ExecPlan
    pub plan: bool,
    /// log2 of the amplitudes per cache block of the plan interpreter;
    /// `0` selects [`DEFAULT_BLOCK_BITS`](crate::plan::DEFAULT_BLOCK_BITS).
    /// Clamped to the register size.
    pub block_bits: usize,
    /// Whether the plan lowering may reorder and batch ops: commuting ops
    /// are clustered so block-local runs stay unbroken, same-qubit dense
    /// pairs multiply into one 2×2, and adjacent cross-block dense ops
    /// batch into single 4×4 applications. Exact up to floating-point
    /// rounding (reordering only ever swaps commuting ops, batching adds
    /// one rounding in the composed matrix); disable for bit-identical
    /// replay of the legacy op order.
    pub pair_fusion: bool,
}

impl ExecConfig {
    /// Fusion on, one worker per available CPU (capped at 16), threading
    /// only for registers of at least 2^16 amplitudes — below that, per-op
    /// thread startup costs more than the sweep itself.
    pub fn auto() -> Self {
        Self {
            threads: thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(MAX_THREADS),
            fusion: true,
            parallel_threshold: 1 << 16,
            shot_shard_size: crate::sampling::DEFAULT_SHOT_SHARD_SIZE,
            plan: true,
            block_bits: 0,
            pair_fusion: true,
        }
    }

    /// Fusion on, strictly single-threaded.
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            ..Self::auto()
        }
    }

    /// The pre-fusion behaviour: one kernel op per gate, single-threaded,
    /// on the legacy interleaved path. This is the baseline the
    /// `fusion_vs_baseline` bench compares against.
    pub fn baseline() -> Self {
        Self {
            threads: 1,
            fusion: false,
            parallel_threshold: usize::MAX,
            plan: false,
            ..Self::auto()
        }
    }

    /// Replaces the thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the fusion pass.
    #[must_use]
    pub fn with_fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }

    /// Replaces the parallelism threshold.
    #[must_use]
    pub fn with_parallel_threshold(mut self, parallel_threshold: usize) -> Self {
        self.parallel_threshold = parallel_threshold;
        self
    }

    /// Replaces the shard size of the sharded measurement sampler. Values
    /// below 1 are clamped to 1 at sampling time.
    #[must_use]
    pub fn with_shot_shard_size(mut self, shot_shard_size: usize) -> Self {
        self.shot_shard_size = shot_shard_size;
        self
    }

    /// Selects the plan interpreter (`true`, default) or the legacy
    /// interleaved path (`false`).
    #[must_use]
    pub fn with_plan(mut self, plan: bool) -> Self {
        self.plan = plan;
        self
    }

    /// Replaces the plan interpreter's cache-block size (log2 amplitudes;
    /// `0` = auto).
    #[must_use]
    pub fn with_block_bits(mut self, block_bits: usize) -> Self {
        self.block_bits = block_bits;
        self
    }

    /// Enables or disables commuting-op clustering and dense batching in
    /// the plan lowering (see [`ExecConfig::pair_fusion`]).
    #[must_use]
    pub fn with_pair_fusion(mut self, pair_fusion: bool) -> Self {
        self.pair_fusion = pair_fusion;
        self
    }

    /// The number of threads actually used for a slice of `len` amplitudes.
    pub(crate) fn effective_threads(&self, len: usize) -> usize {
        if self.threads <= 1 || len < self.parallel_threshold.max(2) {
            1
        } else {
            self.threads.min(MAX_THREADS).min(len / 2)
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// One operation of a compiled [`FusedProgram`], the instruction set of the
/// execution layer. Gates that act identically on the amplitude slice lower
/// to the same op (e.g. Z, CZ and MCZ are all a [`FusedOp::Phase`]).
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp {
    /// An arbitrary 2×2 unitary on one qubit — a dense single-qubit gate or
    /// the product of several merged ones.
    Dense {
        /// Target qubit.
        qubit: usize,
        /// The (possibly fused) 2×2 matrix.
        matrix: [[Complex; 2]; 2],
    },
    /// Multiplies `phase` onto every amplitude whose index has all bits of
    /// `mask` set — a diagonal gate or the product of several merged ones.
    Phase {
        /// Basis-state mask selecting the affected subspace.
        mask: usize,
        /// The accumulated phase factor.
        phase: Complex,
    },
    /// Multiple-controlled X: swaps amplitudes across `target` where all
    /// bits of `control_mask` are set.
    Mcx {
        /// Mask of control-qubit bits (empty mask = plain X).
        control_mask: usize,
        /// Target qubit.
        target: usize,
    },
    /// Exchange of two qubits.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
}

impl FusedOp {
    /// Lowers one gate to its kernel operation.
    pub fn from_gate(gate: &QuantumGate) -> Self {
        match gate {
            QuantumGate::Cx { control, target } => Self::Mcx {
                control_mask: 1 << control,
                target: *target,
            },
            QuantumGate::Ccx {
                control_a,
                control_b,
                target,
            } => Self::Mcx {
                control_mask: (1 << control_a) | (1 << control_b),
                target: *target,
            },
            QuantumGate::Mcx { controls, target } => Self::Mcx {
                control_mask: controls.iter().map(|&q| 1usize << q).sum(),
                target: *target,
            },
            QuantumGate::Cz { a, b } => Self::Phase {
                mask: (1 << a) | (1 << b),
                phase: Complex::real(-1.0),
            },
            QuantumGate::Mcz { qubits } => Self::Phase {
                mask: qubits.iter().map(|&q| 1usize << q).sum(),
                phase: Complex::real(-1.0),
            },
            QuantumGate::Swap { a, b } => Self::Swap { a: *a, b: *b },
            single => {
                let qubit = single.qubits()[0];
                let matrix = single
                    .single_qubit_matrix()
                    .expect("all remaining gates are single-qubit");
                if single.is_diagonal() {
                    Self::Phase {
                        mask: 1 << qubit,
                        phase: matrix[1][1],
                    }
                } else {
                    Self::Dense { qubit, matrix }
                }
            }
        }
    }

    /// Returns `true` if this op commutes with a phase multiply on `mask`.
    fn commutes_with_phase(&self, mask: usize) -> bool {
        match self {
            // Diagonal ops always commute with each other.
            Self::Phase { .. } => true,
            Self::Dense { qubit, .. } => mask & (1 << qubit) == 0,
            // Controls are diagonal; only flipping the target can disturb
            // membership in the mask subspace.
            Self::Mcx { target, .. } => mask & (1 << target) == 0,
            // A swap preserves membership iff both qubits enter the mask the
            // same way.
            Self::Swap { a, b } => (mask >> a) & 1 == (mask >> b) & 1,
        }
    }

    /// Returns `true` if this op commutes with any dense gate on `qubit`.
    fn commutes_with_dense(&self, qubit: usize) -> bool {
        match self {
            Self::Phase { mask, .. } => mask & (1 << qubit) == 0,
            Self::Dense { qubit: other, .. } => *other != qubit,
            Self::Mcx {
                control_mask,
                target,
            } => *target != qubit && control_mask & (1 << qubit) == 0,
            Self::Swap { a, b } => *a != qubit && *b != qubit,
        }
    }

    /// Returns `true` if the two ops provably commute (conservative: `false`
    /// may simply mean "unknown").
    fn commutes_with(&self, other: &Self) -> bool {
        match other {
            Self::Phase { mask, .. } => self.commutes_with_phase(*mask),
            Self::Dense { qubit, .. } => self.commutes_with_dense(*qubit),
            Self::Mcx {
                control_mask,
                target,
            } => match self {
                Self::Phase { .. } | Self::Dense { .. } => other.commutes_with(self),
                // Two MCX commute when neither target enters the other's
                // control set (shared controls and even shared targets are
                // fine: X's on one qubit commute).
                Self::Mcx {
                    control_mask: own_controls,
                    target: own_target,
                } => control_mask & (1 << own_target) == 0 && own_controls & (1 << target) == 0,
                Self::Swap { a, b } => {
                    let touched = control_mask | (1 << target);
                    touched & ((1 << a) | (1 << b)) == 0
                }
            },
            Self::Swap { a, b } => match self {
                Self::Phase { .. } | Self::Dense { .. } | Self::Mcx { .. } => {
                    other.commutes_with(self)
                }
                Self::Swap { a: own_a, b: own_b } => {
                    let own = (1usize << own_a) | (1 << own_b);
                    own & ((1 << a) | (1 << b)) == 0
                }
            },
        }
    }
}

/// A circuit compiled for the fused execution layer: an ordered list of
/// [`FusedOp`]s equivalent (up to floating-point round-off in merged
/// matrices) to the source gate sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProgram {
    num_qubits: usize,
    ops: Vec<FusedOp>,
}

impl FusedProgram {
    /// Lowers a circuit one gate per op, without any fusion. This reproduces
    /// the per-gate kernel dispatch exactly.
    pub fn lower(circuit: &QuantumCircuit) -> Self {
        Self {
            num_qubits: circuit.num_qubits(),
            ops: circuit.iter().map(FusedOp::from_gate).collect(),
        }
    }

    /// Compiles a circuit with the gate-fusion pass.
    ///
    /// The pass walks the gate list once, lowering each gate and then
    /// scanning backwards over provably commuting ops for a merge partner:
    /// diagonal gates on the same mask multiply their phases into one
    /// [`FusedOp::Phase`], dense single-qubit gates on the same qubit
    /// multiply into one [`FusedOp::Dense`] (absorbing single-qubit diagonal
    /// neighbours), and self-inverse permutation ops cancel in adjacent
    /// pairs. Merged ops that collapse to the identity are dropped.
    pub fn fuse(circuit: &QuantumCircuit) -> Self {
        let mut ops: Vec<FusedOp> = Vec::with_capacity(circuit.num_gates());
        for gate in circuit {
            push_fused(&mut ops, FusedOp::from_gate(gate));
        }
        Self {
            num_qubits: circuit.num_qubits(),
            ops,
        }
    }

    /// Compiles a circuit according to `config.fusion`.
    pub fn compile(circuit: &QuantumCircuit, config: &ExecConfig) -> Self {
        if config.fusion {
            Self::fuse(circuit)
        } else {
            Self::lower(circuit)
        }
    }

    /// Number of qubits of the source circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The compiled operations in execution order.
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// Number of compiled operations (≤ the source gate count).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Applies the program in place to a `2^n` amplitude slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is shorter than the program's register (ops may
    /// run on a larger register, where the extra qubits are spectators).
    pub fn apply(&self, amplitudes: &mut [Complex], config: &ExecConfig) {
        assert!(
            kernel::num_qubits_of(amplitudes) >= self.num_qubits,
            "a {}-qubit program cannot run on {} amplitudes",
            self.num_qubits,
            amplitudes.len()
        );
        let threads = config.effective_threads(amplitudes.len());
        for op in &self.ops {
            apply_op_with_threads(amplitudes, op, threads);
        }
    }
}

/// Applies one kernel op in place, using the configured execution layer
/// (threaded for large slices, optimized sequential loops otherwise).
///
/// # Panics
///
/// Panics if the op references a qubit outside the register.
pub fn apply_op(amplitudes: &mut [Complex], op: &FusedOp, config: &ExecConfig) {
    apply_op_with_threads(amplitudes, op, config.effective_threads(amplitudes.len()));
}

fn apply_op_with_threads(amplitudes: &mut [Complex], op: &FusedOp, threads: usize) {
    let num_qubits = kernel::num_qubits_of(amplitudes);
    let in_range = |qubit: usize| {
        assert!(
            qubit < num_qubits,
            "qubit {qubit} out of range for a {num_qubits}-qubit register"
        );
    };
    match op {
        FusedOp::Dense { qubit, matrix } => {
            in_range(*qubit);
            if threads > 1 {
                dense_parallel(amplitudes, *qubit, matrix, threads);
            } else {
                dense_sequential(amplitudes, *qubit, matrix);
            }
        }
        FusedOp::Phase { mask, phase } => {
            // `mask == 0` (a global phase) is already covered by the range
            // check: the slice length is at least 1.
            assert!(
                *mask < amplitudes.len(),
                "mask {mask:#x} out of range for a {num_qubits}-qubit register"
            );
            if threads > 1 {
                phase_parallel(amplitudes, *mask, *phase, threads);
            } else {
                phase_sequential(amplitudes, *mask, *phase);
            }
        }
        // Permutation ops move data instead of computing; they stay
        // sequential (the half-space swap loop is already memory-bound).
        FusedOp::Mcx {
            control_mask,
            target,
        } => {
            in_range(*target);
            assert!(
                *control_mask < amplitudes.len(),
                "controls {control_mask:#x} out of range for a {num_qubits}-qubit register"
            );
            kernel::mcx_masked(amplitudes, *control_mask, 1 << target);
        }
        FusedOp::Swap { a, b } => {
            in_range(*a);
            in_range(*b);
            kernel::swap_masked(amplitudes, 1 << a, 1 << b);
        }
    }
}

/// Places `op` into the program: scans backwards over provably commuting
/// ops for a merge partner, merges (recursively, so chains like H·S·H
/// collapse to one op) or inserts at the scan frontier.
///
/// Moving `op` back past ops it commutes with is semantics-preserving, and a
/// merged op acts on exactly the qubits of its two constituents, so the
/// merge result is re-placed from the partner's position with the same
/// invariant.
fn push_fused(ops: &mut Vec<FusedOp>, op: FusedOp) {
    let at = ops.len();
    push_fused_at(ops, op, at);
}

/// Like [`push_fused`], but `op` executes logically before `ops[at..]`.
/// Merging only ever moves the result to an index `<= at`, past ops checked
/// to commute with it, so ops that logically follow stay behind it.
fn push_fused_at(ops: &mut Vec<FusedOp>, op: FusedOp, at: usize) {
    let mut i = at;
    while i > 0 {
        if let Some(merged) = merge(&ops[i - 1], &op) {
            ops.remove(i - 1);
            if let Some(merged) = merged {
                push_fused_at(ops, merged, i - 1);
            }
            return;
        }
        if ops[i - 1].commutes_with(&op) {
            i -= 1;
        } else {
            break;
        }
    }
    ops.insert(i, op);
}

/// Attempts to merge `later` (applied second) into `earlier` (applied
/// first). Returns `None` when the pair does not merge, `Some(None)` when it
/// cancels to the identity, and `Some(Some(op))` for a fused op.
fn merge(earlier: &FusedOp, later: &FusedOp) -> Option<Option<FusedOp>> {
    match (earlier, later) {
        (FusedOp::Phase { mask: a, phase: p }, FusedOp::Phase { mask: b, phase: q }) if a == b => {
            let phase = *p * *q;
            Some(
                (!phase.approx_eq(Complex::ONE, IDENTITY_EPS))
                    .then_some(FusedOp::Phase { mask: *a, phase }),
            )
        }
        (
            FusedOp::Dense {
                qubit: a,
                matrix: m,
            },
            FusedOp::Dense {
                qubit: b,
                matrix: n,
            },
        ) if a == b => Some(dense_unless_identity(*a, matmul(n, m))),
        // A dense gate followed by a single-qubit diagonal on the same
        // qubit: diag(1, p) · M scales the bottom row.
        (FusedOp::Dense { qubit, matrix }, FusedOp::Phase { mask, phase })
            if *mask == 1usize << qubit =>
        {
            let mut merged = *matrix;
            merged[1][0] *= *phase;
            merged[1][1] *= *phase;
            Some(dense_unless_identity(*qubit, merged))
        }
        // A single-qubit diagonal followed by a dense gate on the same
        // qubit: M · diag(1, p) scales the right column.
        (FusedOp::Phase { mask, phase }, FusedOp::Dense { qubit, matrix })
            if *mask == 1usize << qubit =>
        {
            let mut merged = *matrix;
            merged[0][1] *= *phase;
            merged[1][1] *= *phase;
            Some(dense_unless_identity(*qubit, merged))
        }
        // MCX and SWAP are self-inverse: equal pairs annihilate.
        (FusedOp::Mcx { .. }, FusedOp::Mcx { .. }) if earlier == later => Some(None),
        (FusedOp::Swap { a, b }, FusedOp::Swap { a: c, b: d })
            if (a, b) == (c, d) || (a, b) == (d, c) =>
        {
            Some(None)
        }
        _ => None,
    }
}

/// Wraps a merged 2×2 matrix as a dense op, or signals annihilation when it
/// has collapsed to the identity.
fn dense_unless_identity(qubit: usize, matrix: [[Complex; 2]; 2]) -> Option<FusedOp> {
    let identity = matrix[0][0].approx_eq(Complex::ONE, IDENTITY_EPS)
        && matrix[1][1].approx_eq(Complex::ONE, IDENTITY_EPS)
        && matrix[0][1].approx_eq(Complex::ZERO, IDENTITY_EPS)
        && matrix[1][0].approx_eq(Complex::ZERO, IDENTITY_EPS);
    (!identity).then_some(FusedOp::Dense { qubit, matrix })
}

/// 2×2 matrix product `left · right` (i.e. `right` is applied first).
fn matmul(left: &[[Complex; 2]; 2], right: &[[Complex; 2]; 2]) -> [[Complex; 2]; 2] {
    let mut out = [[Complex::ZERO; 2]; 2];
    for (row, out_row) in out.iter_mut().enumerate() {
        for (col, entry) in out_row.iter_mut().enumerate() {
            *entry = left[row][0] * right[0][col] + left[row][1] * right[1][col];
        }
    }
    out
}

/// Applies a 2×2 matrix to paired low/high amplitude slices of equal length.
fn dense_on_pairs(low: &mut [Complex], high: &mut [Complex], matrix: &[[Complex; 2]; 2]) {
    for (l, h) in low.iter_mut().zip(high.iter_mut()) {
        let a = *l;
        let b = *h;
        *l = matrix[0][0] * a + matrix[0][1] * b;
        *h = matrix[1][0] * a + matrix[1][1] * b;
    }
}

fn dense_sequential(amplitudes: &mut [Complex], qubit: usize, matrix: &[[Complex; 2]; 2]) {
    let bit = 1usize << qubit;
    for block in amplitudes.chunks_mut(bit << 1) {
        let (low, high) = block.split_at_mut(bit);
        dense_on_pairs(low, high, matrix);
    }
}

/// Dense single-qubit apply over scoped threads. The amplitude slice is cut
/// into cache-sized sub-chunks of paired low/high halves — disjoint `&mut`
/// slices, so the distribution over threads needs no synchronization.
fn dense_parallel(
    amplitudes: &mut [Complex],
    qubit: usize,
    matrix: &[[Complex; 2]; 2],
    threads: usize,
) {
    let bit = 1usize << qubit;
    let pairs = amplitudes.len() / 2;
    // Aim for a few work items per thread so ragged tails even out, but never
    // split below one pair or above a half-block.
    let sub = (pairs / (threads * 4)).clamp(1, bit);
    let mut buckets: Vec<Vec<(&mut [Complex], &mut [Complex])>> =
        (0..threads).map(|_| Vec::new()).collect();
    let mut next = 0usize;
    for block in amplitudes.chunks_mut(bit << 1) {
        let (low, high) = block.split_at_mut(bit);
        for item in low.chunks_mut(sub).zip(high.chunks_mut(sub)) {
            buckets[next].push(item);
            next = (next + 1) % threads;
        }
    }
    let matrix = *matrix;
    thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move || {
                for (low, high) in bucket {
                    dense_on_pairs(low, high, &matrix);
                }
            });
        }
    });
}

fn phase_sequential(amplitudes: &mut [Complex], mask: usize, phase: Complex) {
    if mask == 0 {
        // A global phase (e.g. an MCZ over zero qubits).
        for amplitude in amplitudes.iter_mut() {
            *amplitude = phase * *amplitude;
        }
        return;
    }
    // Enumerate only the masked subspace: 2^{n-k} indices instead of a full
    // scan with a per-index test.
    let positions = kernel::mask_bit_values(mask);
    let count = amplitudes.len() >> positions.len();
    for compact in 0..count {
        let mut index = compact;
        for &bit in &positions {
            index = kernel::insert_bit(index, bit, true);
        }
        amplitudes[index] = phase * amplitudes[index];
    }
}

/// Phase multiply over scoped threads. Chunks are aligned to a multiple of
/// twice the mask's highest bit, so every chunk contains whole periods of
/// the mask pattern and each thread enumerates only its own share of the
/// masked subspace (never a full scan), exactly like [`phase_sequential`].
fn phase_parallel(amplitudes: &mut [Complex], mask: usize, phase: Complex, threads: usize) {
    if mask == 0 {
        // Global phase: plain even split.
        let chunk = amplitudes.len().div_ceil(threads);
        thread::scope(|scope| {
            for piece in amplitudes.chunks_mut(chunk) {
                scope.spawn(move || {
                    for amplitude in piece.iter_mut() {
                        *amplitude = phase * *amplitude;
                    }
                });
            }
        });
        return;
    }
    let positions = kernel::mask_bit_values(mask);
    let alignment = positions.last().copied().unwrap_or(1) << 1;
    let blocks = amplitudes.len() / alignment;
    if blocks < 2 {
        // The mask involves the top qubit: too coarse to split.
        phase_sequential(amplitudes, mask, phase);
        return;
    }
    // Hand each thread a run of whole alignment blocks; inside a chunk the
    // offset is a multiple of every mask bit, so local enumeration works.
    let chunk = blocks.div_ceil(threads) * alignment;
    thread::scope(|scope| {
        for piece in amplitudes.chunks_mut(chunk) {
            let positions = &positions;
            scope.spawn(move || {
                let count = piece.len() >> positions.len();
                for compact in 0..count {
                    let mut index = compact;
                    for &bit in positions {
                        index = kernel::insert_bit(index, bit, true);
                    }
                    piece[index] = phase * piece[index];
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::apply_gate;

    fn uniform_state(num_qubits: usize) -> Vec<Complex> {
        let mut amplitudes = vec![Complex::ZERO; 1 << num_qubits];
        amplitudes[0] = Complex::ONE;
        for qubit in 0..num_qubits {
            apply_gate(&mut amplitudes, &QuantumGate::H(qubit));
        }
        amplitudes
    }

    fn sample_circuit() -> QuantumCircuit {
        let mut circuit = QuantumCircuit::new(4);
        for gate in [
            QuantumGate::H(0),
            QuantumGate::T(1),
            QuantumGate::T(1),
            QuantumGate::X(2),
            QuantumGate::Cz { a: 0, b: 3 },
            QuantumGate::H(0),
            QuantumGate::H(0),
            QuantumGate::Cx {
                control: 1,
                target: 2,
            },
            QuantumGate::S(3),
            QuantumGate::Sdg(3),
        ] {
            circuit.push(gate).unwrap();
        }
        circuit
    }

    fn assert_matches_kernel(circuit: &QuantumCircuit, config: &ExecConfig) {
        let mut expected = vec![Complex::ZERO; 1 << circuit.num_qubits()];
        expected[0] = Complex::ONE;
        kernel::apply_circuit(&mut expected, circuit);
        let mut fused = vec![Complex::ZERO; 1 << circuit.num_qubits()];
        fused[0] = Complex::ONE;
        FusedProgram::compile(circuit, config).apply(&mut fused, config);
        for (index, (a, b)) in fused.iter().zip(&expected).enumerate() {
            assert!(
                a.approx_eq(*b, 1e-12),
                "amplitude {index}: fused {a:?} vs kernel {b:?}"
            );
        }
    }

    #[test]
    fn adjacent_diagonal_gates_coalesce() {
        let mut circuit = QuantumCircuit::new(2);
        circuit.push(QuantumGate::T(0)).unwrap();
        circuit.push(QuantumGate::T(0)).unwrap();
        circuit.push(QuantumGate::Z(1)).unwrap();
        circuit.push(QuantumGate::S(1)).unwrap();
        let program = FusedProgram::fuse(&circuit);
        assert_eq!(program.num_ops(), 2);
    }

    #[test]
    fn commuting_diagonals_merge_across_each_other() {
        // T(0) · CZ(0,1) · T(0): the two T gates merge across the CZ.
        let mut circuit = QuantumCircuit::new(2);
        circuit.push(QuantumGate::T(0)).unwrap();
        circuit.push(QuantumGate::Cz { a: 0, b: 1 }).unwrap();
        circuit.push(QuantumGate::T(0)).unwrap();
        let program = FusedProgram::fuse(&circuit);
        assert_eq!(program.num_ops(), 2);
        assert_matches_kernel(&circuit, &ExecConfig::sequential());
    }

    #[test]
    fn inverse_pairs_cancel_entirely() {
        let mut circuit = QuantumCircuit::new(3);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit.push(QuantumGate::S(1)).unwrap();
        circuit.push(QuantumGate::Sdg(1)).unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 2,
            })
            .unwrap();
        circuit
            .push(QuantumGate::Cx {
                control: 0,
                target: 2,
            })
            .unwrap();
        let program = FusedProgram::fuse(&circuit);
        assert_eq!(program.num_ops(), 0);
    }

    #[test]
    fn dense_merges_absorb_single_qubit_diagonals() {
        // H · S · H on one qubit fuses to a single dense op.
        let mut circuit = QuantumCircuit::new(1);
        circuit.push(QuantumGate::H(0)).unwrap();
        circuit.push(QuantumGate::S(0)).unwrap();
        circuit.push(QuantumGate::H(0)).unwrap();
        let program = FusedProgram::fuse(&circuit);
        assert_eq!(program.num_ops(), 1);
        assert_matches_kernel(&circuit, &ExecConfig::sequential());
    }

    #[test]
    fn fused_execution_matches_the_kernel() {
        assert_matches_kernel(&sample_circuit(), &ExecConfig::sequential());
    }

    #[test]
    fn lowered_execution_matches_the_kernel() {
        assert_matches_kernel(&sample_circuit(), &ExecConfig::baseline());
    }

    #[test]
    fn threaded_execution_matches_the_kernel() {
        // Force threading even for the tiny test register.
        let config = ExecConfig::auto()
            .with_threads(3)
            .with_parallel_threshold(2);
        assert_matches_kernel(&sample_circuit(), &config);
    }

    #[test]
    fn threaded_ops_match_sequential_ops() {
        for op in [
            FusedOp::Dense {
                qubit: 0,
                matrix: QuantumGate::H(0).single_qubit_matrix().unwrap(),
            },
            FusedOp::Dense {
                qubit: 4,
                matrix: QuantumGate::Y(4).single_qubit_matrix().unwrap(),
            },
            FusedOp::Phase {
                mask: 0b10010,
                phase: Complex::I,
            },
            FusedOp::Phase {
                mask: 0,
                phase: Complex::from_angle(0.4),
            },
        ] {
            let mut sequential = uniform_state(5);
            let mut threaded = sequential.clone();
            apply_op_with_threads(&mut sequential, &op, 1);
            apply_op_with_threads(&mut threaded, &op, 4);
            for (a, b) in threaded.iter().zip(&sequential) {
                assert!(a.approx_eq(*b, 1e-12), "{op:?}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn global_phase_op_touches_every_amplitude() {
        let mut amplitudes = uniform_state(2);
        apply_op(
            &mut amplitudes,
            &FusedOp::Phase {
                mask: 0,
                phase: Complex::real(-1.0),
            },
            &ExecConfig::sequential(),
        );
        for amplitude in &amplitudes {
            assert!(amplitude.re < 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_op_panics() {
        let mut amplitudes = uniform_state(2);
        apply_op(
            &mut amplitudes,
            &FusedOp::Dense {
                qubit: 5,
                matrix: QuantumGate::H(5).single_qubit_matrix().unwrap(),
            },
            &ExecConfig::sequential(),
        );
    }

    #[test]
    fn config_constructors() {
        assert!(ExecConfig::default().fusion);
        assert!(ExecConfig::default().plan);
        assert_eq!(ExecConfig::sequential().threads, 1);
        assert!(!ExecConfig::baseline().fusion);
        assert!(!ExecConfig::baseline().plan);
        let custom = ExecConfig::auto()
            .with_threads(2)
            .with_fusion(false)
            .with_parallel_threshold(64)
            .with_plan(false)
            .with_block_bits(8)
            .with_pair_fusion(false);
        assert_eq!(custom.threads, 2);
        assert!(!custom.fusion);
        assert_eq!(custom.parallel_threshold, 64);
        assert!(!custom.plan);
        assert_eq!(custom.block_bits, 8);
        assert!(!custom.pair_fusion);
        // Tiny registers never spawn threads under the auto threshold.
        assert_eq!(ExecConfig::auto().with_threads(8).effective_threads(16), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_phase_mask_panics() {
        // The mask names a qubit outside the 2-qubit register; the guard
        // must reject it rather than silently touching nothing.
        let mut amplitudes = uniform_state(2);
        apply_op(
            &mut amplitudes,
            &FusedOp::Phase {
                mask: 0b100,
                phase: Complex::I,
            },
            &ExecConfig::sequential(),
        );
    }
}
