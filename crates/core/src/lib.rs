//! # qdaflow — programming quantum computers using design automation
//!
//! `qdaflow` is a Rust reproduction of the automatic quantum programming flow
//! described by Soeken, Häner and Roetteler in *"Programming Quantum
//! Computers Using Design Automation"* (DATE 2018): a high-level quantum
//! algorithm is expressed against a ProjectQ-style engine, its combinational
//! (classical) components are compiled automatically by RevKit-style
//! reversible logic synthesis, the result is mapped to the Clifford+T gate
//! set, optimized, and executed on a simulator or a noisy hardware model.
//!
//! The crate re-exports the building blocks of the flow and adds the paper's
//! end-to-end application — the Boolean **hidden shift problem** for bent
//! functions — together with a classical baseline solver and a one-call
//! compilation API.
//!
//! ## Layers
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | Boolean functions | [`boolfn`] | truth tables, ESOP, spectra, bent functions, permutations |
//! | Reversible logic  | [`reversible`] | Toffoli networks, TBS/DBS/ESOP synthesis, simplification |
//! | Quantum circuits  | [`quantum`] | Clifford+T IR, statevector & noisy simulators, QASM |
//! | Sparse simulation | [`sparse`] | hash-map statevector: key-remapping permutation gates, pruned split-merge |
//! | Stabilizer simulation | [`stabilizer`] | CHP tableau: Clifford circuits at hundreds of qubits, affine-support sampling |
//! | Mapping           | [`mapping`] | Toffoli→Clifford+T, phase oracles, T-count optimization |
//! | Pass manager      | [`pipeline`] | typed IR stages, composable passes, `Pipeline::parse` of equation (5) |
//! | Telemetry         | [`telemetry`] | tracing spans, Chrome-trace export, unified metrics registry |
//! | Shell             | [`revkit`] | `revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c` |
//! | Engine            | [`engine`] | `MainEngine`, Compute/Uncompute/Dagger, oracles, backends |
//! | Code generation   | [`codegen`] | Q#-style emission (Fig. 9/10) |
//! | Application       | [`hidden_shift`], [`classical`], [`flow`] | the paper's benchmark |
//!
//! ## Quickstart
//!
//! ```
//! use qdaflow::hidden_shift::{HiddenShiftInstance, OracleStyle};
//! use qdaflow::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The instance of Fig. 4: f = x0x1 ^ x2x3, hidden shift s = 1.
//! let f = Expr::parse("(x0 & x1) ^ (x2 & x3)")?.truth_table(4)?;
//! let instance = HiddenShiftInstance::from_bent_function(&f, 1)?;
//! let circuit = instance.build_circuit(OracleStyle::TruthTable)?;
//! let outcome = instance.run_ideal(&circuit, 128)?;
//! assert_eq!(outcome.recovered_shift, Some(1));
//! assert!((outcome.success_probability - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classical;
pub mod flow;
pub mod hidden_shift;
pub mod prelude;

pub use qdaflow_boolfn as boolfn;
pub use qdaflow_codegen as codegen;
pub use qdaflow_engine as engine;
pub use qdaflow_mapping as mapping;
pub use qdaflow_pipeline as pipeline;
pub use qdaflow_quantum as quantum;
pub use qdaflow_reversible as reversible;
pub use qdaflow_revkit as revkit;
pub use qdaflow_sparse as sparse;
pub use qdaflow_stabilizer as stabilizer;
pub use qdaflow_telemetry as telemetry;
