//! Measurement sampling: cumulative distributions, binary search and
//! shot-sharded parallel sampling.
//!
//! The original measurement hot path drew each shot by a linear scan over all
//! `2^n` probabilities — `O(shots · 2^n)` work that dominates any run with a
//! realistic shot count. This module replaces it with a precomputed
//! [`CumulativeDistribution`]: the prefix sums are accumulated **once** in the
//! exact same left-to-right order as the historical scan, and each shot then
//! costs one `O(log 2^n)` binary search. Because the prefix values are the
//! very same floating-point partial sums the linear scan produced, a draw
//! lands on the *bit-identical* outcome — the `sampling_differential.rs`
//! property suite enforces this against the retained
//! [`Statevector::sample_linear`](crate::statevector::Statevector::sample_linear)
//! reference.
//!
//! On top of the distribution sits the **shot-sharded** sampler
//! ([`CumulativeDistribution::sample_sharded`]): `shots` are cut into
//! fixed-size shards, shard `i` samples from its own deterministic RNG stream
//! derived from `(seed, i)` ([`shard_rng`]), and shards are distributed over
//! `std::thread::scope` workers. The shard layout depends only on the shot
//! count and the configured shard size — never on the worker count — so the
//! merged histogram is reproducible at any thread count (also enforced by the
//! differential suite).

use crate::complex::Complex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::thread;

/// Default number of shots per shard of the sharded sampler; see
/// [`ExecConfig::shot_shard_size`](crate::fusion::ExecConfig::shot_shard_size).
pub const DEFAULT_SHOT_SHARD_SIZE: usize = 4096;

/// The precomputed cumulative distribution of a measurement in the
/// computational basis.
///
/// `prefix[k]` holds the probability of measuring an outcome `<= k`,
/// accumulated left to right exactly like the historical linear-scan sampler,
/// so binary-searching a uniform draw reproduces the scan's outcome bit for
/// bit.
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeDistribution {
    prefix: Vec<f64>,
}

impl CumulativeDistribution {
    /// Builds the distribution from the squared magnitudes of an amplitude
    /// slice (the statevector hot path).
    pub fn from_amplitudes(amplitudes: &[Complex]) -> Self {
        Self::accumulate(amplitudes.iter().map(|a| a.norm_sqr()))
    }

    /// Builds the distribution from raw outcome probabilities.
    pub fn from_probabilities(probabilities: &[f64]) -> Self {
        Self::accumulate(probabilities.iter().copied())
    }

    fn accumulate(probabilities: impl Iterator<Item = f64>) -> Self {
        let mut cumulative = 0.0f64;
        let prefix = probabilities
            .map(|p| {
                cumulative += p;
                cumulative
            })
            .collect();
        Self { prefix }
    }

    /// Number of outcomes.
    pub fn num_outcomes(&self) -> usize {
        self.prefix.len()
    }

    /// Maps one uniform draw in `[0, 1)` onto an outcome: the first index
    /// whose cumulative probability exceeds the draw, i.e. exactly the index
    /// at which the linear scan `draw < cumulative` would have stopped.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty.
    pub fn outcome_of(&self, draw: f64) -> usize {
        let index = self
            .prefix
            .partition_point(|&cumulative| cumulative <= draw);
        // A draw at (or beyond, through rounding in the tail) the total mass
        // falls back to the last outcome, as the scan did.
        index.min(self.prefix.len() - 1)
    }

    /// Samples one outcome using one `f64` draw from `rng` (the same RNG
    /// consumption as the linear-scan sampler).
    pub fn sample_one<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.outcome_of(rng.gen())
    }

    /// Samples `shots` outcomes sequentially into a dense histogram.
    pub fn sample_counts<R: Rng + ?Sized>(&self, rng: &mut R, shots: usize) -> Vec<usize> {
        let mut histogram = vec![0usize; self.num_outcomes()];
        for _ in 0..shots {
            histogram[self.sample_one(rng)] += 1;
        }
        histogram
    }

    /// Shot-sharded parallel sampling: `shots` are split into shards of
    /// `shard_size` (the last shard takes the remainder), shard `i` draws
    /// from the independent deterministic stream [`shard_rng`]`(seed, i)`,
    /// and the shards are executed on up to `threads` scoped workers.
    ///
    /// The shard layout is a function of `(shots, shard_size)` alone and
    /// histogram merging is an order-independent sum, so the result is
    /// identical for every `threads` value — including `1` — and fully
    /// determined by `(seed, shots, shard_size)`.
    pub fn sample_sharded(
        &self,
        seed: u64,
        shots: usize,
        threads: usize,
        shard_size: usize,
    ) -> Vec<usize> {
        let shard_size = shard_size.max(1);
        let num_shards = shots.div_ceil(shard_size);
        let shard_shots = |shard: usize| (shots - shard * shard_size).min(shard_size);
        let workers = threads.max(1).min(num_shards.max(1));
        if workers <= 1 {
            let mut histogram = vec![0usize; self.num_outcomes()];
            for shard in 0..num_shards {
                self.sample_shard_into(&mut histogram, seed, shard, shard_shots(shard));
            }
            return histogram;
        }
        // Deal shards round-robin onto workers; each worker fills a private
        // histogram, merged by index-wise summation afterwards.
        let partials = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let dist = &self;
                    scope.spawn(move || {
                        let mut histogram = vec![0usize; dist.num_outcomes()];
                        let mut shard = worker;
                        while shard < num_shards {
                            dist.sample_shard_into(&mut histogram, seed, shard, shard_shots(shard));
                            shard += workers;
                        }
                        histogram
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("sampling worker panicked"))
                .collect::<Vec<_>>()
        });
        let mut histogram = vec![0usize; self.num_outcomes()];
        for partial in partials {
            for (total, count) in histogram.iter_mut().zip(partial) {
                *total += count;
            }
        }
        histogram
    }

    fn sample_shard_into(&self, histogram: &mut [usize], seed: u64, shard: usize, shots: usize) {
        let mut rng = shard_rng(seed, shard);
        for _ in 0..shots {
            histogram[self.sample_one(&mut rng)] += 1;
        }
    }
}

/// The deterministic RNG stream of shard `shard` under batch seed `seed`.
///
/// The two values are mixed through a splitmix64-style finalizer so that
/// neighbouring shards (and neighbouring seeds) start from well-separated
/// states; the scheme is part of the reproducibility contract — changing it
/// changes every sharded histogram.
pub fn shard_rng(seed: u64, shard: usize) -> StdRng {
    let mut mixed = seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    mixed = (mixed ^ (mixed >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    mixed = (mixed ^ (mixed >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(mixed ^ (mixed >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell_distribution() -> CumulativeDistribution {
        CumulativeDistribution::from_probabilities(&[0.5, 0.0, 0.0, 0.5])
    }

    #[test]
    fn outcomes_follow_the_prefix_sums() {
        let dist = bell_distribution();
        assert_eq!(dist.num_outcomes(), 4);
        assert_eq!(dist.outcome_of(0.0), 0);
        assert_eq!(dist.outcome_of(0.25), 0);
        assert_eq!(dist.outcome_of(0.5), 3);
        assert_eq!(dist.outcome_of(0.999), 3);
        // Draws at or past the total mass collapse to the last outcome.
        assert_eq!(dist.outcome_of(1.0), 3);
        assert_eq!(dist.outcome_of(2.0), 3);
    }

    #[test]
    fn sequential_sampling_is_seed_deterministic() {
        let dist = bell_distribution();
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        assert_eq!(
            dist.sample_counts(&mut a, 500),
            dist.sample_counts(&mut b, 500)
        );
    }

    #[test]
    fn sharded_sampling_is_thread_count_invariant() {
        let dist = CumulativeDistribution::from_probabilities(&[0.1, 0.2, 0.3, 0.4]);
        let reference = dist.sample_sharded(42, 10_000, 1, 128);
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                dist.sample_sharded(42, 10_000, threads, 128),
                reference,
                "threads={threads}"
            );
        }
        assert_eq!(reference.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn sharded_sampling_depends_on_seed_and_shard_size() {
        let dist = bell_distribution();
        let base = dist.sample_sharded(1, 4096, 4, 64);
        assert_ne!(dist.sample_sharded(2, 4096, 4, 64), base);
        // A different shard layout is a different (valid) histogram.
        let relayout = dist.sample_sharded(1, 4096, 4, 80);
        assert_eq!(relayout.iter().sum::<usize>(), 4096);
    }

    #[test]
    fn zero_shots_yield_an_empty_histogram() {
        let dist = bell_distribution();
        assert_eq!(dist.sample_sharded(7, 0, 4, 64), vec![0; 4]);
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(dist.sample_counts(&mut rng, 0), vec![0; 4]);
    }

    #[test]
    fn shard_streams_are_distinct() {
        let mut a = shard_rng(9, 0);
        let mut b = shard_rng(9, 1);
        let draws_a: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let draws_b: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(draws_a, draws_b);
    }
}
