//! Multiple-controlled Toffoli gates with mixed-polarity controls.

use std::fmt;

/// A control line of a reversible gate, either positive (active on `1`) or
/// negative (active on `0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Control {
    line: usize,
    positive: bool,
}

impl Control {
    /// A positive control on `line`.
    pub fn positive(line: usize) -> Self {
        Self {
            line,
            positive: true,
        }
    }

    /// A negative control on `line`.
    pub fn negative(line: usize) -> Self {
        Self {
            line,
            positive: false,
        }
    }

    /// The controlled line.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Returns `true` for a positive control.
    pub fn is_positive(&self) -> bool {
        self.positive
    }

    /// Returns whether the control is satisfied by the given input word.
    pub fn is_active(&self, word: usize) -> bool {
        ((word >> self.line) & 1 == 1) == self.positive
    }
}

impl fmt::Display for Control {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.line)
        } else {
            write!(f, "!{}", self.line)
        }
    }
}

/// A multiple-controlled Toffoli (MCT) gate: the target line is inverted
/// whenever every control is active.
///
/// With zero controls the gate is a NOT, with one control a CNOT, with two
/// controls the classic Toffoli gate.
///
/// # Example
///
/// ```
/// use qdaflow_reversible::{Control, MctGate};
///
/// let gate = MctGate::new(vec![Control::positive(0), Control::negative(2)], 1);
/// assert_eq!(gate.apply(0b001), 0b011); // controls satisfied, flips line 1
/// assert_eq!(gate.apply(0b101), 0b101); // negative control on line 2 blocks
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MctGate {
    controls: Vec<Control>,
    target: usize,
}

impl MctGate {
    /// Creates an MCT gate from its controls and target. Controls are sorted
    /// by line for a canonical representation.
    ///
    /// # Panics
    ///
    /// Panics if a control uses the target line or if a line is listed as a
    /// control more than once; use
    /// [`crate::ReversibleCircuit::add_gate`] for a fallible interface.
    pub fn new(mut controls: Vec<Control>, target: usize) -> Self {
        controls.sort_by_key(Control::line);
        for pair in controls.windows(2) {
            assert_ne!(
                pair[0].line(),
                pair[1].line(),
                "line {} listed as a control more than once",
                pair[0].line()
            );
        }
        assert!(
            controls.iter().all(|c| c.line() != target),
            "target line {target} cannot also be a control"
        );
        Self { controls, target }
    }

    /// A NOT gate on `target`.
    pub fn not(target: usize) -> Self {
        Self::new(Vec::new(), target)
    }

    /// A CNOT gate with a positive control.
    pub fn cnot(control: usize, target: usize) -> Self {
        Self::new(vec![Control::positive(control)], target)
    }

    /// A Toffoli gate with two positive controls.
    pub fn toffoli(control_a: usize, control_b: usize, target: usize) -> Self {
        Self::new(
            vec![Control::positive(control_a), Control::positive(control_b)],
            target,
        )
    }

    /// Builds a gate whose positive controls are given by the set bits of
    /// `mask` (useful when translating cube/ESOP data).
    ///
    /// # Panics
    ///
    /// Panics if `mask` has the target bit set.
    pub fn from_mask(mask: u64, target: usize) -> Self {
        let controls = (0..64)
            .filter(|&line| (mask >> line) & 1 == 1)
            .map(Control::positive)
            .collect();
        Self::new(controls, target)
    }

    /// The controls of the gate, sorted by line.
    pub fn controls(&self) -> &[Control] {
        &self.controls
    }

    /// The target line.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Number of controls.
    pub fn num_controls(&self) -> usize {
        self.controls.len()
    }

    /// Largest line index used by the gate.
    pub fn max_line(&self) -> usize {
        self.controls
            .iter()
            .map(Control::line)
            .chain(std::iter::once(self.target))
            .max()
            .expect("a gate always has a target line")
    }

    /// Returns `true` if every control is active for the given word.
    pub fn is_active(&self, word: usize) -> bool {
        self.controls.iter().all(|c| c.is_active(word))
    }

    /// Applies the gate to a classical bit word.
    pub fn apply(&self, word: usize) -> usize {
        if self.is_active(word) {
            word ^ (1usize << self.target)
        } else {
            word
        }
    }

    /// Returns the same gate acting on lines shifted by `offset` (used when
    /// embedding a sub-circuit into a larger register).
    pub fn shifted(&self, offset: usize) -> Self {
        Self {
            controls: self
                .controls
                .iter()
                .map(|c| {
                    if c.is_positive() {
                        Control::positive(c.line() + offset)
                    } else {
                        Control::negative(c.line() + offset)
                    }
                })
                .collect(),
            target: self.target + offset,
        }
    }

    /// Returns the same gate with its lines renamed through `map` (the map
    /// must be injective on the used lines).
    pub fn relabeled<F: Fn(usize) -> usize>(&self, map: F) -> Self {
        Self::new(
            self.controls
                .iter()
                .map(|c| {
                    if c.is_positive() {
                        Control::positive(map(c.line()))
                    } else {
                        Control::negative(map(c.line()))
                    }
                })
                .collect(),
            map(self.target),
        )
    }

    /// Returns `true` if two gates trivially commute: neither gate's target
    /// is used (as control or target) by the other gate... unless both gates
    /// share the same target, in which case they also commute.
    pub fn commutes_with(&self, other: &Self) -> bool {
        if self.target == other.target {
            // Same target: both flip the same line; the flips commute as long
            // as neither uses the other's target as control, which is
            // guaranteed because the shared line is a target in both.
            return true;
        }
        let self_touches_other_target = self.controls.iter().any(|c| c.line() == other.target);
        let other_touches_self_target = other.controls.iter().any(|c| c.line() == self.target);
        !self_touches_other_target && !other_touches_self_target
    }
}

impl fmt::Display for MctGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let controls: Vec<String> = self.controls.iter().map(|c| c.to_string()).collect();
        write!(f, "t({} ; {})", controls.join(","), self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_cnot_toffoli_semantics() {
        assert_eq!(MctGate::not(1).apply(0b000), 0b010);
        assert_eq!(MctGate::cnot(0, 1).apply(0b001), 0b011);
        assert_eq!(MctGate::cnot(0, 1).apply(0b010), 0b010);
        assert_eq!(MctGate::toffoli(0, 1, 2).apply(0b011), 0b111);
        assert_eq!(MctGate::toffoli(0, 1, 2).apply(0b001), 0b001);
    }

    #[test]
    fn gates_are_involutions() {
        let gate = MctGate::new(vec![Control::positive(0), Control::negative(3)], 2);
        for word in 0..16usize {
            assert_eq!(gate.apply(gate.apply(word)), word);
        }
    }

    #[test]
    fn negative_controls_activate_on_zero() {
        let gate = MctGate::new(vec![Control::negative(0)], 1);
        assert_eq!(gate.apply(0b00), 0b10);
        assert_eq!(gate.apply(0b01), 0b01);
    }

    #[test]
    fn from_mask_builds_positive_controls() {
        let gate = MctGate::from_mask(0b1010, 0);
        assert_eq!(gate.num_controls(), 2);
        assert!(gate.controls().iter().all(Control::is_positive));
        assert_eq!(gate.apply(0b1010), 0b1011);
        assert_eq!(gate.apply(0b0010), 0b0010);
    }

    #[test]
    #[should_panic(expected = "cannot also be a control")]
    fn target_equal_to_control_panics() {
        MctGate::new(vec![Control::positive(1)], 1);
    }

    #[test]
    #[should_panic(expected = "more than once")]
    fn duplicate_control_panics() {
        MctGate::new(vec![Control::positive(1), Control::negative(1)], 0);
    }

    #[test]
    fn shifted_and_relabeled() {
        let gate = MctGate::toffoli(0, 1, 2);
        let shifted = gate.shifted(3);
        assert_eq!(shifted.target(), 5);
        assert_eq!(shifted.apply(0b011000), 0b111000);
        let swapped = gate.relabeled(|l| [2, 1, 0][l]);
        assert_eq!(swapped.target(), 0);
        assert_eq!(swapped.apply(0b110), 0b111);
    }

    #[test]
    fn commutation_checks() {
        let a = MctGate::cnot(0, 1);
        let b = MctGate::cnot(0, 2);
        let c = MctGate::cnot(1, 2);
        let d = MctGate::cnot(2, 1);
        assert!(a.commutes_with(&b));
        assert!(!a.commutes_with(&c)); // a's target 1 is c's control
        assert!(!c.commutes_with(&d));
        assert!(MctGate::not(1).commutes_with(&MctGate::cnot(0, 1)));
        // Same target, disjoint controls: the conditional flips commute.
        assert!(a.commutes_with(&MctGate::cnot(2, 1)));
    }

    #[test]
    fn display_format() {
        let gate = MctGate::new(vec![Control::positive(2), Control::negative(0)], 1);
        assert_eq!(gate.to_string(), "t(!0,2 ; 1)");
        assert_eq!(Control::positive(3).to_string(), "3");
    }

    #[test]
    fn max_line() {
        assert_eq!(MctGate::toffoli(0, 4, 2).max_line(), 4);
        assert_eq!(MctGate::not(7).max_line(), 7);
    }
}
