//! One-call compilation flow: from a Boolean specification to an optimized
//! Clifford+T circuit with a compilation report.
//!
//! This is the programmatic equivalent of the shell pipeline of equation (5)
//! of the paper (`revgen; tbs; revsimp; rptm; tpar; ps`), exposed as a single
//! function per specification kind. Since the pass-manager redesign these
//! functions are thin wrappers over canned [`Pipeline`]s — the same objects
//! [`Pipeline::parse`] produces from the paper's shell syntax — with their
//! historical signatures and outputs preserved.

use qdaflow_boolfn::{Permutation, TruthTable};
use qdaflow_engine::EngineError;
use qdaflow_pipeline::passes::{synthesis_pass, Esopbs, PhaseOracle, Ps, Revsimp, Rptm, Tpar};
use qdaflow_pipeline::{Pipeline, PipelineReport};
use qdaflow_quantum::{resource::ResourceCounts, QuantumCircuit};
use qdaflow_reversible::synthesis::SynthesisMethod;

/// A report describing every stage of a compilation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilationReport {
    /// Gates of the reversible circuit right after synthesis.
    pub reversible_gates: usize,
    /// Gates of the reversible circuit after `revsimp`.
    pub simplified_gates: usize,
    /// Resource counts of the mapped Clifford+T circuit before `tpar`.
    pub mapped: ResourceCounts,
    /// Resource counts after T-count optimization.
    pub optimized: ResourceCounts,
    /// The final circuit.
    pub circuit: QuantumCircuit,
}

impl CompilationReport {
    /// T-count reduction achieved by the optimization stage.
    pub fn t_count_saving(&self) -> usize {
        self.mapped.t_count.saturating_sub(self.optimized.t_count)
    }
}

/// The canned pipeline of equation (5) for a permutation specification:
/// `tbs`/`dbs`; `revsimp`; `rptm`; `tpar`; `ps` — what
/// [`compile_permutation`] runs, exposed so callers can inspect, extend or
/// rehearse it (for example via
/// [`Pipeline::pass_names`]).
pub fn equation5_pipeline(method: SynthesisMethod) -> Pipeline {
    Pipeline::builder()
        .then_boxed(synthesis_pass(method))
        .then(Revsimp)
        .then(Rptm::default())
        .then(Tpar)
        .then(Ps)
        .build()
        .expect("the canned equation (5) pipeline is statically valid")
}

fn missing_record(pass: &str) -> EngineError {
    EngineError::Flow {
        message: format!("canned pipeline did not record the '{pass}' pass"),
    }
}

fn require_gates(report: &PipelineReport, pass: &str) -> Result<usize, EngineError> {
    report.gates_after(pass).ok_or_else(|| missing_record(pass))
}

fn require_resources(report: &PipelineReport, pass: &str) -> Result<ResourceCounts, EngineError> {
    report
        .resources_after(pass)
        .cloned()
        .ok_or_else(|| missing_record(pass))
}

fn require_circuit(report: &PipelineReport) -> Result<QuantumCircuit, EngineError> {
    report
        .final_quantum()
        .cloned()
        .ok_or_else(|| missing_record("final quantum"))
}

/// Compiles a permutation (reversible specification) down to an optimized
/// Clifford+T circuit: synthesis → simplification → mapping → T optimization.
///
/// Thin wrapper over the canned [`equation5_pipeline`]; output is identical
/// to running that pipeline (or `Pipeline::parse` of the paper's script) on
/// the permutation.
///
/// # Errors
///
/// Propagates synthesis and mapping errors (for example, a specification that
/// is too large for explicit synthesis).
pub fn compile_permutation(
    permutation: &Permutation,
    method: SynthesisMethod,
) -> Result<CompilationReport, EngineError> {
    let pipeline = equation5_pipeline(method);
    let report = pipeline
        .run(permutation.clone().into())
        .map_err(EngineError::from)?;
    Ok(CompilationReport {
        reversible_gates: require_gates(&report, method.command_name())?,
        simplified_gates: require_gates(&report, "revsimp")?,
        mapped: require_resources(&report, "rptm")?,
        optimized: require_resources(&report, "tpar")?,
        circuit: require_circuit(&report)?,
    })
}

/// Compiles a single-output Boolean function into an optimized diagonal phase
/// oracle (the `PhaseOracle` path), with multi-controlled phases decomposed
/// into Clifford+T.
///
/// Runs two canned pipelines: `esopbs; revsimp` for the Bennett-embedding
/// statistics of the report (the "reversible" stage, one Toffoli per ESOP
/// cube), and `po; tpar` for the final decomposed phase oracle.
///
/// # Errors
///
/// Propagates ESOP extraction and mapping errors.
pub fn compile_phase_function(function: &TruthTable) -> Result<CompilationReport, EngineError> {
    let embedding = Pipeline::builder()
        .then(Esopbs::default())
        .then(Revsimp)
        .build()
        .expect("the embedding pipeline is statically valid")
        .run(function.clone().into())
        .map_err(EngineError::from)?;
    let oracle = Pipeline::builder()
        .then(PhaseOracle::decomposed())
        .then(Tpar)
        .build()
        .expect("the oracle pipeline is statically valid")
        .run(function.clone().into())
        .map_err(EngineError::from)?;
    Ok(CompilationReport {
        reversible_gates: require_gates(&embedding, "esopbs")?,
        simplified_gates: require_gates(&embedding, "revsimp")?,
        mapped: require_resources(&oracle, "po")?,
        optimized: require_resources(&oracle, "tpar")?,
        circuit: require_circuit(&oracle)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdaflow_boolfn::Expr;
    use qdaflow_mapping::phase_oracle;
    use qdaflow_quantum::statevector::Statevector;

    #[test]
    fn compile_permutation_produces_a_correct_clifford_t_circuit() {
        let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
        for method in [
            SynthesisMethod::TransformationBased,
            SynthesisMethod::DecompositionBased,
        ] {
            let report = compile_permutation(&pi, method).unwrap();
            assert!(report.circuit.is_clifford_t());
            assert!(report.optimized.t_count <= report.mapped.t_count);
            assert!(report.simplified_gates <= report.reversible_gates);
            for basis in 0..8usize {
                let mut state =
                    Statevector::basis_state(report.circuit.num_qubits(), basis).unwrap();
                state.apply_circuit(&report.circuit);
                assert!(
                    state.probability_of(pi.apply(basis)) > 1.0 - 1e-9,
                    "{method:?} basis {basis}"
                );
            }
        }
    }

    #[test]
    fn compile_phase_function_matches_the_function() {
        let f = Expr::parse("(a & b) ^ (c & d) ^ (a & c & d)")
            .unwrap()
            .truth_table(4)
            .unwrap();
        let report = compile_phase_function(&f).unwrap();
        assert!(report.circuit.is_clifford_t());
        assert!(phase_oracle::oracle_matches_function(&report.circuit, &f));
        assert!(report.t_count_saving() <= report.mapped.t_count);
    }

    #[test]
    fn identity_permutation_compiles_to_an_empty_circuit() {
        let report = compile_permutation(
            &Permutation::identity(3),
            SynthesisMethod::TransformationBased,
        )
        .unwrap();
        assert_eq!(report.optimized.total_gates, 0);
        assert_eq!(report.t_count_saving(), 0);
    }
}
