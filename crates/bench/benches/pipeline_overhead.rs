//! Criterion benchmark of the pass-manager overhead: the canned
//! `flow::compile_permutation` wrapper against an explicitly built (and a
//! freshly parsed) pipeline running the same passes. The pass-manager
//! bookkeeping (dispatch, per-pass metrics, artifact snapshots) must be
//! negligible next to the synthesis/mapping work itself.
//!
//! The `pipeline_passes` group times each pass of the equation (5) flow
//! individually on its staged input; captured with `BENCH_JSON` it is the
//! source of the committed `BENCH_pipeline.json` per-pass timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdaflow::flow;
use qdaflow::pipeline::passes::{synthesis_pass, Revsimp, Rptm, Tpar};
use qdaflow::pipeline::Pass;
use qdaflow::prelude::*;
use qdaflow::reversible::synthesis::SynthesisMethod;
use std::time::Duration;

fn bench_pipeline_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [4usize, 5, 6] {
        let pi = qdaflow::boolfn::hwb::hwb_permutation(n);

        group.bench_with_input(BenchmarkId::new("canned_flow_wrapper", n), &pi, |b, pi| {
            b.iter(|| flow::compile_permutation(pi, SynthesisMethod::TransformationBased).unwrap())
        });

        let pipeline = flow::equation5_pipeline(SynthesisMethod::TransformationBased);
        group.bench_with_input(BenchmarkId::new("prebuilt_pipeline", n), &pi, |b, pi| {
            b.iter(|| pipeline.run(pi.clone().into()).unwrap())
        });

        group.bench_with_input(BenchmarkId::new("parse_and_run", n), &pi, |b, pi| {
            b.iter(|| {
                Pipeline::parse("revgen; tbs; revsimp; rptm; tpar; ps")
                    .unwrap()
                    .run(pi.clone().into())
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_per_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_passes");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // Stage the inputs once: each pass is timed on the IR its predecessor
    // produces in the equation (5) pipeline.
    let pi = qdaflow::boolfn::hwb::hwb_permutation(6);
    let tbs = synthesis_pass(SynthesisMethod::TransformationBased);
    let reversible = tbs
        .apply(pi.clone().into())
        .expect("tbs synthesizes hwb(6)");
    let simplified = Revsimp
        .apply(reversible.clone())
        .expect("revsimp simplifies");
    let mapped = Rptm::default()
        .apply(simplified.clone())
        .expect("rptm maps");
    group.bench_function("tbs_6q", |b| {
        b.iter(|| tbs.apply(pi.clone().into()).unwrap())
    });
    group.bench_function("revsimp_6q", |b| {
        b.iter(|| Revsimp.apply(reversible.clone()).unwrap())
    });
    group.bench_function("rptm_6q", |b| {
        b.iter(|| Rptm::default().apply(simplified.clone()).unwrap())
    });
    group.bench_function("tpar_6q", |b| {
        b.iter(|| Tpar.apply(mapped.clone()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline_overhead, bench_per_pass);
criterion_main!(benches);
