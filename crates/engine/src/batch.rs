//! The batch execution subsystem: deduplicated compilation plus parallel,
//! reproducible sampling for many jobs at once.
//!
//! A [`BatchJob`] is one workload — an [`OracleSpec`] plus a shot count, a
//! sampling seed and a simulation [`BackendChoice`] (dense, sparse,
//! stabilizer, or automatic). [`BatchEngine::run_batch`] executes a whole
//! slice of jobs:
//!
//! 1. jobs under [`BackendChoice::Auto`] are **resolved** first
//!    ([`BatchEngine::resolve_backends`]): the spec is compiled through the
//!    cache, censused ([`qdaflow_quantum::GateCensus`]) and routed by
//!    [`resolve_backend`] — so every key and log entry downstream names a
//!    concrete backend, never `auto`;
//! 2. every job is keyed by the canonical hash of its spec *and* resolved
//!    backend ([`BatchJob::cache_key`]) and **deduplicated** through the
//!    engine's [`OracleCache`], so `N` jobs over `k` distinct oracles cost
//!    `k` compilations (or fewer, when the cache is warm from a previous
//!    batch);
//! 3. the distinct programs are compiled and simulated **in parallel** over
//!    `std::thread::scope` workers (one simulated state — dense, sparse, or
//!    a stabilizer support sampler per the job's backend — per distinct
//!    program, shared by every job that uses it);
//! 4. each job samples its shots with the **shot-sharded** sampler
//!    ([`Statevector::sample_counts_sharded`] /
//!    [`SparseStatevector::sample_counts_sharded`] /
//!    [`StabilizerSampler::sample_counts_sharded`]) under its own seed.
//!
//! Results come back in job order and are fully reproducible: a job's
//! histogram depends only on `(spec, backend, shots, seed,
//! shot_shard_size)` — never on the thread count, the batch composition, or
//! the cache state. Auto resolution is reproducible too: it is a pure
//! function of the compiled circuit.

use crate::cache::{CompiledProgram, OracleCache, OracleSpec};
use crate::engine::{resolve_backend, BackendChoice};
use crate::EngineError;
use qdaflow_pipeline::spec::{CanonicalHasher, SpecKey};
use qdaflow_quantum::backend::ExecutionResult;
use qdaflow_quantum::fusion::ExecConfig;
use qdaflow_quantum::{GateCensus, QuantumError, Statevector};
use qdaflow_sparse::SparseStatevector;
use qdaflow_stabilizer::{StabilizerSampler, StabilizerTableau};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread;

/// One batch workload: compile `spec`, execute it on the chosen simulation
/// backend, and sample `shots` measurements under `seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchJob {
    /// The oracle to compile and execute.
    pub spec: OracleSpec,
    /// Number of measurement shots.
    pub shots: usize,
    /// Seed of the job's sharded sampling streams.
    pub seed: u64,
    /// Which exact simulation engine executes the compiled oracle.
    pub backend: BackendChoice,
}

impl BatchJob {
    /// Creates a job on the default (dense) simulation backend.
    pub fn new(spec: OracleSpec, shots: usize, seed: u64) -> Self {
        Self {
            spec,
            shots,
            seed,
            backend: BackendChoice::default(),
        }
    }

    /// Replaces the simulation backend of the job.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// The cache key of this job's compilation.
    ///
    /// Dense jobs use the spec's canonical key unchanged (so the batch path
    /// shares cache entries with [`OracleCache::get_or_compile`] and keys
    /// stay stable across releases); every other backend extends the digest
    /// with a backend tag, so the cache distinguishes which execution engine
    /// a program was compiled for. Compilation itself is
    /// backend-independent, so a mixed-backend workload over the same spec
    /// deliberately compiles (and caches) it once *per backend* — the cache
    /// records the execution-ready artifact per engine, trading one
    /// redundant compilation for unambiguous per-backend provenance.
    /// [`BackendChoice::Auto`] jobs are resolved to a concrete backend
    /// before keying on the batch path ([`BatchEngine::resolve_backends`]),
    /// so cache entries stay backend-exact; the defensive `backend:auto` tag
    /// only appears if an unresolved job is keyed directly.
    pub fn cache_key(&self) -> SpecKey {
        let base = self.spec.cache_key();
        let tag = match self.backend {
            BackendChoice::Dense => return base,
            BackendChoice::Sparse => "backend:sparse",
            BackendChoice::Stabilizer => "backend:stabilizer",
            BackendChoice::Auto => "backend:auto",
        };
        let mut hasher = CanonicalHasher::new();
        hasher.write_u64((base.0 >> 64) as u64);
        hasher.write_u64(base.0 as u64);
        hasher.write_str(tag);
        hasher.finish()
    }
}

/// The simulated output state of one distinct batch program, on whichever
/// engine its jobs selected.
#[derive(Debug)]
enum SimulatedState {
    Dense(Statevector),
    Sparse(SparseStatevector),
    /// The stabilizer path stores the enumerated support sampler rather
    /// than a tableau, so support-extraction errors surface at simulate
    /// time (in the fallible batch path) and per-job sampling stays
    /// infallible like the other backends.
    Stabilizer(StabilizerSampler),
}

impl SimulatedState {
    /// Samples a job's shots with the shot-sharded sampler and builds its
    /// [`ExecutionResult`]; all engines use the same `(seed, shard)` RNG
    /// scheme, so equal-seed jobs agree across backends.
    fn sample_job(
        &self,
        program: &CompiledProgram,
        shots: usize,
        seed: u64,
        config: &ExecConfig,
    ) -> ExecutionResult {
        match self {
            Self::Dense(state) => {
                let histogram = state.sample_counts_sharded(seed, shots, config);
                ExecutionResult::from_histogram(program.circuit(), shots, &histogram)
            }
            Self::Sparse(state) => {
                let counts =
                    qdaflow_sparse::widen_counts(state.sample_counts_sharded(seed, shots, config));
                ExecutionResult::from_counts(program.circuit(), shots, counts)
            }
            Self::Stabilizer(sampler) => {
                let counts = sampler.sample_counts_sharded(seed, shots, config);
                ExecutionResult::from_counts(program.circuit(), shots, counts)
            }
        }
    }
}

/// The batch execution engine: an [`OracleCache`] plus an execution
/// configuration. The cache persists across [`BatchEngine::run_batch`]
/// calls, so a long-running service keeps amortizing compilations over its
/// whole lifetime.
#[derive(Debug, Default)]
pub struct BatchEngine {
    cache: OracleCache,
    config: ExecConfig,
}

impl BatchEngine {
    /// Creates an engine with an empty cache and the default execution
    /// configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine with an explicit execution configuration
    /// (`config.threads` bounds both the per-program simulation workers and
    /// the shot-sharded sampling workers; `config.shot_shard_size` is part
    /// of the sampling reproducibility contract).
    pub fn with_config(config: ExecConfig) -> Self {
        Self {
            cache: OracleCache::new(),
            config,
        }
    }

    /// The execution configuration in use.
    pub fn exec_config(&self) -> ExecConfig {
        self.config
    }

    /// Replaces the execution configuration. Does not invalidate the cache —
    /// compiled circuits are configuration-independent.
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// The engine's compiled-oracle cache (for statistics or pre-warming).
    pub fn cache(&self) -> &OracleCache {
        &self.cache
    }

    /// Executes a batch of jobs with the engine's own configuration; see
    /// [`BatchEngine::run_batch_with`].
    ///
    /// # Errors
    ///
    /// Returns the first compilation or simulation error (by distinct-spec
    /// order); on error no partial results are returned.
    pub fn run_batch(&self, jobs: &[BatchJob]) -> Result<Vec<ExecutionResult>, EngineError> {
        self.run_batch_with(jobs, &self.config)
    }

    /// Resolves every job's backend to a concrete choice: jobs already on a
    /// concrete backend pass through unchanged, [`BackendChoice::Auto`] jobs
    /// are compiled through the cache (under the raw spec key, shared with
    /// dense callers), censused, and routed by [`resolve_backend`]. The
    /// returned vector is in job order and never contains `Auto` — the shell
    /// logs it per job, and [`BatchEngine::run_batch_with`] keys the cache
    /// with it.
    ///
    /// # Errors
    ///
    /// Returns the first compilation error among the `Auto` jobs.
    pub fn resolve_backends(&self, jobs: &[BatchJob]) -> Result<Vec<BackendChoice>, EngineError> {
        jobs.iter()
            .map(|job| match job.backend {
                BackendChoice::Auto => {
                    let program = self.cache.get_or_compile(&job.spec)?;
                    Ok(resolve_backend(&GateCensus::of(program.circuit())))
                }
                concrete => Ok(concrete),
            })
            .collect()
    }

    /// Executes a batch of jobs under an explicit execution configuration:
    /// automatic-backend resolution, deduplicated compilation through the
    /// cache, parallel compilation + simulation of the distinct programs,
    /// and shot-sharded sampling per job. Results are returned in job order.
    ///
    /// # Errors
    ///
    /// Returns the first compilation or simulation error (by distinct-spec
    /// order); on error no partial results are returned.
    pub fn run_batch_with(
        &self,
        jobs: &[BatchJob],
        config: &ExecConfig,
    ) -> Result<Vec<ExecutionResult>, EngineError> {
        // Resolve Auto jobs to concrete backends first, so cache keys and
        // simulated states are always backend-exact. The materialized copy
        // is only made when the batch actually contains an Auto job. The
        // program resolution just compiled under the raw spec key is aliased
        // into the backend-tagged slot, so resolution and execution share
        // one compilation per distinct spec.
        let materialized: Option<Vec<BatchJob>> =
            if jobs.iter().any(|job| job.backend == BackendChoice::Auto) {
                let resolved = self.resolve_backends(jobs)?;
                Some(
                    jobs.iter()
                        .zip(resolved)
                        .map(|(job, backend)| {
                            let was_auto = job.backend == BackendChoice::Auto;
                            let resolved_job = job.clone().with_backend(backend);
                            let tagged = resolved_job.cache_key();
                            if was_auto && tagged != job.spec.cache_key() {
                                if let Some(program) = self.cache.peek(job.spec.cache_key()) {
                                    self.cache.alias_keyed(tagged, &program);
                                }
                            }
                            resolved_job
                        })
                        .collect(),
                )
            } else {
                None
            };
        let jobs = materialized.as_deref().unwrap_or(jobs);
        // Deduplicate jobs by canonical (spec, backend) key, keeping
        // first-appearance order so error reporting and work distribution
        // are deterministic.
        let keys: Vec<SpecKey> = jobs.iter().map(BatchJob::cache_key).collect();
        let mut seen = HashSet::with_capacity(jobs.len());
        let mut distinct: Vec<(SpecKey, &OracleSpec, BackendChoice)> = Vec::new();
        for (job, &key) in jobs.iter().zip(&keys) {
            if seen.insert(key) {
                distinct.push((key, &job.spec, job.backend));
            }
        }
        let executed = self.compile_and_simulate(&distinct, config)?;
        let mut results = Vec::with_capacity(jobs.len());
        for (job, key) in jobs.iter().zip(&keys) {
            let (program, state) = &executed[key];
            results.push(state.sample_job(program, job.shots, job.seed, config));
        }
        Ok(results)
    }

    /// Compiles (through the cache) and simulates every distinct spec on its
    /// selected backend, in parallel over up to `config.threads` scoped
    /// workers.
    #[allow(clippy::type_complexity)]
    fn compile_and_simulate(
        &self,
        distinct: &[(SpecKey, &OracleSpec, BackendChoice)],
        config: &ExecConfig,
    ) -> Result<HashMap<SpecKey, (Arc<CompiledProgram>, SimulatedState)>, EngineError> {
        let workers = config.threads.max(1).min(distinct.len().max(1));
        // Avoid thread oversubscription: the per-simulation thread budget is
        // the config's, divided by the batch workers running concurrently.
        let simulate_config = config.with_threads((config.threads / workers).max(1));
        let run_one = |key: SpecKey,
                       spec: &OracleSpec,
                       backend: BackendChoice|
         -> Result<(Arc<CompiledProgram>, SimulatedState), EngineError> {
            let program = self.cache.get_or_compile_keyed(key, spec)?;
            // run_batch_with resolves Auto before keying; this guard only
            // fires when compile_and_simulate is reached some other way.
            let backend = match backend {
                BackendChoice::Auto => resolve_backend(&GateCensus::of(program.circuit())),
                concrete => concrete,
            };
            let state = match backend {
                BackendChoice::Dense => {
                    SimulatedState::Dense(Statevector::run(program.circuit(), &simulate_config)?)
                }
                BackendChoice::Sparse => {
                    SimulatedState::Sparse(SparseStatevector::from_circuit(program.circuit())?)
                }
                BackendChoice::Stabilizer => {
                    let tableau = StabilizerTableau::from_circuit(program.circuit())
                        .map_err(QuantumError::from)?;
                    SimulatedState::Stabilizer(tableau.sampler().map_err(QuantumError::from)?)
                }
                BackendChoice::Auto => unreachable!("auto resolution produced Auto"),
            };
            Ok((program, state))
        };
        let mut outcomes: Vec<Option<Result<_, EngineError>>> = if workers <= 1 {
            distinct
                .iter()
                .map(|&(key, spec, backend)| Some(run_one(key, spec, backend)))
                .collect()
        } else {
            let mut slots: Vec<Option<Result<_, EngineError>>> =
                (0..distinct.len()).map(|_| None).collect();
            thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for worker in 0..workers {
                    let run_one = &run_one;
                    handles.push(scope.spawn(move || {
                        let mut local = Vec::new();
                        let mut index = worker;
                        while index < distinct.len() {
                            let (key, spec, backend) = distinct[index];
                            local.push((index, run_one(key, spec, backend)));
                            index += workers;
                        }
                        local
                    }));
                }
                for handle in handles {
                    for (index, outcome) in handle.join().expect("batch worker panicked") {
                        slots[index] = Some(outcome);
                    }
                }
            });
            slots
        };
        let mut executed = HashMap::with_capacity(distinct.len());
        for ((key, _, _), outcome) in distinct.iter().zip(outcomes.iter_mut()) {
            let outcome = outcome.take().expect("every distinct spec was executed");
            executed.insert(*key, outcome?);
        }
        Ok(executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SynthesisChoice;
    use qdaflow_boolfn::{Permutation, TruthTable};

    /// The Fig. 4 hidden-shift program at `n` qubits as pure-Clifford QASM:
    /// the bent function f(x) = Σ x_{2i}·x_{2i+1} is a layer of CZ pairs
    /// (and is self-dual, so the same layer serves as U_f and U_f̃), the
    /// shifted oracle is X_s·U_f·X_s, and the ideal output is exactly |s⟩.
    fn clifford_hidden_shift_qasm(n: usize, shift: usize) -> String {
        use std::fmt::Write as _;
        let mut source = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
        writeln!(source, "qreg q[{n}];").unwrap();
        let h_layer = |source: &mut String| {
            for q in 0..n {
                writeln!(source, "h q[{q}];").unwrap();
            }
        };
        let shift_layer = |source: &mut String| {
            for q in 0..n.min(usize::BITS as usize) {
                if (shift >> q) & 1 == 1 {
                    writeln!(source, "x q[{q}];").unwrap();
                }
            }
        };
        let oracle = |source: &mut String| {
            for i in 0..n / 2 {
                writeln!(source, "cz q[{}],q[{}];", 2 * i, 2 * i + 1).unwrap();
            }
        };
        h_layer(&mut source);
        shift_layer(&mut source);
        oracle(&mut source);
        shift_layer(&mut source);
        h_layer(&mut source);
        oracle(&mut source);
        h_layer(&mut source);
        source
    }

    fn perm_job(images: Vec<usize>, shots: usize, seed: u64) -> BatchJob {
        BatchJob::new(
            OracleSpec::permutation(
                Permutation::new(images).unwrap(),
                SynthesisChoice::default(),
            ),
            shots,
            seed,
        )
    }

    #[test]
    fn duplicate_jobs_compile_once() {
        let engine = BatchEngine::new();
        let jobs = vec![
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 64, 1),
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 64, 2),
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 128, 3),
            perm_job(vec![1, 0, 3, 2], 64, 4),
        ];
        let results = engine.run_batch(&jobs).unwrap();
        assert_eq!(results.len(), 4);
        let stats = engine.cache().stats();
        assert_eq!(stats.misses, 2, "two distinct oracles in the batch");
        assert_eq!(stats.entries, 2);
        // A second batch over the same oracles is all cache hits.
        engine.run_batch(&jobs).unwrap();
        assert_eq!(engine.cache().stats().misses, 2);
        assert!(engine.cache().stats().hits >= 2);
    }

    #[test]
    fn results_arrive_in_job_order_and_with_the_right_shots() {
        let engine = BatchEngine::new();
        let jobs = vec![
            perm_job(vec![1, 0, 3, 2], 10, 1),
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 20, 1),
            perm_job(vec![1, 0, 3, 2], 30, 1),
        ];
        let results = engine.run_batch(&jobs).unwrap();
        assert_eq!(
            results.iter().map(|r| r.shots).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert_eq!(results[0].num_qubits, results[2].num_qubits);
        // All probability mass of a permutation oracle on |0…0⟩ sits on π(0).
        assert_eq!(results[0].most_likely(), Some((1, 1.0)));
    }

    #[test]
    fn batch_results_are_thread_count_invariant() {
        let jobs = vec![
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 2000, 11),
            BatchJob::new(
                OracleSpec::phase_function(
                    TruthTable::from_bits(3, (0..8).map(|x| x % 3 == 0)).unwrap(),
                ),
                1500,
                13,
            ),
        ];
        let config = ExecConfig::sequential().with_shot_shard_size(128);
        let sequential = BatchEngine::with_config(config).run_batch(&jobs).unwrap();
        for threads in [2usize, 4, 8] {
            let threaded = BatchEngine::with_config(config.with_threads(threads))
                .run_batch(&jobs)
                .unwrap();
            assert_eq!(sequential, threaded, "threads={threads}");
        }
    }

    #[test]
    fn seeds_isolate_jobs_over_the_same_oracle() {
        let engine = BatchEngine::new();
        // A phase oracle preceded by nothing is deterministic, so use a
        // function with spread mass: sample the uniform state by compiling a
        // phase oracle and sampling — histograms over a deterministic state
        // are equal regardless of seed; instead check that equal seeds give
        // equal results and that the job seed (not position) keys sampling.
        let jobs = vec![
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 500, 42),
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 500, 42),
        ];
        let results = engine.run_batch(&jobs).unwrap();
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine = BatchEngine::new();
        assert!(engine.run_batch(&[]).unwrap().is_empty());
        assert_eq!(engine.cache().stats().entries, 0);
    }

    #[test]
    fn cache_keys_distinguish_backend_choice() {
        let dense = perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 64, 1);
        let sparse = dense.clone().with_backend(BackendChoice::Sparse);
        assert_ne!(dense.cache_key(), sparse.cache_key());
        // The dense job key stays the raw spec key, so the batch path keeps
        // sharing cache entries with direct `get_or_compile` callers.
        assert_eq!(dense.cache_key(), dense.spec.cache_key());
        // A mixed batch compiles (and caches) the oracle once per backend.
        let engine = BatchEngine::new();
        engine.run_batch(&[dense, sparse]).unwrap();
        let stats = engine.cache().stats();
        assert_eq!((stats.misses, stats.entries), (2, 2));
    }

    #[test]
    fn sparse_jobs_match_dense_jobs_shot_for_shot() {
        // Unfused sequential execution makes the two engines' amplitudes
        // (and therefore their sampling prefix sums) bit-identical, so
        // equal-seed jobs must produce the *same* histogram.
        let config = ExecConfig::baseline().with_shot_shard_size(128);
        let engine = BatchEngine::with_config(config);
        let jobs: Vec<BatchJob> = [
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 2000, 11),
            BatchJob::new(
                OracleSpec::phase_function(
                    TruthTable::from_bits(3, (0..8).map(|x| x % 3 == 0)).unwrap(),
                ),
                1500,
                13,
            ),
        ]
        .into_iter()
        .flat_map(|job| [job.clone(), job.with_backend(BackendChoice::Sparse)])
        .collect();
        let results = engine.run_batch(&jobs).unwrap();
        assert_eq!(results[0], results[1], "permutation oracle");
        assert_eq!(results[2], results[3], "phase oracle");
    }

    #[test]
    fn stabilizer_jobs_match_dense_jobs_shot_for_shot() {
        // A permutation oracle synthesized into Clifford+T is not Clifford,
        // but a pure phase-function oracle over Mcz(≤2)/Z gates can be; use
        // a parity-ish function whose compiled circuit is all-Clifford. The
        // linear function x0^x1 compiles to Z gates only.
        let config = ExecConfig::baseline().with_shot_shard_size(128);
        let engine = BatchEngine::with_config(config);
        let job = BatchJob::new(
            OracleSpec::phase_function(
                TruthTable::from_bits(2, [false, true, true, false]).unwrap(),
            ),
            2000,
            11,
        );
        let jobs = vec![job.clone(), job.with_backend(BackendChoice::Stabilizer)];
        let results = engine.run_batch(&jobs).unwrap();
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn stabilizer_jobs_run_clifford_circuits_beyond_every_amplitude_ceiling() {
        // A 100-qubit Clifford program through the batch engine: both
        // amplitude engines are representationally incapable of this.
        let source = clifford_hidden_shift_qasm(100, 0b1001011);
        let job =
            BatchJob::new(OracleSpec::qasm(source), 512, 5).with_backend(BackendChoice::Stabilizer);
        let engine = BatchEngine::new();
        let started = std::time::Instant::now();
        let results = engine.run_batch(&[job]).unwrap();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(1),
            "100q Clifford batch took {:?}",
            started.elapsed()
        );
        assert_eq!(results[0].most_likely(), Some((0b1001011, 1.0)));
    }

    #[test]
    fn auto_jobs_resolve_to_the_backend_the_census_predicts() {
        // The acceptance triple: an H-heavy+T circuit (dense), a
        // permutation oracle whose Toffolis map to T gates (sparse), and a
        // pure-Clifford circuit (stabilizer).
        let dense_spec = OracleSpec::qasm(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\nh q[1];\nh q[2];\nt q[0];\n",
        );
        let sparse_spec = OracleSpec::permutation(
            Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap(),
            SynthesisChoice::default(),
        );
        let clifford_spec = OracleSpec::qasm(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncz q[1],q[2];\n",
        );
        let jobs = vec![
            BatchJob::new(dense_spec, 100, 1).with_backend(BackendChoice::Auto),
            BatchJob::new(sparse_spec, 100, 2).with_backend(BackendChoice::Auto),
            BatchJob::new(clifford_spec, 100, 3).with_backend(BackendChoice::Auto),
        ];
        let engine = BatchEngine::new();
        let resolved = engine.resolve_backends(&jobs).unwrap();
        assert_eq!(
            resolved,
            vec![
                BackendChoice::Dense,
                BackendChoice::Sparse,
                BackendChoice::Stabilizer,
            ]
        );
        // The run goes through the same resolution, and the cache ends up
        // keyed by the *resolved* backend: the dense job under the raw spec
        // key, the others under their backend-tagged keys — no auto tag
        // anywhere.
        let results = engine.run_batch(&jobs).unwrap();
        assert_eq!(results.len(), 3);
        for (job, backend) in jobs.iter().zip(&resolved) {
            let resolved_key = job.clone().with_backend(*backend).cache_key();
            assert!(
                engine.cache().peek(resolved_key).is_some(),
                "missing cache entry for resolved backend {backend}"
            );
        }
        assert!(engine.cache().peek(jobs[2].cache_key()).is_none());
        // Resolution compiled each spec once under its raw key; execution
        // reuses those programs through tagged-slot aliases instead of
        // compiling again.
        assert_eq!(engine.cache().stats().misses, 3);
    }

    #[test]
    fn auto_batches_match_their_resolved_concrete_batches() {
        let job = BatchJob::new(
            OracleSpec::qasm(
                "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
            ),
            1500,
            21,
        );
        let engine = BatchEngine::new();
        let auto = engine
            .run_batch(&[job.clone().with_backend(BackendChoice::Auto)])
            .unwrap();
        let concrete = engine
            .run_batch(&[job.with_backend(BackendChoice::Stabilizer)])
            .unwrap();
        assert_eq!(auto, concrete);
    }

    #[test]
    fn sparse_batches_are_thread_count_invariant() {
        let jobs = vec![
            perm_job(vec![0, 2, 3, 5, 7, 1, 4, 6], 2000, 11).with_backend(BackendChoice::Sparse),
            perm_job(vec![1, 0, 3, 2], 1000, 3).with_backend(BackendChoice::Sparse),
        ];
        let config = ExecConfig::sequential().with_shot_shard_size(128);
        let sequential = BatchEngine::with_config(config).run_batch(&jobs).unwrap();
        for threads in [2usize, 4, 8] {
            let threaded = BatchEngine::with_config(config.with_threads(threads))
                .run_batch(&jobs)
                .unwrap();
            assert_eq!(sequential, threaded, "threads={threads}");
        }
    }
}
