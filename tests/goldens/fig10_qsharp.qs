namespace Microsoft.Quantum.PermOracle {
    open Microsoft.Quantum.Primitive;

    operation PermutationOracle
        // signature of input types
        (qubits : Qubit[]) :
        // signature of output type
        () {
        body {
            CNOT(qubits[0], qubits[2]);
            CNOT(qubits[2], qubits[1]);
            H(qubits[2]);
            CNOT(qubits[1], qubits[2]);
            (Adjoint T)(qubits[2]);
            CNOT(qubits[0], qubits[2]);
            T(qubits[2]);
            CNOT(qubits[1], qubits[2]);
            (Adjoint T)(qubits[2]);
            CNOT(qubits[0], qubits[2]);
            T(qubits[1]);
            T(qubits[2]);
            H(qubits[2]);
            CNOT(qubits[0], qubits[1]);
            T(qubits[0]);
            (Adjoint T)(qubits[1]);
            CNOT(qubits[0], qubits[1]);
            CNOT(qubits[1], qubits[0]);
        }
        adjoint auto
        controlled auto
        controlled adjoint auto
    }

    operation BentFunctionImpl
        (n : Int, qs : Qubit[]) : () {
        body {
            let xs = qs[0..(n-1)];
            let ys = qs[n..(2*n-1)];
            (Adjoint PermutationOracle)(ys);
            for (idx in 0..(n-1)) {
                (Controlled Z)([xs[idx]], ys[idx]);
            }
            PermutationOracle(ys);
        }
    }

    function BentFunction
        (n : Int) : (Qubit[] => ()) {
        return BentFunctionImpl(3, _);
    }
}

namespace Microsoft.Quantum.HiddenShift {
    // basic operations: Hadamard, CNOT, etc
    open Microsoft.Quantum.Primitive;
    // useful lib functions and combinators
    open Microsoft.Quantum.Canon;
    // permutation defining the instance
    open Microsoft.Quantum.PermOracle;

    operation HiddenShift
        (Ufstar : (Qubit[] => ()),
         Ug : (Qubit[] => ()), n : Int) :
        Result[] {
        body {
            mutable resultArray = new Result[n];
            using (qubits = Qubit[n]) {
                ApplyToEach(H, qubits);
                Ug(qubits);
                ApplyToEach(H, qubits);
                Ufstar(qubits);
                ApplyToEach(H, qubits);
                for (idx in 0..(n-1)) {
                    set resultArray[idx] = MResetZ(qubits[idx]);
                }
            }
            Message($"result: {resultArray}");
            return resultArray;
        }
    }
}
