//! Error types for the quantum circuit layer.

use std::error::Error;
use std::fmt;

/// Errors produced while building or executing quantum circuits.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantumError {
    /// A gate references a qubit outside of the circuit.
    QubitOutOfRange {
        /// The referenced qubit.
        qubit: usize,
        /// Number of qubits in the circuit.
        num_qubits: usize,
    },
    /// A gate references the same qubit more than once.
    DuplicateQubit {
        /// The duplicated qubit.
        qubit: usize,
    },
    /// Circuits with different qubit counts were combined.
    QubitCountMismatch {
        /// Qubit count of the left circuit.
        left: usize,
        /// Qubit count of the right circuit.
        right: usize,
    },
    /// The circuit is too large for the requested simulation.
    TooManyQubits {
        /// Requested number of qubits.
        requested: usize,
        /// Maximum supported by the simulator.
        maximum: usize,
    },
    /// A noise or execution parameter is outside of its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Failure while parsing an OpenQASM program.
    ParseQasmError {
        /// Line number (1-based) at which parsing failed (0 when the failure
        /// has no location, e.g. an empty program).
        line: usize,
        /// Column number (1-based) at which parsing failed (0 when the
        /// failure has no location).
        column: usize,
        /// Human readable description of the failure.
        message: String,
    },
    /// A gate was handed to an operation that does not support its shape
    /// (for example, requesting the 2×2 matrix of a multi-qubit gate).
    UnsupportedGate {
        /// The gate's mnemonic (see [`QuantumGate::name`](crate::QuantumGate::name)).
        gate: &'static str,
        /// The operation that rejected it.
        operation: &'static str,
    },
}

impl fmt::Display for QuantumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} is out of range for a circuit on {num_qubits} qubits"
                )
            }
            Self::DuplicateQubit { qubit } => {
                write!(f, "qubit {qubit} is used more than once by the same gate")
            }
            Self::QubitCountMismatch { left, right } => {
                write!(
                    f,
                    "circuits have mismatched qubit counts ({left} vs {right})"
                )
            }
            Self::TooManyQubits { requested, maximum } => write!(
                f,
                "simulation of {requested} qubits exceeds the supported maximum of {maximum}"
            ),
            Self::InvalidParameter { name, value } => {
                write!(f, "parameter {name} has invalid value {value}")
            }
            Self::ParseQasmError {
                line,
                column,
                message,
            } => {
                write!(
                    f,
                    "qasm parse error at line {line}, column {column}: {message}"
                )
            }
            Self::UnsupportedGate { gate, operation } => {
                write!(f, "gate '{gate}' is not supported by {operation}")
            }
        }
    }
}

impl Error for QuantumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = QuantumError::QubitOutOfRange {
            qubit: 5,
            num_qubits: 3,
        };
        assert!(err.to_string().contains('5'));
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantumError>();
    }
}
