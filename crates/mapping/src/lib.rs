//! Mapping of reversible circuits to Clifford+T quantum circuits and
//! T-count optimization.
//!
//! This crate implements the `rptm` (reversible-to-quantum mapping) and
//! `tpar` (T-count optimization) steps of the RevKit pipeline used by the
//! paper (equation (5)):
//!
//! * [`toffoli`] — Clifford+T decompositions of the Toffoli gate, Maslov's
//!   relative-phase variant, and ancilla-based decompositions of larger
//!   multiple-controlled gates,
//! * [`map`] — translation of a whole [`qdaflow_reversible::ReversibleCircuit`]
//!   into a [`qdaflow_quantum::QuantumCircuit`] over the Clifford+T library,
//! * [`phase_oracle`] — direct compilation of Boolean functions into diagonal
//!   phase oracles (the `PhaseOracle` primitive of the paper's ProjectQ flow),
//! * [`optimize`] — phase folding (`tpar`) and adjacent-gate cancellation,
//! * [`verify`] — exhaustive basis-state verification of a mapped circuit
//!   against its reversible specification.
//!
//! # Example
//!
//! ```
//! use qdaflow_boolfn::Permutation;
//! use qdaflow_mapping::{map, optimize};
//! use qdaflow_reversible::synthesis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6])?;
//! let reversible = synthesis::transformation_based(&pi)?;
//! let mapped = map::to_clifford_t(&reversible, &map::MappingOptions::default())?;
//! let optimized = optimize::phase_folding(&mapped);
//! assert!(optimized.t_count() <= mapped.t_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod map;
pub mod optimize;
pub mod phase_oracle;
pub mod toffoli;
pub mod verify;

pub use error::MappingError;
pub use map::{to_clifford_t, MappingOptions};
