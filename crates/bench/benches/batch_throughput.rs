//! Criterion benchmark of the batch execution subsystem.
//!
//! Three comparisons back the batch design:
//!
//! 1. **Compilation caching** — compiling the hwb(6) permutation oracle
//!    cold (fresh cache, full synthesis + mapping) against a warm
//!    [`OracleCache`] hit (one hash lookup). The cache hit must be orders of
//!    magnitude faster.
//! 2. **Sampling** — the retired per-shot linear scan against the
//!    CDF/binary-search sampler and the shot-sharded parallel sampler on a
//!    16-qubit uniform state. The linear scan is measured at 1/50 of the
//!    shot count (it is too slow to run at 10^5 shots in a benchmark loop);
//!    if the sharded sampler's 100 000-shot time beats the linear scan's
//!    2 000-shot time, it beats the like-for-like baseline by at least 50×
//!    that ratio.
//! 3. **Batch dedup** — a warm 8-job batch over 2 distinct oracles, i.e.
//!    the steady-state cost of serving repeated workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use qdaflow::prelude::*;
use qdaflow::quantum::Statevector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn hwb6_spec() -> OracleSpec {
    OracleSpec::permutation(
        qdaflow::boolfn::hwb::hwb_permutation(6),
        SynthesisChoice::default(),
    )
}

fn bench_compile_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let spec = hwb6_spec();

    group.bench_function("compile_cold/hwb6", |b| {
        b.iter(|| OracleCache::new().get_or_compile(&spec).unwrap())
    });

    let warm = OracleCache::new();
    warm.get_or_compile(&spec).unwrap();
    group.bench_function("compile_cached/hwb6", |b| {
        b.iter(|| warm.get_or_compile(&spec).unwrap())
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let mut circuit = QuantumCircuit::new(16);
    for qubit in 0..16 {
        circuit.push(QuantumGate::H(qubit)).unwrap();
    }
    let state = Statevector::from_circuit(&circuit).unwrap();

    // The retired baseline, at 1/50 of the shot count (see module docs).
    group.bench_function("sample_linear_scan/16q/2000_shots", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut histogram = vec![0usize; 1 << 16];
            for _ in 0..2000 {
                histogram[state.sample_linear(&mut rng)] += 1;
            }
            histogram
        })
    });

    group.bench_function("sample_cdf/16q/100000_shots", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            state.sample_counts(&mut rng, 100_000)
        })
    });

    let auto = ExecConfig::auto();
    group.bench_function("sample_sharded/16q/100000_shots", |b| {
        b.iter(|| state.sample_counts_sharded(7, 100_000, &auto))
    });
    group.finish();
}

fn bench_batch_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let specs = [
        hwb6_spec(),
        OracleSpec::phase_function(
            Expr::parse("(x0 & x1) ^ (x2 & x3)")
                .unwrap()
                .truth_table(4)
                .unwrap(),
        ),
    ];
    let jobs: Vec<BatchJob> = (0..8)
        .map(|i| BatchJob::new(specs[i % 2].clone(), 4096, i as u64))
        .collect();

    let engine = BatchEngine::new();
    engine.run_batch(&jobs).unwrap();
    group.bench_function("run_batch_warm/8_jobs_2_distinct", |b| {
        b.iter(|| engine.run_batch(&jobs).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compile_cache,
    bench_sampling,
    bench_batch_dedup
);
criterion_main!(benches);
