//! Reversible-to-quantum mapping (`rptm`).
//!
//! Translates a multiple-controlled Toffoli network into a quantum circuit
//! over the Clifford+T library:
//!
//! * negative controls are conjugated with X gates,
//! * 0/1/2-control gates become X, CNOT and the 7-T Toffoli decomposition,
//! * gates with three or more controls are first decomposed into a Toffoli
//!   ladder over clean ancilla qubits (Barenco-style), which are appended
//!   after the original lines.

use crate::toffoli;
use crate::MappingError;
use qdaflow_quantum::{QuantumCircuit, QuantumGate};
use qdaflow_reversible::{MctGate, ReversibleCircuit};

/// Options controlling the reversible-to-quantum mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingOptions {
    /// Decompose Toffoli gates into Clifford+T (when `false`, `ccx` gates are
    /// kept in the output, which is useful for resource estimation at the
    /// Toffoli level).
    pub decompose_toffoli: bool,
    /// Keep multiple-controlled gates symbolic (as `mcx`) instead of
    /// expanding them over ancillas. Only useful for inspection; the result
    /// is not Clifford+T.
    pub keep_mcx_symbolic: bool,
}

impl Default for MappingOptions {
    fn default() -> Self {
        Self {
            decompose_toffoli: true,
            keep_mcx_symbolic: false,
        }
    }
}

/// Computes the number of ancilla qubits the mapping will append for a given
/// reversible circuit (the maximum over its gates).
pub fn ancillas_required(circuit: &ReversibleCircuit) -> usize {
    circuit
        .gates()
        .iter()
        .map(|gate| toffoli::required_ancillas(gate.num_controls()))
        .max()
        .unwrap_or(0)
}

/// Maps a reversible circuit to a quantum circuit over the Clifford+T
/// library. The output circuit has `circuit.num_lines() + ancillas_required`
/// qubits; ancillas are clean (`|0⟩`) and are returned clean.
///
/// # Errors
///
/// Returns [`MappingError::Quantum`] if a generated gate cannot be added to
/// the output circuit; this indicates an internal inconsistency and should
/// not happen for well-formed inputs.
///
/// # Example
///
/// ```
/// use qdaflow_reversible::{MctGate, ReversibleCircuit};
/// use qdaflow_mapping::map::{to_clifford_t, MappingOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reversible = ReversibleCircuit::new(3);
/// reversible.add_toffoli(0, 1, 2)?;
/// let quantum = to_clifford_t(&reversible, &MappingOptions::default())?;
/// assert_eq!(quantum.t_count(), 7);
/// # Ok(())
/// # }
/// ```
pub fn to_clifford_t(
    circuit: &ReversibleCircuit,
    options: &MappingOptions,
) -> Result<QuantumCircuit, MappingError> {
    let ancillas = if options.keep_mcx_symbolic {
        0
    } else {
        ancillas_required(circuit)
    };
    let total_qubits = circuit.num_lines() + ancillas;
    let mut quantum = QuantumCircuit::new(total_qubits);
    for gate in circuit {
        append_mct(&mut quantum, gate, circuit.num_lines(), options)?;
    }
    Ok(quantum)
}

/// Appends the Clifford+T realization of a single MCT gate.
fn append_mct(
    quantum: &mut QuantumCircuit,
    gate: &MctGate,
    ancilla_base: usize,
    options: &MappingOptions,
) -> Result<(), MappingError> {
    // Conjugate negative controls with X gates.
    let negative_controls: Vec<usize> = gate
        .controls()
        .iter()
        .filter(|c| !c.is_positive())
        .map(|c| c.line())
        .collect();
    for &line in &negative_controls {
        quantum.push(QuantumGate::X(line))?;
    }
    let positive_controls: Vec<usize> = gate.controls().iter().map(|c| c.line()).collect();
    append_positive_mcx(
        quantum,
        &positive_controls,
        gate.target(),
        ancilla_base,
        options,
    )?;
    for &line in &negative_controls {
        quantum.push(QuantumGate::X(line))?;
    }
    Ok(())
}

fn append_positive_mcx(
    quantum: &mut QuantumCircuit,
    controls: &[usize],
    target: usize,
    ancilla_base: usize,
    options: &MappingOptions,
) -> Result<(), MappingError> {
    match controls.len() {
        0 => quantum.push(QuantumGate::X(target))?,
        1 => quantum.push(QuantumGate::Cx {
            control: controls[0],
            target,
        })?,
        2 => {
            if options.decompose_toffoli {
                for gate in toffoli::ccx_clifford_t(controls[0], controls[1], target) {
                    quantum.push(gate)?;
                }
            } else {
                quantum.push(QuantumGate::Ccx {
                    control_a: controls[0],
                    control_b: controls[1],
                    target,
                })?;
            }
        }
        _ => {
            if options.keep_mcx_symbolic {
                quantum.push(QuantumGate::Mcx {
                    controls: controls.to_vec(),
                    target,
                })?;
            } else {
                for ladder_gate in toffoli::mcx_with_ancillas(controls, target, ancilla_base) {
                    match ladder_gate {
                        QuantumGate::Ccx {
                            control_a,
                            control_b,
                            target,
                        } if options.decompose_toffoli => {
                            for gate in toffoli::ccx_clifford_t(control_a, control_b, target) {
                                quantum.push(gate)?;
                            }
                        }
                        other => quantum.push(other)?,
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdaflow_boolfn::Permutation;
    use qdaflow_quantum::statevector::Statevector;
    use qdaflow_reversible::{synthesis, Control};

    /// Checks that the mapped quantum circuit acts on computational basis
    /// states exactly like the reversible circuit (ancillas in and out |0⟩).
    fn assert_matches_reversible(reversible: &ReversibleCircuit, options: &MappingOptions) {
        let quantum = to_clifford_t(reversible, options).unwrap();
        let lines = reversible.num_lines();
        for basis in 0..(1usize << lines) {
            let mut state = Statevector::basis_state(quantum.num_qubits(), basis).unwrap();
            state.apply_circuit(&quantum);
            let expected = reversible.apply(basis);
            assert!(
                state.probability_of(expected) > 1.0 - 1e-9,
                "basis {basis:b}: expected {expected:b}"
            );
        }
    }

    #[test]
    fn not_and_cnot_map_directly() {
        let mut reversible = ReversibleCircuit::new(2);
        reversible.add_not(0).unwrap();
        reversible.add_cnot(0, 1).unwrap();
        let quantum = to_clifford_t(&reversible, &MappingOptions::default()).unwrap();
        assert_eq!(quantum.num_gates(), 2);
        assert_eq!(quantum.num_qubits(), 2);
        assert_matches_reversible(&reversible, &MappingOptions::default());
    }

    #[test]
    fn toffoli_maps_to_seven_t_gates() {
        let mut reversible = ReversibleCircuit::new(3);
        reversible.add_toffoli(0, 1, 2).unwrap();
        let quantum = to_clifford_t(&reversible, &MappingOptions::default()).unwrap();
        assert_eq!(quantum.t_count(), 7);
        assert!(quantum.is_clifford_t());
        assert_matches_reversible(&reversible, &MappingOptions::default());
    }

    #[test]
    fn negative_controls_are_conjugated_with_x() {
        let mut reversible = ReversibleCircuit::new(3);
        reversible
            .add_gate(MctGate::new(
                vec![Control::negative(0), Control::positive(1)],
                2,
            ))
            .unwrap();
        let quantum = to_clifford_t(&reversible, &MappingOptions::default()).unwrap();
        let x_count = quantum.gate_counts().get("x").copied().unwrap_or(0);
        assert_eq!(x_count, 2);
        assert_matches_reversible(&reversible, &MappingOptions::default());
    }

    #[test]
    fn large_mct_uses_ancillas_and_stays_correct() {
        let mut reversible = ReversibleCircuit::new(5);
        reversible
            .add_gate(MctGate::new(
                vec![
                    Control::positive(0),
                    Control::positive(1),
                    Control::positive(2),
                    Control::negative(3),
                ],
                4,
            ))
            .unwrap();
        assert_eq!(ancillas_required(&reversible), 2);
        let quantum = to_clifford_t(&reversible, &MappingOptions::default()).unwrap();
        assert_eq!(quantum.num_qubits(), 7);
        assert!(quantum.is_clifford_t());
        assert_matches_reversible(&reversible, &MappingOptions::default());
    }

    #[test]
    fn synthesized_permutations_survive_the_mapping() {
        for seed in [3u64, 17, 99] {
            let permutation = Permutation::random_seeded(3, seed);
            let reversible = synthesis::transformation_based(&permutation).unwrap();
            assert_matches_reversible(&reversible, &MappingOptions::default());
        }
    }

    #[test]
    fn paper_permutation_maps_correctly_with_both_synthesis_methods() {
        let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
        for circuit in [
            synthesis::transformation_based(&pi).unwrap(),
            synthesis::decomposition_based(&pi).unwrap(),
        ] {
            assert_matches_reversible(&circuit, &MappingOptions::default());
        }
    }

    #[test]
    fn toffoli_level_output_keeps_ccx_gates() {
        let mut reversible = ReversibleCircuit::new(3);
        reversible.add_toffoli(0, 1, 2).unwrap();
        let options = MappingOptions {
            decompose_toffoli: false,
            keep_mcx_symbolic: false,
        };
        let quantum = to_clifford_t(&reversible, &options).unwrap();
        assert_eq!(quantum.num_gates(), 1);
        assert_eq!(quantum.gate_counts()["ccx"], 1);
        assert_matches_reversible(&reversible, &options);
    }

    #[test]
    fn symbolic_mcx_output() {
        let mut reversible = ReversibleCircuit::new(5);
        reversible
            .add_gate(MctGate::new(
                vec![
                    Control::positive(0),
                    Control::positive(1),
                    Control::positive(2),
                    Control::positive(3),
                ],
                4,
            ))
            .unwrap();
        let options = MappingOptions {
            decompose_toffoli: false,
            keep_mcx_symbolic: true,
        };
        let quantum = to_clifford_t(&reversible, &options).unwrap();
        assert_eq!(quantum.num_qubits(), 5);
        assert_eq!(quantum.gate_counts()["mcx"], 1);
    }

    #[test]
    fn empty_circuit_maps_to_empty_circuit() {
        let reversible = ReversibleCircuit::new(4);
        let quantum = to_clifford_t(&reversible, &MappingOptions::default()).unwrap();
        assert!(quantum.is_empty());
        assert_eq!(quantum.num_qubits(), 4);
    }
}
