//! The hidden-weighted-bit reversible benchmark function.
//!
//! `revgen --hwb 4` in the RevKit pipeline of the paper (equation (5))
//! generates the 4-variable hidden-weighted-bit function, a classic
//! reversible-synthesis benchmark. The reversible variant used by RevKit maps
//! every input word to the word rotated left by its Hamming weight; because
//! the Hamming weight is invariant under rotation, this mapping is a
//! bijection.

use crate::Permutation;

/// Rotates the `n`-bit word `x` left by `amount` positions.
fn rotate_left(x: usize, amount: usize, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let amount = amount % n;
    let mask = (1usize << n) - 1;
    ((x << amount) | (x >> (n - amount))) & mask
}

/// Builds the reversible hidden-weighted-bit function on `num_vars`
/// variables as a [`Permutation`]: each word is rotated left by its Hamming
/// weight.
///
/// # Example
///
/// ```
/// use qdaflow_boolfn::hwb;
///
/// let f = hwb::hwb_permutation(4);
/// // 0b0011 has weight 2 and becomes 0b1100.
/// assert_eq!(f.apply(0b0011), 0b1100);
/// ```
///
/// # Panics
///
/// Panics if `num_vars` is zero or larger than
/// [`crate::MAX_TRUTH_TABLE_VARS`].
pub fn hwb_permutation(num_vars: usize) -> Permutation {
    assert!(
        num_vars > 0 && num_vars <= crate::MAX_TRUTH_TABLE_VARS,
        "hwb requires between 1 and {} variables",
        crate::MAX_TRUTH_TABLE_VARS
    );
    Permutation::from_fn(num_vars, |x| {
        rotate_left(x, x.count_ones() as usize, num_vars)
    })
    .expect("rotation by a rotation-invariant amount is a bijection")
}

/// The single-output hidden-weighted-bit function `f(x) = x_{wt(x)}` (with
/// `x_0` used when the weight is zero), provided for completeness as the
/// irreversible form of the benchmark.
///
/// # Panics
///
/// Panics if `num_vars` is zero or too large for an explicit table.
pub fn hwb_truth_table(num_vars: usize) -> crate::TruthTable {
    assert!(num_vars > 0, "hwb requires at least one variable");
    crate::TruthTable::from_fn(num_vars, |x| {
        let weight = x.count_ones() as usize;
        let index = if weight == 0 { 0 } else { weight - 1 };
        (x >> index) & 1 == 1
    })
    .expect("num_vars validated by caller or panics in from_fn")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_is_bijective_for_all_small_sizes() {
        for n in 1..=8 {
            // Permutation::from_fn validates bijectivity internally.
            let p = hwb_permutation(n);
            assert_eq!(p.len(), 1 << n);
        }
    }

    #[test]
    fn weight_is_preserved() {
        let p = hwb_permutation(6);
        for x in 0..64usize {
            assert_eq!(x.count_ones(), p.apply(x).count_ones());
        }
    }

    #[test]
    fn known_values_for_four_variables() {
        let p = hwb_permutation(4);
        assert_eq!(p.apply(0b0000), 0b0000);
        assert_eq!(p.apply(0b0001), 0b0010);
        assert_eq!(p.apply(0b0011), 0b1100);
        assert_eq!(p.apply(0b1111), 0b1111);
        assert_eq!(p.apply(0b0101), 0b0101);
    }

    #[test]
    fn hwb_is_not_the_identity() {
        assert!(!hwb_permutation(4).is_identity());
    }

    #[test]
    fn irreversible_hwb_reads_the_weight_indexed_bit() {
        let tt = hwb_truth_table(4);
        assert!(!tt.get(0b0000));
        // weight 1, bit index 0
        assert!(tt.get(0b0001));
        assert!(!tt.get(0b0100));
        // weight 2, bit index 1
        assert!(tt.get(0b0011));
        assert!(!tt.get(0b0101));
    }

    #[test]
    #[should_panic(expected = "hwb requires")]
    fn zero_variables_panics() {
        hwb_permutation(0);
    }
}
