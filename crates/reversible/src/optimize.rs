//! Post-synthesis simplification of reversible circuits (`revsimp`).
//!
//! The pass repeatedly applies local rewrite rules until a fixed point is
//! reached:
//!
//! 1. **Cancellation** — two identical gates that are adjacent, or separated
//!    only by gates they commute with, cancel out (every MCT gate is an
//!    involution).
//! 2. **Control merging** — two adjacent gates on the same target whose
//!    controls differ only in the polarity of a single line merge into one
//!    gate without that control
//!    (`t(C, x; t) ; t(C, !x; t)  →  t(C; t)`).
//!
//! The pass preserves functional equivalence, which the test-suite checks
//! exhaustively on small circuits.

use crate::{MctGate, ReversibleCircuit};

/// Statistics reported by [`simplify`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Number of gate pairs removed by cancellation.
    pub cancellations: usize,
    /// Number of gate pairs merged into a single gate.
    pub merges: usize,
    /// Number of fixed-point iterations executed.
    pub iterations: usize,
}

/// Simplifies a reversible circuit, returning the simplified circuit and
/// statistics about the applied rewrites. This is the `revsimp` command of
/// the RevKit pipeline in the paper.
///
/// # Example
///
/// ```
/// use qdaflow_reversible::{optimize, MctGate, ReversibleCircuit};
///
/// # fn main() -> Result<(), qdaflow_reversible::ReversibleError> {
/// let mut circuit = ReversibleCircuit::new(3);
/// circuit.add_cnot(0, 1)?;
/// circuit.add_cnot(0, 1)?;
/// let (simplified, stats) = optimize::simplify(&circuit);
/// assert_eq!(simplified.num_gates(), 0);
/// assert_eq!(stats.cancellations, 1);
/// # Ok(())
/// # }
/// ```
pub fn simplify(circuit: &ReversibleCircuit) -> (ReversibleCircuit, SimplifyStats) {
    let mut gates: Vec<MctGate> = circuit.gates().to_vec();
    let mut stats = SimplifyStats::default();
    loop {
        stats.iterations += 1;
        let mut changed = false;
        changed |= cancellation_pass(&mut gates, &mut stats);
        changed |= merge_pass(&mut gates, &mut stats);
        if !changed {
            break;
        }
    }
    let mut simplified = ReversibleCircuit::new(circuit.num_lines());
    for gate in gates {
        simplified
            .add_gate(gate)
            .expect("simplification never introduces new lines");
    }
    (simplified, stats)
}

/// Removes pairs of identical gates that can be brought next to each other by
/// commuting over intermediate gates. Returns `true` if anything changed.
fn cancellation_pass(gates: &mut Vec<MctGate>, stats: &mut SimplifyStats) -> bool {
    let mut changed = false;
    let mut index = 0usize;
    'outer: while index < gates.len() {
        let gate = gates[index].clone();
        let mut probe = index + 1;
        while probe < gates.len() {
            if gates[probe] == gate {
                gates.remove(probe);
                gates.remove(index);
                stats.cancellations += 1;
                changed = true;
                continue 'outer;
            }
            if !gate.commutes_with(&gates[probe]) {
                break;
            }
            probe += 1;
        }
        index += 1;
    }
    changed
}

/// Merges adjacent gates on the same target whose controls differ only in one
/// polarity. Returns `true` if anything changed.
fn merge_pass(gates: &mut Vec<MctGate>, stats: &mut SimplifyStats) -> bool {
    let mut changed = false;
    let mut index = 0usize;
    while index + 1 < gates.len() {
        if let Some(merged) = merge_pair(&gates[index], &gates[index + 1]) {
            gates[index] = merged;
            gates.remove(index + 1);
            stats.merges += 1;
            changed = true;
            // Re-examine from the previous position: the merged gate may
            // enable another merge or cancellation.
            index = index.saturating_sub(1);
        } else {
            index += 1;
        }
    }
    changed
}

/// If the two gates share the target and their controls differ only in the
/// polarity of exactly one line, returns the merged gate without that control.
fn merge_pair(left: &MctGate, right: &MctGate) -> Option<MctGate> {
    if left.target() != right.target() || left.num_controls() != right.num_controls() {
        return None;
    }
    let left_controls = left.controls();
    let right_controls = right.controls();
    // Controls are sorted by line, so a positional comparison suffices.
    if left_controls
        .iter()
        .zip(right_controls)
        .any(|(a, b)| a.line() != b.line())
    {
        return None;
    }
    let differing: Vec<usize> = left_controls
        .iter()
        .zip(right_controls)
        .enumerate()
        .filter(|(_, (a, b))| a.is_positive() != b.is_positive())
        .map(|(position, _)| position)
        .collect();
    if differing.len() != 1 {
        return None;
    }
    let keep: Vec<_> = left_controls
        .iter()
        .enumerate()
        .filter(|(position, _)| *position != differing[0])
        .map(|(_, control)| *control)
        .collect();
    Some(MctGate::new(keep, left.target()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::equivalent;
    use crate::Control;
    use qdaflow_boolfn::Permutation;

    fn assert_preserves_function(circuit: &ReversibleCircuit) {
        let (simplified, _) = simplify(circuit);
        assert!(
            equivalent(circuit, &simplified),
            "simplification changed the function of\n{circuit}"
        );
    }

    #[test]
    fn adjacent_identical_gates_cancel() {
        let mut circuit = ReversibleCircuit::new(3);
        circuit.add_toffoli(0, 1, 2).unwrap();
        circuit.add_toffoli(0, 1, 2).unwrap();
        let (simplified, stats) = simplify(&circuit);
        assert_eq!(simplified.num_gates(), 0);
        assert_eq!(stats.cancellations, 1);
    }

    #[test]
    fn cancellation_across_commuting_gates() {
        let mut circuit = ReversibleCircuit::new(3);
        circuit.add_cnot(0, 1).unwrap();
        circuit.add_cnot(0, 2).unwrap(); // commutes with the surrounding pair
        circuit.add_cnot(0, 1).unwrap();
        let (simplified, stats) = simplify(&circuit);
        assert_eq!(simplified.num_gates(), 1);
        assert_eq!(stats.cancellations, 1);
        assert_preserves_function(&circuit);
    }

    #[test]
    fn blocked_cancellation_is_not_applied() {
        let mut circuit = ReversibleCircuit::new(3);
        circuit.add_cnot(0, 1).unwrap();
        circuit.add_cnot(1, 2).unwrap(); // does not commute: control on line 1
        circuit.add_cnot(0, 1).unwrap();
        let (simplified, _) = simplify(&circuit);
        assert_eq!(simplified.num_gates(), 3);
        assert_preserves_function(&circuit);
    }

    #[test]
    fn polarity_merge_removes_a_control() {
        let mut circuit = ReversibleCircuit::new(3);
        circuit
            .add_gate(MctGate::new(
                vec![Control::positive(0), Control::positive(1)],
                2,
            ))
            .unwrap();
        circuit
            .add_gate(MctGate::new(
                vec![Control::positive(0), Control::negative(1)],
                2,
            ))
            .unwrap();
        let (simplified, stats) = simplify(&circuit);
        assert_eq!(stats.merges, 1);
        assert_eq!(simplified.num_gates(), 1);
        assert_eq!(simplified.gates()[0], MctGate::cnot(0, 2));
        assert_preserves_function(&circuit);
    }

    #[test]
    fn merge_then_cancel_chain() {
        // After merging the first two gates into a CNOT, it cancels with the
        // trailing CNOT.
        let mut circuit = ReversibleCircuit::new(3);
        circuit
            .add_gate(MctGate::new(
                vec![Control::positive(0), Control::positive(1)],
                2,
            ))
            .unwrap();
        circuit
            .add_gate(MctGate::new(
                vec![Control::positive(0), Control::negative(1)],
                2,
            ))
            .unwrap();
        circuit.add_cnot(0, 2).unwrap();
        let (simplified, _) = simplify(&circuit);
        assert_eq!(simplified.num_gates(), 0);
        assert_preserves_function(&circuit);
    }

    #[test]
    fn simplification_preserves_synthesized_circuits() {
        for seed in 0..8u64 {
            let permutation = Permutation::random_seeded(4, seed);
            let circuit = crate::synthesis::transformation_based(&permutation).unwrap();
            let (simplified, _) = simplify(&circuit);
            assert!(crate::simulation::realizes_permutation(
                &simplified,
                &permutation
            ));
            assert!(simplified.num_gates() <= circuit.num_gates());
        }
    }

    #[test]
    fn empty_and_single_gate_circuits_are_untouched() {
        let empty = ReversibleCircuit::new(2);
        let (simplified, stats) = simplify(&empty);
        assert!(simplified.is_empty());
        assert_eq!(stats.cancellations + stats.merges, 0);

        let mut single = ReversibleCircuit::new(2);
        single.add_not(0).unwrap();
        let (simplified, _) = simplify(&single);
        assert_eq!(simplified.num_gates(), 1);
    }

    #[test]
    fn different_targets_never_merge() {
        let mut circuit = ReversibleCircuit::new(3);
        circuit.add_cnot(0, 1).unwrap();
        circuit.add_cnot(0, 2).unwrap();
        let (simplified, stats) = simplify(&circuit);
        assert_eq!(simplified.num_gates(), 2);
        assert_eq!(stats.merges, 0);
    }
}
