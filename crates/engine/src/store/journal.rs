//! The completion journal: an append-only checkpoint log that lets a killed
//! batch resume from its last completed job.
//!
//! Format (line-oriented text, one record per line so a `SIGKILL` mid-write
//! can corrupt at most the final line):
//!
//! ```text
//! qdaflow-journal v1
//! done <job-digest> <wall-micros> q=<qubits> s=<shots> c=<k:v,...|-> r=<nq>,<gates>,<t>,<td>,<h>,<cx>,<mq>,<d> g=<name:n,...|->
//! ```
//!
//! `job-digest` is [`BatchJob::digest`](crate::BatchJob::digest) — the
//! canonical 128-bit digest over the job's resolved cache key, shot count,
//! seed and backend — so a journal replays only onto *identical* jobs. The
//! rest of the record is the full [`ExecutionResult`], so a resumed job is
//! answered without recompiling or resimulating anything. On load,
//! unparsable lines (typically one torn final line) are skipped, never
//! fatal; an unrecognized header is a typed error so a foreign file is not
//! silently appended to.

use super::codec::intern_gate_name;
use crate::EngineError;
use qdaflow_pipeline::spec::SpecKey;
use qdaflow_quantum::backend::ExecutionResult;
use qdaflow_quantum::resource::ResourceCounts;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

const HEADER: &str = "qdaflow-journal v1";

/// One replayed journal record: the result plus the recorded wall time of
/// the original execution.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The completed job's result, exactly as first computed.
    pub result: ExecutionResult,
    /// Wall-clock execution time of the original run.
    pub wall: Duration,
}

/// An open, append-mode completion journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path` and replays its
    /// existing records: the returned map holds every completed job by
    /// digest. Torn or corrupt lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] when the file cannot be opened or
    /// created, or when an existing non-empty file does not carry the
    /// `qdaflow-journal v1` header (it is not ours to append to).
    pub fn open(
        path: impl Into<PathBuf>,
    ) -> Result<(Self, HashMap<SpecKey, JournalEntry>), EngineError> {
        let path = path.into();
        let io_err = |context: &str, e: std::io::Error| EngineError::Io {
            context: format!("{context} journal '{}'", path.display()),
            message: e.to_string(),
        };
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| io_err("open", e))?;
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| io_err("read", e))?;
        let mut completed = HashMap::new();
        if text.is_empty() {
            file.write_all(format!("{HEADER}\n").as_bytes())
                .map_err(|e| io_err("initialize", e))?;
            file.flush().map_err(|e| io_err("initialize", e))?;
        } else {
            let mut lines = text.lines();
            if lines.next().map(str::trim) != Some(HEADER) {
                return Err(EngineError::Io {
                    context: format!("open journal '{}'", path.display()),
                    message: "missing 'qdaflow-journal v1' header".to_owned(),
                });
            }
            for line in lines {
                if let Some((digest, entry)) = parse_record(line) {
                    completed.insert(digest, entry);
                }
            }
        }
        Ok((Self { path, file }, completed))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completion record and flushes it, so the checkpoint
    /// survives the process being killed immediately afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] on append failure.
    pub fn append(
        &mut self,
        digest: SpecKey,
        result: &ExecutionResult,
        wall: Duration,
    ) -> Result<(), EngineError> {
        let line = render_record(digest, result, wall);
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| EngineError::Io {
                context: format!("append to journal '{}'", self.path.display()),
                message: e.to_string(),
            })
    }
}

fn render_record(digest: SpecKey, result: &ExecutionResult, wall: Duration) -> String {
    let mut line = format!(
        "done {:032x} {} q={} s={}",
        digest.0,
        wall.as_micros(),
        result.num_qubits,
        result.shots
    );
    line.push_str(" c=");
    push_map(
        &mut line,
        result.counts.iter().map(|(&k, &v)| (k.to_string(), v)),
    );
    let r = &result.resources;
    write!(
        line,
        " r={},{},{},{},{},{},{},{}",
        r.num_qubits,
        r.total_gates,
        r.t_count,
        r.t_depth,
        r.h_count,
        r.cnot_count,
        r.multi_qubit_gates,
        r.depth
    )
    .expect("writing to a String cannot fail");
    line.push_str(" g=");
    push_map(
        &mut line,
        r.by_gate
            .iter()
            .map(|(&name, &count)| (name.to_owned(), count)),
    );
    line.push('\n');
    line
}

fn push_map(line: &mut String, entries: impl Iterator<Item = (String, usize)>) {
    let mut any = false;
    for (key, value) in entries {
        if any {
            line.push(',');
        }
        write!(line, "{key}:{value}").expect("writing to a String cannot fail");
        any = true;
    }
    if !any {
        line.push('-');
    }
}

fn parse_map(text: &str) -> Option<Vec<(String, usize)>> {
    if text == "-" {
        return Some(Vec::new());
    }
    text.split(',')
        .map(|pair| {
            let (key, value) = pair.split_once(':')?;
            Some((key.to_owned(), value.parse().ok()?))
        })
        .collect()
}

fn parse_record(line: &str) -> Option<(SpecKey, JournalEntry)> {
    let mut fields = line.split_whitespace();
    if fields.next()? != "done" {
        return None;
    }
    let digest = SpecKey(u128::from_str_radix(fields.next()?, 16).ok()?);
    let wall = Duration::from_micros(fields.next()?.parse().ok()?);
    let num_qubits: usize = fields.next()?.strip_prefix("q=")?.parse().ok()?;
    let shots: usize = fields.next()?.strip_prefix("s=")?.parse().ok()?;
    let counts: BTreeMap<usize, usize> = parse_map(fields.next()?.strip_prefix("c=")?)?
        .into_iter()
        .map(|(k, v)| Some((k.parse().ok()?, v)))
        .collect::<Option<_>>()?;
    let resource_fields: Vec<usize> = fields
        .next()?
        .strip_prefix("r=")?
        .split(',')
        .map(|v| v.parse().ok())
        .collect::<Option<_>>()?;
    let [r_nq, total_gates, t_count, t_depth, h_count, cnot_count, multi_qubit_gates, depth] =
        resource_fields[..]
    else {
        return None;
    };
    let by_gate: BTreeMap<&'static str, usize> = parse_map(fields.next()?.strip_prefix("g=")?)?
        .into_iter()
        .map(|(name, count)| Some((intern_gate_name(&name)?, count)))
        .collect::<Option<_>>()?;
    if fields.next().is_some() {
        return None;
    }
    let result = ExecutionResult {
        num_qubits,
        shots,
        counts,
        resources: ResourceCounts {
            num_qubits: r_nq,
            total_gates,
            t_count,
            t_depth,
            h_count,
            cnot_count,
            multi_qubit_gates,
            depth,
            by_gate,
        },
    };
    Some((digest, JournalEntry { result, wall }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_result() -> ExecutionResult {
        let mut circuit = qdaflow_quantum::QuantumCircuit::new(3);
        circuit.push(qdaflow_quantum::QuantumGate::H(0)).unwrap();
        circuit.push(qdaflow_quantum::QuantumGate::T(1)).unwrap();
        ExecutionResult::from_histogram(&circuit, 10, &[0, 3, 0, 7])
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qdaflow-journal-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let path = temp_path("roundtrip");
        let result = example_result();
        {
            let (mut journal, completed) = Journal::open(&path).unwrap();
            assert!(completed.is_empty());
            journal
                .append(SpecKey(0xabcd), &result, Duration::from_micros(55))
                .unwrap();
            journal
                .append(SpecKey(7), &result, Duration::from_micros(1))
                .unwrap();
        }
        let (_journal, completed) = Journal::open(&path).unwrap();
        assert_eq!(completed.len(), 2);
        let entry = &completed[&SpecKey(0xabcd)];
        assert_eq!(entry.result, result);
        assert_eq!(entry.wall, Duration::from_micros(55));
    }

    #[test]
    fn torn_final_lines_are_skipped_not_fatal() {
        let path = temp_path("torn");
        {
            let (mut journal, _) = Journal::open(&path).unwrap();
            journal
                .append(SpecKey(1), &example_result(), Duration::ZERO)
                .unwrap();
        }
        // Simulate a SIGKILL mid-append: a truncated trailing record.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("done 0000000000000000000000000000000b 12 q=3 s=10 c=1:");
        std::fs::write(&path, &text).unwrap();
        let (_journal, completed) = Journal::open(&path).unwrap();
        assert_eq!(completed.len(), 1, "only the intact record survives");
        assert!(completed.contains_key(&SpecKey(1)));
        // And a foreign header is a typed refusal.
        std::fs::write(&path, "some other file\n").unwrap();
        assert!(matches!(Journal::open(&path), Err(EngineError::Io { .. })));
    }
}
