//! The shell commands.
//!
//! Each command mirrors one RevKit command used (or implied) by the paper's
//! pipeline `revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c`:
//!
//! | command   | effect                                                        |
//! |-----------|---------------------------------------------------------------|
//! | `revgen`  | generate a specification (`--hwb`, `--random`, `--perm`, `--expr`) |
//! | `tbs`     | transformation-based synthesis of the current permutation     |
//! | `dbs`     | decomposition-based synthesis of the current permutation      |
//! | `esopbs`  | ESOP-based synthesis of the current single-output function    |
//! | `revsimp` | simplify the current reversible circuit                        |
//! | `rptm`    | map the reversible circuit to Clifford+T                       |
//! | `tpar`    | T-count optimization of the quantum circuit                    |
//! | `ps`      | print statistics (`-c` selects the circuit stores)            |
//! | `simulate`| check the quantum circuit against the reversible circuit       |
//! | `exec`    | configure the execution layer (threads, fusion, plan kernel)   |
//! | `qasm`    | print the quantum circuit as OpenQASM, or `qasm load <file>`   |
//! | `draw`    | print an ASCII rendering of the quantum circuit                |
//! | `flow`    | run a whole pass pipeline (`flow "revgen --hwb 4; tbs; …"`)    |
//! | `batch`   | run oracle jobs through the fault-tolerant batch job service (`--resume`, `--stats`, `--trace`) |
//! | `backend` | select the simulation backend for batch jobs (`dense`/`sparse`/`stabilizer`/`auto`) |
//! | `trace`   | control the telemetry recorder (`trace on|off|dump <file>|stats`) |

use crate::{RevkitError, Store};
use qdaflow_engine::{BackendChoice, BatchJob, JobStatus, OracleSpec, SynthesisChoice};
use qdaflow_mapping::{map, optimize, verify};
use qdaflow_pipeline::script::tokenize;
use qdaflow_pipeline::{passes, FlowError, Ir, Pass, Pipeline, Stage};
use qdaflow_quantum::fusion::ExecConfig;
use qdaflow_quantum::{drawer, qasm, resource::ResourceCounts};
use qdaflow_reversible::{optimize as revopt, synthesis, synthesis::EsopSynthesisOptions};
use qdaflow_telemetry as telemetry;

/// A shell command.
pub trait Command {
    /// The command name as typed in a script.
    fn name(&self) -> &'static str;

    /// One-line description shown by `help`.
    fn description(&self) -> &'static str;

    /// Executes the command with the given (already tokenized) arguments.
    ///
    /// # Errors
    ///
    /// Returns a [`RevkitError`] describing invalid arguments, missing store
    /// entries, or failures of the underlying algorithms.
    fn execute(&self, args: &[String], store: &mut Store) -> Result<(), RevkitError>;
}

/// Returns the full set of built-in commands.
pub fn builtin_commands() -> Vec<Box<dyn Command>> {
    vec![
        Box::new(Revgen),
        Box::new(Tbs),
        Box::new(Dbs),
        Box::new(Esopbs),
        Box::new(Revsimp),
        Box::new(Rptm),
        Box::new(Tpar),
        Box::new(Ps),
        Box::new(Simulate),
        Box::new(Exec),
        Box::new(Qasm),
        Box::new(Draw),
        Box::new(Flow),
        Box::new(Batch),
        Box::new(BackendCmd),
        Box::new(Trace),
    ]
}

fn parse_usize(command: &'static str, text: &str) -> Result<usize, RevkitError> {
    text.parse().map_err(|_| RevkitError::InvalidArguments {
        command,
        message: format!("expected a number, found '{text}'"),
    })
}

fn find_flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|index| args.get(index + 1))
        .map(String::as_str)
}

/// `revgen` — generate a specification.
pub struct Revgen;

impl Command for Revgen {
    fn name(&self) -> &'static str {
        "revgen"
    }

    fn description(&self) -> &'static str {
        "generate a reversible or Boolean specification (--hwb N | --random N --seed S | --perm \"0 2 1 3\" | --expr \"(a & b) ^ c\")"
    }

    fn execute(&self, args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        if args.is_empty() {
            return Err(RevkitError::InvalidArguments {
                command: self.name(),
                message: "expected one of --hwb, --random, --perm, --expr".to_owned(),
            });
        }
        // One argument grammar for both surfaces: the shell command
        // delegates to the pipeline's revgen pass.
        let pass = passes::Revgen::from_args(args).map_err(|error| match error {
            FlowError::InvalidPassArguments { message, .. } => RevkitError::InvalidArguments {
                command: self.name(),
                message,
            },
            other => other.into(),
        })?;
        let generated = pass
            .generate()
            .expect("revgen with arguments is a generator")?;
        match generated {
            Ir::Permutation(permutation) => {
                store.log(format!(
                    "[revgen] permutation on {} variables ({})",
                    permutation.num_vars(),
                    pass.describe()
                ));
                store.set_permutation(permutation);
            }
            Ir::Function(function) => {
                store.log(format!(
                    "[revgen] boolean function on {} variables ({})",
                    function.num_vars(),
                    pass.describe()
                ));
                store.set_function(function);
            }
            other => {
                return Err(RevkitError::InvalidArguments {
                    command: self.name(),
                    message: format!(
                        "revgen generated a {} instead of a specification",
                        other.stage()
                    ),
                })
            }
        }
        Ok(())
    }
}

/// `tbs` — transformation-based synthesis.
pub struct Tbs;

impl Command for Tbs {
    fn name(&self) -> &'static str {
        "tbs"
    }

    fn description(&self) -> &'static str {
        "transformation-based reversible synthesis of the current permutation"
    }

    fn execute(&self, _args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        let permutation = store
            .permutation()
            .ok_or(RevkitError::MissingStoreEntry {
                command: self.name(),
                expected: "permutation",
            })?
            .clone();
        let circuit = synthesis::transformation_based(&permutation)?;
        store.log(format!(
            "[tbs] synthesized {} gates on {} lines",
            circuit.num_gates(),
            circuit.num_lines()
        ));
        store.set_reversible(circuit);
        Ok(())
    }
}

/// `dbs` — decomposition-based synthesis.
pub struct Dbs;

impl Command for Dbs {
    fn name(&self) -> &'static str {
        "dbs"
    }

    fn description(&self) -> &'static str {
        "decomposition-based (Young subgroup) reversible synthesis of the current permutation"
    }

    fn execute(&self, _args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        let permutation = store
            .permutation()
            .ok_or(RevkitError::MissingStoreEntry {
                command: self.name(),
                expected: "permutation",
            })?
            .clone();
        let circuit = synthesis::decomposition_based(&permutation)?;
        store.log(format!(
            "[dbs] synthesized {} gates on {} lines",
            circuit.num_gates(),
            circuit.num_lines()
        ));
        store.set_reversible(circuit);
        Ok(())
    }
}

/// `esopbs` — ESOP-based synthesis of a single-output Boolean function.
pub struct Esopbs;

impl Command for Esopbs {
    fn name(&self) -> &'static str {
        "esopbs"
    }

    fn description(&self) -> &'static str {
        "ESOP-based synthesis (Bennett embedding) of the current Boolean function"
    }

    fn execute(&self, _args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        let function = store
            .function()
            .ok_or(RevkitError::MissingStoreEntry {
                command: self.name(),
                expected: "boolean function",
            })?
            .clone();
        let circuit = synthesis::esop_based_single(&function, EsopSynthesisOptions::default())?;
        store.log(format!(
            "[esopbs] synthesized {} gates on {} lines",
            circuit.num_gates(),
            circuit.num_lines()
        ));
        store.set_reversible(circuit);
        Ok(())
    }
}

/// `revsimp` — reversible circuit simplification.
pub struct Revsimp;

impl Command for Revsimp {
    fn name(&self) -> &'static str {
        "revsimp"
    }

    fn description(&self) -> &'static str {
        "simplify the current reversible circuit (cancellation and control merging)"
    }

    fn execute(&self, _args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        let circuit = store
            .reversible()
            .ok_or(RevkitError::MissingStoreEntry {
                command: self.name(),
                expected: "reversible circuit",
            })?
            .clone();
        let before = circuit.num_gates();
        let (simplified, stats) = revopt::simplify(&circuit);
        store.log(format!(
            "[revsimp] {before} -> {} gates ({} cancellations, {} merges)",
            simplified.num_gates(),
            stats.cancellations,
            stats.merges
        ));
        store.set_reversible(simplified);
        Ok(())
    }
}

/// `rptm` — reversible-to-quantum mapping.
pub struct Rptm;

impl Command for Rptm {
    fn name(&self) -> &'static str {
        "rptm"
    }

    fn description(&self) -> &'static str {
        "map the current reversible circuit to a Clifford+T quantum circuit"
    }

    fn execute(&self, _args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        let circuit = store
            .reversible()
            .ok_or(RevkitError::MissingStoreEntry {
                command: self.name(),
                expected: "reversible circuit",
            })?
            .clone();
        let quantum = map::to_clifford_t(&circuit, &map::MappingOptions::default())?;
        store.log(format!(
            "[rptm] mapped to {} Clifford+T gates on {} qubits (T-count {})",
            quantum.num_gates(),
            quantum.num_qubits(),
            quantum.t_count()
        ));
        store.set_quantum(quantum);
        Ok(())
    }
}

/// `tpar` — T-count optimization.
pub struct Tpar;

impl Command for Tpar {
    fn name(&self) -> &'static str {
        "tpar"
    }

    fn description(&self) -> &'static str {
        "optimize the T-count of the current quantum circuit by phase folding"
    }

    fn execute(&self, _args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        let circuit = store
            .quantum()
            .ok_or(RevkitError::MissingStoreEntry {
                command: self.name(),
                expected: "quantum circuit",
            })?
            .clone();
        let before = circuit.t_count();
        let optimized = optimize::optimize_clifford_t(&circuit);
        store.log(format!(
            "[tpar] T-count {before} -> {}, gates {} -> {}",
            optimized.t_count(),
            circuit.num_gates(),
            optimized.num_gates()
        ));
        store.set_quantum(optimized);
        Ok(())
    }
}

/// `ps` — print statistics.
pub struct Ps;

impl Command for Ps {
    fn name(&self) -> &'static str {
        "ps"
    }

    fn description(&self) -> &'static str {
        "print statistics of the current circuits (-c selects circuit stores)"
    }

    fn execute(&self, _args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        let mut printed = false;
        if let Some(reversible) = store.reversible().cloned() {
            let profile = reversible.gate_profile();
            store.log(format!(
                "[ps] reversible circuit: {} lines, {} gates ({profile}), quantum cost {}",
                reversible.num_lines(),
                reversible.num_gates(),
                reversible.quantum_cost()
            ));
            printed = true;
        }
        if let Some(quantum) = store.quantum().cloned() {
            let counts = ResourceCounts::of(&quantum);
            store.log(format!(
                "[ps] quantum circuit: {} qubits, {} gates, depth {}, T-count {}, T-depth {}, CNOTs {}",
                counts.num_qubits,
                counts.total_gates,
                counts.depth,
                counts.t_count,
                counts.t_depth,
                counts.cnot_count
            ));
            printed = true;
        }
        if let Some(permutation) = store.permutation() {
            store.log(format!(
                "[ps] permutation on {} variables ({} fixed points)",
                permutation.num_vars(),
                permutation.fixed_points()
            ));
            printed = true;
        }
        if let Some(function) = store.function() {
            store.log(format!(
                "[ps] boolean function on {} variables ({} ones)",
                function.num_vars(),
                function.count_ones()
            ));
            printed = true;
        }
        if !printed {
            store.log("[ps] store is empty".to_owned());
        }
        Ok(())
    }
}

/// `simulate` — check the quantum circuit against the reversible circuit.
pub struct Simulate;

impl Command for Simulate {
    fn name(&self) -> &'static str {
        "simulate"
    }

    fn description(&self) -> &'static str {
        "verify that the quantum circuit implements the reversible circuit on the computational basis"
    }

    fn execute(&self, _args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        let reversible = store
            .reversible()
            .ok_or(RevkitError::MissingStoreEntry {
                command: self.name(),
                expected: "reversible circuit",
            })?
            .clone();
        let quantum = store
            .quantum()
            .ok_or(RevkitError::MissingStoreEntry {
                command: self.name(),
                expected: "quantum circuit",
            })?
            .clone();
        let matches = quantum_matches_reversible_with(&quantum, &reversible, &store.exec_config())?;
        store.log(format!(
            "[simulate] quantum circuit {} the reversible specification",
            if matches { "matches" } else { "DOES NOT match" }
        ));
        Ok(())
    }
}

/// Verifies (by exhaustive basis-state simulation) that `quantum` realizes the
/// same permutation as `reversible` on the original lines, with ancillas
/// returned to zero. Uses the default execution configuration.
///
/// Thin wrapper around [`qdaflow_mapping::verify::quantum_matches_reversible`],
/// the shared implementation used by the shell, the pipeline layer and the
/// test-suites.
///
/// # Errors
///
/// Propagates simulation errors (for example a circuit that is too large).
pub fn quantum_matches_reversible(
    quantum: &qdaflow_quantum::QuantumCircuit,
    reversible: &qdaflow_reversible::ReversibleCircuit,
) -> Result<bool, RevkitError> {
    Ok(verify::quantum_matches_reversible(quantum, reversible)?)
}

/// [`quantum_matches_reversible`] with an explicit execution configuration.
/// The quantum circuit is compiled once to a fused program and replayed on
/// every basis state.
///
/// # Errors
///
/// Propagates simulation errors (for example a circuit that is too large).
pub fn quantum_matches_reversible_with(
    quantum: &qdaflow_quantum::QuantumCircuit,
    reversible: &qdaflow_reversible::ReversibleCircuit,
    config: &ExecConfig,
) -> Result<bool, RevkitError> {
    Ok(verify::quantum_matches_reversible_with(
        quantum, reversible, config,
    )?)
}

/// `flow` — run a whole pass pipeline through the typed pass manager.
///
/// The argument is a pipeline script in the paper's notation, typically
/// quoted so that the shell does not split it at its semicolons:
/// `flow "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps"` — equation (5) as
/// literal user input. The pipeline is validated *before* it runs (an
/// invalid pass order like `tpar` before `rptm` is rejected up front), is
/// seeded from the store when it starts with a non-generator pass, and
/// writes every produced artifact back into the store.
pub struct Flow;

impl Flow {
    fn seed(
        &self,
        pipeline: &Pipeline,
        store: &Store,
    ) -> Result<qdaflow_pipeline::Ir, RevkitError> {
        let accepted = pipeline.input_stages();
        for stage in accepted.stages() {
            match stage {
                Stage::Permutation => {
                    if let Some(p) = store.permutation() {
                        return Ok(p.clone().into());
                    }
                }
                Stage::Function => {
                    if let Some(f) = store.function() {
                        return Ok(f.clone().into());
                    }
                }
                Stage::Reversible => {
                    if let Some(c) = store.reversible() {
                        return Ok(c.clone().into());
                    }
                }
                Stage::Quantum => {
                    if let Some(c) = store.quantum() {
                        return Ok(c.clone().into());
                    }
                }
                Stage::QasmSource => {
                    if let Some(s) = store.qasm_source() {
                        return Ok(Ir::QasmSource(s.to_owned()));
                    }
                }
            }
        }
        Err(RevkitError::MissingStoreEntry {
            command: "flow",
            expected: "specification or circuit matching the pipeline input",
        })
    }
}

impl Command for Flow {
    fn name(&self) -> &'static str {
        "flow"
    }

    fn description(&self) -> &'static str {
        "run a pass pipeline, e.g. flow \"revgen --hwb 4; tbs; revsimp; rptm; tpar; ps\"; flow --json also logs one machine-readable per-pass timing line"
    }

    fn execute(&self, args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        let json = args.iter().any(|a| a == "--json");
        let script_args: Vec<&str> = args
            .iter()
            .map(String::as_str)
            .filter(|a| *a != "--json")
            .collect();
        if script_args.is_empty() {
            return Err(RevkitError::InvalidArguments {
                command: self.name(),
                message: "expected a pipeline script, e.g. flow \"revgen --hwb 4; tbs; rptm\""
                    .to_owned(),
            });
        }
        let script = script_args.join(" ");
        let pipeline = Pipeline::parse(&script)?;
        let report = if pipeline.is_generated() {
            pipeline.run_generated()?
        } else {
            pipeline.run(self.seed(&pipeline, store)?)?
        };
        for record in &report.passes {
            store.log(format!("[flow] {}", record.summary()));
            if let Some(census) = &record.census {
                store.log(format!("[flow]   census: {census}"));
            }
            if let Some(note) = &record.note {
                store.log(format!("[flow]   {note}"));
            }
        }
        store.log(format!(
            "[flow] {} passes in {:.1?}",
            report.passes.len(),
            report.total_duration()
        ));
        if json {
            // One machine-readable line with a pinned schema (see the
            // `flow_json_line_schema_is_stable` integration test): top-level
            // keys `passes` (array of {pass, stage, duration_us}) and
            // `total_us`.
            let passes: Vec<String> = report
                .passes
                .iter()
                .map(|record| {
                    format!(
                        "{{\"pass\":\"{}\",\"stage\":\"{}\",\"duration_us\":{}}}",
                        telemetry::export::json_escape(&record.pass),
                        telemetry::export::json_escape(&record.stage.to_string()),
                        record.duration.as_micros()
                    )
                })
                .collect();
            store.log(format!(
                "[flow-json] {{\"passes\":[{}],\"total_us\":{}}}",
                passes.join(","),
                report.total_duration().as_micros()
            ));
        }
        let artifacts = report.artifacts;
        if let Some(p) = artifacts.permutation {
            store.set_permutation(p);
        }
        if let Some(f) = artifacts.function {
            store.set_function(f);
        }
        if let Some(c) = artifacts.reversible {
            store.set_reversible(c);
        }
        if let Some(c) = artifacts.quantum {
            store.set_quantum(c);
        }
        if let Some(s) = artifacts.qasm_source {
            store.set_qasm_source(s);
        }
        Ok(())
    }
}

/// `batch` — run many oracle jobs through the fault-tolerant batch job
/// service (a thin client over [`qdaflow_engine::JobService`]).
///
/// Each `--spec "<spec>"` names one job; the spec grammar is
/// `hwb N` | `random N [SEED]` | `perm 0 2 3 5 7 1 4 6` | `expr (a & b) ^ c`
/// | `qasm:<file>` (an OpenQASM 2.0 file imported through `qasmin`).
/// All jobs share `--shots` (default 1024), `--synth tbs|dbs` (permutation
/// synthesis, default tbs) and a base `--seed` (default 1; job `i` samples
/// under `seed + i`). Jobs with identical specs are single-flighted through
/// the shell's persistent compiled-oracle cache, distinct oracles compile
/// and simulate in parallel, and sampling is shot-sharded — reproducible at
/// any thread count (see the `exec` command for the thread knob).
///
/// A job that fails — even by panicking inside compilation — fails *alone*:
/// its typed error is logged and every sibling still reports its result.
///
/// `batch --resume <journal>` attaches the service to a checkpoint journal
/// (for this and all later `batch` commands of the session): completed jobs
/// are recorded as they finish, and resubmitting a recorded job answers
/// instantly from the checkpoint — a killed batch rerun this way recompiles
/// and resimulates nothing it already finished. `batch --stats` logs the
/// service metrics followed by the unified process-wide registry (pass
/// durations, cache layers, dispatch decisions, kernel sweeps, compile
/// times), all in Prometheus text exposition format.
///
/// `batch --trace <file>` records telemetry spans for the duration of the
/// batch and writes them to `<file>` as Chrome trace-event JSON when the
/// batch finishes. If the recorder was off, it is cleared first (so the file
/// holds exactly this batch) and switched off again afterwards; if it was
/// already on (`trace on`), the recording simply continues.
pub struct Batch;

impl Batch {
    fn invalid(message: String) -> RevkitError {
        RevkitError::InvalidArguments {
            command: "batch",
            message,
        }
    }

    /// Writes the recorder contents as a Chrome trace to `path`, restoring
    /// the recorder to off when this batch turned it on.
    fn dump_trace(
        path: &std::path::Path,
        restore_off: bool,
        store: &mut Store,
    ) -> Result<(), RevkitError> {
        if restore_off {
            telemetry::disable();
        }
        let (records, dropped) = telemetry::snapshot();
        let json = telemetry::export::chrome_trace(&records, dropped);
        std::fs::write(path, json)
            .map_err(|e| Self::invalid(format!("cannot write '{}': {e}", path.display())))?;
        store.log(format!(
            "[batch] trace: {} records ({} dropped) -> {}",
            records.len(),
            dropped,
            path.display()
        ));
        Ok(())
    }

    /// Parses one `--spec` value into an [`OracleSpec`].
    fn parse_spec(text: &str, synthesis: SynthesisChoice) -> Result<OracleSpec, RevkitError> {
        // `qasm:<file>` takes the rest of the value verbatim as a path, so
        // it is peeled off before tokenization.
        if let Some(path) = text.strip_prefix("qasm:") {
            let path = path.trim();
            if path.is_empty() {
                return Err(Self::invalid(
                    "'qasm:' expects a file path, e.g. --spec \"qasm:oracle.qasm\"".to_owned(),
                ));
            }
            let source = std::fs::read_to_string(path)
                .map_err(|e| Self::invalid(format!("cannot read '{path}': {e}")))?;
            return Ok(OracleSpec::qasm(source));
        }
        let tokens = tokenize(text)?;
        let Some((kind, rest)) = tokens.split_first() else {
            return Err(Self::invalid("empty --spec value".to_owned()));
        };
        match kind.as_str() {
            "hwb" => {
                let [n] = rest else {
                    return Err(Self::invalid(format!(
                        "'hwb' expects one number in '{text}'"
                    )));
                };
                let n = parse_usize("batch", n)?;
                Ok(OracleSpec::permutation(
                    qdaflow_boolfn::hwb::hwb_permutation(n),
                    synthesis,
                ))
            }
            "random" => {
                let (n, seed) = match rest {
                    [n] => (n, None),
                    [n, seed] => (n, Some(seed)),
                    _ => {
                        return Err(Self::invalid(format!(
                            "'random' expects 'random N [SEED]' in '{text}'"
                        )))
                    }
                };
                let n = parse_usize("batch", n)?;
                let seed = seed
                    .map(|s| parse_usize("batch", s))
                    .transpose()?
                    .unwrap_or(1);
                Ok(OracleSpec::permutation(
                    qdaflow_boolfn::Permutation::random_seeded(n, seed as u64),
                    synthesis,
                ))
            }
            "perm" => {
                let images: Result<Vec<usize>, _> =
                    rest.iter().map(|t| parse_usize("batch", t)).collect();
                let permutation = qdaflow_boolfn::Permutation::new(images?)
                    .map_err(|e| Self::invalid(e.to_string()))?;
                Ok(OracleSpec::permutation(permutation, synthesis))
            }
            "expr" => {
                let expression = rest.join(" ");
                let expr = qdaflow_boolfn::Expr::parse(&expression)
                    .map_err(|e| Self::invalid(e.to_string()))?;
                let table = expr
                    .truth_table(expr.num_vars())
                    .map_err(|e| Self::invalid(e.to_string()))?;
                Ok(OracleSpec::phase_function(table))
            }
            other => Err(Self::invalid(format!(
                "unknown spec kind '{other}' (expected hwb | random | perm | expr | qasm:<file>)"
            ))),
        }
    }
}

impl Command for Batch {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn description(&self) -> &'static str {
        "run oracle jobs through the batch job service: batch [--shots N] [--seed S] [--synth tbs|dbs] [--resume JOURNAL] [--stats] [--trace FILE] --spec \"hwb 4\" [--spec \"qasm:oracle.qasm\" ...]"
    }

    fn execute(&self, args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        let show_stats = args.iter().any(|a| a == "--stats");
        let trace_path = find_flag_value(args, "--trace").map(std::path::PathBuf::from);
        let trace_was_on = telemetry::enabled();
        if trace_path.is_some() && !trace_was_on {
            telemetry::clear();
            telemetry::enable();
        }
        let resume = find_flag_value(args, "--resume").map(std::path::PathBuf::from);
        if let Some(path) = &resume {
            store.set_journal_path(Some(path.clone()));
            store.log(format!("[batch] journal attached: {}", path.display()));
        }
        let shots = find_flag_value(args, "--shots")
            .map(|s| parse_usize(self.name(), s))
            .transpose()?
            .unwrap_or(1024);
        let base_seed = find_flag_value(args, "--seed")
            .map(|s| parse_usize(self.name(), s))
            .transpose()?
            .unwrap_or(1) as u64;
        let synthesis = match find_flag_value(args, "--synth") {
            None | Some("tbs") => SynthesisChoice::TransformationBased,
            Some("dbs") => SynthesisChoice::DecompositionBased,
            Some(other) => {
                return Err(Self::invalid(format!(
                    "expected '--synth tbs' or '--synth dbs', found '{other}'"
                )))
            }
        };
        let specs: Vec<&str> = args
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == "--spec")
            .map(|(index, _)| {
                args.get(index + 1)
                    .map(String::as_str)
                    .ok_or_else(|| Self::invalid("'--spec' expects a value".to_owned()))
            })
            .collect::<Result<_, _>>()?;
        if specs.is_empty() {
            // `--stats` / `--resume` / `--trace` are valid on their own:
            // report/attach/dump without running anything.
            if show_stats || resume.is_some() || trace_path.is_some() {
                if show_stats {
                    let service = store.job_service()?;
                    for line in service.metrics_text().lines() {
                        store.log(line);
                    }
                    for line in telemetry::global_metrics().render().lines() {
                        store.log(line);
                    }
                }
                if let Some(path) = &trace_path {
                    Self::dump_trace(path, !trace_was_on, store)?;
                }
                return Ok(());
            }
            return Err(Self::invalid(
                "expected at least one --spec \"<spec>\"".to_owned(),
            ));
        }
        let jobs: Vec<BatchJob> = specs
            .iter()
            .enumerate()
            .map(|(index, text)| {
                Ok(BatchJob::new(
                    Self::parse_spec(text, synthesis)?,
                    shots,
                    base_seed.wrapping_add(index as u64),
                )
                .with_backend(store.backend_choice()))
            })
            .collect::<Result<_, RevkitError>>()?;
        let service = store.job_service()?;
        let before = service.engine().cache().stats();
        // Under `backend auto`, resolve per-job backends up front so the log
        // names the concrete engine each job ran on (the service performs
        // the same resolution — it is a pure function of the compiled
        // circuit, and the compilation is shared through the cache).
        let resolved: Option<Vec<BackendChoice>> = if store.backend_choice() == BackendChoice::Auto
        {
            Some(service.engine().resolve_backends(&jobs)?)
        } else {
            None
        };
        let ids = service.submit_batch(&jobs)?;
        let mut dead = 0usize;
        for (index, (id, text)) in ids.iter().zip(&specs).enumerate() {
            let backend = resolved
                .as_ref()
                .map_or(String::new(), |r| format!(", auto -> {}", r[index]));
            match service.wait(*id) {
                Some(JobStatus::Done(result)) => {
                    let outcome = result
                        .most_likely()
                        .map_or("no shots".to_owned(), |(outcome, p)| {
                            format!("most likely {outcome} (p={p:.2})")
                        });
                    store.log(format!(
                        "[batch] job {index}: {text} -> {} qubits, T-count {}, {} shots, {outcome}{backend}",
                        result.num_qubits, result.resources.t_count, result.shots
                    ));
                }
                Some(JobStatus::Dead { attempts, error }) => {
                    dead += 1;
                    store.log(format!(
                        "[batch] job {index}: {text} -> dead-lettered after {attempts} attempt(s): {error}"
                    ));
                }
                other => {
                    // `wait` only returns terminal states for known ids; this
                    // arm is unreachable in practice but must not panic.
                    dead += 1;
                    store.log(format!("[batch] job {index}: {text} -> lost ({other:?})"));
                }
            }
        }
        let after = service.engine().cache().stats();
        let compiled = after.misses - before.misses;
        let hits = after.hits - before.hits;
        // Distinct work items are counted by resolved cache key — the
        // hit/miss deltas also include the automatic-resolution lookups, so
        // they cannot stand in for the distinct count under `backend auto`.
        let distinct = jobs
            .iter()
            .enumerate()
            .map(|(index, job)| match &resolved {
                Some(backends) => job.clone().with_backend(backends[index]).cache_key(),
                None => job.cache_key(),
            })
            .collect::<std::collections::HashSet<_>>()
            .len();
        let dead_note = if dead > 0 {
            format!(", {dead} dead-lettered")
        } else {
            String::new()
        };
        store.log(format!(
            "[batch] {} jobs ({distinct} distinct), {compiled} compiled, {hits} cache hits ({} programs cached) on the {} backend{dead_note}",
            jobs.len(),
            after.entries,
            store.backend_choice()
        ));
        if show_stats {
            for line in service.metrics_text().lines() {
                store.log(line);
            }
            for line in telemetry::global_metrics().render().lines() {
                store.log(line);
            }
        }
        if let Some(path) = &trace_path {
            Self::dump_trace(path, !trace_was_on, store)?;
        }
        Ok(())
    }
}

/// `backend` — select the simulation backend used by the `batch` command's
/// jobs.
///
/// `backend sparse` routes subsequent batch jobs through the sparse
/// statevector engine (nonzero amplitudes only — the right choice for the
/// flow's permutation-dominated oracles and for registers beyond the dense
/// ceiling); `backend stabilizer` through the stabilizer tableau (Clifford
/// circuits only, at hundreds of qubits); `backend auto` censuses each
/// compiled job and routes it automatically (the recommended default for
/// mixed workloads — the batch log shows each job's resolved backend);
/// `backend dense` restores the default dense engine. Without an argument
/// the command reports the current choice. The (resolved) choice is keyed
/// into the batch engine's compiled-oracle cache digests, so runs of the
/// same oracle on different engines are cached independently. Unknown names
/// are rejected with the engine's typed
/// [`EngineError::UnknownBackend`](qdaflow_engine::EngineError), whose
/// message lists the valid choices.
pub struct BackendCmd;

impl Command for BackendCmd {
    fn name(&self) -> &'static str {
        "backend"
    }

    fn description(&self) -> &'static str {
        "select the simulation backend for batch jobs (backend dense|sparse|stabilizer|auto); no argument prints the current choice"
    }

    fn execute(&self, args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        match args {
            [] => {}
            [name] => {
                let choice = BackendChoice::parse(name)?;
                store.set_backend_choice(choice);
            }
            _ => {
                return Err(RevkitError::InvalidArguments {
                    command: self.name(),
                    message: "expected at most one argument (dense|sparse|stabilizer|auto)"
                        .to_owned(),
                })
            }
        }
        store.log(format!("[backend] {}", store.backend_choice()));
        Ok(())
    }
}

/// `trace` — control the workspace telemetry recorder.
///
/// `trace on` starts recording spans and events across every layer (pipeline
/// passes, backend dispatch, the compiled-oracle cache, kernel sweeps, job
/// lifecycle); `trace off` stops it. `trace dump <file>` writes everything
/// recorded so far as a Chrome trace-event JSON array — loadable in
/// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev). `trace stats`
/// logs the unified process-wide metrics registry in Prometheus text
/// exposition format (pass durations, cache hits and misses, dispatch
/// decisions, kernel sweep statistics, compile times). Without an argument
/// the command reports the recorder status.
pub struct Trace;

impl Command for Trace {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn description(&self) -> &'static str {
        "control the telemetry recorder: trace on|off|dump <file>|stats; no argument prints the status"
    }

    fn execute(&self, args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        match args {
            [] => {
                let recorder = telemetry::recorder();
                store.log(format!(
                    "[trace] {}, {} records buffered, {} dropped (capacity {})",
                    if telemetry::enabled() { "on" } else { "off" },
                    recorder.len(),
                    recorder.dropped(),
                    recorder.capacity()
                ));
            }
            [arg] if arg == "on" => {
                telemetry::enable();
                store.log("[trace] recording on");
            }
            [arg] if arg == "off" => {
                telemetry::disable();
                store.log("[trace] recording off");
            }
            [arg] if arg == "stats" => {
                for line in telemetry::global_metrics().render().lines() {
                    store.log(line);
                }
            }
            [arg, path] if arg == "dump" => {
                let (records, dropped) = telemetry::snapshot();
                let json = telemetry::export::chrome_trace(&records, dropped);
                std::fs::write(path, json).map_err(|e| RevkitError::InvalidArguments {
                    command: self.name(),
                    message: format!("cannot write '{path}': {e}"),
                })?;
                store.log(format!(
                    "[trace] dumped {} records ({} dropped) to {path}",
                    records.len(),
                    dropped
                ));
            }
            _ => {
                return Err(RevkitError::InvalidArguments {
                    command: self.name(),
                    message: "expected 'trace on|off|dump <file>|stats'".to_owned(),
                })
            }
        }
        Ok(())
    }
}

/// `exec` — configure the execution layer used by simulating commands.
pub struct Exec;

impl Command for Exec {
    fn name(&self) -> &'static str {
        "exec"
    }

    fn description(&self) -> &'static str {
        "configure circuit execution (--threads N | --fusion on|off | --threshold N | --plan on|off | --block-bits N | --pair-fusion on|off); no arguments prints the current settings"
    }

    fn execute(&self, args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        let mut config = store.exec_config();
        if let Some(threads) = find_flag_value(args, "--threads") {
            let threads = parse_usize(self.name(), threads)?;
            if threads == 0 {
                return Err(RevkitError::InvalidArguments {
                    command: self.name(),
                    message: "--threads must be at least 1".to_owned(),
                });
            }
            config = config.with_threads(threads);
        }
        if let Some(fusion) = find_flag_value(args, "--fusion") {
            config = config.with_fusion(parse_on_off(self.name(), "--fusion", fusion)?);
        }
        if let Some(threshold) = find_flag_value(args, "--threshold") {
            config = config.with_parallel_threshold(parse_usize(self.name(), threshold)?);
        }
        if let Some(plan) = find_flag_value(args, "--plan") {
            config = config.with_plan(parse_on_off(self.name(), "--plan", plan)?);
        }
        if let Some(block_bits) = find_flag_value(args, "--block-bits") {
            config = config.with_block_bits(parse_usize(self.name(), block_bits)?);
        }
        if let Some(pair_fusion) = find_flag_value(args, "--pair-fusion") {
            config =
                config.with_pair_fusion(parse_on_off(self.name(), "--pair-fusion", pair_fusion)?);
        }
        store.set_exec_config(config);
        store.log(format!(
            "[exec] threads={} fusion={} parallel-threshold={} plan={} block-bits={} pair-fusion={}",
            config.threads,
            if config.fusion { "on" } else { "off" },
            config.parallel_threshold,
            if config.plan { "on" } else { "off" },
            if config.block_bits == 0 {
                "auto".to_owned()
            } else {
                config.block_bits.to_string()
            },
            if config.pair_fusion { "on" } else { "off" }
        ));
        Ok(())
    }
}

/// Parses an `on`/`off` flag value into a bool, with a command-scoped error.
fn parse_on_off(command: &'static str, flag: &str, value: &str) -> Result<bool, RevkitError> {
    match value {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(RevkitError::InvalidArguments {
            command,
            message: format!("expected '{flag} on' or '{flag} off', found '{other}'"),
        }),
    }
}

/// `qasm` — print the quantum circuit as OpenQASM 2.0, or import one.
///
/// Without arguments the command prints the current quantum circuit through
/// the checked exporter. `qasm load <file>` reads an OpenQASM 2.0 file,
/// imports it through [`qasm::from_qasm`] and stores both the resulting
/// circuit and the raw source (so `flow "qasmin; …"` pipelines can seed
/// from it).
pub struct Qasm;

impl Command for Qasm {
    fn name(&self) -> &'static str {
        "qasm"
    }

    fn description(&self) -> &'static str {
        "print the current quantum circuit as OpenQASM 2.0, or import one with 'qasm load <file>'"
    }

    fn execute(&self, args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        match args {
            [] => {
                let quantum = store
                    .quantum()
                    .ok_or(RevkitError::MissingStoreEntry {
                        command: self.name(),
                        expected: "quantum circuit",
                    })?
                    .clone();
                // The checked exporter turns silent semantic loss (mcx/mcz
                // degraded to comments that a re-import drops) into a typed
                // error; circuits that reach this command through `rptm` are
                // already Clifford+T.
                for line in qasm::to_qasm_checked(&quantum)?.lines() {
                    store.log(line.to_owned());
                }
                Ok(())
            }
            [load, path] if load == "load" => {
                let source =
                    std::fs::read_to_string(path).map_err(|e| RevkitError::InvalidArguments {
                        command: self.name(),
                        message: format!("cannot read '{path}': {e}"),
                    })?;
                let circuit = qasm::from_qasm(&source)?;
                store.log(format!(
                    "[qasm] loaded '{path}': {} qubits, {} gates",
                    circuit.num_qubits(),
                    circuit.num_gates()
                ));
                store.set_quantum(circuit);
                store.set_qasm_source(source);
                Ok(())
            }
            _ => Err(RevkitError::InvalidArguments {
                command: self.name(),
                message: "expected no arguments (print) or 'load <file>' (import)".to_owned(),
            }),
        }
    }
}

/// `draw` — print an ASCII rendering of the quantum circuit.
pub struct Draw;

impl Command for Draw {
    fn name(&self) -> &'static str {
        "draw"
    }

    fn description(&self) -> &'static str {
        "print an ASCII drawing of the current quantum circuit"
    }

    fn execute(&self, _args: &[String], store: &mut Store) -> Result<(), RevkitError> {
        let quantum = store
            .quantum()
            .ok_or(RevkitError::MissingStoreEntry {
                command: self.name(),
                expected: "quantum circuit",
            })?
            .clone();
        for line in drawer::draw(&quantum).lines() {
            store.log(line.to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(command: &dyn Command, args: &[&str], store: &mut Store) -> Result<(), RevkitError> {
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        command.execute(&args, store)
    }

    #[test]
    fn revgen_hwb_sets_a_permutation() {
        let mut store = Store::new();
        run(&Revgen, &["--hwb", "3"], &mut store).unwrap();
        assert_eq!(store.permutation().unwrap().num_vars(), 3);
    }

    #[test]
    fn revgen_requires_a_mode() {
        let mut store = Store::new();
        assert!(matches!(
            run(&Revgen, &[], &mut store),
            Err(RevkitError::InvalidArguments { .. })
        ));
        assert!(matches!(
            run(&Revgen, &["--hwb", "abc"], &mut store),
            Err(RevkitError::InvalidArguments { .. })
        ));
    }

    #[test]
    fn revgen_parses_explicit_permutations_and_expressions() {
        let mut store = Store::new();
        run(&Revgen, &["--perm", "0 2 3 5 7 1 4 6"], &mut store).unwrap();
        assert_eq!(store.permutation().unwrap().num_vars(), 3);
        run(&Revgen, &["--expr", "(a & b) ^ (c & d)"], &mut store).unwrap();
        assert_eq!(store.function().unwrap().num_vars(), 4);
        run(&Revgen, &["--expr", "a ^ b", "--vars", "5"], &mut store).unwrap();
        assert_eq!(store.function().unwrap().num_vars(), 5);
    }

    #[test]
    fn synthesis_commands_require_a_specification() {
        let mut store = Store::new();
        assert!(matches!(
            run(&Tbs, &[], &mut store),
            Err(RevkitError::MissingStoreEntry { .. })
        ));
        assert!(matches!(
            run(&Esopbs, &[], &mut store),
            Err(RevkitError::MissingStoreEntry { .. })
        ));
    }

    #[test]
    fn tbs_and_dbs_fill_the_reversible_store() {
        for synthesizer in [&Tbs as &dyn Command, &Dbs as &dyn Command] {
            let mut store = Store::new();
            run(&Revgen, &["--hwb", "4"], &mut store).unwrap();
            run(synthesizer, &[], &mut store).unwrap();
            let circuit = store.reversible().unwrap();
            assert!(qdaflow_reversible::simulation::realizes_permutation(
                circuit,
                store.permutation().unwrap()
            ));
        }
    }

    #[test]
    fn esopbs_synthesizes_functions() {
        let mut store = Store::new();
        run(&Revgen, &["--expr", "(a & b) ^ (c & d)"], &mut store).unwrap();
        run(&Esopbs, &[], &mut store).unwrap();
        assert_eq!(store.reversible().unwrap().num_lines(), 5);
    }

    #[test]
    fn full_pipeline_commands_compose() {
        let mut store = Store::new();
        run(&Revgen, &["--hwb", "4"], &mut store).unwrap();
        run(&Tbs, &[], &mut store).unwrap();
        run(&Revsimp, &[], &mut store).unwrap();
        run(&Rptm, &[], &mut store).unwrap();
        run(&Tpar, &[], &mut store).unwrap();
        run(&Ps, &["-c"], &mut store).unwrap();
        run(&Simulate, &[], &mut store).unwrap();
        run(&Qasm, &[], &mut store).unwrap();
        run(&Draw, &[], &mut store).unwrap();
        let log = store.log_lines().join("\n");
        assert!(log.contains("[tbs]"));
        assert!(log.contains("[tpar]"));
        assert!(log.contains("T-count"));
        assert!(log.contains("matches"));
        assert!(log.contains("OPENQASM"));
        assert!(!log.contains("DOES NOT"));
    }

    #[test]
    fn backend_command_switches_the_batch_engine() {
        let mut store = Store::new();
        run(&BackendCmd, &[], &mut store).unwrap();
        assert!(store.log_lines()[0].contains("[backend] dense"));
        run(&BackendCmd, &["sparse"], &mut store).unwrap();
        assert_eq!(store.backend_choice(), BackendChoice::Sparse);
        assert!(store.log_lines()[1].contains("[backend] sparse"));
        run(&BackendCmd, &["stabilizer"], &mut store).unwrap();
        assert_eq!(store.backend_choice(), BackendChoice::Stabilizer);
        run(&BackendCmd, &["auto"], &mut store).unwrap();
        assert_eq!(store.backend_choice(), BackendChoice::Auto);
        run(&BackendCmd, &["sparse"], &mut store).unwrap();
        // Unknown names surface the engine's typed error (not a silent
        // fall-through), listing the valid choices.
        let error = run(&BackendCmd, &["maybe"], &mut store).unwrap_err();
        assert!(matches!(error, RevkitError::Engine { .. }));
        let message = error.to_string();
        assert!(message.contains("unknown backend 'maybe'"), "{message}");
        for name in ["dense", "sparse", "stabilizer", "auto"] {
            assert!(message.contains(name), "{message}");
        }
        assert_eq!(store.backend_choice(), BackendChoice::Sparse);
        assert!(matches!(
            run(&BackendCmd, &["dense", "sparse"], &mut store),
            Err(RevkitError::InvalidArguments { .. })
        ));
        // Batch jobs pick up the choice and report it.
        run(&Batch, &["--shots", "32", "--spec", "hwb 3"], &mut store).unwrap();
        assert!(store
            .log_lines()
            .last()
            .unwrap()
            .contains("on the sparse backend"));
    }

    #[test]
    fn batch_under_auto_logs_each_jobs_resolved_backend() {
        let mut store = Store::new();
        run(&BackendCmd, &["auto"], &mut store).unwrap();
        // A permutation oracle (Clifford+T, permutation-dominated) resolves
        // to sparse; a linear-phase expression compiles to Clifford gates
        // only and resolves to stabilizer.
        run(
            &Batch,
            &["--shots", "64", "--spec", "hwb 3", "--spec", "expr x0 ^ x1"],
            &mut store,
        )
        .unwrap();
        let log = store.log_lines().join("\n");
        assert!(log.contains("job 0: hwb 3"), "{log}");
        assert!(log.contains("auto -> sparse"), "{log}");
        assert!(log.contains("auto -> stabilizer"), "{log}");
        // The distinct count follows the resolved cache keys, not the
        // hit/miss deltas inflated by the resolution lookups.
        assert!(log.contains("2 jobs (2 distinct)"), "{log}");
        assert!(log.contains("on the auto backend"), "{log}");
    }

    const GOLDEN_QASM: &str = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/goldens/hidden_shift_f4.qasm"
    );

    #[test]
    fn qasm_load_imports_a_file_into_the_store() {
        let mut store = Store::new();
        run(&Qasm, &["load", GOLDEN_QASM], &mut store).unwrap();
        let circuit = store.quantum().unwrap();
        assert_eq!(circuit.num_qubits(), 4);
        assert!(store.qasm_source().unwrap().contains("OPENQASM 2.0;"));
        assert!(store.log_lines().last().unwrap().contains("4 qubits"));
        // The loaded source seeds `flow` pipelines that start with qasmin.
        run(&Flow, &["qasmin; ps"], &mut store).unwrap();
        assert!(store
            .log_lines()
            .iter()
            .any(|l| l.contains("[flow] qasmin")));
        // Bad paths and malformed argument lists are typed errors.
        assert!(matches!(
            run(&Qasm, &["load", "/no/such/file.qasm"], &mut store),
            Err(RevkitError::InvalidArguments { .. })
        ));
        assert!(matches!(
            run(&Qasm, &["frobnicate"], &mut store),
            Err(RevkitError::InvalidArguments { .. })
        ));
    }

    #[test]
    fn batch_accepts_qasm_file_specs() {
        let mut store = Store::new();
        let spec = format!("qasm:{GOLDEN_QASM}");
        run(
            &Batch,
            &["--shots", "64", "--spec", &spec, "--spec", &spec],
            &mut store,
        )
        .unwrap();
        let log = store.log_lines().join("\n");
        // The hidden-shift instance is deterministic: every shot lands on 5.
        assert!(log.contains("most likely 5 (p=1.00)"), "{log}");
        assert!(
            log.contains("2 jobs (1 distinct), 1 compiled, 1 cache hits"),
            "{log}"
        );
        // A later batch over the same file is a pure cache hit.
        run(&Batch, &["--shots", "16", "--spec", &spec], &mut store).unwrap();
        assert!(store
            .log_lines()
            .last()
            .unwrap()
            .contains("1 jobs (1 distinct), 0 compiled, 1 cache hits"));
        assert!(matches!(
            run(&Batch, &["--spec", "qasm:"], &mut store),
            Err(RevkitError::InvalidArguments { .. })
        ));
        assert!(matches!(
            run(&Batch, &["--spec", "qasm: /no/such/file.qasm"], &mut store),
            Err(RevkitError::InvalidArguments { .. })
        ));
    }

    #[test]
    fn qasm_command_reports_unexportable_gates_as_typed_errors() {
        use qdaflow_quantum::{QuantumCircuit, QuantumGate};
        let mut store = Store::new();
        let mut circuit = QuantumCircuit::new(4);
        circuit
            .push(QuantumGate::Mcx {
                controls: vec![0, 1, 2],
                target: 3,
            })
            .unwrap();
        store.set_quantum(circuit);
        assert!(matches!(
            run(&Qasm, &[], &mut store),
            Err(RevkitError::Quantum(
                qdaflow_quantum::QuantumError::UnsupportedGate { gate: "mcx", .. }
            ))
        ));
    }

    #[test]
    fn batch_runs_deduplicated_jobs_through_the_cache() {
        let mut store = Store::new();
        run(
            &Batch,
            &[
                "--shots",
                "64",
                "--seed",
                "9",
                "--spec",
                "perm 0 2 3 5 7 1 4 6",
                "--spec",
                "perm 0 2 3 5 7 1 4 6",
                "--spec",
                "hwb 3",
                "--spec",
                "expr (a & b) ^ c",
            ],
            &mut store,
        )
        .unwrap();
        let log = store.log_lines().join("\n");
        assert!(log.contains("[batch] job 0"));
        assert!(log.contains("[batch] job 3"));
        assert!(log.contains("4 jobs (3 distinct), 3 compiled, 1 cache hits"));
        // A second invocation over a known oracle is all cache hits.
        run(&Batch, &["--shots", "32", "--spec", "hwb 3"], &mut store).unwrap();
        assert!(store
            .log_lines()
            .last()
            .unwrap()
            .contains("1 jobs (1 distinct), 0 compiled, 1 cache hits"));
    }

    #[test]
    fn batch_validates_its_arguments() {
        let mut store = Store::new();
        for args in [
            &[][..],
            &["--spec"],
            &["--spec", "frobnicate 3"],
            &["--spec", "hwb"],
            &["--spec", "hwb 3", "--synth", "maybe"],
            &["--spec", "perm 0 0 1 1"],
            &["--spec", "expr )("],
        ] {
            assert!(
                matches!(
                    run(&Batch, args, &mut store),
                    Err(RevkitError::InvalidArguments { .. })
                ),
                "{args:?}"
            );
        }
        // Random permutation specs and dbs synthesis work.
        run(
            &Batch,
            &["--synth", "dbs", "--spec", "random 3 7"],
            &mut store,
        )
        .unwrap();
    }

    #[test]
    fn ps_reports_empty_store() {
        let mut store = Store::new();
        run(&Ps, &[], &mut store).unwrap();
        assert!(store.log_lines()[0].contains("empty"));
    }

    #[test]
    fn builtin_commands_have_unique_names() {
        let commands = builtin_commands();
        let mut names: Vec<&str> = commands.iter().map(|c| c.name()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
        assert!(commands.iter().all(|c| !c.description().is_empty()));
    }
}
