//! Stabilizer (CHP tableau) simulation for the `qdaflow` quantum design
//! automation flow.
//!
//! The paper's hidden-shift workloads are Clifford-dominated: H/CZ/Z layers
//! with the non-Clifford content concentrated in the oracle's T gates. Both
//! amplitude-based engines — the dense
//! [`Statevector`](qdaflow_quantum::Statevector) (capped at
//! [`MAX_SIMULATOR_QUBITS`](qdaflow_quantum::MAX_SIMULATOR_QUBITS) qubits)
//! and the sparse `SparseStatevector` of `qdaflow_sparse` (capped at
//! `MAX_SPARSE_QUBITS`, and exponential in the intermediate support of an
//! `H` layer) — pay for amplitudes a pure-Clifford circuit never needs. This
//! crate simulates the Clifford group in the Heisenberg picture instead
//! (Aaronson–Gottesman, "Improved simulation of stabilizer circuits"): a
//! [`StabilizerTableau`] tracks `n` stabilizer and `n` destabilizer Pauli
//! generators in packed 64-bit columns, so every supported gate
//! (H, S, S†, X, Y, Z, Rz at multiples of π/2, CX, CZ, SWAP, MCZ up to two
//! qubits) is `O(n/64)` word operations and measurement is `O(n²)` — a
//! 100-qubit hidden-shift circuit runs end-to-end in well under a
//! millisecond (see the `stabilizer_vs_dense` bench).
//!
//! Non-Clifford gates (T, T†, generic Rz, CCX, MCX, MCZ beyond two qubits)
//! are rejected with the typed [`StabilizerError::NonClifford`] — the
//! automatic dispatcher in `qdaflow_engine` uses the matching
//! `GateCensus::is_all_clifford` predicate so circuits are only routed here
//! when every gate is accepted.
//!
//! Sampling reuses the workspace-wide seeded-RNG discipline: the final
//! state's support is an affine subspace of basis states (offset plus the
//! GF(2) span of the stabilizers' X-parts), extracted once by
//! [`StabilizerTableau::sampler`] and sampled through the shared
//! [`CumulativeDistribution`](qdaflow_quantum::sampling) — one `f64` draw
//! per shot sequentially, and the same `(seed, shard)` scheme as the dense
//! and sparse engines on the shot-sharded batch path.
//!
//! Correctness is established differentially: `tests/differential.rs`
//! compares sampled histograms shot-for-shot against the dense simulator on
//! random Clifford circuits over the shared (≤ 10 qubit) domain.
//!
//! # Example
//!
//! ```
//! use qdaflow_quantum::backend::Backend;
//! use qdaflow_quantum::{QuantumCircuit, QuantumGate};
//! use qdaflow_stabilizer::StabilizerBackend;
//!
//! # fn main() -> Result<(), qdaflow_quantum::QuantumError> {
//! // A 300-qubit GHZ-style cascade over the low qubits: far beyond both
//! // amplitude engines, a few microseconds for the tableau.
//! let mut circuit = QuantumCircuit::new(300);
//! circuit.push(QuantumGate::H(0))?;
//! for target in 1..8 {
//!     circuit.push(QuantumGate::Cx { control: 0, target })?;
//! }
//! let result = StabilizerBackend::default().run_sharded(&circuit, 128, 7)?;
//! // All shots land on |0…0⟩ or |0…011111111⟩.
//! assert_eq!(result.counts.keys().sum::<usize>() % 255, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod tableau;

pub use backend::StabilizerBackend;
pub use tableau::{StabilizerError, StabilizerSampler, StabilizerTableau};

/// Maximum number of qubits supported by the stabilizer tableau.
///
/// The tableau stores `(2n+1)` rows of two bits per qubit plus a phase
/// column — `O(n²)` bits overall, about 4 MiB at this bound — so the cap is
/// a memory guard rather than a representational limit. Sampling has its
/// own, much tighter limits ([`MAX_SAMPLING_RANK`] and the `usize` outcome
/// width); they apply to the *final* support only, so deep circuits over
/// hundreds of qubits simulate freely as long as they end in a
/// small-support state.
pub const MAX_STABILIZER_QUBITS: usize = 4096;

/// Maximum support rank (log₂ of the number of distinct outcomes) the
/// sampler will enumerate.
///
/// A stabilizer state is uniform over an affine subspace of `2^rank` basis
/// states; sampling materializes that subspace as a sorted outcome list, so
/// the rank is capped at `2^20` ≈ one million entries. States with larger
/// final support (e.g. a surviving `H` layer over more than 20 qubits)
/// return the typed [`StabilizerError::SupportTooLarge`] instead of
/// exhausting memory — those circuits belong on the dense engine.
pub const MAX_SAMPLING_RANK: usize = 20;
