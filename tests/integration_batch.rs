//! End-to-end tests of the batch execution subsystem through the `qdaflow`
//! facade: the `BatchEngine` must agree with the one-job engine path, its
//! cache must deduplicate across batches, and its results must be
//! reproducible at any thread count.

use qdaflow::pipeline::spec::spec_key;
use qdaflow::prelude::*;

fn paper_permutation() -> Permutation {
    Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap()
}

#[test]
fn batch_results_match_the_single_job_backend_path() {
    // The sharded sampling path of the batch engine and the explicit
    // `StatevectorBackend::run_sharded` path must agree job for job: same
    // compiled oracle, same seed scheme, same histogram.
    let spec = OracleSpec::permutation(paper_permutation(), SynthesisChoice::default());
    let config = ExecConfig::sequential().with_shot_shard_size(512);
    let engine = BatchEngine::with_config(config);
    let jobs = vec![
        BatchJob::new(spec.clone(), 2048, 5),
        BatchJob::new(spec.clone(), 2048, 6),
    ];
    let results = engine.run_batch(&jobs).unwrap();

    let program = engine.cache().peek(spec.cache_key()).unwrap();
    let backend = StatevectorBackend::with_config(0, config);
    for (job, result) in jobs.iter().zip(&results) {
        let direct = backend
            .run_sharded(program.circuit(), job.shots, job.seed)
            .unwrap();
        assert_eq!(result, &direct, "seed {}", job.seed);
    }
}

#[test]
fn cache_keys_are_canonical_across_construction_paths() {
    // The engine-level key and the raw pipeline-level digest agree, so any
    // layer can pre-compute keys without compiling.
    let spec = OracleSpec::permutation(paper_permutation(), SynthesisChoice::TransformationBased);
    let manual = spec_key(
        Some(&Ir::Permutation(paper_permutation())),
        &spec.pass_list(),
    );
    assert_eq!(spec.cache_key(), manual);
    assert_eq!(spec.cache_key().to_string().len(), 32);
}

#[test]
fn warm_cache_survives_across_batches_and_thread_counts() {
    let engine = BatchEngine::with_config(
        ExecConfig::sequential()
            .with_threads(4)
            .with_shot_shard_size(256),
    );
    let hwb = OracleSpec::permutation(qdaflow::boolfn::hwb::hwb_permutation(4), Default::default());
    let phase = OracleSpec::phase_function(
        Expr::parse("(a & b) ^ (c & d)")
            .unwrap()
            .truth_table(4)
            .unwrap(),
    );
    let first = engine
        .run_batch(&[
            BatchJob::new(hwb.clone(), 1000, 1),
            BatchJob::new(phase.clone(), 1000, 2),
            BatchJob::new(hwb.clone(), 1000, 3),
        ])
        .unwrap();
    assert_eq!(engine.cache().stats().misses, 2);
    // Re-running the same jobs compiles nothing and reproduces the results
    // exactly (sampling is keyed by the job seeds, not by engine state).
    let second = engine
        .run_batch(&[
            BatchJob::new(hwb.clone(), 1000, 1),
            BatchJob::new(phase.clone(), 1000, 2),
            BatchJob::new(hwb.clone(), 1000, 3),
        ])
        .unwrap();
    assert_eq!(first, second);
    assert_eq!(engine.cache().stats().misses, 2);
    // A single-threaded engine with the same shard size agrees shot for
    // shot.
    let sequential = BatchEngine::with_config(ExecConfig::sequential().with_shot_shard_size(256));
    let third = sequential
        .run_batch(&[BatchJob::new(hwb, 1000, 1), BatchJob::new(phase, 1000, 2)])
        .unwrap();
    assert_eq!(&first[..2], &third[..]);
}

#[test]
fn batch_histograms_are_statistically_sound() {
    // A phase oracle applied to |0…0⟩ leaves the state in |0…0⟩ (diagonal
    // unitary), so every shot lands there; a permutation oracle lands on
    // π(0). This pins the batch path's physics end to end.
    let pi = paper_permutation();
    let engine = BatchEngine::new();
    let results = engine
        .run_batch(&[
            BatchJob::new(
                OracleSpec::permutation(pi.clone(), SynthesisChoice::default()),
                500,
                7,
            ),
            BatchJob::new(
                OracleSpec::phase_function(Expr::parse("a & b").unwrap().truth_table(2).unwrap()),
                500,
                8,
            ),
        ])
        .unwrap();
    assert_eq!(results[0].most_likely(), Some((pi.apply(0), 1.0)));
    assert_eq!(results[1].most_likely(), Some((0, 1.0)));
    assert!(results[0].resources.total_gates > 0);
}
