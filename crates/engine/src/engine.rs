//! The `MainEngine`: qubit allocation, gate application, meta-sections and
//! backend dispatch.

use crate::oracle::{compile_permutation_oracle, compile_phase_oracle, SynthesisChoice};
use crate::EngineError;
use qdaflow_boolfn::{Expr, Permutation, TruthTable};
use qdaflow_quantum::backend::{
    Backend, ExecutionResult, NoisyHardwareBackend, ResourceCounterBackend, StatevectorBackend,
};
use qdaflow_quantum::fusion::ExecConfig;
use qdaflow_quantum::noise::NoiseModel;
use qdaflow_quantum::{GateCensus, QuantumCircuit, QuantumGate, MAX_SIMULATOR_QUBITS};
use qdaflow_sparse::SparseBackend;
use qdaflow_stabilizer::{StabilizerBackend, MAX_STABILIZER_QUBITS};
use std::fmt;

/// Which exact-simulation engine executes circuits: the dense statevector
/// (a `Vec` of all `2^n` amplitudes), the sparse statevector (a hash map of
/// the nonzero amplitudes only), the stabilizer tableau (Pauli generators,
/// Clifford circuits only), or automatic per-circuit dispatch between them.
///
/// The choice threads through the whole stack: [`MainEngine`] construction
/// ([`MainEngine::with_simulator_choice`]), per-job batch execution
/// ([`BatchJob::with_backend`](crate::BatchJob::with_backend), where the
/// *resolved* choice is keyed into the oracle-cache digest), and the shell's
/// `backend` command. Dense is the default and the right choice for states
/// with dense support (e.g. Hadamard layers over the full register); sparse
/// lifts the qubit ceiling for the paper's permutation-dominated oracle
/// workloads; stabilizer lifts it much further for pure-Clifford circuits;
/// [`BackendChoice::Auto`] censuses each circuit ([`GateCensus`]) and routes
/// it through [`resolve_backend`] so none of this needs picking by hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// The dense [`StatevectorBackend`]: all `2^n` amplitudes, capped at
    /// [`MAX_SIMULATOR_QUBITS`].
    #[default]
    Dense,
    /// The [`SparseBackend`]: nonzero amplitudes only, capped at
    /// [`MAX_SPARSE_QUBITS`](qdaflow_sparse::MAX_SPARSE_QUBITS).
    Sparse,
    /// The [`StabilizerBackend`]: Aaronson–Gottesman tableau, Clifford
    /// gates only, capped at [`MAX_STABILIZER_QUBITS`].
    Stabilizer,
    /// Automatic per-circuit dispatch: each compiled circuit is censused
    /// and routed to the cheapest backend that can run it (the heuristics
    /// of [`resolve_backend`]). Never reaches an executor itself — it
    /// always resolves to one of the concrete choices first.
    Auto,
}

impl BackendChoice {
    /// The lower-case name used by the shell's `backend` command and the
    /// cache-key encoding.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::Sparse => "sparse",
            Self::Stabilizer => "stabilizer",
            Self::Auto => "auto",
        }
    }

    /// Parses a backend name (`"dense"`, `"sparse"`, `"stabilizer"` or
    /// `"auto"`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "dense" => Some(Self::Dense),
            "sparse" => Some(Self::Sparse),
            "stabilizer" => Some(Self::Stabilizer),
            "auto" => Some(Self::Auto),
            _ => None,
        }
    }

    /// Parses a backend name into a typed result: unknown names return
    /// [`EngineError::UnknownBackend`], whose message lists the valid
    /// choices — the shell's `backend` command surfaces this directly.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownBackend`] for anything
    /// [`BackendChoice::from_name`] rejects.
    pub fn parse(name: &str) -> Result<Self, EngineError> {
        Self::from_name(name).ok_or_else(|| EngineError::UnknownBackend {
            name: name.to_string(),
        })
    }

    /// Resolves this choice against a circuit census: [`BackendChoice::Auto`]
    /// becomes the [`resolve_backend`] recommendation, concrete choices pass
    /// through unchanged. The result is never `Auto`.
    pub fn resolve(self, census: &GateCensus) -> Self {
        match self {
            Self::Auto => resolve_backend(census),
            concrete => concrete,
        }
    }
}

/// Routes a censused circuit to the cheapest backend that can run it —
/// the heuristic behind [`BackendChoice::Auto`]:
///
/// 1. **All-Clifford circuits go to the stabilizer tableau** (when they fit
///    [`MAX_STABILIZER_QUBITS`]): polynomial cost at any width. Its sampling
///    caps can still reject a final state with huge support, but that
///    surfaces as a typed error, whereas an amplitude engine would exhaust
///    memory on the same circuit long before failing cleanly.
/// 2. **Hadamard-heavy circuits go dense** (when they fit
///    [`MAX_SIMULATOR_QUBITS`]): at ≥ 25% `H` gates the sparse support is
///    presumed to spread across the basis, which is exactly the regime where
///    walking a hash-map support loses to the flat amplitude array.
/// 3. **Everything else goes sparse**: permutation-dominated oracle
///    workloads keep single-basis-state support, and circuits beyond the
///    dense qubit ceiling have nowhere else to go.
///
/// The census's [`support_bound_log2`](GateCensus::support_bound_log2) is
/// deliberately *not* a routing input: the bound saturates as soon as a
/// circuit has as many `H` gates as qubits, even when the layers cancel
/// (hidden-shift circuits do exactly this), so it would misroute the
/// paper's core workloads. The fractions below are structural, not
/// simulated, so resolution costs one linear sweep per circuit.
pub fn resolve_backend(census: &GateCensus) -> BackendChoice {
    let choice = if census.is_all_clifford() && census.num_qubits <= MAX_STABILIZER_QUBITS {
        BackendChoice::Stabilizer
    } else if census.num_qubits <= MAX_SIMULATOR_QUBITS && census.hadamard_fraction() >= 0.25 {
        BackendChoice::Dense
    } else {
        BackendChoice::Sparse
    };
    note_dispatch(choice);
    if qdaflow_telemetry::enabled() {
        qdaflow_telemetry::event(
            "dispatch",
            format!("auto -> {choice}"),
            vec![
                ("qubits", census.num_qubits.to_string()),
                ("clifford", census.clifford.to_string()),
                ("t", census.t.to_string()),
            ],
        );
    }
    choice
}

/// Counts a dispatcher decision in the global
/// `qdaflow_dispatch_total{backend=...}` family. Called for automatic
/// resolutions (inside [`resolve_backend`]) and by the batch engine for
/// explicitly requested backends, so the family reflects what actually ran.
pub(crate) fn note_dispatch(choice: BackendChoice) {
    qdaflow_telemetry::global_metrics()
        .counter(
            "qdaflow_dispatch_total",
            "Backend dispatch decisions, labelled by the chosen backend.",
            &[("backend", choice.as_str())],
        )
        .inc();
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A handle to a qubit allocated by a [`MainEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Qubit(usize);

impl Qubit {
    /// The engine-global index of the qubit.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A recorded compute section, used for automatic uncomputation
/// (the `Compute`/`Uncompute` meta-statements of ProjectQ).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputeSection {
    start: usize,
    end: Option<usize>,
}

/// State of an engine running under [`BackendChoice::Auto`]: the last
/// resolution (so the backend is only rebuilt when the recommendation
/// changes) and the execution configuration to reapply on rebuild.
#[derive(Debug, Clone, Copy)]
struct AutoDispatch {
    resolved: Option<BackendChoice>,
    config: ExecConfig,
}

/// The ProjectQ-style main engine: it records the gates emitted by the
/// program (including compiled oracles) and finally hands the circuit to a
/// [`Backend`] on [`MainEngine::flush`].
pub struct MainEngine {
    backend: Box<dyn Backend>,
    gates: Vec<QuantumGate>,
    num_qubits: usize,
    auto: Option<AutoDispatch>,
}

impl MainEngine {
    /// Creates an engine with an explicit backend.
    pub fn new(backend: Box<dyn Backend>) -> Self {
        Self {
            backend,
            gates: Vec::new(),
            num_qubits: 0,
            auto: None,
        }
    }

    /// Creates an engine targeting the exact statevector simulator. Under
    /// the default [`ExecConfig`] the backend executes circuits through the
    /// [`ExecPlan`](qdaflow_quantum::plan::ExecPlan) SoA kernel (split
    /// re/im amplitude arrays, cache-blocked multi-op sweeps); set
    /// `plan: false` via [`MainEngine::with_simulator_config`] to replay
    /// the legacy interleaved fused path instead.
    pub fn with_simulator() -> Self {
        Self::new(Box::new(StatevectorBackend::default()))
    }

    /// Creates an engine targeting the sparse statevector simulator —
    /// the same exact semantics as [`MainEngine::with_simulator`] on the
    /// shared domain, with cost scaling in the state's support size instead
    /// of `2^n` (see [`qdaflow_sparse`]).
    pub fn with_sparse_simulator() -> Self {
        Self::new(Box::new(SparseBackend::default()))
    }

    /// Creates an engine targeting the stabilizer tableau simulator —
    /// Clifford circuits only, at up to [`MAX_STABILIZER_QUBITS`] qubits
    /// (see [`qdaflow_stabilizer`]). Non-Clifford gates surface as a typed
    /// [`EngineError::Quantum`] on [`MainEngine::flush`].
    pub fn with_stabilizer_simulator() -> Self {
        Self::new(Box::new(StabilizerBackend::default()))
    }

    /// Creates an engine targeting the exact simulator selected by
    /// `choice`. [`BackendChoice::Auto`] starts on the dense simulator and
    /// re-censuses the recorded circuit on every [`MainEngine::flush`],
    /// swapping the backend whenever [`resolve_backend`] changes its
    /// recommendation (see [`MainEngine::resolved_backend`]).
    pub fn with_simulator_choice(choice: BackendChoice) -> Self {
        match choice {
            BackendChoice::Dense => Self::with_simulator(),
            BackendChoice::Sparse => Self::with_sparse_simulator(),
            BackendChoice::Stabilizer => Self::with_stabilizer_simulator(),
            BackendChoice::Auto => {
                let mut engine = Self::with_simulator();
                engine.auto = Some(AutoDispatch {
                    resolved: None,
                    config: ExecConfig::default(),
                });
                engine
            }
        }
    }

    /// Creates an engine targeting the statevector simulator with an
    /// explicit execution configuration (thread count, gate fusion, plan
    /// kernel selection and its block/batching knobs).
    pub fn with_simulator_config(config: ExecConfig) -> Self {
        let mut engine = Self::with_simulator();
        engine.set_exec_config(config);
        engine
    }

    /// Reconfigures how the backend executes circuits. Backends that do not
    /// simulate ignore the setting; the backend owns the configuration.
    /// Under [`BackendChoice::Auto`] the configuration is remembered and
    /// reapplied whenever dispatch swaps the backend.
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        if let Some(auto) = &mut self.auto {
            auto.config = config;
        }
        self.backend.set_exec_config(config);
    }

    /// The concrete backend the last [`MainEngine::flush`] under
    /// [`BackendChoice::Auto`] resolved to — `None` before the first flush
    /// or when the engine was not constructed with `Auto`.
    pub fn resolved_backend(&self) -> Option<BackendChoice> {
        self.auto.and_then(|auto| auto.resolved)
    }

    /// Re-censuses the recorded circuit and swaps the backend if the
    /// [`resolve_backend`] recommendation changed. No-op outside `Auto`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AutoUnresolved`] if resolution ever yields
    /// `Auto` — a routing invariant violation surfaced as a typed error
    /// instead of the `unreachable!` process abort it used to be.
    fn dispatch_auto(&mut self, circuit: &QuantumCircuit) -> Result<(), EngineError> {
        let Some(auto) = self.auto else {
            return Ok(());
        };
        let resolved = resolve_backend(&GateCensus::of(circuit));
        if auto.resolved == Some(resolved) {
            return Ok(());
        }
        let mut backend: Box<dyn Backend> = match resolved {
            BackendChoice::Dense => Box::new(StatevectorBackend::default()),
            BackendChoice::Sparse => Box::new(SparseBackend::default()),
            BackendChoice::Stabilizer => Box::new(StabilizerBackend::default()),
            // resolve_backend only returns concrete choices.
            BackendChoice::Auto => return Err(EngineError::AutoUnresolved),
        };
        backend.set_exec_config(auto.config);
        self.backend = backend;
        self.auto = Some(AutoDispatch {
            resolved: Some(resolved),
            config: auto.config,
        });
        Ok(())
    }

    /// Creates an engine targeting the noisy hardware model (the stand-in for
    /// the IBM Quantum Experience backend of the paper).
    pub fn with_noisy_hardware(model: NoiseModel, seed: u64) -> Self {
        Self::new(Box::new(NoisyHardwareBackend::new(model, seed)))
    }

    /// Creates an engine targeting the resource counter backend.
    pub fn with_resource_counter() -> Self {
        Self::new(Box::new(ResourceCounterBackend))
    }

    /// Name of the configured backend.
    pub fn backend_name(&self) -> &str {
        self.backend.name()
    }

    /// Allocates a register of `size` fresh qubits (initialised to `|0⟩`).
    pub fn allocate_qureg(&mut self, size: usize) -> Vec<Qubit> {
        let start = self.num_qubits;
        self.num_qubits += size;
        (start..start + size).map(Qubit).collect()
    }

    /// Allocates a single fresh qubit.
    pub fn allocate_qubit(&mut self) -> Qubit {
        self.allocate_qureg(1)[0]
    }

    /// Number of qubits allocated so far.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The circuit recorded so far.
    pub fn circuit(&self) -> QuantumCircuit {
        let mut circuit = QuantumCircuit::new(self.num_qubits);
        for gate in &self.gates {
            circuit
                .push(gate.clone())
                .expect("recorded gates always fit the allocated register");
        }
        circuit
    }

    fn check_qubit(&self, qubit: Qubit) -> Result<usize, EngineError> {
        if qubit.index() >= self.num_qubits {
            return Err(EngineError::ForeignQubit {
                index: qubit.index(),
                allocated: self.num_qubits,
            });
        }
        Ok(qubit.index())
    }

    /// Applies a raw gate expressed over engine-global qubit indices.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Quantum`] if the gate is malformed (for
    /// example, it repeats a qubit) and [`EngineError::ForeignQubit`] if it
    /// references unallocated qubits.
    pub fn apply_gate(&mut self, gate: QuantumGate) -> Result<(), EngineError> {
        for qubit in gate.qubits() {
            self.check_qubit(Qubit(qubit))?;
        }
        // Validate through a throwaway circuit so duplicate-qubit errors are
        // reported eagerly.
        let mut probe = QuantumCircuit::new(self.num_qubits);
        probe.push(gate.clone())?;
        self.gates.push(gate);
        Ok(())
    }

    /// Applies a Hadamard gate.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ForeignQubit`] for unallocated qubits.
    pub fn h(&mut self, qubit: Qubit) -> Result<(), EngineError> {
        let index = self.check_qubit(qubit)?;
        self.apply_gate(QuantumGate::H(index))
    }

    /// Applies a Pauli-X gate.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ForeignQubit`] for unallocated qubits.
    pub fn x(&mut self, qubit: Qubit) -> Result<(), EngineError> {
        let index = self.check_qubit(qubit)?;
        self.apply_gate(QuantumGate::X(index))
    }

    /// Applies a Pauli-Z gate.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ForeignQubit`] for unallocated qubits.
    pub fn z(&mut self, qubit: Qubit) -> Result<(), EngineError> {
        let index = self.check_qubit(qubit)?;
        self.apply_gate(QuantumGate::Z(index))
    }

    /// Applies a CNOT gate.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ForeignQubit`] for unallocated qubits and
    /// [`EngineError::Quantum`] if control and target coincide.
    pub fn cnot(&mut self, control: Qubit, target: Qubit) -> Result<(), EngineError> {
        let control = self.check_qubit(control)?;
        let target = self.check_qubit(target)?;
        self.apply_gate(QuantumGate::Cx { control, target })
    }

    /// Applies a controlled-Z gate.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ForeignQubit`] for unallocated qubits and
    /// [`EngineError::Quantum`] if the two qubits coincide.
    pub fn cz(&mut self, a: Qubit, b: Qubit) -> Result<(), EngineError> {
        let a = self.check_qubit(a)?;
        let b = self.check_qubit(b)?;
        self.apply_gate(QuantumGate::Cz { a, b })
    }

    /// Applies a Hadamard to every qubit of a register (the `All(H) | qubits`
    /// construct of the paper's programs).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ForeignQubit`] for unallocated qubits.
    pub fn all_h(&mut self, qubits: &[Qubit]) -> Result<(), EngineError> {
        for &qubit in qubits {
            self.h(qubit)?;
        }
        Ok(())
    }

    /// Applies an X to every qubit of a register.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ForeignQubit`] for unallocated qubits.
    pub fn all_x(&mut self, qubits: &[Qubit]) -> Result<(), EngineError> {
        for &qubit in qubits {
            self.x(qubit)?;
        }
        Ok(())
    }

    /// Starts a compute section (the `with Compute(eng):` statement).
    pub fn begin_compute(&mut self) -> ComputeSection {
        ComputeSection {
            start: self.gates.len(),
            end: None,
        }
    }

    /// Ends a compute section, capturing the recorded gate range.
    pub fn end_compute(&mut self, mut section: ComputeSection) -> ComputeSection {
        section.end = Some(self.gates.len());
        section
    }

    /// Appends the adjoint of the gates recorded in `section`
    /// (the `Uncompute(eng)` statement).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidComputeSection`] if the section was not
    /// closed with [`MainEngine::end_compute`] or does not describe a valid
    /// gate range.
    pub fn uncompute(&mut self, section: &ComputeSection) -> Result<(), EngineError> {
        let end = section.end.ok_or(EngineError::InvalidComputeSection)?;
        if section.start > end || end > self.gates.len() {
            return Err(EngineError::InvalidComputeSection);
        }
        let inverse: Vec<QuantumGate> = self.gates[section.start..end]
            .iter()
            .rev()
            .map(QuantumGate::dagger)
            .collect();
        self.gates.extend(inverse);
        Ok(())
    }

    /// Records the gates emitted by `body` and appends their adjoint instead
    /// (the `with Dagger(eng):` statement of the paper's Fig. 7).
    ///
    /// # Errors
    ///
    /// Propagates errors from `body`; on error the partially recorded gates
    /// are discarded.
    pub fn dagger<F>(&mut self, body: F) -> Result<(), EngineError>
    where
        F: FnOnce(&mut Self) -> Result<(), EngineError>,
    {
        let start = self.gates.len();
        match body(self) {
            Ok(()) => {
                let recorded: Vec<QuantumGate> = self.gates.drain(start..).collect();
                self.gates
                    .extend(recorded.iter().rev().map(QuantumGate::dagger));
                Ok(())
            }
            Err(error) => {
                self.gates.truncate(start);
                Err(error)
            }
        }
    }

    /// Applies the diagonal phase oracle `U_f` of the Boolean function `f`
    /// (given as an expression over the register's qubits, variable `x_i`
    /// referring to `qubits[i]`) — the `PhaseOracle(f) | qubits` primitive.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::RegisterSizeMismatch`] if the expression uses
    /// more variables than qubits were provided, plus any compilation error.
    pub fn phase_oracle_expr(&mut self, f: &Expr, qubits: &[Qubit]) -> Result<(), EngineError> {
        if f.num_vars() > qubits.len() {
            return Err(EngineError::RegisterSizeMismatch {
                expected: f.num_vars(),
                provided: qubits.len(),
            });
        }
        let table = f.truth_table(qubits.len())?;
        self.phase_oracle(&table, qubits)
    }

    /// Applies the diagonal phase oracle of a Boolean function given as a
    /// truth table over `qubits.len()` variables.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::RegisterSizeMismatch`] if the table width does
    /// not match the register, plus any compilation error.
    pub fn phase_oracle(
        &mut self,
        function: &TruthTable,
        qubits: &[Qubit],
    ) -> Result<(), EngineError> {
        if function.num_vars() != qubits.len() {
            return Err(EngineError::RegisterSizeMismatch {
                expected: function.num_vars(),
                provided: qubits.len(),
            });
        }
        let oracle = compile_phase_oracle(function)?;
        self.append_local_circuit(&oracle, qubits)
    }

    /// Applies the permutation oracle `|x⟩ → |π(x)⟩` to the register, with
    /// qubit `qubits[i]` carrying bit `i` of `x` — the
    /// `PermutationOracle(pi) | qubits` primitive. Ancilla qubits required by
    /// the Clifford+T mapping are allocated automatically.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::RegisterSizeMismatch`] if the permutation width
    /// does not match the register, plus any synthesis or mapping error.
    pub fn permutation_oracle(
        &mut self,
        permutation: &Permutation,
        qubits: &[Qubit],
        synthesis: SynthesisChoice,
    ) -> Result<(), EngineError> {
        if permutation.num_vars() != qubits.len() {
            return Err(EngineError::RegisterSizeMismatch {
                expected: permutation.num_vars(),
                provided: qubits.len(),
            });
        }
        let oracle = compile_permutation_oracle(permutation, synthesis)?;
        self.append_local_circuit(&oracle, qubits)
    }

    /// Appends the adjoint of a permutation oracle (used for `π⁻¹` via the
    /// `Dagger` construction of the paper's Fig. 7).
    ///
    /// # Errors
    ///
    /// Same as [`MainEngine::permutation_oracle`].
    pub fn permutation_oracle_dagger(
        &mut self,
        permutation: &Permutation,
        qubits: &[Qubit],
        synthesis: SynthesisChoice,
    ) -> Result<(), EngineError> {
        self.dagger(|engine| engine.permutation_oracle(permutation, qubits, synthesis))
    }

    /// Relabels a circuit expressed over a local register `0..k` (plus
    /// optional ancillas `k..`) onto the engine's qubits, allocating fresh
    /// engine qubits for the ancillas.
    fn append_local_circuit(
        &mut self,
        local: &QuantumCircuit,
        qubits: &[Qubit],
    ) -> Result<(), EngineError> {
        for &qubit in qubits {
            self.check_qubit(qubit)?;
        }
        let num_ancillas = local.num_qubits().saturating_sub(qubits.len());
        let ancillas = self.allocate_qureg(num_ancillas);
        let mut mapping: Vec<usize> = qubits.iter().map(Qubit::index).collect();
        mapping.extend(ancillas.iter().map(Qubit::index));
        for gate in local {
            let relabeled = relabel_gate(gate, &mapping);
            self.apply_gate(relabeled)?;
        }
        Ok(())
    }

    /// Sends the recorded circuit to the backend, measuring all qubits for
    /// `shots` shots (the `eng.flush()` plus measurement of the paper's
    /// programs). The recorded circuit is kept, so `flush` can be called
    /// again (e.g. with another shot count).
    ///
    /// # Errors
    ///
    /// Propagates backend execution errors.
    pub fn flush(&mut self, shots: usize) -> Result<ExecutionResult, EngineError> {
        let circuit = self.circuit();
        self.dispatch_auto(&circuit)?;
        Ok(self.backend.run(&circuit, shots)?)
    }

    /// Resets the engine: forgets all gates and qubits, keeping the backend.
    pub fn reset(&mut self) {
        self.gates.clear();
        self.num_qubits = 0;
    }
}

/// Relabels the qubits of a gate through `mapping[local] = global`.
fn relabel_gate(gate: &QuantumGate, mapping: &[usize]) -> QuantumGate {
    let map = |q: usize| mapping[q];
    match gate {
        QuantumGate::H(q) => QuantumGate::H(map(*q)),
        QuantumGate::X(q) => QuantumGate::X(map(*q)),
        QuantumGate::Y(q) => QuantumGate::Y(map(*q)),
        QuantumGate::Z(q) => QuantumGate::Z(map(*q)),
        QuantumGate::S(q) => QuantumGate::S(map(*q)),
        QuantumGate::Sdg(q) => QuantumGate::Sdg(map(*q)),
        QuantumGate::T(q) => QuantumGate::T(map(*q)),
        QuantumGate::Tdg(q) => QuantumGate::Tdg(map(*q)),
        QuantumGate::Rz { qubit, angle } => QuantumGate::Rz {
            qubit: map(*qubit),
            angle: *angle,
        },
        QuantumGate::Cx { control, target } => QuantumGate::Cx {
            control: map(*control),
            target: map(*target),
        },
        QuantumGate::Cz { a, b } => QuantumGate::Cz {
            a: map(*a),
            b: map(*b),
        },
        QuantumGate::Swap { a, b } => QuantumGate::Swap {
            a: map(*a),
            b: map(*b),
        },
        QuantumGate::Ccx {
            control_a,
            control_b,
            target,
        } => QuantumGate::Ccx {
            control_a: map(*control_a),
            control_b: map(*control_b),
            target: map(*target),
        },
        QuantumGate::Mcx { controls, target } => QuantumGate::Mcx {
            controls: controls.iter().map(|&q| map(q)).collect(),
            target: map(*target),
        },
        QuantumGate::Mcz { qubits } => QuantumGate::Mcz {
            qubits: qubits.iter().map(|&q| map(q)).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_and_gate_recording() {
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(3);
        assert_eq!(engine.num_qubits(), 3);
        engine.h(qubits[0]).unwrap();
        engine.cnot(qubits[0], qubits[2]).unwrap();
        let circuit = engine.circuit();
        assert_eq!(circuit.num_gates(), 2);
        assert_eq!(engine.backend_name(), "statevector-simulator");
    }

    #[test]
    fn backend_choice_selects_the_simulation_engine() {
        assert_eq!(
            BackendChoice::from_name("dense"),
            Some(BackendChoice::Dense)
        );
        assert_eq!(
            BackendChoice::from_name("sparse"),
            Some(BackendChoice::Sparse)
        );
        assert_eq!(
            BackendChoice::from_name("stabilizer"),
            Some(BackendChoice::Stabilizer)
        );
        assert_eq!(BackendChoice::from_name("auto"), Some(BackendChoice::Auto));
        assert_eq!(BackendChoice::from_name("frobnicate"), None);
        assert_eq!(BackendChoice::Sparse.to_string(), "sparse");
        assert_eq!(BackendChoice::Stabilizer.to_string(), "stabilizer");
        let dense = MainEngine::with_simulator_choice(BackendChoice::Dense);
        assert_eq!(dense.backend_name(), "statevector-simulator");
        let sparse = MainEngine::with_simulator_choice(BackendChoice::Sparse);
        assert_eq!(sparse.backend_name(), "sparse-statevector-simulator");
        let stabilizer = MainEngine::with_simulator_choice(BackendChoice::Stabilizer);
        assert_eq!(stabilizer.backend_name(), "stabilizer-tableau-simulator");
    }

    #[test]
    fn parse_returns_a_typed_error_listing_the_valid_choices() {
        assert_eq!(BackendChoice::parse("auto"), Ok(BackendChoice::Auto));
        let error = BackendChoice::parse("frobnicate").unwrap_err();
        assert_eq!(
            error,
            EngineError::UnknownBackend {
                name: "frobnicate".to_string()
            }
        );
        let message = error.to_string();
        for name in ["dense", "sparse", "stabilizer", "auto"] {
            assert!(message.contains(name), "{message}");
        }
    }

    #[test]
    fn resolver_routes_by_census_shape() {
        // All-Clifford → stabilizer, regardless of width.
        let mut clifford = QuantumCircuit::new(100);
        for q in 0..100 {
            clifford.push(QuantumGate::H(q)).unwrap();
        }
        assert_eq!(
            resolve_backend(&GateCensus::of(&clifford)),
            BackendChoice::Stabilizer
        );
        // Hadamard-heavy with non-Clifford content, small register → dense.
        let mut dense = QuantumCircuit::new(4);
        for q in 0..4 {
            dense.push(QuantumGate::H(q)).unwrap();
        }
        dense.push(QuantumGate::T(0)).unwrap();
        assert_eq!(
            resolve_backend(&GateCensus::of(&dense)),
            BackendChoice::Dense
        );
        // Permutation-dominated (Toffoli) → sparse; same for anything past
        // the dense ceiling.
        let mut perm = QuantumCircuit::new(3);
        perm.push(QuantumGate::X(0)).unwrap();
        perm.push(QuantumGate::Ccx {
            control_a: 0,
            control_b: 1,
            target: 2,
        })
        .unwrap();
        assert_eq!(
            resolve_backend(&GateCensus::of(&perm)),
            BackendChoice::Sparse
        );
        let mut wide = QuantumCircuit::new(40);
        for q in 0..40 {
            wide.push(QuantumGate::H(q)).unwrap();
        }
        wide.push(QuantumGate::T(0)).unwrap();
        assert_eq!(
            resolve_backend(&GateCensus::of(&wide)),
            BackendChoice::Sparse
        );
        // Concrete choices pass through resolve unchanged.
        let census = GateCensus::of(&perm);
        assert_eq!(BackendChoice::Dense.resolve(&census), BackendChoice::Dense);
        assert_eq!(BackendChoice::Auto.resolve(&census), BackendChoice::Sparse);
    }

    #[test]
    fn auto_engine_redispatches_per_flush() {
        let mut engine = MainEngine::with_simulator_choice(BackendChoice::Auto);
        assert_eq!(engine.resolved_backend(), None);
        let qubits = engine.allocate_qureg(2);
        engine.h(qubits[0]).unwrap();
        engine.cnot(qubits[0], qubits[1]).unwrap();
        let clifford = engine.flush(256).unwrap();
        assert_eq!(engine.resolved_backend(), Some(BackendChoice::Stabilizer));
        assert_eq!(engine.backend_name(), "stabilizer-tableau-simulator");
        assert_eq!(clifford.counts.values().sum::<usize>(), 256);
        // A T gate makes the same program non-Clifford and H-heavy → dense.
        engine
            .apply_gate(QuantumGate::T(qubits[0].index()))
            .unwrap();
        engine.flush(64).unwrap();
        assert_eq!(engine.resolved_backend(), Some(BackendChoice::Dense));
        assert_eq!(engine.backend_name(), "statevector-simulator");
    }

    #[test]
    fn stabilizer_engine_runs_clifford_programs_at_scale() {
        let mut engine = MainEngine::with_stabilizer_simulator();
        let qubits = engine.allocate_qureg(128);
        engine.x(qubits[60]).unwrap();
        engine.cnot(qubits[60], qubits[3]).unwrap();
        let result = engine.flush(64).unwrap();
        assert_eq!(result.most_likely(), Some(((1usize << 60) | 8, 1.0)));
        // Non-Clifford content is a typed error, not a panic.
        engine
            .apply_gate(QuantumGate::T(qubits[0].index()))
            .unwrap();
        assert!(matches!(
            engine.flush(16),
            Err(EngineError::Quantum(
                qdaflow_quantum::QuantumError::UnsupportedGate { gate: "t", .. }
            ))
        ));
    }

    #[test]
    fn sparse_engine_runs_the_fig4_program_identically() {
        // The complete Fig. 4 program on both exact engines: same seeds are
        // not required for this check because the ideal outcome is
        // deterministic — every shot recovers the planted shift.
        for choice in [BackendChoice::Dense, BackendChoice::Sparse] {
            let mut engine = MainEngine::with_simulator_choice(choice);
            let qubits = engine.allocate_qureg(4);
            let f = Expr::parse("(x0 & x1) ^ (x2 & x3)").unwrap();
            let section = engine.begin_compute();
            engine.all_h(&qubits).unwrap();
            engine.x(qubits[0]).unwrap();
            let section = engine.end_compute(section);
            engine.phase_oracle_expr(&f, &qubits).unwrap();
            engine.uncompute(&section).unwrap();
            engine.phase_oracle_expr(&f, &qubits).unwrap();
            engine.all_h(&qubits).unwrap();
            let result = engine.flush(256).unwrap();
            assert_eq!(result.most_likely(), Some((1, 1.0)), "{choice}");
        }
    }

    #[test]
    fn exec_config_is_threaded_through_to_the_backend() {
        let config = ExecConfig::sequential().with_fusion(false).with_threads(1);
        let mut engine = MainEngine::with_simulator_config(config);
        let qubits = engine.allocate_qureg(2);
        engine.h(qubits[0]).unwrap();
        engine.cnot(qubits[0], qubits[1]).unwrap();
        let unfused = engine.flush(256).unwrap();
        // The same program under the default (fused) configuration samples
        // the same distribution.
        let mut fused = MainEngine::with_simulator();
        let qubits = fused.allocate_qureg(2);
        fused.h(qubits[0]).unwrap();
        fused.cnot(qubits[0], qubits[1]).unwrap();
        assert_eq!(unfused.counts, fused.flush(256).unwrap().counts);
    }

    #[test]
    fn plan_and_legacy_paths_sample_identically_through_the_engine() {
        // The same non-trivial program (superposition, phase oracle,
        // multi-controlled mixing) through the plan SoA kernel and the
        // legacy interleaved path. Sequential execution on both sides is
        // bit-identical, so equal seeds must produce equal histograms.
        let run = |plan: bool| {
            let config = ExecConfig::sequential().with_plan(plan);
            let mut engine = MainEngine::with_simulator_config(config);
            let qubits = engine.allocate_qureg(4);
            let f = Expr::parse("(x0 & x1) ^ (x2 & x3)").unwrap();
            engine.all_h(&qubits).unwrap();
            engine.phase_oracle_expr(&f, &qubits).unwrap();
            engine
                .apply_gate(QuantumGate::T(qubits[2].index()))
                .unwrap();
            engine
                .apply_gate(QuantumGate::Ccx {
                    control_a: qubits[0].index(),
                    control_b: qubits[1].index(),
                    target: qubits[3].index(),
                })
                .unwrap();
            engine.all_h(&qubits).unwrap();
            engine.flush(512).unwrap().counts
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn foreign_qubits_are_rejected() {
        let mut engine = MainEngine::with_simulator();
        let _ = engine.allocate_qureg(1);
        assert!(matches!(
            engine.h(Qubit(5)),
            Err(EngineError::ForeignQubit { .. })
        ));
        assert!(matches!(
            engine.cnot(Qubit(0), Qubit(0)),
            Err(EngineError::Quantum(_))
        ));
    }

    #[test]
    fn compute_uncompute_restores_the_state() {
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(2);
        let section = engine.begin_compute();
        engine.all_h(&qubits).unwrap();
        engine.x(qubits[0]).unwrap();
        let section = engine.end_compute(section);
        engine.uncompute(&section).unwrap();
        let result = engine.flush(128).unwrap();
        assert_eq!(result.most_likely(), Some((0, 1.0)));
    }

    #[test]
    fn uncompute_requires_a_closed_section() {
        let mut engine = MainEngine::with_simulator();
        let _ = engine.allocate_qureg(1);
        let open = engine.begin_compute();
        assert!(matches!(
            engine.uncompute(&open),
            Err(EngineError::InvalidComputeSection)
        ));
    }

    #[test]
    fn dagger_appends_the_adjoint() {
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(1);
        engine.h(qubits[0]).unwrap();
        engine
            .dagger(|e| {
                e.apply_gate(QuantumGate::T(0))?;
                e.h(qubits[0])
            })
            .unwrap();
        let gates = engine.circuit();
        assert_eq!(gates.gates()[1], QuantumGate::H(0));
        assert_eq!(gates.gates()[2], QuantumGate::Tdg(0));
    }

    #[test]
    fn dagger_rolls_back_on_error() {
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(1);
        let result = engine.dagger(|e| {
            e.h(qubits[0])?;
            e.h(Qubit(99))
        });
        assert!(result.is_err());
        assert_eq!(engine.circuit().num_gates(), 0);
    }

    #[test]
    fn phase_oracle_validates_register_size() {
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(2);
        let f = Expr::parse("(x0 & x1) ^ (x2 & x3)").unwrap();
        assert!(matches!(
            engine.phase_oracle_expr(&f, &qubits),
            Err(EngineError::RegisterSizeMismatch { .. })
        ));
    }

    #[test]
    fn permutation_oracle_applies_the_permutation_classically() {
        let pi = Permutation::new(vec![0, 2, 3, 5, 7, 1, 4, 6]).unwrap();
        for basis in 0..8usize {
            let mut engine = MainEngine::with_simulator();
            let qubits = engine.allocate_qureg(3);
            // Prepare |basis⟩.
            for (bit, &qubit) in qubits.iter().enumerate() {
                if (basis >> bit) & 1 == 1 {
                    engine.x(qubit).unwrap();
                }
            }
            engine
                .permutation_oracle(&pi, &qubits, SynthesisChoice::TransformationBased)
                .unwrap();
            let result = engine.flush(64).unwrap();
            let expected = pi.apply(basis);
            assert_eq!(result.most_likely(), Some((expected, 1.0)), "basis {basis}");
        }
    }

    #[test]
    fn resource_counter_backend_reports_gate_counts() {
        let mut engine = MainEngine::with_resource_counter();
        let qubits = engine.allocate_qureg(3);
        let pi = Permutation::random_seeded(3, 5);
        engine
            .permutation_oracle(&pi, &qubits, SynthesisChoice::DecompositionBased)
            .unwrap();
        let result = engine.flush(0).unwrap();
        assert!(result.resources.total_gates > 0);
        assert!(result.counts.is_empty());
    }

    #[test]
    fn reset_clears_the_engine() {
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(2);
        engine.h(qubits[0]).unwrap();
        engine.reset();
        assert_eq!(engine.num_qubits(), 0);
        assert_eq!(engine.circuit().num_gates(), 0);
    }

    #[test]
    fn fig4_program_recovers_the_shift_deterministically() {
        // The complete program of Fig. 4 (hidden shift, f = x0x1 ^ x2x3, s = 1):
        // the compute section prepares H^n and the shift X_0, the phase oracle
        // is the action, and Uncompute restores the basis so that
        // U_g = X_0 U_f X_0 is applied between Hadamard layers.
        let mut engine = MainEngine::with_simulator();
        let qubits = engine.allocate_qureg(4);
        let f = Expr::parse("(x0 & x1) ^ (x2 & x3)").unwrap();
        let section = engine.begin_compute();
        engine.all_h(&qubits).unwrap();
        engine.x(qubits[0]).unwrap();
        let section = engine.end_compute(section);
        engine.phase_oracle_expr(&f, &qubits).unwrap();
        engine.uncompute(&section).unwrap();
        engine.phase_oracle_expr(&f, &qubits).unwrap();
        engine.all_h(&qubits).unwrap();
        let result = engine.flush(512).unwrap();
        assert_eq!(result.most_likely(), Some((1, 1.0)));
    }
}
