//! A RevKit-style command shell for the `qdaflow` compilation flow.
//!
//! RevKit is "executed as a command-based shell application, which allows to
//! perform synthesis scripts by combining a variety of different commands"
//! (Section VI of the paper). This crate reproduces that interface: a
//! [`store::Store`] holds the current Boolean specification, reversible
//! circuit and quantum circuit, and [`shell::Shell`] executes command
//! pipelines such as the one from equation (5) of the paper:
//!
//! ```text
//! revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c
//! ```
//!
//! # Example
//!
//! ```
//! use qdaflow_revkit::shell::Shell;
//!
//! # fn main() -> Result<(), qdaflow_revkit::RevkitError> {
//! let mut shell = Shell::new();
//! let output = shell.run_script("revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c")?;
//! assert!(output.iter().any(|line| line.contains("T-count")));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod error;
pub mod shell;
pub mod store;

pub use error::RevkitError;
pub use shell::Shell;
pub use store::Store;
