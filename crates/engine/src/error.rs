//! Error types for the engine crate.

use qdaflow_boolfn::BoolfnError;
use qdaflow_mapping::MappingError;
use qdaflow_quantum::QuantumError;
use qdaflow_reversible::ReversibleError;
use std::error::Error;
use std::fmt;

/// Errors produced by the ProjectQ-style engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A qubit handle does not belong to this engine.
    ForeignQubit {
        /// The offending qubit index.
        index: usize,
        /// Number of qubits currently allocated.
        allocated: usize,
    },
    /// The oracle specification does not match the provided register size.
    RegisterSizeMismatch {
        /// Number of qubits the oracle needs.
        expected: usize,
        /// Number of qubits that were provided.
        provided: usize,
    },
    /// A compute section was closed twice or belongs to a different engine
    /// state.
    InvalidComputeSection,
    /// An error from the Boolean function substrate.
    Boolfn(BoolfnError),
    /// An error from the reversible layer.
    Reversible(ReversibleError),
    /// An error from the quantum layer.
    Quantum(QuantumError),
    /// An error from the mapping layer.
    Mapping(MappingError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ForeignQubit { index, allocated } => write!(
                f,
                "qubit {index} does not belong to this engine ({allocated} qubits allocated)"
            ),
            Self::RegisterSizeMismatch { expected, provided } => write!(
                f,
                "oracle expects a register of {expected} qubits but {provided} were provided"
            ),
            Self::InvalidComputeSection => write!(f, "compute section is not valid for uncompute"),
            Self::Boolfn(inner) => write!(f, "{inner}"),
            Self::Reversible(inner) => write!(f, "{inner}"),
            Self::Quantum(inner) => write!(f, "{inner}"),
            Self::Mapping(inner) => write!(f, "{inner}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Boolfn(inner) => Some(inner),
            Self::Reversible(inner) => Some(inner),
            Self::Quantum(inner) => Some(inner),
            Self::Mapping(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<BoolfnError> for EngineError {
    fn from(inner: BoolfnError) -> Self {
        Self::Boolfn(inner)
    }
}

impl From<ReversibleError> for EngineError {
    fn from(inner: ReversibleError) -> Self {
        Self::Reversible(inner)
    }
}

impl From<QuantumError> for EngineError {
    fn from(inner: QuantumError) -> Self {
        Self::Quantum(inner)
    }
}

impl From<MappingError> for EngineError {
    fn from(inner: MappingError) -> Self {
        Self::Mapping(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let err: EngineError = QuantumError::DuplicateQubit { qubit: 1 }.into();
        assert!(matches!(err, EngineError::Quantum(_)));
        assert!(EngineError::InvalidComputeSection.to_string().contains("compute"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }
}
