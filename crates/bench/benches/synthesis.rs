//! Criterion benchmarks of the reversible synthesis algorithms
//! (supporting experiment E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdaflow::boolfn::{hwb::hwb_permutation, Permutation, TruthTable};
use qdaflow::reversible::synthesis;
use std::time::Duration;

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("reversible_synthesis");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for n in [4usize, 6, 8] {
        let hwb = hwb_permutation(n);
        group.bench_with_input(BenchmarkId::new("tbs_hwb", n), &hwb, |b, p| {
            b.iter(|| synthesis::transformation_based(p).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dbs_hwb", n), &hwb, |b, p| {
            b.iter(|| synthesis::decomposition_based(p).unwrap())
        });
        let random = Permutation::random_seeded(n, 42);
        group.bench_with_input(BenchmarkId::new("tbs_random", n), &random, |b, p| {
            b.iter(|| synthesis::transformation_based(p).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("esop_synthesis");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for n in [4usize, 6, 8] {
        let function =
            TruthTable::from_fn(n, |x| (x.wrapping_mul(2654435761) >> 3) % 7 < 3).unwrap();
        group.bench_with_input(BenchmarkId::new("esopbs", n), &function, |b, f| {
            b.iter(|| synthesis::esop_based_single(f, Default::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
