//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use rand::Rng as _;

/// Length specification for [`vec()`]: an exact `usize` or a half-open range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        Self {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *range.start(),
            max_exclusive: *range.end() + 1,
        }
    }
}

/// Strategy for vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
