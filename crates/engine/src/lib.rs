//! A ProjectQ-style compiler engine for the `qdaflow` flow.
//!
//! The paper's Section VII programs the hidden shift algorithm against the
//! ProjectQ Python API: a `MainEngine` with exchangeable backends, qubit
//! registers, meta-sections (`Compute`/`Uncompute`/`Dagger`) and the
//! RevKit-powered `PhaseOracle` and `PermutationOracle` primitives. This
//! crate reproduces that programming model in Rust:
//!
//! ```
//! use qdaflow_engine::{MainEngine, SynthesisChoice};
//! use qdaflow_boolfn::Expr;
//!
//! # fn main() -> Result<(), qdaflow_engine::EngineError> {
//! // The program of Fig. 4: hidden shift for f = x0x1 ^ x2x3 with s = 1.
//! // The shifted oracle U_g = X_0 · U_f · X_0 is produced by the
//! // compute / action / uncompute pattern around the phase oracle.
//! let mut engine = MainEngine::with_simulator();
//! let qubits = engine.allocate_qureg(4);
//! let f = Expr::parse("(x0 & x1) ^ (x2 & x3)")?;
//!
//! let section = engine.begin_compute();
//! engine.all_h(&qubits)?;
//! engine.x(qubits[0])?;
//! let section = engine.end_compute(section);
//! engine.phase_oracle_expr(&f, &qubits)?;
//! engine.uncompute(&section)?;
//!
//! engine.phase_oracle_expr(&f, &qubits)?; // f is self-dual
//! engine.all_h(&qubits)?;
//! let result = engine.flush(256)?;
//! assert_eq!(result.most_likely().map(|(outcome, _)| outcome), Some(1));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod engine;
pub mod error;
pub mod oracle;
pub mod service;
pub mod store;

pub use batch::{BatchEngine, BatchJob};
pub use cache::{CacheStats, CompiledProgram, OracleCache, OracleSpec};
pub use engine::{resolve_backend, BackendChoice, ComputeSection, MainEngine, Qubit};
pub use error::EngineError;
pub use oracle::SynthesisChoice;
pub use service::{JobId, JobService, JobServiceConfig, JobStatus};
pub use store::{DiskCache, DiskCacheStats, Journal, JournalEntry};
