//! Experiment E4 (equation (5) of the paper): the RevKit command pipeline
//! `revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c` and its printed
//! statistics — run once through the shell and once through the typed
//! pass-manager pipeline, which additionally reports per-pass timings and
//! gate/T-counts.

use qdaflow::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== E4: RevKit pipeline of equation (5) ===");
    let script = "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c";
    println!("$ {script}");
    let mut shell = Shell::new();
    for line in shell.run_script(script)? {
        println!("{line}");
    }

    // Also run the same specification through decomposition-based synthesis
    // for comparison.
    let script = "revgen --hwb 4; dbs; revsimp; rptm; tpar; ps -c; simulate";
    println!("\n$ {script}");
    let mut shell = Shell::new();
    for line in shell.run_script(script)? {
        println!("{line}");
    }

    // The same flow as a first-class pipeline object: per-pass wall-clock
    // timings and gate/T-count metrics from the PipelineReport.
    let script = "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps";
    println!("\n=== the same flow as a typed pipeline (per-pass metrics) ===");
    println!("Pipeline::parse(\"{script}\")");
    let report = Pipeline::parse(script)?.run_generated()?;
    println!("\npass            stage                 gates      T-count    time");
    for record in &report.passes {
        let (gates, t_count) = match (&record.reversible_gates, &record.resources) {
            (Some(g), _) => (g.to_string(), "-".to_owned()),
            (_, Some(r)) => (r.total_gates.to_string(), r.t_count.to_string()),
            _ => ("-".to_owned(), "-".to_owned()),
        };
        println!(
            "{:<15} {:<21} {:<10} {:<10} {:.1?}",
            record.pass,
            record.stage.to_string(),
            gates,
            t_count,
            record.duration
        );
    }
    let mapped = report.resources_after("rptm").expect("rptm ran");
    let optimized = report.resources_after("tpar").expect("tpar ran");
    println!(
        "\ntpar saving: T-count {} -> {} ({} T gates removed) in {:.1?} total",
        mapped.t_count,
        optimized.t_count,
        mapped.t_count.saturating_sub(optimized.t_count),
        report.total_duration()
    );
    Ok(())
}
